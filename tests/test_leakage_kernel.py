"""Parity suite: batched leakage kernel vs the scalar reference path.

The vectorized kernel must reproduce the scalar Eqs. 1–2 / 6–13
arithmetic to <= 1e-12 relative error across the *full* predefined
technology-node table (0.8 um down to 25 nm spans ~7 decades of leakage
magnitudes), for both polarities — subthreshold bias sweeps, Eq. 13
gate currents, the node-voltage closed forms, and whole-chain stack
collapses.  The shared symmetric exponent clamp is pinned here too.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cosim.coupling import (
    leakage_temperature_ratio,
    leakage_temperature_ratio_batch,
)
from repro.core.leakage import kernel
from repro.core.leakage.stack_collapse import StackCollapser
from repro.core.leakage.subthreshold import (
    MAX_EXPONENT,
    SubthresholdBias,
    effective_width_off_current,
    safe_exp,
    single_device_off_current,
    subthreshold_current,
    threshold_voltage,
)
from repro.technology.nodes import all_technologies, node_names

PARITY = 1e-12

ALL_NODES = sorted(all_technologies().items())


def relative_gap(batched: np.ndarray, scalar: np.ndarray) -> float:
    batched = np.asarray(batched, dtype=float)
    scalar = np.asarray(scalar, dtype=float)
    scale = np.maximum(np.abs(scalar), 1e-300)
    return float((np.abs(batched - scalar) / scale).max())


# --------------------------------------------------------------------- #
# The shared exponent clamp
# --------------------------------------------------------------------- #
class TestSafeExp:
    def test_scalar_clamp_is_symmetric(self):
        assert safe_exp(MAX_EXPONENT + 1.0) == math.exp(MAX_EXPONENT)
        assert safe_exp(1e9) == math.exp(MAX_EXPONENT)
        assert safe_exp(-MAX_EXPONENT - 1.0) == math.exp(-MAX_EXPONENT)
        assert safe_exp(-1e9) == math.exp(-MAX_EXPONENT)
        assert safe_exp(-1e9) > 0.0
        assert safe_exp(0.0) == 1.0

    def test_batched_clamp_matches_scalar_everywhere(self):
        values = np.array([-1e9, -MAX_EXPONENT - 1.0, -MAX_EXPONENT, -1.0, 0.0,
                           1.0, MAX_EXPONENT, MAX_EXPONENT + 1.0, 1e9])
        batched = kernel.safe_exp(values)
        scalar = np.array([safe_exp(float(v)) for v in values])
        assert np.array_equal(batched, scalar)


# --------------------------------------------------------------------- #
# Eq. 1–2: subthreshold current over the full node table
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("node_name,technology", ALL_NODES)
@pytest.mark.parametrize("device_type", ["nmos", "pmos"])
def test_subthreshold_parity(node_name, technology, device_type):
    device = technology.device(device_type)
    devices = kernel.DeviceArray.from_device(device)
    rng = np.random.default_rng(hash((node_name, device_type)) % 2**32)
    count = 40
    temperature = rng.uniform(250.0, 450.0, count)
    vgs = rng.uniform(-0.3, 0.4, count)
    vds = rng.uniform(0.005, technology.vdd, count)
    vsb = rng.uniform(0.0, 0.5, count)
    width = rng.uniform(0.05e-6, 20e-6, count)

    for include_drain in (True, False):
        batched = kernel.subthreshold_current(
            devices, width, vgs, vds, vsb, technology.vdd, temperature,
            technology.reference_temperature, include_drain_factor=include_drain,
        )
        scalar = [
            subthreshold_current(
                device,
                width[i],
                SubthresholdBias(
                    vgs=vgs[i], vds=vds[i], vsb=vsb[i], vdd=technology.vdd,
                    temperature=temperature[i],
                ),
                technology.reference_temperature,
                include_drain_factor=include_drain,
            )
            for i in range(count)
        ]
        assert relative_gap(batched, scalar) <= PARITY

    batched_vth = devices.threshold_voltage(
        vsb, vds, technology.vdd, temperature, technology.reference_temperature
    )
    scalar_vth = [
        threshold_voltage(
            device,
            SubthresholdBias(
                vgs=vgs[i], vds=vds[i], vsb=vsb[i], vdd=technology.vdd,
                temperature=temperature[i],
            ),
            technology.reference_temperature,
        )
        for i in range(count)
    ]
    assert relative_gap(batched_vth, scalar_vth) <= PARITY


@pytest.mark.parametrize("node_name,technology", ALL_NODES)
@pytest.mark.parametrize("device_type", ["nmos", "pmos"])
def test_gate_leakage_parity(node_name, technology, device_type):
    """Eq. 13: effective-width gate current across nodes and temperatures."""
    devices = kernel.DeviceArray.from_device(technology.device(device_type))
    rng = np.random.default_rng(hash((node_name, device_type, 13)) % 2**32)
    count = 30
    effective_width = rng.uniform(0.02e-6, 40e-6, count)
    temperature = rng.uniform(250.0, 450.0, count)

    batched = kernel.gate_leakage(
        devices, effective_width, technology.vdd, temperature,
        technology.reference_temperature,
    )
    scalar = [
        effective_width_off_current(
            technology, device_type, effective_width[i], temperature[i]
        )
        for i in range(count)
    ]
    assert relative_gap(batched, scalar) <= PARITY
    assert np.all(batched > 0.0)


@pytest.mark.parametrize("node_name,technology", ALL_NODES)
def test_node_voltage_parity(node_name, technology):
    """Eqs. 7/8/9/10 closed forms match the scalar collapser, broadcast."""
    collapser = StackCollapser(technology)
    devices = kernel.DeviceArray.from_device(technology.nmos)
    ratios = np.logspace(-2.0, 2.0, 17)
    lower = 1.0e-6
    upper = ratios * lower
    temperature = technology.reference_temperature

    pairs = (
        (kernel.f_value, collapser.f_value),
        (kernel.node_voltage, collapser.node_voltage),
        (kernel.node_voltage_strong, collapser.node_voltage_strong),
        (kernel.node_voltage_weak, collapser.node_voltage_weak),
    )
    for batched_fn, scalar_fn in pairs:
        batched = batched_fn(upper, lower, devices, technology.vdd, temperature)
        scalar = [scalar_fn(u, lower, "nmos", temperature) for u in upper]
        # f crosses zero inside the sweep, so compare f on an absolute scale.
        if scalar_fn is collapser.f_value:
            assert np.abs(batched - np.asarray(scalar)).max() <= 1e-12
        else:
            assert relative_gap(batched, scalar) <= PARITY
    assert float(kernel.alpha(devices)) == collapser.alpha("nmos")


@pytest.mark.parametrize("node_name,technology", ALL_NODES)
@pytest.mark.parametrize("device_type", ["nmos", "pmos"])
@pytest.mark.parametrize("depth", [1, 2, 3, 4, 6])
def test_stack_collapse_parity(node_name, technology, device_type, depth):
    """Whole-chain collapse and Eq. 13 current match the scalar recursion."""
    collapser = StackCollapser(technology)
    rng = np.random.default_rng(hash((node_name, device_type, depth)) % 2**32)
    count = 15
    chains = rng.uniform(0.05e-6, 10e-6, (count, depth))
    stacks = kernel.StackArray(widths=chains)
    devices = kernel.DeviceArray.from_device(technology.device(device_type))
    temperature = 330.0

    batch = kernel.collapse_stacks(stacks, devices, technology.vdd, temperature)
    currents = kernel.collapsed_stack_current(
        stacks, devices, technology.vdd, temperature,
        technology.reference_temperature,
    )
    for i in range(count):
        reference = collapser.collapse_chain_widths(
            list(chains[i]), device_type, temperature
        )
        assert relative_gap(
            batch.effective_width[i], reference.effective_width
        ) <= PARITY
        assert batch.node_voltages.shape == (count, depth - 1)
        if depth > 1:
            assert relative_gap(
                batch.node_voltages[i], np.asarray(reference.node_voltages)
            ) <= PARITY
            assert relative_gap(
                batch.stacking_factor[i], reference.stacking_factor
            ) <= PARITY
        reference_current = effective_width_off_current(
            technology, device_type, reference.effective_width, temperature
        )
        assert relative_gap(currents[i], reference_current) <= PARITY


@pytest.mark.parametrize("node_name,technology", ALL_NODES)
def test_leakage_temperature_ratio_parity(node_name, technology):
    """The cosim coupling ratio (Eq. 13 based) matches, per node."""
    temperatures = np.linspace(260.0, 440.0, 19)
    batched = leakage_temperature_ratio_batch(technology, temperatures)
    scalar = [leakage_temperature_ratio(technology, t) for t in temperatures]
    assert relative_gap(batched, scalar) <= PARITY


# --------------------------------------------------------------------- #
# Container semantics
# --------------------------------------------------------------------- #
class TestContainers:
    def test_device_array_packs_full_node_table(self):
        technologies = list(all_technologies().values())
        devices = kernel.DeviceArray.from_technologies(technologies, "nmos")
        assert devices.i0.shape == (len(node_names()),)
        taken = devices.take(np.array([0, 0, 3]))
        assert taken.vt0.shape == (3,)
        assert taken.vt0[0] == taken.vt0[1] == devices.vt0[0]
        reshaped = devices.reshape((len(node_names()), 1))
        assert reshaped.kt.shape == (len(node_names()), 1)

    def test_stack_array_rejects_mixed_depths(self):
        with pytest.raises(ValueError):
            kernel.StackArray.from_chains([[1e-6, 2e-6], [1e-6]])

    def test_stack_array_rejects_non_positive_widths(self):
        with pytest.raises(ValueError):
            kernel.StackArray(widths=np.array([[1e-6, 0.0]]))

    def test_subthreshold_rejects_non_positive_width(self, tech012):
        devices = kernel.DeviceArray.from_device(tech012.nmos)
        with pytest.raises(ValueError):
            kernel.subthreshold_current(
                devices, 0.0, 0.0, 1.2, 0.0, 1.2, 300.0, 298.15
            )

    def test_gate_leakage_rejects_non_positive_width(self, tech012):
        devices = kernel.DeviceArray.from_device(tech012.nmos)
        with pytest.raises(ValueError):
            kernel.gate_leakage(
                devices, np.array([1e-6, -1e-6]), 1.2, 300.0, 298.15
            )

    def test_collapse_broadcasts_temperature_batches(self, tech012):
        """A (scenarios, 1) temperature batch collapses per scenario x stack."""
        collapser = StackCollapser(tech012)
        chains = np.array([[1.0e-6, 2.0e-6, 4.0e-6], [3.0e-6, 1.0e-6, 0.5e-6]])
        stacks = kernel.StackArray(widths=chains)
        devices = kernel.DeviceArray.from_device(tech012.nmos)
        temperatures = np.array([[300.0], [350.0], [400.0]])
        batch = kernel.collapse_stacks(stacks, devices, tech012.vdd, temperatures)
        assert batch.effective_width.shape == (3, 2)
        assert batch.node_voltages.shape == (3, 2, 2)
        assert batch.top_node_voltage.shape == (3, 2)
        for row in range(3):
            for chain in range(2):
                reference = collapser.collapse_chain_widths(
                    list(chains[chain]), "nmos", float(temperatures[row, 0])
                )
                assert relative_gap(
                    batch.effective_width[row, chain], reference.effective_width
                ) <= PARITY
                assert relative_gap(
                    batch.node_voltages[row, chain],
                    np.asarray(reference.node_voltages),
                ) <= PARITY

    def test_single_chain_depth_one_is_identity(self, tech012):
        stacks = kernel.StackArray(widths=np.array([[3.0e-6]]))
        devices = kernel.DeviceArray.from_device(tech012.nmos)
        batch = kernel.collapse_stacks(stacks, devices, tech012.vdd, 300.0)
        assert batch.effective_width[0] == 3.0e-6
        assert batch.node_voltages.shape == (1, 0)
        assert batch.stacking_factor[0] == 1.0

    def test_off_current_parity_with_scalar(self, tech012):
        devices = kernel.DeviceArray.from_device(tech012.nmos)
        temperature = np.array([280.0, 300.0, 380.0])
        batched = kernel.single_device_off_current(
            devices, 2e-6, tech012.vdd, temperature,
            tech012.reference_temperature,
        )
        scalar = [
            single_device_off_current(
                tech012.nmos, 2e-6, tech012.vdd, t, tech012.reference_temperature
            )
            for t in temperature
        ]
        assert relative_gap(batched, scalar) <= PARITY
