"""Tests for repro.technology.nodes."""

import pytest

from repro.technology import microns
from repro.technology.nodes import (
    all_technologies,
    cmos_012um,
    cmos_035um,
    make_technology,
    node_names,
)
from repro.technology.scaling import device_off_current


class TestNodeCatalogue:
    def test_node_list_is_ordered_old_to_new(self):
        names = node_names()
        assert names[0] == "0.8um"
        assert names[-1] == "25nm"
        assert "0.12um" in names and "0.35um" in names

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            make_technology("3nm")

    def test_all_technologies_covers_every_node(self):
        technologies = all_technologies()
        assert set(technologies) == set(node_names())


class TestNodeParameters:
    def test_012um_matches_paper_setup(self):
        tech = cmos_012um()
        assert tech.feature_size == pytest.approx(microns(0.12))
        assert tech.vdd == pytest.approx(1.2)
        assert tech.nmos.channel_length == pytest.approx(microns(0.12))

    def test_035um_supply(self):
        tech = cmos_035um()
        assert tech.vdd == pytest.approx(3.3)

    def test_supply_voltage_decreases_with_scaling(self):
        supplies = [make_technology(name).vdd for name in node_names()]
        assert all(b <= a for a, b in zip(supplies, supplies[1:]))

    def test_threshold_voltage_decreases_with_scaling(self):
        thresholds = [make_technology(name).nmos.vt0 for name in node_names()]
        assert all(b <= a for a, b in zip(thresholds, thresholds[1:]))

    def test_ambient_temperature_follows_argument(self):
        tech = make_technology("0.18um", ambient_celsius=85.0)
        assert tech.thermal.ambient_temperature == pytest.approx(273.15 + 85.0)


class TestOffCurrentCalibration:
    @pytest.mark.parametrize("name", ["0.35um", "0.18um", "0.12um", "70nm", "25nm"])
    def test_nmos_off_current_density_matches_target(self, name):
        tech = make_technology(name)
        target = tech.metadata["ioff_density_per_um"]
        current = device_off_current(
            tech.nmos, microns(1.0), tech.vdd, tech.reference_temperature,
            tech.reference_temperature,
        )
        # The calibration drops the (1 - exp(-Vdd/VT)) factor, which is < 1%.
        assert current == pytest.approx(target, rel=0.02)

    def test_pmos_leaks_less_than_nmos(self):
        tech = cmos_012um()
        nmos_current = device_off_current(
            tech.nmos, microns(1.0), tech.vdd, tech.reference_temperature,
            tech.reference_temperature,
        )
        pmos_current = device_off_current(
            tech.pmos, microns(1.0), tech.vdd, tech.reference_temperature,
            tech.reference_temperature,
        )
        assert pmos_current < nmos_current

    def test_leakage_density_grows_with_scaling(self):
        densities = []
        for name in node_names():
            tech = make_technology(name)
            densities.append(
                device_off_current(
                    tech.nmos, microns(1.0), tech.vdd, tech.reference_temperature,
                    tech.reference_temperature,
                )
            )
        assert all(b > a for a, b in zip(densities, densities[1:]))
        # The sweep spans many orders of magnitude (0.8um to 25nm).
        assert densities[-1] / densities[0] > 1e5
