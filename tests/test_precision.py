"""float32 vs float64: the documented-tolerance parity suite.

``float64`` is the reference policy — selecting it explicitly must be
bit-identical to the default path (same engines, same in-place chains).
``float32`` trades precision for serving speed; its results are pinned to
the float64 reference within the tolerances the
:class:`~repro.core.backend.Precision` registry documents
(``rtol=1e-4``/``atol=5e-3``, see ``docs/precision.md``) at both the
kernel level and across every study kind.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec, Study, WorkloadSpec
from repro.core.backend import PRECISIONS
from repro.core.thermal.kernel import SourceArray, temperature_rise
from repro.core.thermal.sources import HeatSource
from repro.floorplan import three_block_floorplan

FLOAT32 = PRECISIONS["float32"]

DYNAMIC = {"core": 0.25, "cache": 0.10, "io": 0.05}
STATIC = {"core": 0.05, "cache": 0.02, "io": 0.01}

STUDY_KINDS = ("steady", "transient", "thermal_map", "sweep")

#: Convergence bookkeeping that may legitimately differ between working
#: precisions (float32 fixed points settle after a different iteration).
_BOOKKEEPING = {"iteration_counts", "runaway_times"}


def _study(kind, precision=None, scale=1.0, ambient=318.15, activity=1.0):
    plan = three_block_floorplan()
    if kind == "steady":
        return Study.steady(
            floorplan=plan,
            dynamic_powers=DYNAMIC,
            static_powers=STATIC,
            scenarios=ScenarioSpec.grid(
                ["0.12um", "70nm"],
                supply_scales=(scale,),
                ambient_temperatures=(ambient,),
                activities=(activity,),
            ),
            precision=precision,
        )
    if kind == "transient":
        return Study.transient(
            floorplan=plan,
            dynamic_powers=DYNAMIC,
            static_powers=STATIC,
            scenarios=ScenarioSpec.grid(
                ["0.12um"],
                supply_scales=(scale,),
                ambient_temperatures=(ambient,),
                activities=(activity,),
            ),
            duration=8e-3,
            time_step=1e-3,
            workload=WorkloadSpec(
                kind="pwm", parameters={"periods": 3e-3, "duty_cycles": 0.5}
            ),
            precision=precision,
        )
    if kind == "thermal_map":
        return Study.thermal_map(
            floorplan=plan,
            block_powers={
                "core": 0.3 * activity,
                "cache": 0.12 * activity,
                "io": 0.06 * activity,
            },
            technology="0.12um",
            ambient_temperature=ambient,
            samples=(8, 8),
            precision=precision,
        )
    if kind == "sweep":
        ambients = (ambient, ambient + 20.0)
        return Study.sweep(
            floorplan=plan,
            parameter_name="ambient_K",
            parameter_values=ambients,
            scenarios=ScenarioSpec.grid(
                ["0.12um"],
                supply_scales=(scale,),
                ambient_temperatures=ambients,
            ),
            dynamic_powers=DYNAMIC,
            static_powers=STATIC,
            precision=precision,
        )
    raise AssertionError(kind)


def _assert_bit_identical(result, reference):
    assert set(result.arrays) == set(reference.arrays)
    for name, expected in reference.arrays.items():
        np.testing.assert_array_equal(result.arrays[name], expected, err_msg=name)


def _assert_within_tolerance(result, reference):
    assert set(result.arrays) == set(reference.arrays)
    for name, expected in reference.arrays.items():
        if name in _BOOKKEEPING:
            continue
        actual = result.arrays[name]
        if expected.dtype.kind in "bi":
            # Flags (converged, runaway) must agree exactly: a policy that
            # changes an outcome is broken, not imprecise.
            np.testing.assert_array_equal(actual, expected, err_msg=name)
        else:
            np.testing.assert_allclose(
                actual,
                expected,
                rtol=FLOAT32.rtol,
                atol=FLOAT32.atol,
                err_msg=name,
            )


def _sources():
    return [
        HeatSource(x=0.2e-3, y=0.3e-3, width=0.25e-3, length=0.12e-3, power=0.8),
        HeatSource(x=0.7e-3, y=0.6e-3, width=0.1e-3, length=0.4e-3, power=0.35),
        HeatSource(x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.2e-3, power=-0.2,
                   depth=0.3e-3),
    ]


class TestKernelPrecision:
    def test_temperature_rise_float32_within_tolerance(self):
        rng = np.random.default_rng(42)
        points = rng.uniform(0.0, 1e-3, size=(64, 2))
        reference = temperature_rise(
            points, SourceArray.from_sources(_sources()), 120.0
        )
        fast = temperature_rise(
            points.astype(np.float32),
            SourceArray.from_sources(_sources(), dtype=np.float32),
            120.0,
        )
        assert fast.dtype == np.float32
        np.testing.assert_allclose(
            fast, reference, rtol=FLOAT32.rtol, atol=FLOAT32.atol
        )

    def test_float32_sources_stay_float32_through_chunking(self):
        rng = np.random.default_rng(43)
        points = rng.uniform(0.0, 1e-3, size=(64, 2)).astype(np.float32)
        array = SourceArray.from_sources(_sources(), dtype=np.float32)
        monolithic = temperature_rise(points, array, 120.0)
        chunked = temperature_rise(points, array, 120.0, chunk_elements=32)
        assert chunked.dtype == np.float32
        np.testing.assert_array_equal(chunked, monolithic)


class TestStudyPrecision:
    @pytest.mark.parametrize("kind", STUDY_KINDS)
    def test_explicit_float64_is_bit_identical_to_default(self, kind):
        reference = _study(kind).run()
        explicit = _study(kind, precision="float64").run()
        _assert_bit_identical(explicit, reference)

    @pytest.mark.parametrize("kind", STUDY_KINDS)
    def test_float32_within_documented_tolerances(self, kind):
        reference = _study(kind).run()
        fast = _study(kind, precision="float32").run()
        _assert_within_tolerance(fast, reference)

    @pytest.mark.parametrize("kind", STUDY_KINDS)
    def test_with_precision_round_trips_through_json(self, kind):
        study = _study(kind).with_precision("float32")
        assert study.spec.precision == "float32"
        from repro.api.specs import StudySpec

        replay = StudySpec.from_json(study.to_json())
        assert replay.precision == "float32"
        _assert_within_tolerance(study.run(), _study(kind).run())

    def test_results_leave_the_engines_as_float64_numpy(self):
        result = _study("steady", precision="float32").run()
        temperatures = result.array("block_temperatures")
        assert isinstance(temperatures, np.ndarray)
        assert temperatures.dtype == np.float64


@st.composite
def operating_points(draw):
    return dict(
        scale=draw(st.floats(0.85, 1.15)),
        ambient=draw(st.floats(288.15, 358.15)),
        activity=draw(st.floats(0.2, 1.0)),
    )


class TestPrecisionProperties:
    @pytest.mark.parametrize("kind", STUDY_KINDS)
    @settings(max_examples=5, deadline=None)
    @given(point=operating_points())
    def test_float64_matches_default_everywhere(self, kind, point):
        reference = _study(kind, **point).run()
        explicit = _study(kind, precision="float64", **point).run()
        _assert_bit_identical(explicit, reference)

    @pytest.mark.parametrize("kind", STUDY_KINDS)
    @settings(max_examples=5, deadline=None)
    @given(point=operating_points())
    def test_float32_within_tolerance_everywhere(self, kind, point):
        reference = _study(kind, **point).run()
        fast = _study(kind, precision="float32", **point).run()
        _assert_within_tolerance(fast, reference)
