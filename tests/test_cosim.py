"""Tests for repro.core.cosim (coupling models and the electro-thermal engine)."""

import pytest

from repro.circuit.netlist import chain_of_inverters
from repro.core.cosim.coupling import (
    NetlistBlockModel,
    ScaledLeakageBlockModel,
    block_models_from_powers,
    leakage_temperature_ratio,
)
from repro.core.cosim.engine import ElectroThermalEngine
from repro.core.leakage.subthreshold import single_device_off_current
from repro.floorplan import three_block_floorplan


@pytest.fixture(scope="module")
def floorplan():
    return three_block_floorplan()


@pytest.fixture(scope="module")
def block_models(tech012):
    return block_models_from_powers(
        tech012,
        dynamic_powers={"core": 0.25, "cache": 0.10, "io": 0.05},
        static_powers_at_reference={"core": 0.05, "cache": 0.02, "io": 0.01},
    )


@pytest.fixture(scope="module")
def engine(tech012, floorplan, block_models):
    return ElectroThermalEngine(
        tech012, floorplan, block_models, ambient_temperature=318.15
    )


class TestLeakageTemperatureRatio:
    def test_unity_at_reference(self, tech012):
        assert leakage_temperature_ratio(
            tech012, tech012.reference_temperature
        ) == pytest.approx(1.0)

    def test_matches_direct_model(self, tech012):
        ratio = leakage_temperature_ratio(tech012, 368.15)
        hot = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, 368.15, tech012.reference_temperature
        )
        cold = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, tech012.reference_temperature,
            tech012.reference_temperature,
        )
        assert ratio == pytest.approx(hot / cold)

    def test_ratio_is_width_independent(self, tech012):
        # Eq. (13) is linear in width, so the ratio must not depend on it.
        assert leakage_temperature_ratio(tech012, 350.0) == pytest.approx(
            leakage_temperature_ratio(tech012, 350.0, device_type="nmos")
        )


class TestBlockModels:
    def test_scaled_leakage_block(self, tech012):
        model = ScaledLeakageBlockModel(
            name="core", technology=tech012, dynamic_power=0.2,
            static_power_at_reference=0.05,
        )
        cold = model.breakdown(tech012.reference_temperature)
        hot = model.breakdown(378.15)
        assert cold.static == pytest.approx(0.05)
        assert hot.static > 5.0 * cold.static
        assert hot.switching == pytest.approx(0.2)

    def test_scaled_block_validation(self, tech012):
        with pytest.raises(ValueError):
            ScaledLeakageBlockModel("x", tech012, -1.0, 0.1)

    def test_factory_builds_all_blocks(self, tech012):
        models = block_models_from_powers(
            tech012, {"a": 1.0}, {"a": 0.1, "b": 0.2}
        )
        assert set(models) == {"a", "b"}
        assert models["b"].breakdown(tech012.reference_temperature).switching == 0.0

    def test_factory_requires_blocks(self, tech012):
        with pytest.raises(ValueError):
            block_models_from_powers(tech012, {}, {})

    def test_netlist_block_model(self, tech012):
        netlist = chain_of_inverters(tech012, 6)
        model = NetlistBlockModel(
            "whole", netlist, {"IN": 0}, tech012, use_whole_netlist=True
        )
        breakdown = model.breakdown(tech012.reference_temperature)
        assert breakdown.total > 0.0
        hot = model.breakdown(378.15)
        assert hot.static > breakdown.static

    def test_netlist_block_model_filters_by_block(self, tech012):
        netlist = chain_of_inverters(tech012, 3)
        model = NetlistBlockModel("missing", netlist, {"IN": 0}, tech012)
        assert model.breakdown(tech012.reference_temperature).total == 0.0


class TestEngine:
    def test_converges(self, engine):
        result = engine.solve()
        assert result.converged
        assert result.iteration_count >= 2

    def test_temperatures_above_ambient(self, engine):
        result = engine.solve()
        assert all(t > engine.ambient_temperature for t in result.block_temperatures.values())

    def test_hottest_block_is_the_most_powerful(self, engine):
        result = engine.solve()
        assert result.hottest_block() == "core"
        assert result.peak_rise > 0.0

    def test_coupled_static_exceeds_isothermal_static(self, engine, tech012):
        coupled = engine.solve()
        isothermal = engine.isothermal_result(engine.ambient_temperature)
        assert coupled.total_static_power > isothermal.total_static_power
        # Dynamic power is temperature independent.
        assert coupled.total_dynamic_power == pytest.approx(
            isothermal.total_dynamic_power
        )

    def test_resistance_matrix_properties(self, engine):
        matrix = engine.resistance_matrix
        assert matrix.shape == (3, 3)
        assert (matrix > 0.0).all()
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert matrix[i, i] > matrix[i, j]

    def test_damping_reaches_same_fixed_point(self, engine):
        plain = engine.solve(damping=1.0)
        damped = engine.solve(damping=0.5, max_iterations=200)
        for name in plain.block_temperatures:
            assert plain.block_temperatures[name] == pytest.approx(
                damped.block_temperatures[name], abs=0.05
            )

    def test_initial_temperature_guess_accepted(self, engine):
        result = engine.solve(initial_temperatures={"core": 340.0})
        assert result.converged

    def test_runaway_saturates_and_reports_failure(self, tech012, floorplan):
        hot_models = block_models_from_powers(
            tech012,
            {"core": 3.0, "cache": 1.0, "io": 0.5},
            {"core": 0.5, "cache": 0.3, "io": 0.1},
        )
        engine = ElectroThermalEngine(
            tech012, floorplan, hot_models, ambient_temperature=318.15
        )
        result = engine.solve(max_temperature=450.0)
        assert not result.converged
        assert result.peak_temperature <= 450.0 + 1e-9

    def test_thermal_model_from_result(self, engine, floorplan):
        result = engine.solve()
        chip = engine.thermal_model(result)
        core = floorplan.block("core")
        # The full analytical map at the converged powers reproduces the
        # reduced-matrix block temperature closely.
        assert chip.temperature_at(core.x, core.y) == pytest.approx(
            result.block_temperatures["core"], abs=1.5
        )

    def test_validation(self, tech012, floorplan, block_models):
        with pytest.raises(KeyError):
            ElectroThermalEngine(
                tech012, floorplan,
                {"bogus": ScaledLeakageBlockModel("bogus", tech012, 0.1, 0.01)},
            )
        with pytest.raises(ValueError):
            ElectroThermalEngine(tech012, floorplan, {})
        engine = ElectroThermalEngine(tech012, floorplan, block_models)
        with pytest.raises(ValueError):
            engine.solve(max_iterations=0)
        with pytest.raises(ValueError):
            engine.solve(tolerance=-1.0)
        with pytest.raises(ValueError):
            engine.solve(damping=1.5)
        with pytest.raises(ValueError):
            engine.solve(max_temperature=100.0)

    def test_iteration_history_recorded(self, engine):
        result = engine.solve()
        assert len(result.iterations) == result.iteration_count
        assert result.iterations[0].index == 0
        # Convergence metric shrinks over the iterations.
        changes = [it.max_temperature_change for it in result.iterations[1:]]
        assert changes[-1] < changes[0]
