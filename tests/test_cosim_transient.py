"""Tests for repro.core.cosim.transient (block-level transient cosimulation)."""

import numpy as np
import pytest

from repro.core.cosim import (
    ElectroThermalEngine,
    TransientElectroThermalSimulator,
    block_models_from_powers,
    square_wave_activity_profile,
    step_activity_profile,
)
from repro.floorplan import three_block_floorplan

AMBIENT = 318.15


@pytest.fixture(scope="module")
def engine(tech012):
    plan = three_block_floorplan()
    models = block_models_from_powers(
        tech012,
        {"core": 0.25, "cache": 0.10, "io": 0.05},
        {"core": 0.05, "cache": 0.02, "io": 0.01},
    )
    return ElectroThermalEngine(tech012, plan, models, ambient_temperature=AMBIENT)


@pytest.fixture(scope="module")
def simulator(engine):
    # Millisecond-scale time constants keep the tests fast while preserving
    # the block-to-block ratios of the default derivation.
    return TransientElectroThermalSimulator(
        engine, time_constants={"core": 2e-3, "cache": 1.5e-3, "io": 1e-3}
    )


class TestConstruction:
    def test_default_time_constants_positive(self, engine):
        simulator = TransientElectroThermalSimulator(engine)
        constants = simulator.time_constants
        assert set(constants) == {"core", "cache", "io"}
        assert all(value > 0.0 for value in constants.values())

    def test_unknown_block_rejected(self, engine):
        with pytest.raises(KeyError):
            TransientElectroThermalSimulator(engine, time_constants={"gpu": 1e-3})

    def test_invalid_time_constant_rejected(self, engine):
        with pytest.raises(ValueError):
            TransientElectroThermalSimulator(engine, time_constants={"core": 0.0})


class TestConstantWorkload:
    def test_converges_to_steady_state_engine(self, engine, simulator):
        steady = engine.solve(tolerance=1e-4, max_iterations=200)
        result = simulator.simulate(duration=30e-3, time_step=0.05e-3)
        for name in ("core", "cache", "io"):
            assert result.final_temperature(name) == pytest.approx(
                steady.block_temperatures[name], abs=0.2
            )

    def test_temperature_rise_is_monotone_from_ambient(self, simulator):
        result = simulator.simulate(duration=10e-3, time_step=0.05e-3)
        core = result.block_temperatures["core"]
        assert core[0] == pytest.approx(AMBIENT)
        assert np.all(np.diff(core) >= -1e-9)

    def test_leakage_grows_as_the_die_heats(self, simulator):
        result = simulator.simulate(duration=20e-3, time_step=0.05e-3)
        core_power = result.block_powers["core"]
        assert core_power[-1] > core_power[0]

    def test_energy_accounting(self, simulator):
        result = simulator.simulate(duration=5e-3, time_step=0.05e-3)
        total_power_range = (
            sum(result.block_powers[name][0] for name in result.block_names),
            sum(result.block_powers[name][-1] for name in result.block_names),
        )
        energy = result.total_energy()
        assert (
            total_power_range[0] * 5e-3 <= energy <= total_power_range[1] * 5e-3 * 1.01
        )


class TestWorkloadProfiles:
    def test_step_profile_delays_heating(self, simulator):
        profile = step_activity_profile({"core": 1.0, "cache": 1.0, "io": 1.0}, 5e-3)
        result = simulator.simulate(
            duration=15e-3, time_step=0.05e-3, activity_profile=profile
        )
        core = result.block_temperatures["core"]
        times = result.times
        before = core[np.searchsorted(times, 4.5e-3)]
        after = core[-1]
        # Idle phase: only leakage heats the die (a few Kelvin at a 45 degC
        # sink); the workload step then adds several more Kelvin on top.
        assert before - AMBIENT < 3.5
        assert after - AMBIENT > (before - AMBIENT) + 3.0

    def test_square_wave_produces_ripple(self, simulator):
        profile = square_wave_activity_profile(4e-3, 0.5, ["core", "cache", "io"])
        result = simulator.simulate(
            duration=24e-3, time_step=0.05e-3, activity_profile=profile
        )
        core = result.block_temperatures["core"]
        # Look at the second half (past the initial charge-up): the pulsed
        # workload leaves a visible temperature ripple.
        tail = core[len(core) // 2:]
        assert tail.max() - tail.min() > 0.3
        # And the mean sits between the idle and fully-on steady states.
        assert AMBIENT < tail.mean() < simulator.engine.solve().peak_temperature

    def test_negative_multiplier_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.simulate(
                duration=1e-3,
                time_step=0.1e-3,
                activity_profile=lambda t: {"core": -1.0},
            )


class TestResultContainer:
    def test_histories_are_read_only(self, simulator):
        result = simulator.simulate(duration=1e-3, time_step=0.1e-3)
        with pytest.raises(TypeError):
            result.block_temperatures["core"] = np.zeros(3)
        with pytest.raises(TypeError):
            del result.block_powers["core"]
        with pytest.raises(ValueError):
            result.block_temperatures["core"][0] = 0.0
        with pytest.raises(ValueError):
            result.times[0] = -1.0

    def test_as_arrays_stacks_block_columns(self, simulator):
        result = simulator.simulate(duration=1e-3, time_step=0.1e-3)
        temperatures, powers = result.as_arrays()
        steps = len(result.times)
        assert temperatures.shape == (steps, len(result.block_names))
        assert powers.shape == temperatures.shape
        for column, name in enumerate(result.block_names):
            assert np.array_equal(
                temperatures[:, column], result.block_temperatures[name]
            )
            assert np.array_equal(powers[:, column], result.block_powers[name])


class TestValidation:
    def test_invalid_durations_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.simulate(duration=0.0, time_step=1e-4)
        with pytest.raises(ValueError):
            simulator.simulate(duration=1e-3, time_step=0.0)
        with pytest.raises(ValueError):
            simulator.simulate(duration=1e-3, time_step=2e-3)

    def test_invalid_ceiling_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.simulate(duration=1e-3, time_step=1e-4, max_temperature=300.0)

    def test_unknown_initial_temperature_block_rejected(self, simulator):
        with pytest.raises(KeyError):
            simulator.simulate(
                duration=1e-3,
                time_step=1e-4,
                initial_temperatures={"cores": 350.0},
            )

    def test_profile_validation_helpers(self):
        with pytest.raises(ValueError):
            step_activity_profile({"core": 1.0}, -1.0)
        with pytest.raises(ValueError):
            square_wave_activity_profile(0.0, 0.5, ["core"])
        with pytest.raises(ValueError):
            square_wave_activity_profile(1.0, 1.5, ["core"])
