"""Tests for repro.core.thermal.images (method of images, Section 3.3)."""

import pytest

from repro.core.thermal.images import DieGeometry, ImageExpansion
from repro.core.thermal.sources import HeatSource
from repro.core.thermal.superposition import superposed_temperature_rise

K_SI = 148.0


@pytest.fixture
def die():
    return DieGeometry(width=1e-3, length=1e-3, thickness=0.3e-3)


@pytest.fixture
def corner_source():
    return HeatSource(x=0.2e-3, y=0.25e-3, width=0.1e-3, length=0.1e-3, power=0.2,
                      name="blk")


class TestDieGeometry:
    def test_contains_point(self, die):
        assert die.contains(0.5e-3, 0.5e-3)
        assert not die.contains(2e-3, 0.5e-3)

    def test_contains_source(self, die, corner_source):
        assert die.contains_source(corner_source)
        outside = HeatSource(x=0.99e-3, y=0.5e-3, width=0.1e-3, length=0.1e-3, power=1.0)
        assert not die.contains_source(outside)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            DieGeometry(width=0.0, length=1e-3)


class TestImageGeneration:
    def test_ring_zero_keeps_original_plus_bottom_ladder(self, die, corner_source):
        expansion = ImageExpansion(die, rings=0, include_bottom_images=True)
        images = expansion.expand([corner_source])
        # Original + 3-term vertical ladder (last term half-weighted).
        assert len(images) == 4
        surface = [i for i in images if i.depth == 0.0]
        buried = sorted((i.depth, i.power) for i in images if i.depth > 0.0)
        assert len(surface) == 1 and surface[0].power == pytest.approx(0.2)
        assert buried[0] == (pytest.approx(2 * die.thickness), pytest.approx(-0.4))
        assert buried[1] == (pytest.approx(4 * die.thickness), pytest.approx(0.4))
        assert buried[2] == (pytest.approx(6 * die.thickness), pytest.approx(-0.2))
        # The ladder is power-balanced: it cancels the source exactly.
        assert sum(i.power for i in images) == pytest.approx(0.0, abs=1e-15)

    def test_single_bottom_term_reproduces_single_sink(self, die, corner_source):
        expansion = ImageExpansion(
            die, rings=0, include_bottom_images=True, bottom_image_terms=1
        )
        images = expansion.expand([corner_source])
        assert len(images) == 2
        assert sorted(i.power for i in images) == pytest.approx([-0.2, 0.2])

    def test_ring_one_count(self, die, corner_source):
        expansion = ImageExpansion(die, rings=1, include_bottom_images=False)
        images = expansion.expand([corner_source])
        # 6 x-positions times 6 y-positions for a generic interior source.
        assert len(images) == 36
        assert expansion.image_count(1) == 36

    def test_bottom_images_multiply_the_count(self, die, corner_source):
        with_bottom = ImageExpansion(
            die, rings=1, include_bottom_images=True, bottom_image_terms=3
        )
        without = ImageExpansion(die, rings=1, include_bottom_images=False)
        assert len(with_bottom.expand([corner_source])) == 4 * len(
            without.expand([corner_source])
        )
        assert with_bottom.image_count(1) == 4 * without.image_count(1)

    def test_invalid_bottom_terms_rejected(self, die):
        with pytest.raises(ValueError):
            ImageExpansion(die, bottom_image_terms=0)

    def test_total_lateral_image_power_is_preserved_per_cell(self, die, corner_source):
        expansion = ImageExpansion(die, rings=1, include_bottom_images=True)
        images = expansion.expand([corner_source])
        # Surface sources and buried sinks cancel exactly.
        assert sum(i.power for i in images) == pytest.approx(0.0, abs=1e-15)

    def test_source_outside_die_rejected(self, die):
        expansion = ImageExpansion(die)
        outside = HeatSource(x=2e-3, y=0.5e-3, width=0.1e-3, length=0.1e-3, power=1.0)
        with pytest.raises(ValueError):
            expansion.expand([outside])

    def test_buried_input_source_rejected(self, die):
        expansion = ImageExpansion(die)
        buried = HeatSource(x=0.5e-3, y=0.5e-3, width=0.1e-3, length=0.1e-3,
                            power=1.0, depth=1e-4)
        with pytest.raises(ValueError):
            expansion.expand([buried])

    def test_empty_source_list_rejected(self, die):
        with pytest.raises(ValueError):
            ImageExpansion(die).expand([])

    def test_negative_rings_rejected(self, die):
        with pytest.raises(ValueError):
            ImageExpansion(die, rings=-1)


class TestBoundaryConditions:
    def test_images_raise_temperature_near_the_wall(self, die, corner_source):
        # The adiabatic sides prevent lateral heat escape, so the bounded die
        # runs hotter than the semi-infinite one near the source.
        free = ImageExpansion(die, rings=0, include_bottom_images=False)
        walled = ImageExpansion(die, rings=1, include_bottom_images=False)
        free_rise = superposed_temperature_rise(
            corner_source.x, corner_source.y, free.expand([corner_source]), K_SI
        )
        walled_rise = superposed_temperature_rise(
            corner_source.x, corner_source.y, walled.expand([corner_source]), K_SI
        )
        assert walled_rise > free_rise

    def test_bottom_images_cool_the_die(self, die, corner_source):
        without = ImageExpansion(die, rings=1, include_bottom_images=False)
        with_bottom = ImageExpansion(die, rings=1, include_bottom_images=True)
        hot = superposed_temperature_rise(
            corner_source.x, corner_source.y, without.expand([corner_source]), K_SI
        )
        cooled = superposed_temperature_rise(
            corner_source.x, corner_source.y, with_bottom.expand([corner_source]), K_SI
        )
        assert cooled < hot

    def test_boundary_flux_residual_improves_with_rings(self, die, corner_source):
        residuals = []
        for rings in (0, 1, 2):
            expansion = ImageExpansion(die, rings=rings, include_bottom_images=False)
            residuals.append(
                expansion.boundary_flux_residual([corner_source], K_SI, samples=7)
            )
        assert residuals[1] < residuals[0]
        assert residuals[2] <= residuals[1] * 1.5  # already converged region

    def test_one_ring_residual_is_small(self, die, corner_source):
        expansion = ImageExpansion(die, rings=1, include_bottom_images=False)
        residual = expansion.boundary_flux_residual([corner_source], K_SI, samples=7)
        assert residual < 0.2
