"""Batched transient scenario engine vs the scalar simulator oracle.

The batched :class:`~repro.core.cosim.transient_scenarios.TransientScenarioEngine`
must reproduce the looped scalar
:class:`~repro.core.cosim.transient.TransientElectroThermalSimulator`
row-for-row (block temperatures within 1e-9 K on identical inputs — the
PR's acceptance criterion), approach the steady-state
:class:`~repro.core.cosim.scenarios.ScenarioEngine` fixed point as
``t -> inf``, and be invariant under permutation of the scenario rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import transient_scenario_sweep
from repro.core.cosim import (
    ConstantActivity,
    PWMActivity,
    Scenario,
    ScenarioEngine,
    StepActivity,
    TraceActivity,
    TransientScenarioEngine,
)
from repro.floorplan import three_block_floorplan
from repro.technology import cmos_012um, make_technology

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC_REF = {"core": 0.045, "cache": 0.018, "io": 0.008}
#: Millisecond-scale constants keep the integrations short while preserving
#: block-to-block ratios.
TAUS = {"core": 2e-3, "cache": 1.5e-3, "io": 1e-3}


@pytest.fixture(scope="module")
def steady_engine():
    return ScenarioEngine(three_block_floorplan(), DYNAMIC, STATIC_REF)


@pytest.fixture(scope="module")
def engine(steady_engine):
    return TransientScenarioEngine(steady_engine, time_constants=TAUS)


@pytest.fixture(scope="module")
def grid():
    technologies = [make_technology(name) for name in ("0.18um", "0.12um", "70nm")]
    return [
        Scenario(technology, ambient_temperature=ambient, activity=activity)
        for technology in technologies
        for ambient in (298.15, 338.15)
        for activity in (0.5, 1.0)
    ]


class TestActivityGrids:
    def test_constant_grid(self):
        grid = ConstantActivity([0.5, 1.0, 1.5])
        assert np.array_equal(grid.values(0.0), [0.5, 1.0, 1.5])
        assert grid.constant_after == 0.0
        assert grid.breakpoints(1.0).size == 0
        with pytest.raises(ValueError):
            ConstantActivity(-1.0)

    def test_step_grid_switches_per_scenario(self):
        grid = StepActivity(0.0, 1.0, [1e-3, 2e-3])
        assert np.array_equal(grid.values(0.5e-3), [[0.0], [0.0]])
        assert np.array_equal(grid.values(1.5e-3), [[1.0], [0.0]])
        assert np.array_equal(grid.values(2e-3), [[1.0], [1.0]])
        assert grid.constant_after == 2e-3
        assert np.array_equal(grid.breakpoints(10e-3), [1e-3, 2e-3])
        assert np.array_equal(grid.breakpoints(1.5e-3), [1e-3])
        with pytest.raises(ValueError):
            StepActivity(0.0, 1.0, -1.0)
        with pytest.raises(ValueError):
            StepActivity(0.0, -1.0, 1.0)

    def test_pwm_grid_matches_square_wave_semantics(self):
        grid = PWMActivity(4e-3, 0.25)
        assert grid.values(0.0) == 1.0
        assert grid.values(0.9e-3) == 1.0
        assert grid.values(1e-3) == 0.0
        assert grid.values(4e-3) == 1.0
        assert grid.constant_after == np.inf
        edges = grid.breakpoints(8e-3)
        assert np.allclose(edges, [1e-3, 4e-3, 5e-3])
        with pytest.raises(ValueError):
            PWMActivity(0.0, 0.5)
        with pytest.raises(ValueError):
            PWMActivity(1.0, 1.5)

    def test_pwm_edges_read_the_post_edge_value(self):
        """Float-rounded (k + duty) * period instants must not hold the
        stale pre-edge multiplier (they join the time grid by default)."""
        grid = PWMActivity(4e-3, 0.4)
        for edge in grid.breakpoints(40e-3):
            cycles = edge / 4e-3
            is_on_edge = abs(cycles - round(cycles)) < 1e-6
            assert grid.values(float(edge)) == (1.0 if is_on_edge else 0.0), edge

    def test_trace_grid_holds_samples(self):
        grid = TraceActivity([0.0, 1e-3, 3e-3], [0.2, 1.0, 0.4])
        assert grid.values(0.0) == 0.2
        assert grid.values(0.9e-3) == 0.2
        assert grid.values(1e-3) == 1.0
        assert grid.values(5e-3) == 0.4
        assert grid.constant_after == 3e-3
        assert np.array_equal(grid.breakpoints(10e-3), [1e-3, 3e-3])
        with pytest.raises(ValueError):
            TraceActivity([1e-3, 1e-3], [1.0, 1.0])
        with pytest.raises(ValueError):
            TraceActivity([0.0, 1e-3], [1.0])
        with pytest.raises(ValueError):
            TraceActivity([0.0], [-1.0])

    def test_profile_for_views_one_row(self):
        grid = StepActivity(0.0, 1.0, [1e-3, 2e-3])
        profile = grid.profile_for(1, ("core", "cache", "io"))
        assert profile(1.5e-3) == {"core": 0.0, "cache": 0.0, "io": 0.0}
        assert profile(2.5e-3) == {"core": 1.0, "cache": 1.0, "io": 1.0}


class TestScalarParity:
    """Acceptance criterion: batched vs scalar within 1e-9 K."""

    def test_constant_activity_parity(self, engine, grid):
        batch = engine.simulate(grid, duration=8e-3, time_step=0.05e-3)
        for row, scenario in enumerate(grid):
            reference = engine.simulate_scalar(
                scenario, duration=8e-3, time_step=0.05e-3
            )
            temperatures, powers = reference.as_arrays()
            assert np.array_equal(batch.times, reference.times)
            assert np.abs(batch.block_temperatures[row] - temperatures).max() <= 1e-9
            assert np.abs(batch.block_powers[row] - powers).max() <= 1e-9

    def test_pwm_activity_parity(self, engine, grid):
        activity = PWMActivity(4e-3, 0.5)
        batch = engine.simulate(
            grid,
            duration=12e-3,
            time_step=0.05e-3,
            activity=activity,
            include_activity_edges=False,
        )
        for row in (0, len(grid) - 1):
            reference = engine.simulate_scalar(
                grid[row],
                duration=12e-3,
                time_step=0.05e-3,
                activity=activity,
                row=row,
            )
            temperatures, _ = reference.as_arrays()
            assert np.abs(batch.block_temperatures[row] - temperatures).max() <= 1e-9

    def test_default_time_constants_match_scalar(self, steady_engine, grid):
        from repro.core.cosim import TransientElectroThermalSimulator

        engine = TransientScenarioEngine(steady_engine)
        tau = engine.time_constants(grid)
        for row in (0, 3, len(grid) - 1):
            scalar = TransientElectroThermalSimulator(
                steady_engine.scalar_engine(grid[row])
            )
            expected = scalar.time_constants
            for column, name in enumerate(engine.block_names):
                assert tau[row, column] == expected[name]

    def test_scenario_result_round_trip(self, engine, grid):
        batch = engine.simulate(grid, duration=2e-3, time_step=0.1e-3)
        repacked = batch.scenario_result(2)
        assert repacked.block_names == engine.block_names
        assert repacked.peak_temperature("core") == pytest.approx(
            batch.temperatures_of("core")[2].max()
        )
        assert repacked.total_energy() == pytest.approx(batch.total_energy()[2])


class TestSteadyStateLimit:
    def test_long_integration_reaches_the_fixed_point(
        self, engine, steady_engine, grid
    ):
        steady = steady_engine.solve(grid, tolerance=1e-6, max_iterations=500)
        batch = engine.simulate(grid, duration=80e-3, time_step=0.1e-3)
        assert np.abs(batch.final_temperatures - steady.block_temperatures).max() < 1e-4

    def test_runaway_scenarios_flagged_like_the_steady_verdict(
        self, engine, steady_engine
    ):
        leaky = make_technology("25nm")
        scenarios = [
            Scenario(leaky, supply_voltage=1.4 * leaky.vdd, ambient_temperature=400.0),
            Scenario(cmos_012um(), ambient_temperature=318.15),
        ]
        steady = steady_engine.solve(scenarios)
        batch = engine.simulate(scenarios, duration=60e-3, time_step=0.1e-3)
        assert bool(batch.runaway[0]) and not bool(steady.converged[0])
        assert not bool(batch.runaway[1]) and bool(steady.converged[1])
        assert batch.runaway_times[0] > 0.0
        assert np.isnan(batch.runaway_times[1])
        assert batch.peak_temperature[0] == 500.0

    def test_settle_compaction_is_nearly_lossless(self, engine, grid):
        activity = StepActivity(0.0, 1.0, 3e-3)
        kwargs = dict(duration=40e-3, time_step=0.1e-3, activity=activity)
        compacted = engine.simulate(grid, settle_tolerance=1e-7, **kwargs)
        reference = engine.simulate(grid, **kwargs)
        assert np.abs(
            compacted.block_temperatures - reference.block_temperatures
        ).max() < 1e-4

    def test_settle_error_is_bounded_by_the_tolerance(self, engine, grid):
        """Freezing keys on distance-to-target, so the history error stays
        within the requested tolerance even for very fine time steps."""
        activity = StepActivity(0.0, 1.0, 1e-3)
        kwargs = dict(duration=30e-3, time_step=0.02e-3, activity=activity)
        tolerance = 0.01
        compacted = engine.simulate(grid, settle_tolerance=tolerance, **kwargs)
        reference = engine.simulate(grid, **kwargs)
        gap = np.abs(compacted.block_temperatures - reference.block_temperatures).max()
        assert gap <= 2.0 * tolerance


class TestProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(permutation=st.permutations(list(range(12))))
    def test_results_are_permutation_invariant(self, engine, grid, permutation):
        activity = PWMActivity(4e-3, 0.5)
        kwargs = dict(duration=6e-3, time_step=0.1e-3, activity=activity)
        reference = engine.simulate(grid, **kwargs)
        permuted = engine.simulate([grid[i] for i in permutation], **kwargs)
        for new_row, old_row in enumerate(permutation):
            assert np.array_equal(
                permuted.block_temperatures[new_row],
                reference.block_temperatures[old_row],
            )
            assert np.array_equal(
                permuted.block_powers[new_row],
                reference.block_powers[old_row],
            )
            assert permuted.runaway[new_row] == reference.runaway[old_row]

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        activity=st.floats(min_value=0.0, max_value=1.5),
        ambient=st.floats(min_value=280.0, max_value=360.0),
    )
    def test_constant_activity_charges_monotonically(self, engine, activity, ambient):
        scenario = Scenario(
            cmos_012um(), ambient_temperature=ambient, activity=activity
        )
        batch = engine.simulate([scenario], duration=10e-3, time_step=0.1e-3)
        core = batch.temperatures_of("core")[0]
        assert core[0] == pytest.approx(ambient)
        # Starting from ambient below the steady state, the relaxation
        # approaches its fixed point from below: monotone, no overshoot.
        assert np.all(np.diff(core) >= -1e-9)
        assert batch.overshoot[0] <= 1e-9

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(subset=st.sets(st.integers(min_value=0, max_value=11), min_size=1))
    def test_subset_simulations_match_the_full_batch(self, engine, grid, subset):
        indices = sorted(subset)
        kwargs = dict(duration=4e-3, time_step=0.1e-3)
        full = engine.simulate(grid, **kwargs)
        partial = engine.simulate([grid[i] for i in indices], **kwargs)
        for row, index in enumerate(indices):
            assert np.array_equal(
                partial.block_temperatures[row], full.block_temperatures[index]
            )


class TestResultContainer:
    def test_arrays_are_read_only(self, engine, grid):
        batch = engine.simulate(grid[:2], duration=1e-3, time_step=0.1e-3)
        with pytest.raises(ValueError):
            batch.block_temperatures[0, 0, 0] = 0.0
        with pytest.raises(ValueError):
            batch.times[0] = -1.0

    def test_summaries(self, engine, grid):
        activity = StepActivity(0.0, 1.0, 2e-3)
        batch = engine.simulate(
            grid, duration=20e-3, time_step=0.1e-3, activity=activity
        )
        assert len(batch) == len(grid)
        assert np.all(batch.peak_rise >= 0.0)
        assert np.all(batch.overshoot >= 0.0)
        assert np.all(batch.total_energy() > 0.0)
        settle = batch.settle_times(0.5)
        assert np.all((settle >= 0.0) & (settle <= batch.times[-1]))
        assert all(name in engine.block_names for name in batch.hottest_blocks())
        rows = batch.as_rows()
        assert len(rows) == len(grid)
        assert rows[0][0] == grid[0].describe()
        with pytest.raises(ValueError):
            batch.settle_times(0.0)

    def test_activity_edges_join_the_time_grid(self, engine, grid):
        activity = StepActivity(0.0, 1.0, 3.3e-3)
        batch = engine.simulate(
            grid, duration=10e-3, time_step=0.5e-3, activity=activity
        )
        assert 3.3e-3 in batch.times
        aligned = engine.simulate(
            grid,
            duration=10e-3,
            time_step=0.5e-3,
            activity=activity,
            include_activity_edges=False,
        )
        assert 3.3e-3 not in aligned.times

    def test_validation(self, engine, grid):
        with pytest.raises(ValueError):
            engine.simulate(grid, duration=0.0, time_step=1e-4)
        with pytest.raises(ValueError):
            engine.simulate(grid, duration=1e-3, time_step=2e-3)
        with pytest.raises(ValueError):
            engine.simulate(grid, duration=1e-3, time_step=1e-4, max_temperature=200.0)
        with pytest.raises(ValueError):
            engine.simulate(grid, duration=1e-3, time_step=1e-4, settle_tolerance=0.0)
        with pytest.raises(ValueError):
            engine.simulate([], duration=1e-3, time_step=1e-4)
        with pytest.raises(KeyError):
            engine.simulate(
                grid,
                duration=1e-3,
                time_step=1e-4,
                initial_temperatures={"cores": 360.0},
            )

    def test_constructor_validation(self, steady_engine):
        with pytest.raises(KeyError):
            TransientScenarioEngine(steady_engine, time_constants={"gpu": 1e-3})
        with pytest.raises(ValueError):
            TransientScenarioEngine(steady_engine, time_constants={"core": 0.0})

    def test_from_powers_convenience(self, grid):
        engine = TransientScenarioEngine.from_powers(
            three_block_floorplan(), DYNAMIC, STATIC_REF, time_constants=TAUS
        )
        batch = engine.simulate(grid[:2], duration=1e-3, time_step=0.1e-3)
        assert batch.block_temperatures.shape == (2, 11, 3)


class TestTransientSweep:
    def test_sweep_series(self, engine):
        technology = cmos_012um()
        ambients = [288.15, 298.15, 308.15]
        scenarios = [
            Scenario(technology, ambient_temperature=value) for value in ambients
        ]
        result = transient_scenario_sweep(
            engine,
            "ambient_K",
            ambients,
            scenarios,
            duration=20e-3,
            time_step=0.1e-3,
        )
        assert result.values == ambients
        peaks = result.series("peak_temperature")
        assert np.all(np.diff(peaks) > 0.0)
        assert np.all(result.series("runaway") == 0.0)
        assert np.all(result.series("settle_time") > 0.0)
        assert set(result.labels()) >= {
            "peak_temperature",
            "peak_rise",
            "overshoot",
            "settle_time",
            "total_energy",
            "runaway",
        }
        with pytest.raises(ValueError):
            transient_scenario_sweep(
                engine,
                "ambient_K",
                ambients,
                scenarios[:2],
                duration=1e-3,
                time_step=1e-4,
            )
