"""Tests for repro.core.leakage.gate_leakage (paper Eq. 13 at gate level)."""

import pytest

from repro.circuit.cells import aoi21, inverter, nand_gate, nor_gate
from repro.circuit.stack import uniform_nmos_stack, uniform_pmos_stack
from repro.core.leakage.gate_leakage import GateLeakageModel
from repro.core.leakage.subthreshold import single_device_off_current
from repro.spice.gate_solver import GateLeakageReference


@pytest.fixture(scope="module")
def model(tech012):
    return GateLeakageModel(tech012)


@pytest.fixture(scope="module")
def reference(tech012):
    return GateLeakageReference(tech012)


class TestStackEvaluation:
    def test_single_device_matches_closed_form(self, model, tech012):
        stack = uniform_nmos_stack(1, 1e-6)
        expected = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, tech012.reference_temperature,
            tech012.reference_temperature,
        )
        assert model.stack_off_current(stack) == pytest.approx(expected)

    def test_stacking_effect_monotone(self, model):
        currents = [
            model.stack_off_current(uniform_nmos_stack(n, 1e-6)) for n in (1, 2, 3, 4)
        ]
        assert all(b < a for a, b in zip(currents, currents[1:]))

    def test_pmos_stack_supported(self, model):
        current = model.stack_off_current(uniform_pmos_stack(2, 2e-6))
        assert current > 0.0

    def test_estimate_contains_chain_diagnostics(self, model):
        estimate = model.evaluate_stack(uniform_nmos_stack(3, 1e-6))
        assert len(estimate.chains) == 1
        assert estimate.chains[0].stack_depth == 3
        assert estimate.power == pytest.approx(estimate.current * 1.2)

    def test_partial_vector_uses_off_devices_only(self, model):
        stack = uniform_nmos_stack(3, 1e-6)
        partial = model.stack_off_current(stack, (0, 1, 0))
        pair = model.stack_off_current(uniform_nmos_stack(2, 1e-6))
        assert partial == pytest.approx(pair, rel=1e-9)


class TestGateEvaluation:
    def test_inverter_output_high_leaks_through_nmos(self, model, tech012):
        gate = inverter(tech012)
        estimate = model.evaluate(gate, {"A": 0})
        assert estimate.device_type == "nmos"
        expected = single_device_off_current(
            tech012.nmos, tech012.nmos.nominal_width, tech012.vdd,
            tech012.reference_temperature, tech012.reference_temperature,
        )
        assert estimate.current == pytest.approx(expected)

    def test_inverter_output_low_leaks_through_pmos(self, model, tech012):
        estimate = model.evaluate(inverter(tech012), {"A": 1})
        assert estimate.device_type == "pmos"

    def test_nand_all_inputs_low_is_best_case(self, model, tech012):
        gate = nand_gate(tech012, 2)
        best = model.best_case_vector(gate)
        assert tuple(best.input_vector[name] for name in gate.inputs) == (0, 0)

    def test_nand_parallel_pmos_leakage_adds(self, model, tech012):
        gate = nand_gate(tech012, 2)
        estimate = model.evaluate(gate, {"A": 1, "B": 1})  # both PMOS leak
        single_pmos = single_device_off_current(
            tech012.pmos, tech012.pmos.nominal_width, tech012.vdd,
            tech012.reference_temperature, tech012.reference_temperature,
        )
        assert estimate.current == pytest.approx(2.0 * single_pmos, rel=1e-9)

    def test_per_vector_currents_cover_all_vectors(self, model, tech012):
        gate = nor_gate(tech012, 3)
        currents = model.per_vector_currents(gate)
        assert len(currents) == 8
        assert all(value > 0.0 for value in currents.values())

    def test_worst_and_best_bracket_average(self, model, tech012):
        gate = nand_gate(tech012, 3)
        worst = model.worst_case_vector(gate).current
        best = model.best_case_vector(gate).current
        average = model.average_current(gate)
        assert best < average < worst

    def test_complex_gate_leakage_positive(self, model, tech012):
        gate = aoi21(tech012)
        for vector in ({"A": 0, "B": 0, "C": 0}, {"A": 1, "B": 1, "C": 1}):
            assert model.off_current(gate, vector) > 0.0

    def test_temperature_dependence(self, model, tech012):
        gate = nand_gate(tech012, 2)
        cold = model.off_current(gate, {"A": 0, "B": 0}, temperature=298.15)
        hot = model.off_current(gate, {"A": 0, "B": 0}, temperature=398.15)
        assert hot > 10.0 * cold


class TestAgainstNumericalReference:
    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    def test_stack_accuracy_vs_spice(self, model, tech012, depth):
        # The Fig. 8 claim: the analytical model tracks SPICE closely for
        # stacks of 1 to 4 transistors.
        from repro.spice.stack_solver import StackDCSolver

        stack = uniform_nmos_stack(depth, 1e-6)
        analytic = model.stack_off_current(stack)
        numeric = StackDCSolver(tech012).off_current(stack)
        assert analytic == pytest.approx(numeric, rel=0.10)

    @pytest.mark.parametrize("vector", [{"A": 0, "B": 0}, {"A": 1, "B": 1}])
    def test_nand2_fully_off_networks_match_spice(self, model, reference, tech012, vector):
        # All-OFF leaking networks (the Fig. 8 condition): the collapse is
        # accurate to a few percent.
        gate = nand_gate(tech012, 2)
        analytic = model.off_current(gate, vector)
        numeric = reference.off_current(gate, vector)
        assert analytic == pytest.approx(numeric, rel=0.15)

    @pytest.mark.parametrize("vector", [{"A": 0, "B": 1}, {"A": 1, "B": 0}])
    def test_nand2_mixed_vectors_are_conservative(self, model, reference, tech012, vector):
        # When an ON transistor sits above the OFF device, the paper's model
        # absorbs it into the internal node (zero drop), which ignores the
        # source-follower level degradation the numerical solver resolves.
        # The analytical estimate therefore over-predicts, but stays within
        # about 2x — the known accuracy envelope of the collapsing technique.
        gate = nand_gate(tech012, 2)
        analytic = model.off_current(gate, vector)
        numeric = reference.off_current(gate, vector)
        assert analytic >= numeric * 0.95
        assert analytic <= numeric * 2.0

    def test_nor3_worst_case_agrees_with_spice(self, model, reference, tech012):
        gate = nor_gate(tech012, 3)
        analytic = model.worst_case_vector(gate)
        numeric = reference.worst_case_vector(gate)
        assert analytic.input_vector == numeric.input_vector
        assert analytic.current == pytest.approx(numeric.current, rel=0.15)
