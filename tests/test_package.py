"""Public-API smoke tests for the top-level package."""


import repro


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), name

    def test_quickstart_snippet(self):
        # The snippet from the package docstring must run as written.
        tech = repro.cmos_012um()
        gate = repro.nand_gate(tech, fan_in=2)
        model = repro.GateLeakageModel(tech)
        worst = model.worst_case_vector(gate)
        assert worst.current > 0.0

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.circuit
        import repro.core
        import repro.floorplan
        import repro.measurement
        import repro.reporting
        import repro.spice
        import repro.technology
        import repro.thermalsim

        assert repro.core.leakage is not None
        assert repro.core.thermal is not None

    def test_key_types_exported(self):
        assert repro.TechnologyParameters is not None
        assert repro.ElectroThermalEngine is not None
        assert repro.ChipThermalModel is not None
        assert repro.StackDCSolver is not None
