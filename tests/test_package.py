"""Public-API smoke tests for the top-level package."""

import subprocess
import sys

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_all_is_complete(self):
        # Every lazily re-exported name is advertised, and nothing else.
        expected = sorted({"__version__", *repro._EXPORTS})
        assert list(repro.__all__) == expected

    def test_all_names_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name) is not None, name

    def test_exports_point_at_their_definitions(self):
        # Each lazy export resolves to the same object its home module owns.
        import importlib

        for name, module_name in repro._EXPORTS.items():
            module = importlib.import_module(module_name)
            assert getattr(repro, name) is getattr(module, name), name

    def test_version_matches_packaging_metadata(self):
        from pathlib import Path

        pyproject = Path(repro.__file__).parents[2] / "pyproject.toml"
        assert f'version = "{repro.__version__}"' in pyproject.read_text()

    def test_import_is_lazy(self):
        # `import repro` must stay cheap: no numpy, no submodules.
        code = (
            "import sys; import repro; "
            "heavy = [m for m in ('numpy', 'scipy', 'repro.core', 'repro.api') "
            "if m in sys.modules]; "
            "assert not heavy, heavy; "
            "repro.ScenarioEngine; "
            "assert 'numpy' in sys.modules"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_lazy_attribute_is_cached(self):
        first = repro.ScenarioEngine
        assert repro.__dict__["ScenarioEngine"] is first

    def test_unknown_attribute_raises(self):
        try:
            repro.no_such_name
        except AttributeError as error:
            assert "no_such_name" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected AttributeError")

    def test_dir_lists_public_names(self):
        listing = dir(repro)
        assert "ScenarioEngine" in listing
        assert "Study" in listing
        assert "api" in listing

    def test_quickstart_snippet(self):
        # The facade snippet from the package docstring must run as written.
        study = repro.Study.steady(
            floorplan=repro.three_block_floorplan(),
            dynamic_powers={"core": 0.25, "cache": 0.10, "io": 0.05},
            static_powers={"core": 0.05, "cache": 0.02, "io": 0.01},
            scenarios=repro.ScenarioSpec.grid(
                ["0.12um"], ambient_temperatures=(318.15,)
            ),
        )
        summary = study.run().summary()
        assert summary["converged_count"] == 1

    def test_classic_quickstart_still_works(self):
        tech = repro.cmos_012um()
        gate = repro.nand_gate(tech, fan_in=2)
        model = repro.GateLeakageModel(tech)
        worst = model.worst_case_vector(gate)
        assert worst.current > 0.0

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.api
        import repro.baselines
        import repro.circuit
        import repro.core
        import repro.floorplan
        import repro.measurement
        import repro.reporting
        import repro.spice
        import repro.technology
        import repro.thermalsim

        assert repro.core.leakage is not None
        assert repro.core.thermal is not None
        assert repro.api.Study is not None

    def test_key_types_exported(self):
        assert repro.TechnologyParameters is not None
        assert repro.ElectroThermalEngine is not None
        assert repro.ChipThermalModel is not None
        assert repro.StackDCSolver is not None
        assert repro.Study is not None
        assert repro.StudySpec is not None
        assert repro.StudyResult is not None
