"""Property-based tests (hypothesis) for the core invariants.

The invariants exercised here are the ones DESIGN.md calls out:

* leakage is positive, linear in width and monotone in temperature and Vdd;
* the collapsed effective width is positive, bounded by the top device's
  width, and shrinks monotonically as the chain deepens;
* the unified node-voltage formula (Eq. 10) is bracketed by its two
  published asymptotes and tracks the exact pair solution;
* the analytical thermal field is positive, linear in power, bounded by the
  centre value, and decays with distance;
* superposition is additive and the image expansion conserves per-cell power;
* thermal RC step responses are monotone and converge to R * P.
"""


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.leakage.stack_collapse import StackCollapser
from repro.core.leakage.subthreshold import single_device_off_current
from repro.core.thermal.images import DieGeometry, ImageExpansion
from repro.core.thermal.profile import (
    rectangle_center_temperature,
    rectangle_temperature,
)
from repro.core.thermal.sources import HeatSource, square_center_temperature
from repro.core.thermal.superposition import superposed_temperature_rise
from repro.technology import cmos_012um
from repro.thermalsim.rc_network import FosterNetwork, FosterStage

TECH = cmos_012um()
COLLAPSER = StackCollapser(TECH)
K_SI = 148.0

DEFAULT_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

widths = st.floats(min_value=0.05e-6, max_value=50e-6)
powers = st.floats(min_value=1e-6, max_value=10.0)
lengths = st.floats(min_value=0.05e-6, max_value=5e-6)
temperatures = st.floats(min_value=250.0, max_value=450.0)


class TestLeakageProperties:
    @DEFAULT_SETTINGS
    @given(width=widths, temperature=temperatures)
    def test_off_current_positive_and_linear_in_width(self, width, temperature):
        base = single_device_off_current(
            TECH.nmos, width, TECH.vdd, temperature, TECH.reference_temperature
        )
        doubled = single_device_off_current(
            TECH.nmos, 2.0 * width, TECH.vdd, temperature, TECH.reference_temperature
        )
        assert base > 0.0
        assert doubled == pytest.approx(2.0 * base, rel=1e-9)

    @DEFAULT_SETTINGS
    @given(width=widths, t1=temperatures, t2=temperatures)
    def test_off_current_monotone_in_temperature(self, width, t1, t2):
        low, high = sorted((t1, t2))
        cold = single_device_off_current(
            TECH.nmos, width, TECH.vdd, low, TECH.reference_temperature
        )
        hot = single_device_off_current(
            TECH.nmos, width, TECH.vdd, high, TECH.reference_temperature
        )
        assert hot >= cold

    @DEFAULT_SETTINGS
    @given(
        width=widths,
        vdd_low=st.floats(min_value=0.6, max_value=1.2),
        vdd_delta=st.floats(min_value=0.0, max_value=0.6),
    )
    def test_off_current_monotone_in_supply(self, width, vdd_low, vdd_delta):
        low = single_device_off_current(
            TECH.nmos, width, vdd_low, 298.15, TECH.reference_temperature
        )
        high = single_device_off_current(
            TECH.nmos, width, vdd_low + vdd_delta, 298.15, TECH.reference_temperature
        )
        assert high >= low


class TestCollapseProperties:
    @DEFAULT_SETTINGS
    @given(chain=st.lists(widths, min_size=1, max_size=6))
    def test_effective_width_positive_and_bounded(self, chain):
        result = COLLAPSER.collapse_chain_widths(chain, "nmos")
        assert result.effective_width > 0.0
        assert result.effective_width <= chain[-1] + 1e-18
        assert all(v >= 0.0 for v in result.node_voltages)

    @DEFAULT_SETTINGS
    @given(chain=st.lists(widths, min_size=1, max_size=5), extra=widths)
    def test_deeper_chain_leaks_less(self, chain, extra):
        shallow = COLLAPSER.collapse_chain_widths(chain, "nmos").effective_width
        # Prepending a device at the bottom of the chain can only reduce the
        # effective width (more stacking).
        deeper = COLLAPSER.collapse_chain_widths([extra] + chain, "nmos").effective_width
        assert deeper <= shallow * (1.0 + 1e-9)

    @DEFAULT_SETTINGS
    @given(upper=widths, lower=widths)
    def test_node_voltage_bracketed_by_asymptotes(self, upper, lower):
        unified = COLLAPSER.node_voltage(upper, lower, "nmos")
        strong = COLLAPSER.node_voltage_strong(upper, lower, "nmos")
        weak = COLLAPSER.node_voltage_weak(upper, lower, "nmos")
        assert unified > 0.0
        assert unified <= max(strong, weak) * 1.05 + 1e-9

    @DEFAULT_SETTINGS
    @given(
        upper=st.floats(min_value=0.1e-6, max_value=20e-6),
        lower=st.floats(min_value=0.1e-6, max_value=20e-6),
    )
    def test_node_voltage_tracks_exact_pair_solution(self, upper, lower):
        approximate = COLLAPSER.node_voltage(upper, lower, "nmos")
        exact = COLLAPSER.exact_pair_node_voltage(upper, lower, "nmos")
        assert approximate == pytest.approx(exact, rel=0.15, abs=3e-3)


class TestThermalProperties:
    @DEFAULT_SETTINGS
    @given(power=powers, width=lengths, length=lengths)
    def test_center_temperature_positive_and_linear(self, power, width, length):
        base = square_center_temperature(power, width, length, K_SI)
        doubled = square_center_temperature(2.0 * power, width, length, K_SI)
        assert base > 0.0
        assert doubled == pytest.approx(2.0 * base, rel=1e-9)

    @DEFAULT_SETTINGS
    @given(
        power=powers,
        width=lengths,
        length=lengths,
        x=st.floats(min_value=-50e-6, max_value=50e-6),
        y=st.floats(min_value=-50e-6, max_value=50e-6),
    )
    def test_profile_bounded_by_center_value(self, power, width, length, x, y):
        source = HeatSource(0.0, 0.0, width, length, power)
        value = rectangle_temperature(x, y, source, K_SI)
        assert 0.0 <= value <= rectangle_center_temperature(source, K_SI) + 1e-12

    @DEFAULT_SETTINGS
    @given(
        power=powers,
        width=lengths,
        length=lengths,
        d1=st.floats(min_value=1e-6, max_value=30e-6),
        d2=st.floats(min_value=30e-6, max_value=500e-6),
    )
    def test_profile_decays_with_distance(self, power, width, length, d1, d2):
        source = HeatSource(0.0, 0.0, width, length, power)
        near = rectangle_temperature(max(width, length) + d1, 0.0, source, K_SI)
        far = rectangle_temperature(max(width, length) + d1 + d2, 0.0, source, K_SI)
        assert far <= near + 1e-15

    @DEFAULT_SETTINGS
    @given(p1=powers, p2=powers)
    def test_superposition_is_additive(self, p1, p2):
        a = HeatSource(-5e-6, 0.0, 2e-6, 1e-6, p1)
        b = HeatSource(5e-6, 3e-6, 1e-6, 1e-6, p2)
        combined = superposed_temperature_rise(1e-6, 1e-6, [a, b], K_SI)
        individual = superposed_temperature_rise(1e-6, 1e-6, [a], K_SI) + \
            superposed_temperature_rise(1e-6, 1e-6, [b], K_SI)
        assert combined == pytest.approx(individual, rel=1e-12)

    @DEFAULT_SETTINGS
    @given(
        power=powers,
        x=st.floats(min_value=0.1, max_value=0.9),
        y=st.floats(min_value=0.1, max_value=0.9),
        rings=st.integers(min_value=0, max_value=2),
    )
    def test_image_expansion_conserves_power_balance(self, power, x, y, rings):
        die = DieGeometry(width=1e-3, length=1e-3, thickness=0.3e-3)
        source = HeatSource(x * 1e-3, y * 1e-3, 0.05e-3, 0.05e-3, power)
        expansion = ImageExpansion(die, rings=rings, include_bottom_images=True)
        images = expansion.expand([source])
        # Every surface image is paired with an equal-and-opposite buried sink.
        assert sum(i.power for i in images) == pytest.approx(0.0, abs=1e-12 * power + 1e-15)
        surface_power = sum(i.power for i in images if i.depth == 0.0)
        assert surface_power > 0.0


class TestThermalRCProperties:
    @DEFAULT_SETTINGS
    @given(
        resistance=st.floats(min_value=1.0, max_value=1e4),
        capacitance=st.floats(min_value=1e-9, max_value=1e-2),
        power=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_step_response_monotone_and_converges(self, resistance, capacitance, power):
        network = FosterNetwork([FosterStage(resistance, capacitance)])
        tau = resistance * capacitance
        samples = [network.step_response(t * tau, power) for t in (0.0, 0.5, 1.0, 3.0, 10.0)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))
        assert samples[0] == pytest.approx(0.0)
        assert samples[-1] == pytest.approx(power * resistance, rel=1e-3)
