"""Tests for repro.core.leakage.subthreshold (paper Eqs. 1–2, 13)."""

import math

import pytest

from repro.core.leakage.subthreshold import (
    SubthresholdBias,
    effective_width_off_current,
    leakage_temperature_slope,
    single_device_off_current,
    subthreshold_current,
    threshold_voltage,
)
from repro.technology import thermal_voltage


class TestBiasValidation:
    def test_defaults(self):
        bias = SubthresholdBias()
        assert bias.temperature > 0.0

    def test_bad_temperature_rejected(self):
        with pytest.raises(ValueError):
            SubthresholdBias(temperature=-1.0)

    def test_bad_vdd_rejected(self):
        with pytest.raises(ValueError):
            SubthresholdBias(vdd=0.0)


class TestThresholdVoltage:
    def test_matches_device_parameters(self, tech012):
        bias = SubthresholdBias(vds=1.2, vsb=0.1, vdd=1.2, temperature=358.15)
        expected = tech012.nmos.threshold_voltage(
            vsb=0.1, vds=1.2, vdd=1.2, temperature=358.15,
            reference_temperature=tech012.reference_temperature,
        )
        assert threshold_voltage(
            tech012.nmos, bias, tech012.reference_temperature
        ) == pytest.approx(expected)


class TestSubthresholdCurrent:
    def test_linear_in_width(self, tech012):
        bias = SubthresholdBias(vds=tech012.vdd, vdd=tech012.vdd)
        one = subthreshold_current(tech012.nmos, 1e-6, bias, tech012.reference_temperature)
        three = subthreshold_current(tech012.nmos, 3e-6, bias, tech012.reference_temperature)
        assert three == pytest.approx(3.0 * one)

    def test_exponential_suppression_by_source_voltage(self, tech012):
        # Raising the source by n*VT*(1 + gamma' + sigma) suppresses the
        # current by e (the stacking-effect mechanism).
        vt = thermal_voltage(298.15)
        device = tech012.nmos
        base_bias = SubthresholdBias(vgs=0.0, vds=tech012.vdd, vsb=0.0, vdd=tech012.vdd)
        step = device.n * vt / (1.0 + device.body_effect + device.dibl)
        raised_bias = SubthresholdBias(
            vgs=-step, vds=tech012.vdd - step, vsb=step, vdd=tech012.vdd
        )
        base = subthreshold_current(
            device, 1e-6, base_bias, tech012.reference_temperature,
            include_drain_factor=False,
        )
        raised = subthreshold_current(
            device, 1e-6, raised_bias, tech012.reference_temperature,
            include_drain_factor=False,
        )
        assert base / raised == pytest.approx(math.e, rel=1e-6)

    def test_drain_factor_is_exactly_the_saturation_term(self, tech012):
        vt = thermal_voltage(298.15)
        for vds in (0.01, 0.05, tech012.vdd):
            bias = SubthresholdBias(vds=vds, vdd=tech012.vdd)
            with_factor = subthreshold_current(
                tech012.nmos, 1e-6, bias, tech012.reference_temperature
            )
            without = subthreshold_current(
                tech012.nmos, 1e-6, bias, tech012.reference_temperature,
                include_drain_factor=False,
            )
            assert with_factor / without == pytest.approx(
                1.0 - math.exp(-vds / vt), rel=1e-9
            )

    def test_drain_factor_negligible_at_full_supply(self, tech012):
        bias = SubthresholdBias(vds=tech012.vdd, vdd=tech012.vdd)
        with_factor = subthreshold_current(
            tech012.nmos, 1e-6, bias, tech012.reference_temperature
        )
        without = subthreshold_current(
            tech012.nmos, 1e-6, bias, tech012.reference_temperature,
            include_drain_factor=False,
        )
        assert with_factor == pytest.approx(without, rel=1e-6)

    def test_explicit_length_override(self, tech012):
        bias = SubthresholdBias(vds=tech012.vdd, vdd=tech012.vdd)
        nominal = subthreshold_current(
            tech012.nmos, 1e-6, bias, tech012.reference_temperature
        )
        double_length = subthreshold_current(
            tech012.nmos, 1e-6, bias, tech012.reference_temperature,
            length=2.0 * tech012.nmos.channel_length,
        )
        assert double_length == pytest.approx(0.5 * nominal)

    def test_invalid_width_rejected(self, tech012):
        with pytest.raises(ValueError):
            subthreshold_current(
                tech012.nmos, 0.0, SubthresholdBias(), tech012.reference_temperature
            )


class TestOffCurrent:
    def test_single_device_off_current_positive(self, tech012):
        current = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, 298.15, tech012.reference_temperature
        )
        assert current > 0.0

    def test_grows_exponentially_with_temperature(self, tech012):
        cold = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, 298.15, tech012.reference_temperature
        )
        hot = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, 398.15, tech012.reference_temperature
        )
        assert hot / cold > 20.0

    def test_effective_width_wrapper(self, tech012):
        direct = single_device_off_current(
            tech012.nmos, 2.5e-6, tech012.vdd, tech012.reference_temperature,
            tech012.reference_temperature,
        )
        wrapped = effective_width_off_current(tech012, "nmos", 2.5e-6)
        assert wrapped == pytest.approx(direct)

    def test_effective_width_rejects_non_positive(self, tech012):
        with pytest.raises(ValueError):
            effective_width_off_current(tech012, "nmos", 0.0)

    def test_forward_body_bias_increases_leakage(self, tech012):
        nominal = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, 298.15, tech012.reference_temperature,
            body_voltage=0.0,
        )
        forward = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, 298.15, tech012.reference_temperature,
            body_voltage=0.2,
        )
        assert forward > nominal


class TestTemperatureSlope:
    def test_slope_predicts_finite_difference(self, tech012):
        slope = leakage_temperature_slope(tech012, "nmos", 330.0)
        delta = 0.5
        low = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, 330.0 - delta, tech012.reference_temperature
        )
        high = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, 330.0 + delta, tech012.reference_temperature
        )
        numeric = (math.log(high) - math.log(low)) / (2.0 * delta)
        assert slope == pytest.approx(numeric, rel=0.02)

    def test_slope_is_positive(self, tech012):
        assert leakage_temperature_slope(tech012, "pmos") > 0.0

    def test_bad_temperature_rejected(self, tech012):
        with pytest.raises(ValueError):
            leakage_temperature_slope(tech012, "nmos", temperature=-5.0)
