"""Tests for repro.thermalsim.fdm (finite-volume reference solver)."""

import pytest

from repro.thermalsim.fdm import FiniteVolumeThermalSolver, RectangularSource


@pytest.fixture(scope="module")
def solver():
    # Coarse grid keeps the suite fast while exercising the full assembly.
    return FiniteVolumeThermalSolver(
        die_width=1.0e-3,
        die_length=1.0e-3,
        die_thickness=0.3e-3,
        nx=20,
        ny=20,
        nz=6,
        ambient_temperature=298.15,
    )


@pytest.fixture(scope="module")
def centered_source():
    return RectangularSource(x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.2e-3, power=0.5)


@pytest.fixture(scope="module")
def centered_solution(solver, centered_source):
    return solver.solve([centered_source])


class TestValidation:
    def test_bad_dimensions_rejected(self):
        with pytest.raises(ValueError):
            FiniteVolumeThermalSolver(0.0, 1e-3, 1e-4)

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            FiniteVolumeThermalSolver(1e-3, 1e-3, 1e-4, nx=1)

    def test_source_outside_die_rejected(self, solver):
        outside = RectangularSource(x=5e-3, y=5e-3, width=1e-4, length=1e-4, power=1.0)
        with pytest.raises(ValueError):
            solver.solve([outside])

    def test_empty_source_list_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve([])

    def test_configuration_mutation_after_assembly_raises(self, centered_source):
        # The assembled system is cached; serving it at a silently changed
        # conductivity would be stale physics, so the solver refuses.
        fresh = FiniteVolumeThermalSolver(1e-3, 1e-3, 3e-4, nx=8, ny=8, nz=4)
        fresh.solve([centered_source])
        fresh.ambient_temperature = 350.0
        with pytest.raises(ValueError, match="configuration changed"):
            fresh.solve([centered_source])

    def test_empty_source_list_fails_before_assembly(self):
        # Source validation must not pay for the sparse assembly and
        # factorization (the expensive, source-independent steps).
        fresh = FiniteVolumeThermalSolver(1e-3, 1e-3, 1e-4)
        with pytest.raises(ValueError):
            fresh.solve([])
        assert fresh._matrix is None and fresh._factorization is None
        with pytest.raises(ValueError):
            fresh.solve_many([])
        assert fresh._matrix is None

    def test_bad_source_geometry_rejected(self):
        with pytest.raises(ValueError):
            RectangularSource(x=0.0, y=0.0, width=0.0, length=1e-4, power=1.0)


class TestSolutionPhysics:
    def test_all_rises_positive(self, centered_solution):
        assert (centered_solution.temperature_rise >= 0.0).all()
        assert centered_solution.peak_rise > 0.0

    def test_hotspot_at_source_center(self, centered_solution):
        import numpy as np

        surface = centered_solution.surface_rise
        index = np.unravel_index(int(np.argmax(surface)), surface.shape)
        x = centered_solution.x_centers[index[0]]
        y = centered_solution.y_centers[index[1]]
        assert abs(x - 0.5e-3) < 0.1e-3
        assert abs(y - 0.5e-3) < 0.1e-3

    def test_temperature_decreases_with_depth(self, centered_solution):
        column = centered_solution.temperature_rise[10, 10, :]
        assert all(b < a for a, b in zip(column, column[1:]))

    def test_linearity_in_power(self, solver, centered_source):
        single = solver.solve([centered_source]).peak_rise
        double = solver.solve(
            [
                RectangularSource(
                    x=centered_source.x, y=centered_source.y,
                    width=centered_source.width, length=centered_source.length,
                    power=2.0 * centered_source.power,
                )
            ]
        ).peak_rise
        assert double == pytest.approx(2.0 * single, rel=1e-9)

    def test_superposition_of_two_sources(self, solver):
        a = RectangularSource(x=0.3e-3, y=0.3e-3, width=0.1e-3, length=0.1e-3, power=0.3)
        b = RectangularSource(x=0.7e-3, y=0.7e-3, width=0.1e-3, length=0.1e-3, power=0.2)
        combined = solver.solve([a, b])
        separate_a = solver.solve([a])
        separate_b = solver.solve([b])
        probe = (0.5e-3, 0.5e-3)
        assert combined.rise_at(*probe) == pytest.approx(
            separate_a.rise_at(*probe) + separate_b.rise_at(*probe), rel=1e-9
        )

    def test_absolute_temperature_adds_ambient(self, centered_solution):
        assert centered_solution.temperature_at(0.5e-3, 0.5e-3) == pytest.approx(
            centered_solution.rise_at(0.5e-3, 0.5e-3) + 298.15
        )

    def test_thermal_resistance_positive_and_sane(self, solver, centered_source):
        resistance = solver.thermal_resistance(centered_source)
        # A 200 um block on a 300 um-thick die: tens of K/W.
        assert 1.0 < resistance < 500.0

    def test_thinner_die_is_cooler(self, centered_source):
        thick = FiniteVolumeThermalSolver(
            1e-3, 1e-3, 0.5e-3, nx=16, ny=16, nz=6
        ).solve([centered_source]).peak_rise
        thin = FiniteVolumeThermalSolver(
            1e-3, 1e-3, 0.1e-3, nx=16, ny=16, nz=6
        ).solve([centered_source]).peak_rise
        assert thin < thick
