"""Tests for repro.core.thermal.superposition (Eq. 21 and ChipThermalModel)."""

import numpy as np
import pytest

from repro.core.thermal.images import DieGeometry
from repro.core.thermal.sources import HeatSource
from repro.core.thermal.superposition import (
    ChipThermalModel,
    superposed_temperature_rise,
)

K_SI = 148.0
AMBIENT = 298.15


@pytest.fixture
def die():
    return DieGeometry(width=1e-3, length=1e-3, thickness=0.3e-3)


@pytest.fixture
def two_sources():
    return [
        HeatSource(x=0.3e-3, y=0.3e-3, width=0.1e-3, length=0.1e-3, power=0.3, name="a"),
        HeatSource(x=0.7e-3, y=0.6e-3, width=0.15e-3, length=0.1e-3, power=0.2, name="b"),
    ]


@pytest.fixture
def model(die, two_sources):
    chip = ChipThermalModel(die, ambient_temperature=AMBIENT, image_rings=1)
    chip.add_sources(two_sources)
    return chip


class TestSuperposition:
    def test_linearity(self, two_sources):
        a, b = two_sources
        combined = superposed_temperature_rise(0.5e-3, 0.5e-3, [a, b], K_SI)
        separate = superposed_temperature_rise(0.5e-3, 0.5e-3, [a], K_SI) + \
            superposed_temperature_rise(0.5e-3, 0.5e-3, [b], K_SI)
        assert combined == pytest.approx(separate)

    def test_empty_sources_rejected(self):
        with pytest.raises(ValueError):
            superposed_temperature_rise(0.0, 0.0, [], K_SI)


class TestChipThermalModel:
    def test_ambient_without_sources(self, die):
        chip = ChipThermalModel(die, ambient_temperature=AMBIENT)
        assert chip.temperature_at(0.5e-3, 0.5e-3) == pytest.approx(AMBIENT)

    def test_rise_positive_on_die(self, model):
        assert model.temperature_rise_at(0.5e-3, 0.5e-3) > 0.0

    def test_source_temperatures_named(self, model):
        temps = model.source_temperatures()
        assert set(temps) == {"a", "b"}
        assert temps["a"] > AMBIENT

    def test_bigger_power_block_is_hotter(self, model):
        temps = model.source_temperatures()
        assert temps["a"] > temps["b"]

    def test_total_power(self, model):
        assert model.total_power() == pytest.approx(0.5)

    def test_source_outside_die_rejected(self, model):
        with pytest.raises(ValueError):
            model.add_source(
                HeatSource(x=2e-3, y=0.5e-3, width=0.1e-3, length=0.1e-3, power=0.1)
            )

    def test_set_source_powers(self, model):
        before = model.temperature_rise_at(0.3e-3, 0.3e-3)
        model.set_source_powers({"a": 0.6})
        after = model.temperature_rise_at(0.3e-3, 0.3e-3)
        assert after > before
        model.set_source_powers({"a": 0.3})

    def test_clear_sources(self, die, two_sources):
        chip = ChipThermalModel(die, ambient_temperature=AMBIENT)
        chip.add_sources(two_sources)
        chip.clear_sources()
        assert chip.sources == ()
        assert chip.temperature_rise_at(0.5e-3, 0.5e-3) == 0.0

    def test_invalid_ambient_rejected(self, die):
        with pytest.raises(ValueError):
            ChipThermalModel(die, ambient_temperature=-1.0)


class TestSurfaceMap:
    def test_map_shape_and_peak(self, model):
        surface = model.surface_map(nx=21, ny=21)
        assert surface.temperature.shape == (21, 21)
        assert surface.peak_temperature > AMBIENT
        x, y = surface.peak_location
        # The hotspot sits inside the strongest block.
        assert abs(x - 0.3e-3) < 0.15e-3
        assert abs(y - 0.3e-3) < 0.15e-3

    def test_rise_property(self, model):
        surface = model.surface_map(nx=11, ny=11)
        assert np.allclose(surface.rise, surface.temperature - AMBIENT)

    def test_cross_sections(self, model):
        surface = model.surface_map(nx=15, ny=15)
        xs, temps = surface.cross_section_x(0.3e-3)
        assert xs.shape == temps.shape == (15,)
        ys, temps_y = surface.cross_section_y(0.3e-3)
        assert ys.shape == temps_y.shape == (15,)

    def test_map_resolution_validation(self, model):
        with pytest.raises(ValueError):
            model.surface_map(nx=1, ny=10)

    def test_cross_section_method(self, model):
        xs, temps = model.cross_section(y=0.5e-3, samples=31)
        assert xs.shape == temps.shape == (31,)
        assert temps.max() > AMBIENT

    def test_edge_flux_residual_small(self, model):
        assert model.edge_flux_residual(samples=5) < 0.2

    def test_edge_flux_requires_sources(self, die):
        chip = ChipThermalModel(die, ambient_temperature=AMBIENT)
        with pytest.raises(ValueError):
            chip.edge_flux_residual()
