"""Tests for repro.technology.materials."""

import pytest

from repro.technology.materials import (
    ALUMINIUM,
    COPPER,
    SILICON,
    SILICON_DIOXIDE,
    Material,
    available_materials,
    get_material,
)


class TestMaterialValidation:
    def test_negative_conductivity_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", -1.0, 1000.0, 700.0)

    def test_zero_density_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", 100.0, 0.0, 700.0)

    def test_zero_specific_heat_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", 100.0, 1000.0, 0.0)


class TestConductivityTemperatureDependence:
    def test_silicon_reference_value(self):
        assert SILICON.conductivity_at(300.0) == pytest.approx(148.0)

    def test_silicon_conductivity_drops_when_hot(self):
        assert SILICON.conductivity_at(400.0) < SILICON.conductivity_at(300.0)

    def test_oxide_conductivity_is_temperature_independent(self):
        assert SILICON_DIOXIDE.conductivity_at(400.0) == pytest.approx(
            SILICON_DIOXIDE.conductivity_at(300.0)
        )

    def test_power_law_exponent(self):
        ratio = SILICON.conductivity_at(330.0) / SILICON.conductivity_at(300.0)
        assert ratio == pytest.approx((330.0 / 300.0) ** (-1.3), rel=1e-12)

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            SILICON.conductivity_at(0.0)


class TestDerivedQuantities:
    def test_volumetric_heat_capacity(self):
        assert SILICON.volumetric_heat_capacity == pytest.approx(2330.0 * 700.0)

    def test_diffusivity_definition(self):
        expected = SILICON.conductivity_at(300.0) / SILICON.volumetric_heat_capacity
        assert SILICON.diffusivity(300.0) == pytest.approx(expected)

    def test_copper_conducts_better_than_aluminium(self):
        assert COPPER.thermal_conductivity > ALUMINIUM.thermal_conductivity


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_material("silicon") is SILICON

    def test_lookup_is_case_insensitive(self):
        assert get_material("  Silicon ") is SILICON

    def test_unknown_material_raises(self):
        with pytest.raises(KeyError):
            get_material("unobtainium")

    def test_available_materials_contains_core_set(self):
        names = available_materials()
        assert "silicon" in names
        assert "copper" in names
        assert len(names) >= 5
