"""Tests for repro.core.dynamic (switching, short-circuit, total power)."""

import pytest

from repro.circuit.cells import inverter, nand_gate
from repro.circuit.netlist import Netlist, chain_of_inverters
from repro.core.dynamic.short_circuit import (
    TransitionEnvironment,
    overlap_voltage,
    short_circuit_charge,
    short_circuit_fraction,
    short_circuit_power,
)
from repro.core.dynamic.switching import (
    SwitchingActivity,
    gate_switching_power,
    netlist_switching_power,
    switching_energy_per_transition,
    switching_power,
)
from repro.core.dynamic.total import PowerBreakdown, TotalPowerModel, ZERO_POWER


class TestSwitchingPower:
    def test_alpha_f_c_v_squared(self):
        assert switching_power(0.1, 1e9, 10e-15, 1.2) == pytest.approx(
            0.1 * 1e9 * 10e-15 * 1.44
        )

    def test_energy_per_transition(self):
        assert switching_energy_per_transition(10e-15, 1.2) == pytest.approx(
            10e-15 * 1.44
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            switching_power(1.5, 1e9, 1e-15, 1.2)
        with pytest.raises(ValueError):
            switching_power(0.1, 0.0, 1e-15, 1.2)
        with pytest.raises(ValueError):
            switching_power(0.1, 1e9, -1e-15, 1.2)
        with pytest.raises(ValueError):
            SwitchingActivity(activity=-0.1)

    def test_gate_switching_power_scales_with_load(self, tech012):
        gate = inverter(tech012)
        light = gate_switching_power(gate, tech012, SwitchingActivity())
        heavy = gate_switching_power(
            gate, tech012, SwitchingActivity(external_load=50e-15)
        )
        assert heavy > light

    def test_netlist_switching_power_per_instance(self, tech012):
        netlist = chain_of_inverters(tech012, 4)
        powers = netlist_switching_power(netlist, tech012)
        assert len(powers) == 4
        assert all(p > 0.0 for p in powers.values())

    def test_netlist_switching_respects_overrides(self, tech012):
        netlist = chain_of_inverters(tech012, 2)
        overrides = {"U1": SwitchingActivity(activity=0.5)}
        powers = netlist_switching_power(netlist, tech012, activities=overrides)
        assert powers["U1"] == pytest.approx(5.0 * powers["U2"], rel=1e-9)


class TestShortCircuit:
    def test_overlap_voltage(self, tech012):
        assert overlap_voltage(tech012) == pytest.approx(
            tech012.vdd - tech012.nmos.vt0 - tech012.pmos.vt0
        )

    def test_charge_grows_with_transition_time(self, tech012):
        gate = inverter(tech012)
        slow = short_circuit_charge(
            gate, tech012, TransitionEnvironment(input_transition_time=200e-12)
        )
        fast = short_circuit_charge(
            gate, tech012, TransitionEnvironment(input_transition_time=20e-12)
        )
        assert slow > fast

    def test_power_attenuated_by_load(self, tech012):
        gate = inverter(tech012)
        unloaded = short_circuit_power(
            gate, tech012, TransitionEnvironment(input_transition_time=50e-12)
        )
        loaded = short_circuit_power(
            gate, tech012,
            TransitionEnvironment(input_transition_time=50e-12, load_capacitance=100e-15),
        )
        assert loaded < unloaded

    def test_vanishes_without_overlap(self, tech012):
        low_vdd = tech012.with_supply(0.5)  # below Vthn + Vthp
        gate = inverter(low_vdd)
        assert short_circuit_power(
            gate, low_vdd, TransitionEnvironment(input_transition_time=50e-12)
        ) == 0.0

    def test_fraction_is_modest_for_equal_edges(self, tech012):
        gate = inverter(tech012)
        environment = TransitionEnvironment(
            input_transition_time=50e-12, load_capacitance=0.0
        )
        fraction = short_circuit_fraction(gate, tech012, environment)
        assert 0.0 < fraction < 0.6

    def test_environment_validation(self):
        with pytest.raises(ValueError):
            TransitionEnvironment(input_transition_time=0.0)
        with pytest.raises(ValueError):
            TransitionEnvironment(input_transition_time=1e-12, activity=2.0)


class TestPowerBreakdown:
    def test_totals(self):
        breakdown = PowerBreakdown(switching=1.0, short_circuit=0.2, static=0.8)
        assert breakdown.dynamic == pytest.approx(1.2)
        assert breakdown.total == pytest.approx(2.0)
        assert breakdown.static_fraction == pytest.approx(0.4)

    def test_addition(self):
        a = PowerBreakdown(1.0, 0.1, 0.5)
        b = PowerBreakdown(2.0, 0.2, 0.3)
        c = a + b
        assert c.switching == pytest.approx(3.0)
        assert c.static == pytest.approx(0.8)

    def test_zero_power_identity(self):
        a = PowerBreakdown(1.0, 0.1, 0.5)
        assert (a + ZERO_POWER).total == pytest.approx(a.total)
        assert ZERO_POWER.static_fraction == 0.0


class TestTotalPowerModel:
    @pytest.fixture
    def netlist(self, tech012):
        netlist = Netlist("tiny", primary_inputs=("A", "B"))
        netlist.add_instance(
            "U1", nand_gate(tech012, 2), {"A": "A", "B": "B", "Z": "N1"}, block="core"
        )
        netlist.add_instance("U2", inverter(tech012), {"A": "N1", "Z": "OUT"}, block="core")
        return netlist

    def test_instance_breakdown_covers_all(self, tech012, netlist):
        model = TotalPowerModel(tech012)
        breakdowns = model.instance_breakdown(netlist, {"A": 0, "B": 1})
        assert set(breakdowns) == {"U1", "U2"}
        assert all(b.total > 0.0 for b in breakdowns.values())

    def test_total_is_sum(self, tech012, netlist):
        model = TotalPowerModel(tech012)
        total = model.total(netlist, {"A": 0, "B": 1})
        breakdowns = model.instance_breakdown(netlist, {"A": 0, "B": 1})
        assert total.total == pytest.approx(
            sum(b.total for b in breakdowns.values())
        )

    def test_static_grows_with_temperature_dynamic_does_not(self, tech012, netlist):
        model = TotalPowerModel(tech012)
        cold = model.total(netlist, {"A": 0, "B": 1}, temperature=298.15)
        hot = model.total(netlist, {"A": 0, "B": 1}, temperature=398.15)
        assert hot.static > 10.0 * cold.static
        assert hot.switching == pytest.approx(cold.switching)

    def test_block_breakdown(self, tech012, netlist):
        model = TotalPowerModel(tech012)
        blocks = model.block_breakdown(netlist, {"A": 1, "B": 1})
        assert set(blocks) == {"core"}
        assert blocks["core"].total == pytest.approx(
            model.total(netlist, {"A": 1, "B": 1}).total
        )

    def test_invalid_transition_time_rejected(self, tech012):
        with pytest.raises(ValueError):
            TotalPowerModel(tech012, default_transition_time=0.0)
