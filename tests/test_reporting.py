"""Tests for repro.reporting (tables and figure series)."""

import pytest

from repro.reporting.series import FigureData, Series
from repro.reporting.tables import format_table, format_value, print_table


class TestFormatValue:
    def test_integers_and_bools(self):
        assert format_value(42) == "42"
        assert format_value(True) == "True"

    def test_plain_floats(self):
        assert format_value(3.14159, precision=3) == "3.14"

    def test_scientific_for_small_values(self):
        assert "e" in format_value(1.23e-9)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_strings_pass_through(self):
        assert format_value("NAND2") == "NAND2"


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"], [["a", 1.0], ["bb", 2.5]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[2] and "value" in lines[2]
        assert len(lines) == 6

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1.0]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_print_table_returns_text(self, capsys):
        text = print_table(["x"], [[1.0]])
        captured = capsys.readouterr()
        assert "x" in text and "x" in captured.out


class TestSeries:
    def test_construction_and_interp(self):
        series = Series.from_arrays("model", [0.0, 1.0, 2.0], [0.0, 10.0, 20.0])
        assert series.value_at(0.5) == pytest.approx(5.0)
        assert series.peak == pytest.approx(20.0)
        assert series.is_monotonic_increasing()
        assert not series.is_monotonic_decreasing()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("bad", x=(1.0,), y=(1.0, 2.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("bad", x=(), y=())

    def test_as_arrays(self):
        series = Series.from_arrays("s", [1, 2], [3, 4])
        xs, ys = series.as_arrays()
        assert xs.tolist() == [1.0, 2.0]
        assert ys.tolist() == [3.0, 4.0]


class TestFigureData:
    def test_add_and_get(self):
        figure = FigureData(figure_id="fig5", title="thermal profile")
        figure.add(Series.from_arrays("exact", [1.0, 2.0], [4.0, 2.0]))
        figure.add(Series.from_arrays("model", [1.0, 2.0], [4.1, 2.1]))
        assert figure.labels() == ("exact", "model")
        assert figure.get("exact").peak == pytest.approx(4.0)

    def test_duplicate_label_rejected(self):
        figure = FigureData(figure_id="f", title="t")
        figure.add(Series.from_arrays("a", [1.0], [1.0]))
        with pytest.raises(ValueError):
            figure.add(Series.from_arrays("a", [1.0], [2.0]))

    def test_unknown_series_rejected(self):
        figure = FigureData(figure_id="f", title="t")
        with pytest.raises(ValueError):
            figure.to_table()
        figure.add(Series.from_arrays("a", [1.0], [1.0]))
        with pytest.raises(KeyError):
            figure.get("b")

    def test_table_rendering_with_notes(self):
        figure = FigureData(figure_id="fig8", title="stack currents")
        figure.add(Series.from_arrays("spice", [1, 2], [1e-9, 1e-10], x_label="N"))
        figure.add(Series.from_arrays("model", [1, 2], [1.05e-9, 1.1e-10], x_label="N"))
        figure.add_note("model tracks spice within 10%")
        text = figure.to_table()
        assert "fig8" in text
        assert "note:" in text
        assert "spice" in text and "model" in text

    def test_print(self, capsys):
        figure = FigureData(figure_id="f", title="t")
        figure.add(Series.from_arrays("a", [1.0], [1.0]))
        figure.print()
        assert "f: t" in capsys.readouterr().out
