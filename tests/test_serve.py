"""The study service: caching, batching, HTTP transport, graceful drain.

Serving is only correct if it is *invisible* in the results: every test
that touches execution asserts bit-identity (``StudyResult.equals``)
against a direct :func:`~repro.api.study.run_study` of the same spec —
warm-cache replays, coalesced solves and process-pool execution all must
reproduce the solo arrays exactly.  The service's observables (the
``/stats`` counter tree) are what let the interesting properties be
asserted from outside: a second identical request is a result-cache hit
that runs no solve, two concurrent compatible requests share one engine
solve, a drained shutdown completes in-flight work.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import StudyResult, StudySpec, run_study
from repro.api.cli import main as cli_main
from repro.api.specs import ENGINE_FIELDS, ScenarioSpec, TechnologySpec
from repro.serve import (
    AdmissionBatcher,
    LRUCache,
    ServeError,
    ServiceClosedError,
    StudyClient,
    StudyService,
    make_server,
    solve_key,
)
from repro.serve.server import error_body

# --------------------------------------------------------------------- #
# Fixtures: small steady specs sharing one engine configuration
# --------------------------------------------------------------------- #


def steady_spec(ambient: float = 300.0, **overrides) -> StudySpec:
    """A minimal steady study; same engine fields across ambients."""
    options = dict(
        kind="steady",
        dynamic_powers={"chip": 0.25},
        static_powers={"chip": 0.05},
        scenarios=(
            ScenarioSpec(
                technology=TechnologySpec("0.12um"),
                ambient_temperature=ambient,
            ),
        ),
    )
    options.update(overrides)
    return StudySpec(**options)


@pytest.fixture
def http_service():
    """A running server on an ephemeral port, torn down after the test."""
    server = make_server("127.0.0.1", 0, window=0.0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    try:
        yield host, port, server
    finally:
        if thread.is_alive():
            server.shutdown()
            thread.join(timeout=10)
        assert not thread.is_alive()


# --------------------------------------------------------------------- #
# Spec hashing (the cache keys)
# --------------------------------------------------------------------- #
class TestSpecHashing:
    def test_content_hash_is_deterministic_across_round_trips(self):
        spec = steady_spec()
        rebuilt = StudySpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt.content_hash() == spec.content_hash()
        assert rebuilt.canonical_json() == spec.canonical_json()

    def test_content_hash_distinguishes_different_specs(self):
        assert steady_spec(300.0).content_hash() != steady_spec(301.0).content_hash()

    def test_engine_hash_ignores_scenario_and_solver_changes(self):
        base = steady_spec(300.0)
        assert base.engine_hash() == steady_spec(330.0).engine_hash()
        assert (
            base.engine_hash()
            == steady_spec(300.0, solver={"max_iterations": 7}).engine_hash()
        )

    def test_engine_hash_tracks_engine_fields(self):
        base = steady_spec()
        changed = steady_spec(thermal_backend="fdm")
        assert base.engine_hash() != changed.engine_hash()
        assert "thermal_backend" in ENGINE_FIELDS

    def test_solve_key_separates_solver_options(self):
        assert solve_key(steady_spec(300.0)) == solve_key(steady_spec(310.0))
        assert solve_key(steady_spec()) != solve_key(
            steady_spec(solver={"max_iterations": 9})
        )


# --------------------------------------------------------------------- #
# Result envelopes
# --------------------------------------------------------------------- #
class TestEnvelope:
    def test_envelope_round_trips_bit_identically(self):
        result = run_study(steady_spec())
        envelope = result.envelope(served={"result_cache": "miss"})
        assert envelope["status"] == "ok"
        assert envelope["spec_hash"] == result.spec.content_hash()
        assert envelope["served"] == {"result_cache": "miss"}
        assert StudyResult.from_envelope(envelope).equals(result)

    def test_from_envelope_rejects_error_payloads(self):
        with pytest.raises(ValueError, match="boom"):
            StudyResult.from_envelope(
                {"status": "error", "error": {"message": "boom"}}
            )
        with pytest.raises(ValueError, match="no 'result'"):
            StudyResult.from_envelope({"status": "ok"})


# --------------------------------------------------------------------- #
# LRU cache
# --------------------------------------------------------------------- #
class TestLRUCache:
    def test_get_or_build_hits_and_builds_once(self):
        cache = LRUCache(4)
        calls = []
        value, hit = cache.get_or_build("k", lambda: calls.append(1) or 42)
        assert (value, hit) == (42, False)
        value, hit = cache.get_or_build("k", lambda: calls.append(1) or 43)
        assert (value, hit) == (42, True)
        assert len(calls) == 1
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "size": 1,
            "limit": 4,
        }

    def test_eviction_drops_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == (1, True)  # refresh a: b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") == (None, False)
        assert cache.get("a") == (1, True)
        assert cache.stats()["evictions"] == 1

    def test_failed_build_stores_nothing(self):
        cache = LRUCache(2)

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            cache.get_or_build("k", boom)
        assert len(cache) == 0
        value, hit = cache.get_or_build("k", lambda: 7)
        assert (value, hit) == (7, False)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="limit"):
            LRUCache(0)


# --------------------------------------------------------------------- #
# Admission batching
# --------------------------------------------------------------------- #
class TestAdmissionBatcher:
    def test_zero_window_executes_each_request_alone(self):
        groups = []
        batcher = AdmissionBatcher(0.0, lambda items: groups.append(list(items)) or items)
        assert batcher.submit("k", 1).result(timeout=5) == 1
        assert batcher.submit("k", 2).result(timeout=5) == 2
        assert groups == [[1], [2]]

    def test_concurrent_submissions_coalesce_into_one_group(self):
        groups = []
        batcher = AdmissionBatcher(
            0.3, lambda items: groups.append(list(items)) or [i * 10 for i in items]
        )
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = list(
                pool.map(lambda i: batcher.submit("k", i).result(timeout=10), range(4))
            )
        assert sorted(futures) == [0, 10, 20, 30]
        assert len(groups) == 1 and sorted(groups[0]) == [0, 1, 2, 3]
        stats = batcher.stats()
        assert stats["groups"] == 1
        assert stats["coalesced_requests"] == 4
        assert stats["largest_group"] == 4

    def test_group_failure_falls_back_to_per_member_execution(self):
        def execute(items):
            if len(items) > 1:
                raise RuntimeError("batch-global validation tripped")
            if items[0] == "bad":
                raise ValueError("bad member")
            return [f"solo:{items[0]}"]

        batcher = AdmissionBatcher(0.3, execute)
        with ThreadPoolExecutor(max_workers=2) as pool:
            good = pool.submit(lambda: batcher.submit("k", "good").result(timeout=10))
            time.sleep(0.05)  # join the open window, don't lead a new group
            bad = pool.submit(lambda: batcher.submit("k", "bad").result(timeout=10))
            assert good.result(timeout=10) == "solo:good"
            with pytest.raises(ValueError, match="bad member"):
                bad.result(timeout=10)
        assert batcher.stats()["fallbacks"] == 1

    def test_drain_releases_waiting_leaders_immediately(self):
        batcher = AdmissionBatcher(30.0, lambda items: list(items))
        start = time.monotonic()
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = pool.submit(lambda: batcher.submit("k", 1).result(timeout=10))
            time.sleep(0.05)
            batcher.drain()
            assert future.result(timeout=10) == 1
        assert time.monotonic() - start < 10.0

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            AdmissionBatcher(-0.1, lambda items: items)


# --------------------------------------------------------------------- #
# StudyService: caching and coalescing correctness
# --------------------------------------------------------------------- #
class TestStudyService:
    def test_warm_cache_replay_is_bit_identical_and_runs_no_solve(self):
        with StudyService() as service:
            spec = steady_spec()
            cold = service.submit(spec.to_dict())
            warm = service.submit(spec.to_dict())
            assert cold["served"]["result_cache"] == "miss"
            assert warm["served"]["result_cache"] == "hit"
            direct = run_study(spec)
            assert StudyResult.from_envelope(cold).equals(direct)
            assert StudyResult.from_envelope(warm).equals(direct)
            stats = service.stats()
            assert stats["execution"]["solves"] == 1
            assert stats["result_cache"]["hits"] == 1

    def test_engine_cache_shared_across_different_requests(self):
        with StudyService() as service:
            service.submit(steady_spec(300.0).to_dict())
            service.submit(steady_spec(320.0).to_dict())
            stats = service.stats()
            assert stats["execution"]["engine_cache"]["misses"] == 1
            assert stats["execution"]["engine_cache"]["hits"] == 1
            assert stats["execution"]["solves"] == 2

    def test_concurrent_compatible_requests_share_one_solve(self):
        specs = [steady_spec(300.0 + i) for i in range(4)]
        with StudyService(window=0.3) as service:
            with ThreadPoolExecutor(max_workers=4) as pool:
                envelopes = list(
                    pool.map(service.submit, [s.to_dict() for s in specs])
                )
            stats = service.stats()
        assert stats["execution"]["solves"] == 1
        assert stats["execution"]["coalesced_solves"] == 1
        assert stats["batching"]["coalesced_requests"] == 4
        for spec, envelope in zip(specs, envelopes):
            assert StudyResult.from_envelope(envelope).equals(run_study(spec))

    def test_process_pool_mode_is_bit_identical(self):
        spec = steady_spec()
        with StudyService(workers=2, timeout=120.0) as service:
            cold = service.submit(spec.to_dict())
            warm = service.submit(spec.to_dict())
            stats = service.stats()
        assert stats["execution"]["mode"] == "process-pool"
        assert warm["served"]["result_cache"] == "hit"
        assert StudyResult.from_envelope(cold).equals(run_study(spec))

    def test_submit_after_close_is_rejected(self):
        service = StudyService()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(steady_spec().to_dict())
        service.close()  # idempotent

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            StudyService(workers=-1)
        with pytest.raises(ValueError, match="timeout"):
            StudyService(timeout=0.0)


# --------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------- #
class TestHTTPServer:
    def test_run_round_trip_and_stats_over_http(self, http_service):
        host, port, _ = http_service
        spec = steady_spec()
        with StudyClient(host, port, timeout=60.0) as client:
            assert client.healthz()
            cold = client.run(spec.to_dict())
            warm = client.run(spec.to_dict())
            stats = client.stats()
        assert cold["served"]["result_cache"] == "miss"
        assert warm["served"]["result_cache"] == "hit"
        assert stats["result_cache"]["hits"] == 1
        assert stats["execution"]["solves"] == 1
        assert StudyResult.from_envelope(warm).equals(run_study(spec))

    def test_malformed_spec_yields_structured_400_naming_the_field(
        self, http_service
    ):
        host, port, _ = http_service
        bad = steady_spec().to_dict()
        bad["kind"] = "nonsense"
        with StudyClient(host, port, timeout=60.0) as client:
            with pytest.raises(ServeError) as excinfo:
                client.run(bad)
        assert excinfo.value.status == 400
        assert excinfo.value.body["error"]["field"] == "kind"
        assert "nonsense" in excinfo.value.body["error"]["message"]

    def test_non_json_body_and_unknown_route_are_4xx(self, http_service):
        host, port, _ = http_service
        from http.client import HTTPConnection

        conn = HTTPConnection(host, port, timeout=30.0)
        conn.request("POST", "/run", body=b"not json {", headers={})
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert "JSON" in body["error"]["message"]
        conn.request("GET", "/nope")
        response = conn.getresponse()
        assert response.status == 404
        response.read()
        conn.close()

    def test_shutdown_drains_in_flight_requests(self):
        server = make_server("127.0.0.1", 0, window=0.5)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        spec = steady_spec()
        results = {}

        def slow_request():
            # window=0.5 keeps this request in-flight while /shutdown lands.
            with StudyClient(host, port, timeout=60.0) as client:
                results["envelope"] = client.run(spec.to_dict())

        worker = threading.Thread(target=slow_request)
        worker.start()
        time.sleep(0.1)  # let the request enter its admission window
        with StudyClient(host, port, timeout=60.0) as client:
            client.shutdown()
        worker.join(timeout=30)
        thread.join(timeout=30)
        assert not worker.is_alive() and not thread.is_alive()
        # The in-flight request completed, correctly, during the drain.
        assert StudyResult.from_envelope(results["envelope"]).equals(run_study(spec))


# --------------------------------------------------------------------- #
# Structured error bodies
# --------------------------------------------------------------------- #
class TestErrorBody:
    def test_quoted_identifier_wins(self):
        body = error_body("StudySpec has no field(s) 'max_iterations'")
        assert body["error"]["field"] == "max_iterations"

    def test_known_field_word_is_found(self):
        body = error_body("ambient_temperature must be positive")
        assert body["error"]["field"] == "ambient_temperature"

    def test_no_field_when_nothing_matches(self):
        body = error_body("request body is empty")
        assert "field" not in body["error"]
        assert body["status"] == "error"


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestServeCLI:
    def test_serve_help_documents_defaults(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["serve", "--help"])
        assert excinfo.value.code == 0
        text = capsys.readouterr().out
        for fragment in (
            "--host",
            "--port",
            "--workers",
            "--window",
            "--engine-cache",
            "--result-cache",
            "--timeout",
            "default: 127.0.0.1",
            "default: 0",
        ):
            assert fragment in text

    def test_every_run_flag_states_its_default(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "--help"])
        text = capsys.readouterr().out.replace("\n", " ")
        # Each optional flag's help must say what happens when omitted.
        assert text.count("default:") >= 6

    def test_serve_rejects_bad_parameters(self, capsys):
        assert cli_main(["serve", "--workers", "-1", "--port", "0"]) == 2
        assert "cannot start service" in capsys.readouterr().err
