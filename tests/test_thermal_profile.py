"""Tests for repro.core.thermal.profile (paper Eq. 20, Fig. 5)."""

import numpy as np
import pytest

from repro.core.thermal.profile import (
    point_source_profile,
    radial_profile,
    rectangle_center_temperature,
    rectangle_far_field_temperature,
    rectangle_temperature,
    saturation_distance,
)
from repro.core.thermal.sources import HeatSource
from repro.thermalsim.quadrature import rectangle_temperature_numeric

K_SI = 148.0


@pytest.fixture(scope="module")
def fig5_source():
    """The paper's Fig. 5 device: W = 1 um, L = 0.1 um dissipating 10 mW."""
    return HeatSource(x=0.0, y=0.0, width=1e-6, length=0.1e-6, power=10e-3)


class TestMinCombination:
    def test_saturates_at_center_value(self, fig5_source):
        center = rectangle_center_temperature(fig5_source, K_SI)
        assert rectangle_temperature(0.0, 0.0, fig5_source, K_SI) == pytest.approx(center)
        assert rectangle_temperature(0.1e-6, 0.0, fig5_source, K_SI) == pytest.approx(center)

    def test_far_field_selected_away_from_source(self, fig5_source):
        far = rectangle_temperature(5e-6, 0.0, fig5_source, K_SI)
        center = rectangle_center_temperature(fig5_source, K_SI)
        assert far < center

    def test_never_exceeds_center_value(self, fig5_source):
        center = rectangle_center_temperature(fig5_source, K_SI)
        for x, y in ((0.0, 0.0), (0.3e-6, 0.0), (1e-6, 1e-6), (10e-6, 0.0)):
            assert rectangle_temperature(x, y, fig5_source, K_SI) <= center + 1e-12

    def test_monotone_decay_along_x(self, fig5_source):
        distances = np.array([0.6e-6, 1e-6, 2e-6, 5e-6, 20e-6])
        values = radial_profile(distances, fig5_source, K_SI, direction="x")
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_zero_power_source(self):
        source = HeatSource(0.0, 0.0, 1e-6, 1e-6, 0.0)
        assert rectangle_temperature(1e-6, 0.0, source, K_SI) == 0.0

    def test_negative_power_mirrors_positive(self, fig5_source):
        sink = HeatSource(0.0, 0.0, 1e-6, 0.1e-6, -10e-3)
        assert rectangle_temperature(2e-6, 0.0, sink, K_SI) == pytest.approx(
            -rectangle_temperature(2e-6, 0.0, fig5_source, K_SI)
        )

    def test_buried_source_treated_as_point(self):
        buried = HeatSource(0.0, 0.0, 1e-6, 1e-6, 1e-3, depth=600e-6)
        from repro.core.thermal.sources import buried_point_source_temperature

        assert rectangle_temperature(10e-6, 0.0, buried, K_SI) == pytest.approx(
            buried_point_source_temperature(10e-6, 600e-6, 1e-3, K_SI)
        )


class TestAgainstNumericalReference:
    @pytest.mark.parametrize("distance_um", [1.0, 2.0, 5.0, 20.0, 100.0])
    def test_far_field_accuracy_fig5(self, fig5_source, distance_um):
        # Fig. 5: beyond the source footprint the analytical profile tracks
        # the numerical solution of Eq. (17) closely.
        d = distance_um * 1e-6
        analytic = rectangle_temperature(d, 0.0, fig5_source, K_SI)
        numeric = rectangle_temperature_numeric(d, 0.0, 10e-3, 1e-6, 0.1e-6, K_SI)
        assert analytic == pytest.approx(numeric, rel=0.05)

    def test_center_is_exact(self, fig5_source):
        analytic = rectangle_temperature(0.0, 0.0, fig5_source, K_SI)
        numeric = rectangle_temperature_numeric(0.0, 0.0, 10e-3, 1e-6, 0.1e-6, K_SI)
        assert analytic == pytest.approx(numeric, rel=0.005)

    def test_transition_region_error_is_bounded(self, fig5_source):
        # Inside the source (but away from its centre) the min() saturates;
        # the worst-case error stays within roughly a factor of two.
        d = 0.45e-6
        analytic = rectangle_temperature(d, 0.0, fig5_source, K_SI)
        numeric = rectangle_temperature_numeric(d, 0.0, 10e-3, 1e-6, 0.1e-6, K_SI)
        assert analytic / numeric < 2.0
        assert analytic / numeric > 0.5


class TestHelpers:
    def test_far_field_uses_longer_dimension(self):
        wide = HeatSource(0.0, 0.0, 4e-6, 1e-6, 1e-3)
        tall = HeatSource(0.0, 0.0, 1e-6, 4e-6, 1e-3)
        # Swapping the roles of x and y must swap the field.
        assert rectangle_far_field_temperature(3e-6, 1e-6, wide, K_SI) == pytest.approx(
            rectangle_far_field_temperature(1e-6, 3e-6, tall, K_SI)
        )

    def test_radial_profile_directions(self, fig5_source):
        distances = [1e-6, 2e-6]
        for direction in ("x", "y", "diagonal"):
            values = radial_profile(distances, fig5_source, K_SI, direction)
            assert values.shape == (2,)
            assert (values > 0.0).all()
        with pytest.raises(ValueError):
            radial_profile(distances, fig5_source, K_SI, "spiral")

    def test_point_source_profile(self):
        values = point_source_profile([1e-6, 2e-6], 1e-3, K_SI)
        assert values[0] == pytest.approx(2.0 * values[1])

    def test_saturation_distance_brackets_source(self, fig5_source):
        distance = saturation_distance(fig5_source, K_SI)
        # The cap region extends roughly over the source footprint.
        assert 0.1e-6 < distance < 3e-6
        center = rectangle_center_temperature(fig5_source, K_SI)
        just_outside = rectangle_far_field_temperature(
            distance * 1.01, 0.0, fig5_source, K_SI
        )
        assert just_outside < center
