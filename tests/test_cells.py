"""Tests for repro.circuit.cells (standard-cell library)."""

import pytest

from repro.circuit.cells import (
    LogicGate,
    aoi21,
    aoi22,
    inverter,
    nand_gate,
    nor_gate,
    oai21,
    standard_cell,
    standard_cell_names,
)
from repro.circuit.devices import nmos, pmos
from repro.circuit.topology import DeviceLeaf
from repro.circuit.vectors import enumerate_vectors


class TestInverter:
    def test_truth_table(self, tech012):
        gate = inverter(tech012)
        assert gate.evaluate({"A": 0}) == 1
        assert gate.evaluate({"A": 1}) == 0

    def test_device_count_and_width(self, tech012):
        gate = inverter(tech012)
        assert gate.device_count() == 2
        assert gate.total_width() == pytest.approx(
            tech012.nmos.nominal_width + tech012.pmos.nominal_width
        )

    def test_size_scales_widths(self, tech012):
        small = inverter(tech012, size=1.0)
        big = inverter(tech012, size=4.0)
        assert big.total_width() == pytest.approx(4.0 * small.total_width())


class TestNandNor:
    @pytest.mark.parametrize("fan_in", [2, 3, 4])
    def test_nand_truth_table(self, tech012, fan_in):
        gate = nand_gate(tech012, fan_in)
        for vector in enumerate_vectors(gate.inputs):
            expected = 0 if all(vector[name] for name in gate.inputs) else 1
            assert gate.evaluate(vector) == expected

    @pytest.mark.parametrize("fan_in", [2, 3, 4])
    def test_nor_truth_table(self, tech012, fan_in):
        gate = nor_gate(tech012, fan_in)
        for vector in enumerate_vectors(gate.inputs):
            expected = 0 if any(vector[name] for name in gate.inputs) else 1
            assert gate.evaluate(vector) == expected

    def test_nand_series_devices_are_upsized(self, tech012):
        gate = nand_gate(tech012, 3)
        nmos_widths = {d.width for d in gate.pull_down.devices()}
        assert nmos_widths == {3 * tech012.nmos.nominal_width}

    def test_custom_input_names(self, tech012):
        gate = nand_gate(tech012, 2, input_names=("X", "Y"))
        assert gate.inputs == ("X", "Y")
        assert gate.evaluate({"X": 1, "Y": 0}) == 1

    def test_input_name_count_mismatch_rejected(self, tech012):
        with pytest.raises(ValueError):
            nand_gate(tech012, 3, input_names=("A", "B"))


class TestComplexGates:
    def test_aoi21_function(self, tech012):
        gate = aoi21(tech012)
        for vector in enumerate_vectors(gate.inputs):
            a, b, c = vector["A"], vector["B"], vector["C"]
            expected = 0 if (a and b) or c else 1
            assert gate.evaluate(vector) == expected

    def test_aoi22_function(self, tech012):
        gate = aoi22(tech012)
        for vector in enumerate_vectors(gate.inputs):
            a, b, c, d = (vector[k] for k in "ABCD")
            expected = 0 if (a and b) or (c and d) else 1
            assert gate.evaluate(vector) == expected

    def test_oai21_function(self, tech012):
        gate = oai21(tech012)
        for vector in enumerate_vectors(gate.inputs):
            a, b, c = vector["A"], vector["B"], vector["C"]
            expected = 0 if (a or b) and c else 1
            assert gate.evaluate(vector) == expected


class TestGateInvariants:
    def test_complementarity_of_every_library_cell(self, tech012):
        # Exactly one network conducts for every vector of every cell.
        for name in standard_cell_names():
            gate = standard_cell(name, tech012)
            for vector in enumerate_vectors(gate.inputs):
                gate.evaluate(vector)  # raises on crowbar / floating states

    def test_leakage_network_is_the_non_conducting_one(self, tech012):
        gate = nand_gate(tech012, 2)
        network = gate.leakage_network({"A": 1, "B": 1})
        assert network is gate.pull_up
        network = gate.leakage_network({"A": 0, "B": 0})
        assert network is gate.pull_down

    def test_mismatched_networks_rejected(self, tech012):
        with pytest.raises(ValueError):
            LogicGate(
                name="BAD",
                inputs=("A",),
                pull_up=DeviceLeaf(nmos("MN1", 1e-6, "A")),
                pull_down=DeviceLeaf(nmos("MN2", 1e-6, "A")),
            )

    def test_undeclared_input_rejected(self, tech012):
        with pytest.raises(ValueError):
            LogicGate(
                name="BAD",
                inputs=("A",),
                pull_up=DeviceLeaf(pmos("MP1", 1e-6, "B")),
                pull_down=DeviceLeaf(nmos("MN1", 1e-6, "B")),
            )

    def test_missing_vector_entry_rejected(self, tech012):
        gate = nand_gate(tech012, 2)
        with pytest.raises(KeyError):
            gate.evaluate({"A": 1})


class TestCapacitances:
    def test_output_capacitance_grows_with_external_load(self, tech012):
        gate = inverter(tech012)
        bare = gate.output_capacitance(tech012)
        loaded = gate.output_capacitance(tech012, external_load=5e-15)
        assert loaded == pytest.approx(bare + 5e-15)

    def test_input_capacitance_positive(self, tech012):
        gate = nand_gate(tech012, 2)
        assert gate.input_capacitance(tech012, "A") > 0.0

    def test_input_capacitance_unknown_pin(self, tech012):
        gate = nand_gate(tech012, 2)
        with pytest.raises(KeyError):
            gate.input_capacitance(tech012, "Z9")


class TestLibraryRegistry:
    def test_standard_cell_lookup(self, tech012):
        gate = standard_cell("nand3", tech012)
        assert gate.name == "NAND3"
        assert len(gate.inputs) == 3

    def test_unknown_cell_raises(self, tech012):
        with pytest.raises(KeyError):
            standard_cell("XOR9", tech012)

    def test_library_has_at_least_ten_cells(self):
        assert len(standard_cell_names()) >= 10
