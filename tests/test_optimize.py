"""Tests for repro.optimize: sleep vectors, batched search, objectives, problems."""

import random

import numpy as np
import pytest

from repro.circuit.cells import inverter, nand_gate, nor_gate
from repro.circuit.netlist import Netlist
from repro.circuit.vectors import enumerate_vectors
from repro.core.cosim import Scenario, ScenarioEngine
from repro.core.leakage import CircuitLeakageModel
from repro.floorplan import three_block_floorplan
from repro.optimize import (
    OBJECTIVES,
    STRATEGIES,
    BatchProblem,
    PlacementProblem,
    SearchVariable,
    SleepVectorOptimizer,
    StackVectorProblem,
    SupplyProblem,
    TemperatureCap,
    exhaustive_sleep_vector,
    greedy_sleep_vector,
    objective_series,
    objective_weights,
    run_search,
    scenario_scores,
)

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC = {"core": 0.045, "cache": 0.018, "io": 0.008}


@pytest.fixture
def netlist(tech012):
    """A small two-level netlist with a non-trivial leakage landscape."""
    netlist = Netlist("sleepy", primary_inputs=("A", "B", "C", "D"))
    netlist.add_instance("U1", nand_gate(tech012, 3), {"A": "A", "B": "B", "C": "C", "Z": "N1"})
    netlist.add_instance("U2", nor_gate(tech012, 2), {"A": "N1", "B": "D", "Z": "N2"})
    netlist.add_instance("U3", nand_gate(tech012, 2), {"A": "N2", "B": "C", "Z": "N3"})
    netlist.add_instance("U4", inverter(tech012), {"A": "N3", "Z": "OUT"})
    return netlist


class TestExhaustiveSearch:
    def test_finds_the_true_minimum(self, tech012, netlist):
        result = exhaustive_sleep_vector(tech012, netlist)
        model = CircuitLeakageModel(tech012)
        brute = min(
            model.total_power(netlist, vector)
            for vector in enumerate_vectors(netlist.primary_inputs)
        )
        assert result.leakage_power == pytest.approx(brute)

    def test_reports_reduction_vs_worst_case(self, tech012, netlist):
        result = exhaustive_sleep_vector(tech012, netlist)
        assert result.baseline_power >= result.leakage_power
        assert result.reduction_factor >= 1.0

    def test_counts_evaluations(self, tech012, netlist):
        result = exhaustive_sleep_vector(tech012, netlist)
        assert result.evaluations == 2 ** len(netlist.primary_inputs)

    def test_vector_covers_every_primary_input(self, tech012, netlist):
        result = exhaustive_sleep_vector(tech012, netlist)
        assert set(result.vector) == set(netlist.primary_inputs)
        assert all(value in (0, 1) for value in result.vector.values())

    def test_too_many_inputs_rejected(self, tech012):
        wide = Netlist("wide", primary_inputs=tuple(f"I{i}" for i in range(21)))
        wide.add_instance(
            "U1", nand_gate(tech012, 2), {"A": "I0", "B": "I1", "Z": "N1"}
        )
        with pytest.raises(ValueError):
            exhaustive_sleep_vector(tech012, wide)


class TestGreedySearch:
    def test_never_worse_than_its_seed(self, tech012, netlist):
        seed = {"A": 1, "B": 1, "C": 1, "D": 0}
        result = greedy_sleep_vector(tech012, netlist, seed=seed)
        model = CircuitLeakageModel(tech012)
        assert result.leakage_power <= model.total_power(netlist, seed) * (1 + 1e-12)
        assert result.baseline_power == pytest.approx(model.total_power(netlist, seed))

    def test_matches_exhaustive_on_small_netlist(self, tech012, netlist):
        exhaustive = exhaustive_sleep_vector(tech012, netlist)
        greedy = greedy_sleep_vector(tech012, netlist)
        # Greedy descent is not guaranteed optimal, but on this landscape it
        # gets within 20% of the true minimum from the all-zeros seed.
        assert greedy.leakage_power <= 1.2 * exhaustive.leakage_power

    def test_uses_far_fewer_evaluations(self, tech012, netlist):
        greedy = greedy_sleep_vector(tech012, netlist)
        assert greedy.evaluations < 2 ** len(netlist.primary_inputs)

    def test_invalid_seed_rejected(self, tech012, netlist):
        with pytest.raises(ValueError):
            greedy_sleep_vector(tech012, netlist, seed={"A": 2, "B": 0, "C": 0, "D": 0})

    def test_invalid_passes_rejected(self, tech012, netlist):
        optimizer = SleepVectorOptimizer(tech012, netlist)
        with pytest.raises(ValueError):
            optimizer.greedy(max_passes=0)


class TestTemperatureAwareness:
    def test_hot_selection_reduces_hot_leakage(self, tech012, netlist):
        hot = 273.15 + 110.0
        result = exhaustive_sleep_vector(tech012, netlist, temperature=hot)
        model = CircuitLeakageModel(tech012)
        hot_powers = [
            model.total_power(netlist, vector, hot)
            for vector in enumerate_vectors(netlist.primary_inputs)
        ]
        assert result.leakage_power == pytest.approx(min(hot_powers))
        # The best vector saves a meaningful fraction against the average.
        assert result.leakage_power < 0.9 * (sum(hot_powers) / len(hot_powers))


class TestGreedyRestarts:
    """The seeded-restart contract: deterministic, replayable, never worse."""

    def test_seeded_restarts_replay_identically(self, tech012, netlist):
        first = greedy_sleep_vector(tech012, netlist, restarts=4, rng=11)
        second = greedy_sleep_vector(tech012, netlist, restarts=4, rng=11)
        assert first.vector == second.vector
        assert first.leakage_power == second.leakage_power
        assert first.evaluations == second.evaluations

    def test_rng_instance_matches_integer_seed(self, tech012, netlist):
        by_seed = greedy_sleep_vector(tech012, netlist, restarts=3, rng=7)
        by_rng = greedy_sleep_vector(
            tech012, netlist, restarts=3, rng=random.Random(7)
        )
        assert by_seed.vector == by_rng.vector
        assert by_seed.leakage_power == by_rng.leakage_power

    def test_restarts_never_worse_than_single_descent(self, tech012, netlist):
        single = greedy_sleep_vector(tech012, netlist)
        restarted = greedy_sleep_vector(tech012, netlist, restarts=6, rng=2)
        assert restarted.leakage_power <= single.leakage_power * (1 + 1e-12)

    def test_restarts_close_the_gap_to_exhaustive(self, tech012, netlist):
        # On this 4-input landscape, a handful of seeded restarts finds the
        # true minimum the single all-zeros descent may miss.
        best = exhaustive_sleep_vector(tech012, netlist)
        restarted = greedy_sleep_vector(tech012, netlist, restarts=8, rng=0)
        assert restarted.leakage_power == pytest.approx(best.leakage_power)

    def test_negative_restarts_rejected(self, tech012, netlist):
        with pytest.raises(ValueError):
            greedy_sleep_vector(tech012, netlist, restarts=-1)


class _Quadratic(BatchProblem):
    """Analytic test problem: min at (0.3, -0.1); infeasible when x < -0.5."""

    @property
    def variables(self):
        return (
            SearchVariable("x", -1.0, 1.0),
            SearchVariable("y", -1.0, 1.0),
        )

    def evaluate(self, candidates):
        block = np.atleast_2d(np.asarray(candidates, dtype=float))
        values = (block[:, 0] - 0.3) ** 2 + (block[:, 1] + 0.1) ** 2
        return values, block[:, 0] >= -0.5


class _NoVariables(BatchProblem):
    @property
    def variables(self):
        return ()

    def evaluate(self, candidates):  # pragma: no cover - never reached
        raise AssertionError


class TestRunSearch:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_same_seed_replays_bit_for_bit(self, strategy):
        first = run_search(_Quadratic(), strategy=strategy, budget=40, seed=9)
        second = run_search(_Quadratic(), strategy=strategy, budget=40, seed=9)
        assert np.array_equal(first.best_candidate, second.best_candidate)
        assert first.best_objective == second.best_objective
        assert np.array_equal(first.objective_trace, second.objective_trace)
        assert first.generations == second.generations

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_budget_and_trace_contract(self, strategy):
        outcome = run_search(
            _Quadratic(), strategy=strategy, budget=30, generation_size=8
        )
        assert outcome.strategy == strategy
        assert 0 < outcome.evaluations <= 30
        assert outcome.evaluations == sum(g.size for g in outcome.generations)
        trace = outcome.objective_trace
        assert trace.shape == (len(outcome.generations),)
        assert np.all(np.diff(trace) <= 0.0)  # best-so-far is monotone
        assert outcome.best_objective == trace[-1]
        assert outcome.variable_names == ("x", "y")
        # Bounds are respected and the feasible minimum is found feasible.
        assert -1.0 <= outcome.best_candidate[0] <= 1.0
        assert -1.0 <= outcome.best_candidate[1] <= 1.0
        assert outcome.best_feasible

    def test_descent_strategies_reach_the_minimum(self):
        for strategy in ("coordinate", "nelder_mead"):
            outcome = run_search(_Quadratic(), strategy=strategy, budget=120)
            assert outcome.best_objective < 1e-3, strategy
            assert outcome.best_candidate[0] == pytest.approx(0.3, abs=0.05)
            assert outcome.best_candidate[1] == pytest.approx(-0.1, abs=0.05)

    def test_sampling_strategies_make_progress(self):
        for strategy in ("random", "grid"):
            outcome = run_search(
                _Quadratic(), strategy=strategy, budget=64, generation_size=16
            )
            midpoint_value = 0.3**2 + 0.1**2
            assert outcome.best_objective < midpoint_value, strategy

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="known strategies"):
            run_search(_Quadratic(), strategy="anneal")
        with pytest.raises(ValueError, match="budget"):
            run_search(_Quadratic(), budget=0)
        with pytest.raises(ValueError, match="generation_size"):
            run_search(_Quadratic(), generation_size=0)
        with pytest.raises(ValueError, match="seed"):
            run_search(_Quadratic(), seed=-1)
        with pytest.raises(ValueError, match="no search variables"):
            run_search(_NoVariables())


@pytest.fixture(scope="module")
def solved_batch(tech012):
    engine = ScenarioEngine(three_block_floorplan(), DYNAMIC, STATIC)
    scenarios = [
        Scenario(technology=tech012, ambient_temperature=ambient)
        for ambient in (298.15, 318.15, 338.15)
    ]
    return engine.solve(scenarios)


class TestObjectives:
    def test_weights_normalise_and_validate(self):
        assert objective_weights("total_power") == {"total_power": 1.0}
        assert objective_weights({"peak_rise": 2.0, "total_power": 0.5}) == {
            "peak_rise": 2.0,
            "total_power": 0.5,
        }
        with pytest.raises(ValueError, match="known objectives"):
            objective_weights("entropy")
        with pytest.raises(ValueError, match="'peak_rise'"):
            objective_weights({"peak_rise": -1.0})
        with pytest.raises(ValueError, match="at least one"):
            objective_weights({})

    def test_series_is_the_weighted_sum(self, solved_batch):
        combined = objective_series(
            solved_batch, {"peak_rise": 2.0, "total_power": 0.5}
        )
        expected = 2.0 * objective_series(
            solved_batch, "peak_rise"
        ) + 0.5 * objective_series(solved_batch, "total_power")
        np.testing.assert_allclose(combined, expected, rtol=0, atol=0)
        assert combined.shape == (len(solved_batch.peak_temperature),)

    def test_every_registered_objective_evaluates(self, solved_batch):
        for name in OBJECTIVES:
            series = objective_series(solved_batch, name)
            assert np.all(np.isfinite(series)), name

    def test_temperature_cap_hinge(self, solved_batch):
        peaks = np.asarray(solved_batch.peak_temperature, dtype=float)
        limit = float(np.median(peaks))
        cap = TemperatureCap(limit, penalty_weight=3.0)
        np.testing.assert_allclose(
            cap.penalty(solved_batch), 3.0 * np.maximum(peaks - limit, 0.0)
        )
        assert np.array_equal(cap.satisfied(solved_batch), peaks <= limit)

    def test_temperature_cap_validation(self):
        with pytest.raises(ValueError, match="temperature_cap"):
            TemperatureCap(-5.0)
        with pytest.raises(ValueError, match="penalty_weight"):
            TemperatureCap(400.0, penalty_weight=0.0)

    def test_scenario_scores_fold_the_penalty_in(self, solved_batch):
        plain, all_ok = scenario_scores(solved_batch, "total_power")
        assert all_ok.all()
        np.testing.assert_allclose(
            plain, objective_series(solved_batch, "total_power")
        )
        tight = TemperatureCap(1.0, penalty_weight=2.0)  # everything is over
        penalised, ok = scenario_scores(solved_batch, "total_power", tight)
        assert not ok.any()
        assert np.all(penalised > plain)


class TestEngineBackedProblems:
    @pytest.fixture(scope="class")
    def scenarios(self, tech012):
        return [
            Scenario(technology=tech012, ambient_temperature=ambient)
            for ambient in (298.15, 318.15)
        ]

    def test_placement_variables_track_movable(self, scenarios):
        problem = PlacementProblem(
            three_block_floorplan(), DYNAMIC, STATIC, scenarios, movable=("core",)
        )
        assert tuple(v.name for v in problem.variables) == ("core.x", "core.y")

    def test_placement_overlap_is_infeasible(self, scenarios):
        plan = three_block_floorplan()
        problem = PlacementProblem(
            plan, DYNAMIC, STATIC, scenarios, movable=("core",)
        )
        cache = plan.block("cache")
        core = plan.block("core")
        legal = np.array([core.x, core.y])
        clash = np.array([cache.x, cache.y])  # core centred on the cache
        values, feasible = problem.evaluate(np.vstack([legal, clash]))
        assert feasible[0] and not feasible[1]
        # The overlap penalty dominates any engine-scored objective.
        assert values[1] > values[0]

    def test_placement_unknown_movable_rejected(self, scenarios):
        with pytest.raises(ValueError, match="gpu"):
            PlacementProblem(
                three_block_floorplan(), DYNAMIC, STATIC, scenarios, movable=("gpu",)
            )

    def test_supply_batched_matches_per_candidate(self, scenarios):
        problem = SupplyProblem(
            three_block_floorplan(),
            DYNAMIC,
            STATIC,
            scenarios,
            temperature_cap=TemperatureCap(420.0),
        )
        rng = np.random.default_rng(4)
        lower = np.array([v.lower for v in problem.variables])
        upper = np.array([v.upper for v in problem.variables])
        block = rng.uniform(lower, upper, size=(5, lower.shape[0]))
        batched_values, batched_ok = problem.evaluate(block)
        for i, row in enumerate(block):
            value, ok = problem.evaluate(row[np.newaxis, :])
            assert batched_values[i] == value[0]
            assert batched_ok[i] == ok[0]

    def test_supply_lower_vdd_draws_less_power(self, scenarios):
        problem = SupplyProblem(
            three_block_floorplan(),
            DYNAMIC,
            STATIC,
            scenarios,
            include_activity=False,
        )
        assert tuple(v.name for v in problem.variables) == ("supply_scale",)
        values, _ = problem.evaluate(np.array([[0.8], [1.05]]))
        assert values[0] < values[1]

    def test_stack_vector_problem_matches_sleep_search(self, tech012, netlist):
        problem = StackVectorProblem(tech012, netlist)
        assert tuple(v.name for v in problem.variables) == netlist.primary_inputs
        outcome = run_search(problem, strategy="coordinate", budget=40, seed=1)
        assert problem.last_distinct_solves > 0
        best_vector = problem.vector_for(outcome.best_candidate)
        assert set(best_vector) == set(netlist.primary_inputs)
        # The SPICE-scored search lands on a vector whose analytical leakage
        # is competitive with the analytical greedy search's pick.
        model = CircuitLeakageModel(tech012)
        greedy = greedy_sleep_vector(tech012, netlist, restarts=4, rng=0)
        assert model.total_power(netlist, best_vector) <= 1.5 * greedy.leakage_power
