"""Tests for repro.optimize.sleep_vectors."""

import pytest

from repro.circuit.cells import inverter, nand_gate, nor_gate
from repro.circuit.netlist import Netlist
from repro.circuit.vectors import enumerate_vectors
from repro.core.leakage import CircuitLeakageModel
from repro.optimize import (
    SleepVectorOptimizer,
    exhaustive_sleep_vector,
    greedy_sleep_vector,
)


@pytest.fixture
def netlist(tech012):
    """A small two-level netlist with a non-trivial leakage landscape."""
    netlist = Netlist("sleepy", primary_inputs=("A", "B", "C", "D"))
    netlist.add_instance("U1", nand_gate(tech012, 3), {"A": "A", "B": "B", "C": "C", "Z": "N1"})
    netlist.add_instance("U2", nor_gate(tech012, 2), {"A": "N1", "B": "D", "Z": "N2"})
    netlist.add_instance("U3", nand_gate(tech012, 2), {"A": "N2", "B": "C", "Z": "N3"})
    netlist.add_instance("U4", inverter(tech012), {"A": "N3", "Z": "OUT"})
    return netlist


class TestExhaustiveSearch:
    def test_finds_the_true_minimum(self, tech012, netlist):
        result = exhaustive_sleep_vector(tech012, netlist)
        model = CircuitLeakageModel(tech012)
        brute = min(
            model.total_power(netlist, vector)
            for vector in enumerate_vectors(netlist.primary_inputs)
        )
        assert result.leakage_power == pytest.approx(brute)

    def test_reports_reduction_vs_worst_case(self, tech012, netlist):
        result = exhaustive_sleep_vector(tech012, netlist)
        assert result.baseline_power >= result.leakage_power
        assert result.reduction_factor >= 1.0

    def test_counts_evaluations(self, tech012, netlist):
        result = exhaustive_sleep_vector(tech012, netlist)
        assert result.evaluations == 2 ** len(netlist.primary_inputs)

    def test_vector_covers_every_primary_input(self, tech012, netlist):
        result = exhaustive_sleep_vector(tech012, netlist)
        assert set(result.vector) == set(netlist.primary_inputs)
        assert all(value in (0, 1) for value in result.vector.values())

    def test_too_many_inputs_rejected(self, tech012):
        wide = Netlist("wide", primary_inputs=tuple(f"I{i}" for i in range(21)))
        wide.add_instance(
            "U1", nand_gate(tech012, 2), {"A": "I0", "B": "I1", "Z": "N1"}
        )
        with pytest.raises(ValueError):
            exhaustive_sleep_vector(tech012, wide)


class TestGreedySearch:
    def test_never_worse_than_its_seed(self, tech012, netlist):
        seed = {"A": 1, "B": 1, "C": 1, "D": 0}
        result = greedy_sleep_vector(tech012, netlist, seed=seed)
        model = CircuitLeakageModel(tech012)
        assert result.leakage_power <= model.total_power(netlist, seed) * (1 + 1e-12)
        assert result.baseline_power == pytest.approx(model.total_power(netlist, seed))

    def test_matches_exhaustive_on_small_netlist(self, tech012, netlist):
        exhaustive = exhaustive_sleep_vector(tech012, netlist)
        greedy = greedy_sleep_vector(tech012, netlist)
        # Greedy descent is not guaranteed optimal, but on this landscape it
        # gets within 20% of the true minimum from the all-zeros seed.
        assert greedy.leakage_power <= 1.2 * exhaustive.leakage_power

    def test_uses_far_fewer_evaluations(self, tech012, netlist):
        greedy = greedy_sleep_vector(tech012, netlist)
        assert greedy.evaluations < 2 ** len(netlist.primary_inputs)

    def test_invalid_seed_rejected(self, tech012, netlist):
        with pytest.raises(ValueError):
            greedy_sleep_vector(tech012, netlist, seed={"A": 2, "B": 0, "C": 0, "D": 0})

    def test_invalid_passes_rejected(self, tech012, netlist):
        optimizer = SleepVectorOptimizer(tech012, netlist)
        with pytest.raises(ValueError):
            optimizer.greedy(max_passes=0)


class TestTemperatureAwareness:
    def test_hot_selection_reduces_hot_leakage(self, tech012, netlist):
        hot = 273.15 + 110.0
        result = exhaustive_sleep_vector(tech012, netlist, temperature=hot)
        model = CircuitLeakageModel(tech012)
        hot_powers = [
            model.total_power(netlist, vector, hot)
            for vector in enumerate_vectors(netlist.primary_inputs)
        ]
        assert result.leakage_power == pytest.approx(min(hot_powers))
        # The best vector saves a meaningful fraction against the average.
        assert result.leakage_power < 0.9 * (sum(hot_powers) / len(hot_powers))
