"""Tests for repro.thermalsim.rc_network (transient thermal RC networks)."""

import math

import numpy as np
import pytest

from repro.thermalsim.rc_network import (
    CauerNetwork,
    FosterNetwork,
    FosterStage,
    single_pole_network,
    square_wave_power,
)


class TestFosterStage:
    def test_time_constant(self):
        stage = FosterStage(resistance=100.0, capacitance=1e-3)
        assert stage.time_constant == pytest.approx(0.1)

    def test_step_response_limits(self):
        stage = FosterStage(100.0, 1e-3)
        assert stage.step_response(0.0, 1.0) == pytest.approx(0.0)
        assert stage.step_response(10.0, 1.0) == pytest.approx(100.0, rel=1e-6)

    def test_one_tau_point(self):
        stage = FosterStage(100.0, 1e-3)
        assert stage.step_response(0.1, 1.0) == pytest.approx(
            100.0 * (1.0 - math.exp(-1.0))
        )

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            FosterStage(0.0, 1e-3)
        with pytest.raises(ValueError):
            FosterStage(10.0, -1e-3)


class TestFosterNetwork:
    def test_total_resistance(self):
        network = FosterNetwork([FosterStage(60.0, 1e-3), FosterStage(40.0, 1e-4)])
        assert network.total_resistance == pytest.approx(100.0)
        assert network.steady_state_rise(0.5) == pytest.approx(50.0)

    def test_step_response_sums_stages(self):
        stages = [FosterStage(60.0, 1e-3), FosterStage(40.0, 1e-4)]
        network = FosterNetwork(stages)
        t = 0.01
        assert network.step_response(t, 2.0) == pytest.approx(
            sum(stage.step_response(t, 2.0) for stage in stages)
        )

    def test_simulate_step_matches_closed_form(self):
        network = single_pole_network(resistance=100.0, time_constant=0.05)
        times = np.linspace(0.0, 0.5, 200)
        powers = np.full_like(times, 0.02)
        rises = network.simulate(times, powers)
        expected = 0.02 * 100.0 * (1.0 - np.exp(-times / 0.05))
        assert np.allclose(rises, expected, atol=1e-9)

    def test_simulate_square_wave_settles_between_extremes(self):
        network = single_pole_network(resistance=1000.0, time_constant=0.06)
        times, powers = square_wave_power(
            period=1.0 / 3.0, duty_cycle=0.5, on_power=0.01, duration=2.0
        )
        rises = network.simulate(times, powers)
        steady = network.steady_state_rise(0.01)
        assert rises.max() < steady  # never reaches the DC value at 3 Hz
        assert rises.max() > 0.5 * steady
        assert rises.min() >= 0.0

    def test_time_to_fraction(self):
        network = single_pole_network(resistance=100.0, time_constant=0.05)
        assert network.time_to_fraction(1.0 - math.exp(-1.0)) == pytest.approx(
            0.05, rel=1e-3
        )

    def test_initial_state_support(self):
        network = single_pole_network(100.0, 0.05)
        times = np.array([0.0, 1.0])
        rises = network.simulate(times, np.zeros(2), initial_rises=[5.0])
        assert rises[0] == pytest.approx(5.0)
        assert rises[1] < 1e-6

    def test_invalid_inputs_rejected(self):
        network = single_pole_network(100.0, 0.05)
        with pytest.raises(ValueError):
            network.simulate([0.0, 0.0], [1.0, 1.0])  # non-increasing times
        with pytest.raises(ValueError):
            network.simulate([0.0, 1.0], [1.0])  # length mismatch
        with pytest.raises(ValueError):
            FosterNetwork([])


class TestCauerNetwork:
    def test_steady_state_matches_total_resistance(self):
        network = CauerNetwork([50.0, 50.0], [1e-4, 1e-3])
        times = np.linspace(0.0, 5.0, 500)
        powers = np.full_like(times, 0.01)
        rises = network.simulate(times, powers)
        assert rises[-1] == pytest.approx(network.steady_state_rise(0.01), rel=1e-3)

    def test_monotone_step_response(self):
        network = CauerNetwork([100.0], [1e-3])
        times = np.linspace(0.0, 1.0, 100)
        rises = network.simulate(times, np.full_like(times, 0.02))
        assert all(b >= a - 1e-12 for a, b in zip(rises, rises[1:]))

    def test_single_stage_matches_foster(self):
        cauer = CauerNetwork([100.0], [1e-3])
        foster = single_pole_network(100.0, 0.1)
        times = np.linspace(0.0, 0.5, 100)
        powers = np.full_like(times, 0.05)
        assert np.allclose(
            cauer.simulate(times, powers), foster.simulate(times, powers), rtol=1e-6
        )

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            CauerNetwork([], [])
        with pytest.raises(ValueError):
            CauerNetwork([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            CauerNetwork([1.0], [-1.0])


class TestSquareWave:
    def test_duty_cycle_fraction(self):
        times, powers = square_wave_power(1.0, 0.25, 4.0, 10.0, samples_per_period=100)
        on_fraction = float((powers > 0).mean())
        assert on_fraction == pytest.approx(0.25, abs=0.02)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            square_wave_power(0.0, 0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            square_wave_power(1.0, 1.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            square_wave_power(1.0, 0.5, 1.0, 1.0, samples_per_period=2)
