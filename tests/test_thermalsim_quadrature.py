"""Tests for repro.thermalsim.quadrature (numerical Eq. 17 reference)."""


import pytest

from repro.core.thermal.sources import square_center_temperature
from repro.thermalsim.quadrature import (
    point_source_temperature_numeric,
    rectangle_temperature_numeric,
    rectangle_temperature_profile_numeric,
)

K_SI = 148.0


class TestPointSource:
    def test_inverse_distance_law(self):
        near = point_source_temperature_numeric(1e-6, 1e-3, K_SI)
        far = point_source_temperature_numeric(2e-6, 1e-3, K_SI)
        assert near == pytest.approx(2.0 * far)

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError):
            point_source_temperature_numeric(0.0, 1e-3, K_SI)


class TestRectangleQuadrature:
    def test_center_matches_closed_form(self):
        # The paper's Eq. (18) is the exact value of the Eq. (17) integral at
        # the rectangle centre; the numerical quadrature must agree.
        numeric = rectangle_temperature_numeric(0.0, 0.0, 10e-3, 1e-6, 0.1e-6, K_SI)
        closed = square_center_temperature(10e-3, 1e-6, 0.1e-6, K_SI)
        assert numeric == pytest.approx(closed, rel=1e-3)

    def test_center_of_square_source(self):
        numeric = rectangle_temperature_numeric(0.0, 0.0, 1e-3, 2e-6, 2e-6, K_SI)
        closed = square_center_temperature(1e-3, 2e-6, 2e-6, K_SI)
        assert numeric == pytest.approx(closed, rel=1e-3)

    def test_far_field_approaches_point_source(self):
        distance = 50e-6  # 50x the source size
        numeric = rectangle_temperature_numeric(distance, 0.0, 1e-3, 1e-6, 1e-6, K_SI)
        point = point_source_temperature_numeric(distance, 1e-3, K_SI)
        assert numeric == pytest.approx(point, rel=1e-3)

    def test_linear_in_power(self):
        small = rectangle_temperature_numeric(2e-6, 0.0, 1e-3, 1e-6, 0.5e-6, K_SI)
        large = rectangle_temperature_numeric(2e-6, 0.0, 3e-3, 1e-6, 0.5e-6, K_SI)
        assert large == pytest.approx(3.0 * small, rel=1e-9)

    def test_negative_power_gives_negative_rise(self):
        sink = rectangle_temperature_numeric(2e-6, 0.0, -1e-3, 1e-6, 0.5e-6, K_SI)
        source = rectangle_temperature_numeric(2e-6, 0.0, 1e-3, 1e-6, 0.5e-6, K_SI)
        assert sink == pytest.approx(-source)

    def test_zero_power_gives_zero(self):
        assert rectangle_temperature_numeric(2e-6, 0.0, 0.0, 1e-6, 0.5e-6, K_SI) == 0.0

    def test_symmetry_in_x(self):
        left = rectangle_temperature_numeric(-3e-6, 1e-6, 1e-3, 2e-6, 1e-6, K_SI)
        right = rectangle_temperature_numeric(3e-6, 1e-6, 1e-3, 2e-6, 1e-6, K_SI)
        assert left == pytest.approx(right, rel=1e-6)

    def test_monotone_decay_with_distance(self):
        distances = [0.0, 1e-6, 2e-6, 5e-6, 10e-6, 30e-6]
        values = [
            rectangle_temperature_numeric(d, 0.0, 1e-3, 1e-6, 0.5e-6, K_SI)
            for d in distances
        ]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            rectangle_temperature_numeric(0.0, 0.0, 1e-3, -1e-6, 1e-6, K_SI)
        with pytest.raises(ValueError):
            rectangle_temperature_numeric(0.0, 0.0, 1e-3, 1e-6, 1e-6, 0.0)

    def test_profile_wrapper(self):
        points = [(0.0, 0.0), (2e-6, 0.0), (0.0, 2e-6)]
        values = rectangle_temperature_profile_numeric(points, 1e-3, 1e-6, 1e-6, K_SI)
        assert values.shape == (3,)
        assert values[0] > values[1] and values[0] > values[2]
