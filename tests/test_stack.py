"""Tests for repro.circuit.stack."""

import pytest

from repro.circuit.devices import nmos, pmos
from repro.circuit.stack import (
    TransistorStack,
    nmos_stack_from_widths,
    uniform_nmos_stack,
    uniform_pmos_stack,
)


class TestConstruction:
    def test_uniform_nmos_stack(self):
        stack = uniform_nmos_stack(3, 1e-6)
        assert len(stack) == 3
        assert stack.is_nmos
        assert stack.widths == (1e-6, 1e-6, 1e-6)
        assert stack.input_names() == ("IN1", "IN2", "IN3")

    def test_uniform_pmos_stack(self):
        stack = uniform_pmos_stack(2, 2e-6)
        assert not stack.is_nmos
        assert stack.device_type == "pmos"

    def test_widths_constructor_preserves_order(self):
        stack = nmos_stack_from_widths([1e-6, 2e-6, 3e-6])
        assert stack.widths == (1e-6, 2e-6, 3e-6)
        assert stack[0].width == pytest.approx(1e-6)

    def test_mixed_polarity_rejected(self):
        with pytest.raises(ValueError):
            TransistorStack([nmos("MN1", 1e-6), pmos("MP1", 1e-6)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TransistorStack([nmos("M", 1e-6), nmos("M", 1e-6)])

    def test_empty_stack_rejected(self):
        with pytest.raises(ValueError):
            TransistorStack([])

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError):
            uniform_nmos_stack(0, 1e-6)
        with pytest.raises(ValueError):
            nmos_stack_from_widths([])


class TestStructure:
    def test_internal_node_count(self):
        assert uniform_nmos_stack(4, 1e-6).internal_node_count == 3
        assert uniform_nmos_stack(1, 1e-6).internal_node_count == 0

    def test_iteration_and_indexing(self):
        stack = uniform_nmos_stack(3, 1e-6)
        assert [d.name for d in stack] == ["MN1", "MN2", "MN3"]
        assert stack[2].name == "MN3"

    def test_subchain(self):
        stack = nmos_stack_from_widths([1e-6, 2e-6, 3e-6])
        sub = stack.subchain([0, 2])
        assert sub.widths == (1e-6, 3e-6)

    def test_repr_mentions_polarity_and_depth(self):
        text = repr(uniform_pmos_stack(2, 1e-6))
        assert "pmos" in text and "N=2" in text


class TestInputVectors:
    def test_all_off_vector_nmos(self):
        stack = uniform_nmos_stack(3, 1e-6)
        assert stack.all_off_vector() == (0, 0, 0)
        assert stack.all_on_vector() == (1, 1, 1)

    def test_all_off_vector_pmos(self):
        stack = uniform_pmos_stack(2, 1e-6)
        assert stack.all_off_vector() == (1, 1)
        assert stack.all_on_vector() == (0, 0)

    def test_off_devices_selects_off_only(self):
        stack = uniform_nmos_stack(3, 1e-6)
        off = stack.off_devices((0, 1, 0))
        assert [d.name for d in off] == ["MN1", "MN3"]

    def test_chain_classification(self):
        stack = uniform_nmos_stack(2, 1e-6)
        assert stack.is_off_chain((0, 1))
        assert stack.is_on_chain((1, 1))
        assert not stack.is_off_chain((1, 1))

    def test_wrong_vector_length_rejected(self):
        stack = uniform_nmos_stack(2, 1e-6)
        with pytest.raises(ValueError):
            stack.apply_inputs((0,))

    def test_invalid_logic_value_rejected(self):
        stack = uniform_nmos_stack(2, 1e-6)
        with pytest.raises(ValueError):
            stack.apply_inputs((0, 2))
