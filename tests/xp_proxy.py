"""A minimal non-numpy Array-API namespace for exercising the ``xp`` seam.

``array_api_strict`` (the reference implementation) is an optional CI-only
dependency, so the local suite needs its own way to prove the generic
(functional) code paths run and agree with the in-place numpy fast paths.
This module wraps every numpy array in :class:`ProxyArray` — an object that
is *not* an ``np.ndarray`` and whose ``__array_namespace__`` resolves to
:data:`xp_proxy` rather than numpy — while delegating all arithmetic to
numpy underneath.  Engines and kernels therefore take their Array-API
branches (``supports_inplace`` is False, ``get_namespace`` returns the
proxy), yet compute bit-identical float64 results, which the parity tests
assert exactly.

Only the Array-API surface the repro kernels/engines actually use is
implemented; growing it is intentional when the seam grows.
"""

from __future__ import annotations

import numpy as np


def _unwrap(value):
    if isinstance(value, ProxyArray):
        return value.value
    if isinstance(value, (list, tuple)):
        return type(value)(_unwrap(entry) for entry in value)
    return value


def _wrap(value):
    if isinstance(value, (np.ndarray, np.generic)):
        return ProxyArray(np.asarray(value))
    return value


class ProxyArray:
    """A numpy array masquerading as a foreign Array-API array."""

    __hash__ = None

    def __init__(self, value) -> None:
        self.value = np.asarray(value)

    def __array_namespace__(self, api_version=None):
        return xp_proxy

    def __repr__(self) -> str:
        return f"ProxyArray({self.value!r})"

    # -- inspection ---------------------------------------------------- #
    @property
    def dtype(self):
        return self.value.dtype

    @property
    def shape(self):
        return self.value.shape

    @property
    def ndim(self):
        return self.value.ndim

    @property
    def size(self):
        return self.value.size

    @property
    def T(self):
        return ProxyArray(self.value.T)

    @property
    def mT(self):
        return ProxyArray(np.swapaxes(self.value, -1, -2))

    def __len__(self) -> int:
        return len(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __float__(self) -> float:
        return float(self.value)

    def __int__(self) -> int:
        return int(self.value)

    def __getitem__(self, key):
        return _wrap(self.value[_unwrap(key)])

    # -- interop ------------------------------------------------------- #
    def __dlpack__(self, **kwargs):
        return self.value.__dlpack__(**kwargs)

    def __dlpack_device__(self):
        return self.value.__dlpack_device__()

    # -- arithmetic ---------------------------------------------------- #
    def __add__(self, other):
        return _wrap(self.value + _unwrap(other))

    def __radd__(self, other):
        return _wrap(_unwrap(other) + self.value)

    def __sub__(self, other):
        return _wrap(self.value - _unwrap(other))

    def __rsub__(self, other):
        return _wrap(_unwrap(other) - self.value)

    def __mul__(self, other):
        return _wrap(self.value * _unwrap(other))

    def __rmul__(self, other):
        return _wrap(_unwrap(other) * self.value)

    def __truediv__(self, other):
        return _wrap(self.value / _unwrap(other))

    def __rtruediv__(self, other):
        return _wrap(_unwrap(other) / self.value)

    def __pow__(self, other):
        return _wrap(self.value ** _unwrap(other))

    def __rpow__(self, other):
        return _wrap(_unwrap(other) ** self.value)

    def __matmul__(self, other):
        return _wrap(self.value @ _unwrap(other))

    def __rmatmul__(self, other):
        return _wrap(_unwrap(other) @ self.value)

    def __neg__(self):
        return _wrap(-self.value)

    def __pos__(self):
        return _wrap(+self.value)

    def __abs__(self):
        return _wrap(abs(self.value))

    def __invert__(self):
        return _wrap(~self.value)

    def __and__(self, other):
        return _wrap(self.value & _unwrap(other))

    def __or__(self, other):
        return _wrap(self.value | _unwrap(other))

    # -- comparisons --------------------------------------------------- #
    def __eq__(self, other):
        return _wrap(self.value == _unwrap(other))

    def __ne__(self, other):
        return _wrap(self.value != _unwrap(other))

    def __lt__(self, other):
        return _wrap(self.value < _unwrap(other))

    def __le__(self, other):
        return _wrap(self.value <= _unwrap(other))

    def __gt__(self, other):
        return _wrap(self.value > _unwrap(other))

    def __ge__(self, other):
        return _wrap(self.value >= _unwrap(other))


class _ProxyNamespace:
    """Function namespace: numpy semantics behind Array-API lookups."""

    __name__ = "xp_proxy"

    # dtype objects are namespace attributes in the Array API.
    float64 = np.float64
    float32 = np.float32
    int64 = np.int64
    int32 = np.int32
    bool = np.bool_

    def __getattr__(self, name: str):
        function = getattr(np, name)

        def call(*args, **kwargs):
            args = tuple(_unwrap(argument) for argument in args)
            kwargs = {key: _unwrap(value) for key, value in kwargs.items()}
            return _wrap(function(*args, **kwargs))

        call.__name__ = name
        return call


#: The singleton namespace object every :class:`ProxyArray` resolves to.
xp_proxy = _ProxyNamespace()


def wrap(array) -> ProxyArray:
    """``array`` as a :class:`ProxyArray` (converting via numpy)."""
    return ProxyArray(np.asarray(array))


def unwrap(array) -> np.ndarray:
    """The numpy array behind ``array`` (pass-through for plain arrays)."""
    return np.asarray(_unwrap(array))
