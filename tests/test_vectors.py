"""Tests for repro.circuit.vectors."""

import pytest

from repro.circuit.vectors import (
    VectorDistribution,
    enumerate_vectors,
    vector_from_bits,
    vector_label,
    vector_to_bits,
)


class TestEnumeration:
    def test_counts(self):
        assert len(list(enumerate_vectors(["A"]))) == 2
        assert len(list(enumerate_vectors(["A", "B", "C"]))) == 8

    def test_order_is_binary_ascending(self):
        vectors = list(enumerate_vectors(["A", "B"]))
        assert vectors[0] == {"A": 0, "B": 0}
        assert vectors[-1] == {"A": 1, "B": 1}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_vectors(["A", "A"]))

    def test_empty_names_rejected(self):
        with pytest.raises(ValueError):
            list(enumerate_vectors([]))


class TestConversions:
    def test_from_bits(self):
        assert vector_from_bits(["A", "B"], [1, 0]) == {"A": 1, "B": 0}

    def test_to_bits(self):
        assert vector_to_bits(["B", "A"], {"A": 1, "B": 0}) == (0, 1)

    def test_roundtrip(self):
        names = ["X", "Y", "Z"]
        bits = (1, 1, 0)
        assert vector_to_bits(names, vector_from_bits(names, bits)) == bits

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            vector_from_bits(["A", "B"], [1])

    def test_missing_name_rejected(self):
        with pytest.raises(KeyError):
            vector_to_bits(["A", "B"], {"A": 1})

    def test_label(self):
        assert vector_label(["A", "B"], {"A": 0, "B": 1}) == "A=0 B=1"


class TestVectorDistribution:
    def test_uniform_sums_to_one(self):
        distribution = VectorDistribution.uniform(["A", "B"])
        assert sum(p for _, p in distribution.items()) == pytest.approx(1.0)
        assert len(list(distribution.items())) == 4

    def test_signal_probabilities(self):
        distribution = VectorDistribution.from_signal_probabilities({"A": 0.9, "B": 0.5})
        probabilities = {
            tuple(v[name] for name in ("A", "B")): p for v, p in distribution.items()
        }
        assert probabilities[(1, 1)] == pytest.approx(0.45)
        assert probabilities[(0, 0)] == pytest.approx(0.05)

    def test_expectation(self):
        distribution = VectorDistribution.uniform(["A"])
        expected = distribution.expectation(lambda v: 10.0 if v["A"] else 2.0)
        assert expected == pytest.approx(6.0)

    def test_invalid_probability_sum_rejected(self):
        with pytest.raises(ValueError):
            VectorDistribution(
                input_names=("A",), probabilities=(((0,), 0.4), ((1,), 0.4))
            )

    def test_invalid_signal_probability_rejected(self):
        with pytest.raises(ValueError):
            VectorDistribution.from_signal_probabilities({"A": 1.5})

    def test_vector_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VectorDistribution(
                input_names=("A", "B"), probabilities=(((0,), 1.0),)
            )
