"""Tests for repro.core.thermal.transient (Fig. 9 lumped model)."""

import math

import pytest

from repro.core.thermal.resistance import self_heating_resistance
from repro.core.thermal.transient import (
    device_thermal_network,
    device_thermal_parameters,
    effective_heated_volume,
    self_heating_transient,
    steady_state_self_heating,
)


class TestHeatedVolume:
    def test_hemispherical_formula(self):
        volume = effective_heated_volume(1e-6, 1e-6, spreading_factor=1.0)
        radius = math.sqrt(1e-12 / math.pi)
        assert volume == pytest.approx((2.0 / 3.0) * math.pi * radius**3)

    def test_spreading_factor_cubes(self):
        base = effective_heated_volume(1e-6, 1e-6, spreading_factor=1.0)
        spread = effective_heated_volume(1e-6, 1e-6, spreading_factor=2.0)
        assert spread == pytest.approx(8.0 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_heated_volume(0.0, 1e-6)
        with pytest.raises(ValueError):
            effective_heated_volume(1e-6, 1e-6, spreading_factor=0.0)


class TestDeviceThermalParameters:
    def test_resistance_matches_analytical(self):
        parameters = device_thermal_parameters(10e-6, 0.35e-6)
        assert parameters.resistance == pytest.approx(
            self_heating_resistance(10e-6, 0.35e-6, temperature=300.0)
        )

    def test_time_constant_is_rc(self):
        parameters = device_thermal_parameters(10e-6, 0.35e-6)
        assert parameters.time_constant == pytest.approx(
            parameters.resistance * parameters.capacitance
        )

    def test_microsecond_scale_for_bare_device(self):
        # A bare transistor's intrinsic thermal time constant is far below a
        # millisecond — which is why the 3 Hz measurement sees the probe
        # environment rather than the device itself.
        parameters = device_thermal_parameters(10e-6, 0.35e-6)
        assert parameters.time_constant < 1e-3


class TestNetworks:
    def test_single_stage_steady_state(self):
        network = device_thermal_network(10e-6, 0.35e-6, stages=1)
        assert network.total_resistance == pytest.approx(
            self_heating_resistance(10e-6, 0.35e-6, temperature=300.0)
        )

    def test_two_stage_preserves_total_resistance(self):
        one = device_thermal_network(10e-6, 0.35e-6, stages=1)
        two = device_thermal_network(10e-6, 0.35e-6, stages=2)
        assert two.total_resistance == pytest.approx(one.total_resistance)
        assert len(two.stages) == 2

    def test_unsupported_stage_count(self):
        with pytest.raises(ValueError):
            device_thermal_network(10e-6, 0.35e-6, stages=3)


class TestTransients:
    def test_steady_state_rise(self):
        rise = steady_state_self_heating(10e-3, 10e-6, 0.35e-6)
        assert rise == pytest.approx(
            10e-3 * self_heating_resistance(10e-6, 0.35e-6, temperature=300.0)
        )

    def test_transient_is_monotone_and_converges(self):
        parameters = device_thermal_parameters(10e-6, 0.35e-6)
        tau = parameters.time_constant
        times = [0.0, tau, 2 * tau, 5 * tau, 20 * tau]
        rises = self_heating_transient(5e-3, 10e-6, 0.35e-6, times)
        assert rises[0] == pytest.approx(0.0)
        assert all(b >= a for a, b in zip(rises, rises[1:]))
        assert rises[-1] == pytest.approx(
            steady_state_self_heating(5e-3, 10e-6, 0.35e-6), rel=1e-6
        )

    def test_one_tau_point(self):
        parameters = device_thermal_parameters(10e-6, 0.35e-6)
        rises = self_heating_transient(
            5e-3, 10e-6, 0.35e-6, [parameters.time_constant]
        )
        final = steady_state_self_heating(5e-3, 10e-6, 0.35e-6)
        assert rises[0] == pytest.approx(final * (1.0 - math.exp(-1.0)), rel=1e-6)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            steady_state_self_heating(-1.0, 1e-6, 1e-6)
