"""Tests for repro.floorplan (blocks, floorplans, power maps)."""

import pytest

from repro.core.thermal.images import DieGeometry
from repro.floorplan.block import Block
from repro.floorplan.floorplan import Floorplan, three_block_floorplan
from repro.floorplan.powermap import (
    fdm_sources_from_blocks,
    heat_sources_from_blocks,
    rasterize_block_powers,
)


@pytest.fixture
def die():
    return DieGeometry(width=1e-3, length=1e-3, thickness=0.3e-3)


@pytest.fixture
def plan(die):
    plan = Floorplan(die, name="test")
    plan.add_block(Block("a", x=0.25e-3, y=0.25e-3, width=0.3e-3, length=0.3e-3))
    plan.add_block(Block("b", x=0.75e-3, y=0.75e-3, width=0.2e-3, length=0.4e-3))
    return plan


class TestBlock:
    def test_geometry(self):
        block = Block("a", x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.1e-3)
        assert block.area == pytest.approx(0.2e-3 * 0.1e-3)
        assert block.x_min == pytest.approx(0.4e-3)
        assert block.y_max == pytest.approx(0.55e-3)

    def test_contains(self):
        block = Block("a", x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.1e-3)
        assert block.contains(0.5e-3, 0.5e-3)
        assert not block.contains(0.7e-3, 0.5e-3)

    def test_overlaps(self):
        a = Block("a", x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.2e-3)
        b = Block("b", x=0.6e-3, y=0.6e-3, width=0.2e-3, length=0.2e-3)
        c = Block("c", x=0.9e-3, y=0.9e-3, width=0.1e-3, length=0.1e-3)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_to_heat_source(self):
        block = Block("a", x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.1e-3)
        source = block.to_heat_source(0.4)
        assert source.power == pytest.approx(0.4)
        assert source.name == "a"
        assert source.width == pytest.approx(block.width)

    def test_validation(self):
        with pytest.raises(ValueError):
            Block("", x=0.0, y=0.0, width=1e-3, length=1e-3)
        with pytest.raises(ValueError):
            Block("a", x=0.0, y=0.0, width=0.0, length=1e-3)
        with pytest.raises(ValueError):
            Block("a", x=0.0, y=0.0, width=1e-3, length=1e-3, gate_count=-1)

    def test_transforms(self):
        block = Block("a", x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.1e-3)
        assert block.moved_to(0.1e-3, 0.2e-3).x == pytest.approx(0.1e-3)
        assert block.resized(0.4e-3, 0.2e-3).width == pytest.approx(0.4e-3)


class TestFloorplan:
    def test_block_registry(self, plan):
        assert len(plan) == 2
        assert "a" in plan and "z" not in plan
        assert plan.block("a").name == "a"
        with pytest.raises(KeyError):
            plan.block("z")

    def test_duplicate_name_rejected(self, plan):
        with pytest.raises(ValueError):
            plan.add_block(Block("a", x=0.5e-3, y=0.5e-3, width=0.1e-3, length=0.1e-3))

    def test_block_outside_die_rejected(self, plan):
        with pytest.raises(ValueError):
            plan.add_block(Block("c", x=0.95e-3, y=0.5e-3, width=0.2e-3, length=0.1e-3))

    def test_overlap_rejected_unless_allowed(self, die, plan):
        with pytest.raises(ValueError):
            plan.add_block(Block("c", x=0.3e-3, y=0.3e-3, width=0.2e-3, length=0.2e-3))
        relaxed = Floorplan(die, allow_overlaps=True)
        relaxed.add_block(Block("a", x=0.3e-3, y=0.3e-3, width=0.2e-3, length=0.2e-3))
        relaxed.add_block(Block("b", x=0.35e-3, y=0.35e-3, width=0.2e-3, length=0.2e-3))
        assert len(relaxed) == 2

    def test_utilization(self, plan):
        expected = (0.3e-3 * 0.3e-3 + 0.2e-3 * 0.4e-3) / (1e-3 * 1e-3)
        assert plan.utilization == pytest.approx(expected)

    def test_block_at(self, plan):
        assert plan.block_at(0.25e-3, 0.25e-3).name == "a"
        assert plan.block_at(0.5e-3, 0.05e-3) is None

    def test_heat_sources_skip_zero_power(self, plan):
        sources = plan.to_heat_sources({"a": 0.5})
        assert len(sources) == 1
        assert sources[0].name == "a"

    def test_heat_sources_unknown_block_rejected(self, plan):
        with pytest.raises(KeyError):
            plan.to_heat_sources({"zz": 1.0})

    def test_heat_sources_require_some_power(self, plan):
        with pytest.raises(ValueError):
            plan.to_heat_sources({"a": 0.0})

    def test_three_block_floorplan_matches_fig6_setup(self):
        plan = three_block_floorplan()
        assert len(plan) == 3
        assert plan.die.width == pytest.approx(1e-3)
        assert plan.die.length == pytest.approx(1e-3)
        assert set(plan.block_names()) == {"core", "cache", "io"}


class TestPowerMap:
    def test_power_conservation(self, plan):
        powers = {"a": 0.4, "b": 0.25}
        power_map = rasterize_block_powers(plan, powers, nx=32, ny=32)
        assert power_map.total_power == pytest.approx(0.65, rel=1e-9)

    def test_resolution_independence(self, plan):
        powers = {"a": 0.4, "b": 0.25}
        coarse = rasterize_block_powers(plan, powers, nx=8, ny=8)
        fine = rasterize_block_powers(plan, powers, nx=64, ny=64)
        assert coarse.total_power == pytest.approx(fine.total_power, rel=1e-9)

    def test_peak_density_in_block(self, plan):
        power_map = rasterize_block_powers(plan, {"a": 0.9}, nx=32, ny=32)
        expected_density = 0.9 / (0.3e-3 * 0.3e-3)
        assert power_map.peak_power_density == pytest.approx(expected_density, rel=0.05)

    def test_cell_centers_shape(self, plan):
        power_map = rasterize_block_powers(plan, {"a": 0.1}, nx=16, ny=24)
        xc, yc = power_map.cell_centers()
        assert xc.shape == (16,) and yc.shape == (24,)
        assert power_map.cell_power.shape == (16, 24)

    def test_invalid_grid_rejected(self, plan):
        with pytest.raises(ValueError):
            rasterize_block_powers(plan, {"a": 0.1}, nx=0, ny=8)

    def test_source_converters(self, plan):
        heat = heat_sources_from_blocks(plan, {"a": 0.3, "b": 0.2})
        fdm = fdm_sources_from_blocks(plan, {"a": 0.3, "b": 0.2})
        assert len(heat) == len(fdm) == 2
        assert heat[0].power == pytest.approx(fdm[0].power)
        assert heat[1].x == pytest.approx(fdm[1].x)
