"""Cross-module integration tests.

These tests exercise whole paper workflows end to end: analytical leakage
against the numerical reference across cells and temperatures, the analytical
chip thermal model against the finite-volume solver, the electro-thermal
fixed point against a brute-force alternating solve, and the full
netlist -> floorplan -> co-simulation pipeline.
"""

import pytest

from repro.analysis.metrics import max_absolute_relative_error
from repro.circuit.cells import nand_gate, nor_gate, standard_cell, standard_cell_names
from repro.circuit.netlist import Netlist
from repro.circuit.vectors import enumerate_vectors
from repro.core.cosim import ElectroThermalEngine, NetlistBlockModel, block_models_from_powers
from repro.core.leakage import CircuitLeakageModel, GateLeakageModel
from repro.core.thermal import ChipThermalModel, DieGeometry
from repro.floorplan import Block, Floorplan, three_block_floorplan
from repro.spice import GateLeakageReference, StackDCSolver
from repro.spice.gate_solver import netlist_total_leakage_reference
from repro.thermalsim import FiniteVolumeThermalSolver, RectangularSource


class TestLeakageModelVsReference:
    def test_every_library_cell_fully_off_vectors(self, tech012):
        """Analytical vs numerical leakage for all cells, all-OFF leaking nets."""
        model = GateLeakageModel(tech012)
        reference = GateLeakageReference(tech012)
        for name in standard_cell_names():
            gate = standard_cell(name, tech012)
            for vector in enumerate_vectors(gate.inputs):
                estimate = model.evaluate(gate, vector)
                chains = estimate.chains
                # Restrict the tight check to vectors whose leaking chains
                # contain only OFF devices at full depth (the Fig. 8 regime).
                leaking = gate.leakage_network(vector)
                devices_off = all(
                    device.is_off(vector[device.gate_input])
                    for device in leaking.devices()
                )
                if not devices_off:
                    continue
                numeric = reference.off_current(gate, vector)
                assert estimate.current == pytest.approx(numeric, rel=0.15), (
                    f"{name} {vector}"
                )

    def test_temperature_sweep_tracks_reference(self, tech012):
        from repro.circuit.stack import uniform_nmos_stack

        model = GateLeakageModel(tech012)
        solver = StackDCSolver(tech012)
        stack = uniform_nmos_stack(3, 0.5e-6)
        temperatures = [298.15, 323.15, 348.15, 373.15, 398.15]
        analytic = [model.stack_off_current(stack, temperature=t) for t in temperatures]
        numeric = [solver.off_current(stack, temperature=t) for t in temperatures]
        assert max_absolute_relative_error(analytic, numeric) < 0.12

    def test_netlist_level_total_matches_reference(self, tech012):
        netlist = Netlist("mix", primary_inputs=("A", "B", "C", "D"))
        netlist.add_instance("U1", nand_gate(tech012, 2), {"A": "A", "B": "B", "Z": "N1"})
        netlist.add_instance("U2", nor_gate(tech012, 2), {"A": "C", "B": "D", "Z": "N2"})
        netlist.add_instance("U3", nand_gate(tech012, 2), {"A": "N1", "B": "N2", "Z": "OUT"})
        model = CircuitLeakageModel(tech012)
        vector = {"A": 0, "B": 0, "C": 1, "D": 1}
        analytic = model.total_power(netlist, vector)
        numeric = netlist_total_leakage_reference(netlist, vector, tech012)
        # Mixed ON/OFF chains are over-estimated by the collapse; circuit
        # totals stay within a factor of ~1.5 of the exact solution.
        assert analytic == pytest.approx(numeric, rel=0.6)
        assert analytic >= numeric * 0.9


class TestThermalModelVsFiniteVolume:
    def test_three_block_map_matches_fdm(self):
        """Analytical Eq. 20/21 + images vs the 3-D finite-volume solver."""
        plan = three_block_floorplan()
        powers = {"core": 0.25, "cache": 0.12, "io": 0.06}
        chip = ChipThermalModel(plan.die, ambient_temperature=318.15, image_rings=1)
        chip.add_sources(plan.to_heat_sources(powers))

        fdm = FiniteVolumeThermalSolver(
            die_width=plan.die.width,
            die_length=plan.die.length,
            die_thickness=plan.die.thickness,
            nx=24, ny=24, nz=6,
            ambient_temperature=318.15,
        )
        sources = [
            RectangularSource(x=s.x, y=s.y, width=s.width, length=s.length,
                              power=s.power, name=s.name)
            for s in plan.to_heat_sources(powers)
        ]
        numeric = fdm.solve(sources)

        for block in plan.blocks():
            analytic_rise = chip.temperature_rise_at(block.x, block.y)
            numeric_rise = numeric.rise_at(block.x, block.y)
            # The block footprints (~0.3 mm) are comparable to the die
            # thickness, the hardest regime for the truncated image series;
            # the analytical estimate stays within a factor of two of the
            # finite-volume reference and is conservative (never colder).
            assert 0.8 * numeric_rise <= analytic_rise <= 2.0 * numeric_rise

        # Both agree on which block is hottest.
        analytic_ranking = sorted(
            plan.block_names(),
            key=lambda name: chip.temperature_rise_at(
                plan.block(name).x, plan.block(name).y
            ),
        )
        numeric_ranking = sorted(
            plan.block_names(),
            key=lambda name: numeric.rise_at(plan.block(name).x, plan.block(name).y),
        )
        assert analytic_ranking == numeric_ranking


class TestElectroThermalFixedPoint:
    def test_engine_matches_brute_force_alternation(self, tech012):
        plan = three_block_floorplan()
        models = block_models_from_powers(
            tech012,
            {"core": 0.2, "cache": 0.08, "io": 0.04},
            {"core": 0.04, "cache": 0.015, "io": 0.008},
        )
        engine = ElectroThermalEngine(tech012, plan, models, ambient_temperature=318.15)
        result = engine.solve(tolerance=1e-4, max_iterations=200)

        # Brute force: alternate power evaluation and the full analytical
        # thermal model (no reduced resistance matrix) until converged.
        temperatures = {name: 318.15 for name in plan.block_names()}
        for _ in range(200):
            powers = {
                name: models[name].total_power(temperatures[name])
                for name in plan.block_names()
            }
            chip = ChipThermalModel(plan.die, ambient_temperature=318.15, image_rings=1)
            chip.add_sources(plan.to_heat_sources(powers))
            updated = {
                name: chip.temperature_at(plan.block(name).x, plan.block(name).y)
                for name in plan.block_names()
            }
            if max(abs(updated[n] - temperatures[n]) for n in temperatures) < 1e-4:
                temperatures = updated
                break
            temperatures = updated

        for name in plan.block_names():
            assert result.block_temperatures[name] == pytest.approx(
                temperatures[name], abs=0.05
            )

    def test_netlist_backed_blocks_full_pipeline(self, tech012):
        """Gate-level netlist -> blocks -> electro-thermal fixed point."""
        die = DieGeometry(width=0.4e-3, length=0.4e-3, thickness=0.3e-3)
        plan = Floorplan(die)
        plan.add_block(Block("logic", x=0.2e-3, y=0.2e-3, width=0.3e-3, length=0.3e-3))

        netlist = Netlist("cluster", primary_inputs=("A", "B"))
        netlist.add_instance(
            "U1", nand_gate(tech012, 2), {"A": "A", "B": "B", "Z": "N1"}, block="logic"
        )
        netlist.add_instance(
            "U2", nor_gate(tech012, 2), {"A": "N1", "B": "B", "Z": "OUT"}, block="logic"
        )
        block_model = NetlistBlockModel(
            "logic", netlist, {"A": 0, "B": 1}, tech012
        )
        engine = ElectroThermalEngine(
            tech012, plan, {"logic": block_model}, ambient_temperature=348.15
        )
        result = engine.solve()
        assert result.converged
        assert result.block_temperatures["logic"] > 348.15
        assert result.total_power > 0.0
