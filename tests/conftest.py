"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.technology import cmos_012um, cmos_035um, make_technology


@pytest.fixture(scope="session")
def tech012():
    """The 0.12 um technology used by the paper's leakage validation."""
    return cmos_012um()


@pytest.fixture(scope="session")
def tech035():
    """The 0.35 um technology used by the paper's thermal measurements."""
    return cmos_035um()


@pytest.fixture(scope="session")
def tech100nm():
    """A sub-100nm node for scaling-sensitive tests."""
    return make_technology("70nm")
