"""Tests for repro.circuit.topology (series/parallel networks, OFF chains)."""

import pytest

from repro.circuit.devices import nmos, pmos
from repro.circuit.stack import TransistorStack
from repro.circuit.topology import (
    DeviceLeaf,
    ParallelNetwork,
    SeriesNetwork,
    network_from_stack,
    parallel,
    parallel_of_devices,
    series,
    series_of_devices,
)


@pytest.fixture
def nand2_pulldown():
    # Series NMOS chain of a NAND2 (A closest to ground).
    return series_of_devices([nmos("MN1", 1e-6, "A"), nmos("MN2", 1e-6, "B")])


@pytest.fixture
def nand2_pullup():
    return parallel_of_devices([pmos("MP1", 2e-6, "A"), pmos("MP2", 2e-6, "B")])


class TestConstruction:
    def test_leaf_devices(self):
        leaf = DeviceLeaf(nmos("MN1", 1e-6, "A"))
        assert len(leaf.devices()) == 1
        assert leaf.input_names() == ("A",)

    def test_mixed_polarity_rejected(self):
        with pytest.raises(ValueError):
            series_of_devices([nmos("MN1", 1e-6, "A"), pmos("MP1", 1e-6, "B")])

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            SeriesNetwork([])

    def test_empty_parallel_rejected(self):
        with pytest.raises(ValueError):
            ParallelNetwork([])

    def test_nested_composition(self):
        network = series(
            DeviceLeaf(nmos("MN1", 1e-6, "A")),
            parallel(
                DeviceLeaf(nmos("MN2", 1e-6, "B")),
                DeviceLeaf(nmos("MN3", 1e-6, "C")),
            ),
        )
        assert len(network.devices()) == 3
        assert network.input_names() == ("A", "B", "C")


class TestConduction:
    def test_series_requires_all_on(self, nand2_pulldown):
        assert nand2_pulldown.conducts({"A": 1, "B": 1})
        assert not nand2_pulldown.conducts({"A": 1, "B": 0})

    def test_parallel_requires_any_on(self, nand2_pullup):
        assert nand2_pullup.conducts({"A": 0, "B": 1})
        assert not nand2_pullup.conducts({"A": 1, "B": 1})

    def test_missing_input_raises(self, nand2_pulldown):
        with pytest.raises(KeyError):
            nand2_pulldown.conducts({"A": 1})

    def test_invalid_logic_value_raises(self, nand2_pulldown):
        with pytest.raises(ValueError):
            nand2_pulldown.conducts({"A": 1, "B": 3})


class TestChains:
    def test_series_has_single_chain(self, nand2_pulldown):
        chains = nand2_pulldown.chains()
        assert len(chains) == 1
        assert [d.name for d in chains[0]] == ["MN1", "MN2"]

    def test_parallel_has_one_chain_per_branch(self, nand2_pullup):
        assert len(nand2_pullup.chains()) == 2

    def test_series_of_parallel_enumerates_paths(self):
        network = series(
            parallel(
                DeviceLeaf(nmos("MN1", 1e-6, "A")),
                DeviceLeaf(nmos("MN2", 1e-6, "B")),
            ),
            DeviceLeaf(nmos("MN3", 1e-6, "C")),
        )
        chains = network.chains()
        assert len(chains) == 2
        assert all(chain[-1].name == "MN3" for chain in chains)


class TestOffChains:
    def test_all_off_series_returns_whole_chain(self, nand2_pulldown):
        off = nand2_pulldown.off_chains({"A": 0, "B": 0})
        assert len(off) == 1
        assert len(off[0]) == 2

    def test_partial_off_series_keeps_only_off_devices(self, nand2_pulldown):
        off = nand2_pulldown.off_chains({"A": 0, "B": 1})
        assert len(off) == 1
        assert [d.name for d in off[0].devices] == ["MN1"]

    def test_conducting_network_yields_no_off_chains(self, nand2_pulldown):
        assert nand2_pulldown.off_chains({"A": 1, "B": 1}) == ()

    def test_parallel_off_chains_all_reported(self, nand2_pullup):
        off = nand2_pullup.off_chains({"A": 1, "B": 1})
        assert len(off) == 2

    def test_parallel_with_one_on_branch_discards_off_branches(self, nand2_pullup):
        # One PMOS conducting shorts the output to VDD: the other OFF branch
        # carries no rail-to-rail leakage (the paper's discard rule).
        assert nand2_pullup.off_chains({"A": 0, "B": 1}) == ()

    def test_network_from_stack_round_trip(self):
        stack = TransistorStack([nmos("MN1", 1e-6, "A"), nmos("MN2", 2e-6, "B")])
        network = network_from_stack(stack)
        off = network.off_chains({"A": 0, "B": 0})
        assert off[0].widths == (1e-6, 2e-6)
