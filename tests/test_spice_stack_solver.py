"""Tests for repro.spice.stack_solver (the numerical stack reference)."""

import pytest

from repro.circuit.stack import (
    nmos_stack_from_widths,
    uniform_nmos_stack,
    uniform_pmos_stack,
)
from repro.spice.device_model import MOSFETModel
from repro.spice.stack_solver import StackDCSolver


@pytest.fixture(scope="module")
def solver(tech012):
    return StackDCSolver(tech012)


class TestSingleDevice:
    def test_matches_device_model(self, solver, tech012):
        stack = uniform_nmos_stack(1, 1e-6)
        model = MOSFETModel(tech012.nmos, reference_temperature=tech012.reference_temperature)
        expected = model.off_current(
            1e-6, tech012.nmos.channel_length, tech012.vdd,
            tech012.reference_temperature, tech012.vdd,
        )
        assert solver.off_current(stack) == pytest.approx(expected, rel=1e-6)

    def test_on_device_carries_strong_current(self, solver):
        stack = uniform_nmos_stack(1, 1e-6)
        on = solver.solve(stack, (1,)).current
        off = solver.solve(stack, (0,)).current
        assert on > 1e4 * off


class TestStackSolutions:
    def test_current_continuity(self, solver):
        stack = uniform_nmos_stack(4, 1e-6)
        solution = solver.solve(stack, stack.all_off_vector())
        assert solution.max_continuity_error < 1e-6

    def test_node_voltages_are_ordered_and_bounded(self, solver, tech012):
        stack = uniform_nmos_stack(4, 1e-6)
        solution = solver.solve(stack, stack.all_off_vector())
        nodes = solution.node_magnitudes
        assert len(nodes) == 3
        assert all(0.0 <= v <= tech012.vdd for v in nodes)
        assert all(b >= a for a, b in zip(nodes, nodes[1:]))

    def test_stacking_reduces_current(self, solver):
        currents = [
            solver.off_current(uniform_nmos_stack(n, 1e-6)) for n in (1, 2, 3, 4)
        ]
        assert all(b < a for a, b in zip(currents, currents[1:]))
        # The first stacking step is the big one (factor of several).
        assert currents[0] / currents[1] > 3.0

    def test_on_transistors_barely_change_current(self, solver):
        # A 3-stack with the middle device ON behaves close to a 2-stack of
        # the two OFF devices (the ON device is a tiny series resistance).
        mixed = solver.off_current(uniform_nmos_stack(3, 1e-6), (0, 1, 0))
        pair = solver.off_current(uniform_nmos_stack(2, 1e-6), (0, 0))
        assert mixed == pytest.approx(pair, rel=0.05)

    def test_pmos_stack_solves(self, solver, tech012):
        stack = uniform_pmos_stack(2, 2e-6)
        solution = solver.solve(stack, stack.all_off_vector())
        assert solution.current > 0.0
        # PMOS node voltages are referenced to VDD: absolute voltages near VDD.
        assert all(v > 0.5 * tech012.vdd for v in solution.node_voltages)

    def test_wider_top_device_raises_intermediate_node(self, solver):
        balanced = solver.intermediate_node_voltage(
            nmos_stack_from_widths([1e-6, 1e-6])
        )
        top_heavy = solver.intermediate_node_voltage(
            nmos_stack_from_widths([1e-6, 10e-6])
        )
        assert top_heavy > balanced

    def test_temperature_raises_current(self, solver):
        stack = uniform_nmos_stack(2, 1e-6)
        cold = solver.off_current(stack, temperature=298.15)
        hot = solver.off_current(stack, temperature=358.15)
        assert hot > 5.0 * cold

    def test_vector_length_mismatch_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve(uniform_nmos_stack(2, 1e-6), (0,))

    def test_bad_temperature_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve(uniform_nmos_stack(2, 1e-6), (0, 0), temperature=-10.0)

    def test_node_index_out_of_range(self, solver):
        with pytest.raises(IndexError):
            solver.intermediate_node_voltage(
                uniform_nmos_stack(2, 1e-6), node_index=5
            )

    def test_single_device_has_no_internal_nodes(self, solver):
        with pytest.raises(ValueError):
            solver.intermediate_node_voltage(uniform_nmos_stack(1, 1e-6))
