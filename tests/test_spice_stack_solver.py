"""Tests for repro.spice.stack_solver (the numerical stack reference)."""

import numpy as np
import pytest

from repro.circuit.cells import inverter, nand_gate
from repro.circuit.netlist import Netlist
from repro.circuit.stack import (
    nmos_stack_from_widths,
    uniform_nmos_stack,
    uniform_pmos_stack,
)
from repro.spice.device_model import MOSFETModel
from repro.spice.stack_solver import StackDCSolver, StackJob, netlist_stack_jobs


@pytest.fixture(scope="module")
def solver(tech012):
    return StackDCSolver(tech012)


class TestSingleDevice:
    def test_matches_device_model(self, solver, tech012):
        stack = uniform_nmos_stack(1, 1e-6)
        model = MOSFETModel(tech012.nmos, reference_temperature=tech012.reference_temperature)
        expected = model.off_current(
            1e-6, tech012.nmos.channel_length, tech012.vdd,
            tech012.reference_temperature, tech012.vdd,
        )
        assert solver.off_current(stack) == pytest.approx(expected, rel=1e-6)

    def test_on_device_carries_strong_current(self, solver):
        stack = uniform_nmos_stack(1, 1e-6)
        on = solver.solve(stack, (1,)).current
        off = solver.solve(stack, (0,)).current
        assert on > 1e4 * off


class TestStackSolutions:
    def test_current_continuity(self, solver):
        stack = uniform_nmos_stack(4, 1e-6)
        solution = solver.solve(stack, stack.all_off_vector())
        assert solution.max_continuity_error < 1e-6

    def test_node_voltages_are_ordered_and_bounded(self, solver, tech012):
        stack = uniform_nmos_stack(4, 1e-6)
        solution = solver.solve(stack, stack.all_off_vector())
        nodes = solution.node_magnitudes
        assert len(nodes) == 3
        assert all(0.0 <= v <= tech012.vdd for v in nodes)
        assert all(b >= a for a, b in zip(nodes, nodes[1:]))

    def test_stacking_reduces_current(self, solver):
        currents = [
            solver.off_current(uniform_nmos_stack(n, 1e-6)) for n in (1, 2, 3, 4)
        ]
        assert all(b < a for a, b in zip(currents, currents[1:]))
        # The first stacking step is the big one (factor of several).
        assert currents[0] / currents[1] > 3.0

    def test_on_transistors_barely_change_current(self, solver):
        # A 3-stack with the middle device ON behaves close to a 2-stack of
        # the two OFF devices (the ON device is a tiny series resistance).
        mixed = solver.off_current(uniform_nmos_stack(3, 1e-6), (0, 1, 0))
        pair = solver.off_current(uniform_nmos_stack(2, 1e-6), (0, 0))
        assert mixed == pytest.approx(pair, rel=0.05)

    def test_pmos_stack_solves(self, solver, tech012):
        stack = uniform_pmos_stack(2, 2e-6)
        solution = solver.solve(stack, stack.all_off_vector())
        assert solution.current > 0.0
        # PMOS node voltages are referenced to VDD: absolute voltages near VDD.
        assert all(v > 0.5 * tech012.vdd for v in solution.node_voltages)

    def test_wider_top_device_raises_intermediate_node(self, solver):
        balanced = solver.intermediate_node_voltage(
            nmos_stack_from_widths([1e-6, 1e-6])
        )
        top_heavy = solver.intermediate_node_voltage(
            nmos_stack_from_widths([1e-6, 10e-6])
        )
        assert top_heavy > balanced

    def test_temperature_raises_current(self, solver):
        stack = uniform_nmos_stack(2, 1e-6)
        cold = solver.off_current(stack, temperature=298.15)
        hot = solver.off_current(stack, temperature=358.15)
        assert hot > 5.0 * cold

    def test_vector_length_mismatch_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve(uniform_nmos_stack(2, 1e-6), (0,))

    def test_bad_temperature_rejected(self, solver):
        with pytest.raises(ValueError):
            solver.solve(uniform_nmos_stack(2, 1e-6), (0, 0), temperature=-10.0)

    def test_node_index_out_of_range(self, solver):
        with pytest.raises(IndexError):
            solver.intermediate_node_voltage(
                uniform_nmos_stack(2, 1e-6), node_index=5
            )

    def test_single_device_has_no_internal_nodes(self, solver):
        with pytest.raises(ValueError):
            solver.intermediate_node_voltage(uniform_nmos_stack(1, 1e-6))


class TestBatchedSolve:
    def test_batch_matches_scalar_bit_for_bit(self, solver):
        jobs = [
            StackJob(uniform_nmos_stack(2, 1e-6), (0, 0)),
            StackJob(uniform_nmos_stack(3, 1e-6), (0, 1, 0)),
            StackJob(uniform_pmos_stack(2, 2e-6), (1, 1)),
            StackJob(nmos_stack_from_widths([1e-6, 4e-6]), (0, 0)),
        ]
        batch = solver.solve_batch(jobs)
        assert len(batch) == len(jobs)
        for job, solution in zip(jobs, batch.solutions):
            scalar = solver.solve(job.stack, job.logic_values)
            # Exact equality: the batch runs the same scalar path once per
            # distinct chain and fans the result out.
            assert solution.current == scalar.current
            assert solution.node_voltages == scalar.node_voltages
            assert solution.device_currents == scalar.device_currents

    def test_tuple_jobs_accepted(self, solver):
        stack = uniform_nmos_stack(2, 1e-6)
        from_tuples = solver.solve_batch([(stack, (0, 0)), (stack, [0, 1])])
        assert from_tuples.currents.shape == (2,)
        assert from_tuples.solutions[0].current == solver.solve(stack, (0, 0)).current

    def test_duplicates_share_one_solve(self, solver):
        triple = StackJob(uniform_nmos_stack(3, 1e-6), (0, 0, 0))
        pair = StackJob(uniform_nmos_stack(2, 1e-6), (0, 0))
        batch = solver.solve_batch([triple] * 5 + [pair])
        assert len(batch) == 6
        assert batch.distinct_solves == 2
        currents = batch.currents
        assert np.all(currents[:5] == currents[0])
        assert currents[5] != currents[0]

    def test_batch_temperature_is_honoured(self, solver):
        jobs = [StackJob(uniform_nmos_stack(2, 1e-6), (0, 0))]
        cold = solver.solve_batch(jobs, temperature=298.15)
        hot = solver.solve_batch(jobs, temperature=358.15)
        assert hot.currents[0] > 5.0 * cold.currents[0]

    def test_netlist_jobs_cover_every_off_chain(self, solver, tech012):
        # Two identical inverters on the same input produce identical
        # chains, so the batch needs fewer distinct solves than jobs.
        netlist = Netlist("pair", primary_inputs=("A", "B"))
        netlist.add_instance("U1", inverter(tech012), {"A": "A", "Z": "X"})
        netlist.add_instance("U2", inverter(tech012), {"A": "A", "Z": "Y"})
        netlist.add_instance(
            "U3", nand_gate(tech012, 2), {"A": "A", "B": "B", "Z": "Z"}
        )
        jobs = netlist_stack_jobs(netlist, {"A": 0, "B": 1})
        assert jobs  # every gate contributes its non-conducting chains
        for job in jobs:
            assert len(job.logic_values) == len(job.stack.devices)
        batch = solver.solve_batch(jobs)
        assert batch.distinct_solves < len(batch)
        assert np.all(batch.currents > 0.0)
