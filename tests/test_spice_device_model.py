"""Tests for repro.spice.device_model."""

import math

import pytest

from repro.spice.device_model import MOSFETModel, OperatingPoint
from repro.technology import thermal_voltage


@pytest.fixture
def nmodel(tech012):
    return MOSFETModel(tech012.nmos, reference_temperature=tech012.reference_temperature)


def point(vgs=0.0, vds=1.2, vsb=0.0, temperature=298.15, vdd=1.2):
    return OperatingPoint(vgs=vgs, vds=vds, vsb=vsb, temperature=temperature, vdd=vdd)


class TestSubthresholdCurrent:
    def test_scales_linearly_with_width(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        narrow = nmodel.subthreshold_current(1e-6, length, point())
        wide = nmodel.subthreshold_current(2e-6, length, point())
        assert wide == pytest.approx(2.0 * narrow)

    def test_scales_inversely_with_length(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        short = nmodel.subthreshold_current(1e-6, length, point())
        long = nmodel.subthreshold_current(1e-6, 2.0 * length, point())
        assert short == pytest.approx(2.0 * long)

    def test_exponential_in_vgs(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        vt = thermal_voltage(298.15)
        base = nmodel.subthreshold_current(1e-6, length, point(vgs=0.0))
        raised = nmodel.subthreshold_current(
            1e-6, length, point(vgs=tech012.nmos.n * vt)
        )
        assert raised / base == pytest.approx(math.e, rel=1e-3)

    def test_drain_factor_kills_current_at_zero_vds(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        assert nmodel.subthreshold_current(1e-6, length, point(vds=0.0)) == 0.0

    def test_increases_with_temperature(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        cold = nmodel.subthreshold_current(1e-6, length, point(temperature=298.15))
        hot = nmodel.subthreshold_current(1e-6, length, point(temperature=358.15))
        assert hot > 5.0 * cold

    def test_rejects_bad_geometry(self, nmodel):
        with pytest.raises(ValueError):
            nmodel.subthreshold_current(0.0, 1e-7, point())


class TestStrongInversion:
    def test_zero_below_threshold(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        assert nmodel.strong_inversion_current(1e-6, length, point(vgs=0.1)) == 0.0

    def test_on_current_scale(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        on = nmodel.strong_inversion_current(
            1e-6, length, point(vgs=1.2, vds=1.2)
        )
        expected = tech012.nmos.saturation_current_density * 1e-6
        assert on == pytest.approx(expected, rel=0.1)

    def test_triode_below_saturation(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        saturated = nmodel.strong_inversion_current(1e-6, length, point(vgs=1.2, vds=1.2))
        triode = nmodel.strong_inversion_current(1e-6, length, point(vgs=1.2, vds=0.05))
        assert 0.0 < triode < saturated

    def test_on_current_drops_with_temperature(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        cold = nmodel.strong_inversion_current(1e-6, length, point(vgs=1.2, vds=1.2))
        hot = nmodel.strong_inversion_current(
            1e-6, length, point(vgs=1.2, vds=1.2, temperature=398.15)
        )
        assert hot < cold


class TestTotalCurrent:
    def test_monotone_in_drain_voltage(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        currents = [
            nmodel.drain_current(1e-6, length, point(vgs=0.0, vds=v))
            for v in (0.01, 0.05, 0.2, 0.6, 1.2)
        ]
        assert all(b >= a for a, b in zip(currents, currents[1:]))

    def test_antisymmetric_in_reverse_bias(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        forward = nmodel.drain_current(1e-6, length, point(vgs=0.3, vds=0.2))
        reverse = nmodel.drain_current(
            1e-6, length, point(vgs=0.1, vds=-0.2, vsb=0.2)
        )
        # Swapping source and drain mirrors the current sign.
        assert reverse == pytest.approx(-forward, rel=1e-9)

    def test_off_current_helper(self, nmodel, tech012):
        length = tech012.nmos.channel_length
        off = nmodel.off_current(1e-6, length, vds=1.2, temperature=298.15, vdd=1.2)
        direct = nmodel.drain_current(1e-6, length, point(vgs=0.0, vds=1.2))
        assert off == pytest.approx(direct)

    def test_pmos_model_has_lower_leakage(self, tech012):
        nmos_model = MOSFETModel(tech012.nmos)
        pmos_model = MOSFETModel(tech012.pmos)
        length = tech012.nmos.channel_length
        assert pmos_model.off_current(
            1e-6, length, 1.2, 298.15, 1.2
        ) < nmos_model.off_current(1e-6, length, 1.2, 298.15, 1.2)

    def test_invalid_alpha_rejected(self, tech012):
        with pytest.raises(ValueError):
            MOSFETModel(tech012.nmos, alpha=-1.0)
