"""Parity and property tests for the vectorized thermal kernel.

The kernel (:mod:`repro.core.thermal.kernel`) must reproduce the scalar
Eq. 20/21 path to round-off on arbitrary dies, source sets and image-ring
counts — that is the contract that lets every consumer (surface maps,
resistance matrices, analysis helpers) switch to the batched path without
changing any physics.
"""

import numpy as np
import pytest

from repro.core.cosim.engine import ElectroThermalEngine
from repro.core.cosim.coupling import block_models_from_powers
from repro.core.thermal.images import (
    DieGeometry,
    ImageExpansion,
    lateral_axis_positions,
)
from repro.core.thermal.kernel import SourceArray, pairwise_rise, temperature_rise
from repro.core.thermal.profile import rectangle_temperature
from repro.core.thermal.sources import HeatSource
from repro.core.thermal.superposition import (
    ChipThermalModel,
    superposed_temperature_rise,
)
from repro.floorplan import three_block_floorplan

K_SI = 148.0
#: Required agreement between the vectorized kernel and the scalar path.
PARITY = 1e-10


def random_case(rng, max_sources: int = 6):
    """A random die with a random set of on-die surface sources."""
    width = float(rng.uniform(0.5e-3, 3e-3))
    length = float(rng.uniform(0.5e-3, 3e-3))
    thickness = float(rng.uniform(0.2e-3, 0.7e-3))
    die = DieGeometry(width=width, length=length, thickness=thickness)
    sources = []
    for index in range(int(rng.integers(1, max_sources + 1))):
        source_width = float(rng.uniform(0.05, 0.3) * width)
        source_length = float(rng.uniform(0.05, 0.3) * length)
        sources.append(
            HeatSource(
                x=float(rng.uniform(0.5 * source_width, width - 0.5 * source_width)),
                y=float(rng.uniform(0.5 * source_length, length - 0.5 * source_length)),
                width=source_width,
                length=source_length,
                power=float(rng.uniform(0.01, 1.0)),
                name=f"s{index}",
            )
        )
    return die, sources


def random_points(rng, die, count: int = 25) -> np.ndarray:
    return np.column_stack(
        [rng.uniform(0.0, die.width, count), rng.uniform(0.0, die.length, count)]
    )


class TestScalarParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_dies_sources_and_rings(self, seed):
        rng = np.random.default_rng(seed)
        die, sources = random_case(rng)
        expansion = ImageExpansion(
            die,
            rings=int(rng.integers(0, 3)),
            include_bottom_images=bool(rng.integers(0, 2)),
            bottom_image_terms=int(rng.integers(1, 5)),
        )
        expanded_list = expansion.expand(sources)
        expanded_array, _ = expansion.expand_arrays(sources)
        points = random_points(rng, die)
        batched = temperature_rise(points, expanded_array, K_SI)
        scalar = np.asarray(
            [
                superposed_temperature_rise(x, y, expanded_list, K_SI)
                for x, y in points
            ]
        )
        assert np.abs(batched - scalar).max() <= PARITY

    def test_pairwise_matches_per_source_scalar(self):
        rng = np.random.default_rng(42)
        die, sources = random_case(rng)
        expanded = ImageExpansion(die, rings=1).expand(sources)
        points = random_points(rng, die, count=10)
        matrix = pairwise_rise(points, expanded, K_SI)
        assert matrix.shape == (10, len(expanded))
        for i, (x, y) in enumerate(points):
            for j, source in enumerate(expanded):
                assert matrix[i, j] == pytest.approx(
                    rectangle_temperature(x, y, source, K_SI), abs=PARITY
                )

    def test_grouped_pairwise_sums_image_families(self):
        rng = np.random.default_rng(7)
        die, sources = random_case(rng, max_sources=4)
        expansion = ImageExpansion(die, rings=2)
        expanded_array, groups = expansion.expand_arrays(sources)
        points = random_points(rng, die, count=8)
        grouped = pairwise_rise(
            points, expanded_array, K_SI, groups=groups, group_count=len(sources)
        )
        assert grouped.shape == (8, len(sources))
        for j, source in enumerate(sources):
            family = expansion.expand([source])
            for i, (x, y) in enumerate(points):
                assert grouped[i, j] == pytest.approx(
                    superposed_temperature_rise(x, y, family, K_SI), abs=PARITY
                )

    def test_chunking_does_not_change_the_result(self):
        rng = np.random.default_rng(3)
        die, sources = random_case(rng)
        expanded, _ = ImageExpansion(die, rings=2).expand_arrays(sources)
        points = random_points(rng, die, count=64)
        full = temperature_rise(points, expanded, K_SI)
        chunked = temperature_rise(points, expanded, K_SI, chunk_elements=16)
        assert np.array_equal(full, chunked)

    def test_surface_map_matches_scalar_double_loop(self):
        die = DieGeometry(width=1e-3, length=1.4e-3, thickness=0.3e-3)
        chip = ChipThermalModel(die, image_rings=1)
        chip.add_sources(
            [
                HeatSource(0.3e-3, 0.4e-3, 0.1e-3, 0.2e-3, 0.3, name="a"),
                HeatSource(0.7e-3, 1.0e-3, 0.2e-3, 0.1e-3, 0.15, name="b"),
            ]
        )
        surface = chip.surface_map(nx=9, ny=9)
        expanded = chip.expansion.expand(list(chip.sources))
        for i, x in enumerate(surface.x_coordinates):
            for j, y in enumerate(surface.y_coordinates):
                scalar = chip.ambient_temperature + superposed_temperature_rise(
                    float(x), float(y), expanded, chip.conductivity
                )
                assert surface.temperature[i, j] == pytest.approx(scalar, abs=PARITY)

    def test_resistance_matrix_matches_scalar_assembly(self, tech012):
        plan = three_block_floorplan()
        models = block_models_from_powers(
            tech012,
            dynamic_powers={"core": 0.25, "cache": 0.10, "io": 0.05},
            static_powers_at_reference={"core": 0.05, "cache": 0.02, "io": 0.01},
        )
        engine = ElectroThermalEngine(
            tech012, plan, models, ambient_temperature=318.15, image_rings=2
        )
        expansion = ImageExpansion(plan.die, rings=2, include_bottom_images=True)
        matrix = engine.resistance_matrix
        for j, emitter_name in enumerate(engine.modelled_blocks):
            family = expansion.expand([plan.block(emitter_name).to_heat_source(1.0)])
            for i, observer_name in enumerate(engine.modelled_blocks):
                observer = plan.block(observer_name)
                scalar = superposed_temperature_rise(
                    observer.x, observer.y, family, engine.conductivity
                )
                assert matrix[i, j] == pytest.approx(scalar, abs=PARITY)


class TestSuperpositionProperty:
    def test_linearity_in_source_powers(self):
        """Eq. 21 linearity: T(a*P1 + b*P2) == a*T(P1) + b*T(P2)."""
        rng = np.random.default_rng(11)
        die, sources = random_case(rng, max_sources=5)
        expanded, _ = ImageExpansion(die, rings=1).expand_arrays(sources)
        points = random_points(rng, die, count=30)
        powers_one = rng.uniform(0.0, 1.0, len(expanded))
        powers_two = rng.uniform(0.0, 1.0, len(expanded))
        alpha, beta = 0.7, 2.5
        combined = temperature_rise(
            points, expanded.with_powers(alpha * powers_one + beta * powers_two), K_SI
        )
        separate = alpha * temperature_rise(
            points, expanded.with_powers(powers_one), K_SI
        ) + beta * temperature_rise(points, expanded.with_powers(powers_two), K_SI)
        scale = np.abs(separate).max()
        assert np.abs(combined - separate).max() <= 1e-9 * max(scale, 1.0)

    def test_doubling_every_power_doubles_the_field(self):
        rng = np.random.default_rng(5)
        die, sources = random_case(rng)
        chip = ChipThermalModel(die, image_rings=1)
        chip.add_sources(sources)
        points = random_points(rng, die, count=12)
        base = chip.temperature_rises(points)
        chip.set_source_powers({s.name: 2.0 * s.power for s in sources})
        doubled = chip.temperature_rises(points)
        assert np.allclose(doubled, 2.0 * base, rtol=1e-12, atol=1e-12)


class TestSourceArray:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        _, sources = random_case(rng)
        array = SourceArray.from_sources(sources)
        assert len(array) == len(sources)
        unpacked = array.to_sources()
        for original, copy in zip(sources, unpacked):
            assert copy.x == original.x and copy.power == original.power
        assert array.total_power() == pytest.approx(sum(s.power for s in sources))

    def test_expand_arrays_matches_expand_exactly(self):
        rng = np.random.default_rng(2)
        die, sources = random_case(rng)
        for rings, bottom in ((0, True), (1, True), (2, False)):
            expansion = ImageExpansion(die, rings=rings, include_bottom_images=bottom)
            packed = SourceArray.from_sources(expansion.expand(sources))
            array, groups = expansion.expand_arrays(sources)
            for field in ("x", "y", "width", "length", "power", "depth"):
                assert np.array_equal(getattr(packed, field), getattr(array, field))
            assert groups.shape == (len(array),)
            assert np.all(np.diff(groups) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SourceArray(
                x=np.zeros(2),
                y=np.zeros(2),
                width=np.asarray([1e-6, -1e-6]),
                length=np.ones(2) * 1e-6,
                power=np.ones(2),
                depth=np.zeros(2),
            )
        with pytest.raises(ValueError):
            temperature_rise(np.zeros((3, 3)), SourceArray.from_sources([]), K_SI)

    def test_empty_source_set_rejected(self):
        with pytest.raises(ValueError):
            temperature_rise(np.zeros((3, 2)), [], K_SI)


class TestIntegerRingIndices:
    def test_generic_coordinate_yields_all_distinct_images(self):
        positions = lateral_axis_positions(0.3e-3, 1e-3, 2)
        assert positions.size == 2 * (2 * 2 + 1)
        assert np.unique(positions).size == positions.size

    def test_near_plane_images_are_not_collapsed(self):
        # A coordinate within 1e-15 of a mirror plane produces physically
        # distinct image pairs; the old round(v, 15) dedup collapsed them.
        tiny = 1e-16
        positions = lateral_axis_positions(tiny, 1e-3, 1)
        assert positions.size == 6
        assert np.unique(positions).size == 6

    def test_exact_plane_coordinate_dedupes_symbolically(self):
        extent = 1e-3
        on_left = lateral_axis_positions(0.0, extent, 1)
        on_right = lateral_axis_positions(extent, extent, 1)
        # Coincident mirror pairs collapse to exact integer multiples.
        assert np.array_equal(on_left, np.asarray([-2, 0, 2]) * extent)
        assert np.array_equal(on_right, np.asarray([-3, -1, 1, 3]) * extent)

    def test_ring_zero_is_identity(self):
        assert np.array_equal(lateral_axis_positions(0.4e-3, 1e-3, 0), [0.4e-3])

    def test_negative_rings_rejected(self):
        with pytest.raises(ValueError):
            lateral_axis_positions(0.1, 1.0, -1)


class TestSetSourcePowers:
    @pytest.fixture
    def chip(self):
        die = DieGeometry(width=1e-3, length=1e-3, thickness=0.3e-3)
        chip = ChipThermalModel(die)
        chip.add_sources(
            [
                HeatSource(0.3e-3, 0.3e-3, 0.1e-3, 0.1e-3, 0.3, name="a"),
                HeatSource(0.7e-3, 0.6e-3, 0.1e-3, 0.1e-3, 0.2, name="b"),
            ]
        )
        return chip

    def test_unknown_names_raise_key_error(self, chip):
        with pytest.raises(KeyError) as excinfo:
            chip.set_source_powers({"a": 0.5, "ghost": 1.0, "zombie": 2.0})
        message = str(excinfo.value)
        assert "ghost" in message and "zombie" in message

    def test_failed_update_leaves_powers_untouched(self, chip):
        before = chip.total_power()
        with pytest.raises(KeyError):
            chip.set_source_powers({"ghost": 1.0})
        assert chip.total_power() == pytest.approx(before)

    def test_update_preserves_geometry_and_names(self, chip):
        chip.set_source_powers({"a": 0.6})
        updated = {source.name: source for source in chip.sources}
        assert updated["a"].power == pytest.approx(0.6)
        assert updated["a"].x == pytest.approx(0.3e-3)
        assert updated["b"].power == pytest.approx(0.2)
