"""Tests for repro.core.leakage.circuit_leakage."""

import pytest

from repro.circuit.cells import inverter, nand_gate, nor_gate
from repro.circuit.netlist import Netlist, chain_of_inverters
from repro.core.leakage.circuit_leakage import CircuitLeakageModel


@pytest.fixture(scope="module")
def model(tech012):
    return CircuitLeakageModel(tech012)


@pytest.fixture
def blocked_netlist(tech012):
    netlist = Netlist("blocked", primary_inputs=("A", "B", "C"))
    netlist.add_instance(
        "U1", nand_gate(tech012, 2), {"A": "A", "B": "B", "Z": "N1"}, block="alu"
    )
    netlist.add_instance(
        "U2", nor_gate(tech012, 2), {"A": "N1", "B": "C", "Z": "N2"}, block="alu"
    )
    netlist.add_instance("U3", inverter(tech012), {"A": "N2", "Z": "OUT"}, block="io")
    return netlist


class TestAnalysis:
    def test_total_is_sum_of_instances(self, model, blocked_netlist):
        report = model.analyze(blocked_netlist, {"A": 0, "B": 1, "C": 0})
        assert report.total_power == pytest.approx(
            sum(e.power for e in report.instance_estimates.values())
        )
        assert report.total_current == pytest.approx(
            sum(e.current for e in report.instance_estimates.values())
        )

    def test_block_power_partition(self, model, blocked_netlist):
        report = model.analyze(blocked_netlist, {"A": 0, "B": 1, "C": 0})
        assert set(report.block_power) == {"alu", "io"}
        assert sum(report.block_power.values()) == pytest.approx(report.total_power)

    def test_leakage_depends_on_input_vector(self, model, blocked_netlist):
        low = model.total_power(blocked_netlist, {"A": 0, "B": 0, "C": 0})
        high = model.total_power(blocked_netlist, {"A": 1, "B": 1, "C": 1})
        assert low != pytest.approx(high, rel=1e-3)

    def test_instances_sorted_by_power(self, model, blocked_netlist):
        report = model.analyze(blocked_netlist, {"A": 1, "B": 0, "C": 1})
        ordered = report.instances_sorted_by_power()
        powers = [e.power for e in ordered]
        assert powers == sorted(powers, reverse=True)

    def test_average_over_vectors(self, model, blocked_netlist):
        vectors = {
            "v0": {"A": 0, "B": 0, "C": 0},
            "v1": {"A": 1, "B": 1, "C": 1},
        }
        average = model.average_total_power(blocked_netlist, vectors)
        individual = [
            model.total_power(blocked_netlist, vector) for vector in vectors.values()
        ]
        assert average == pytest.approx(sum(individual) / 2.0)

    def test_average_requires_vectors(self, model, blocked_netlist):
        with pytest.raises(ValueError):
            model.average_total_power(blocked_netlist, {})


class TestTemperatureHandling:
    def test_uniform_temperature_scaling(self, model, blocked_netlist):
        cold = model.total_power(blocked_netlist, {"A": 0, "B": 0, "C": 0}, 298.15)
        hot = model.total_power(blocked_netlist, {"A": 0, "B": 0, "C": 0}, 398.15)
        assert hot > 10.0 * cold

    def test_per_block_temperatures(self, model, blocked_netlist, tech012):
        uniform = model.analyze(
            blocked_netlist, {"A": 0, "B": 0, "C": 0}, temperature=350.0
        )
        hot_alu = model.analyze(
            blocked_netlist,
            {"A": 0, "B": 0, "C": 0},
            temperature={"alu": 350.0, "io": tech012.reference_temperature},
        )
        assert hot_alu.block_power["alu"] == pytest.approx(
            uniform.block_power["alu"]
        )
        assert hot_alu.block_power["io"] < uniform.block_power["io"]

    def test_unlisted_block_falls_back_to_reference(self, model, blocked_netlist, tech012):
        report = model.analyze(
            blocked_netlist, {"A": 0, "B": 0, "C": 0}, temperature={"alu": 360.0}
        )
        reference_report = model.analyze(
            blocked_netlist, {"A": 0, "B": 0, "C": 0},
            temperature=tech012.reference_temperature,
        )
        assert report.block_power["io"] == pytest.approx(
            reference_report.block_power["io"]
        )


class TestScalesToLargerNetlists:
    def test_inverter_chain_total_scales_with_depth(self, model, tech012):
        shallow = model.total_power(chain_of_inverters(tech012, 10), {"IN": 0})
        deep = model.total_power(chain_of_inverters(tech012, 40), {"IN": 0})
        assert deep == pytest.approx(4.0 * shallow, rel=0.15)

    def test_report_covers_every_instance(self, model, tech012):
        netlist = chain_of_inverters(tech012, 25)
        report = model.analyze(netlist, {"IN": 1})
        assert len(report.instance_estimates) == 25
