"""The ``xp`` seam under a non-numpy Array-API namespace.

Every test runs the generic (functional) code paths — the ones numpy never
takes because its in-place fast paths stay enabled — and pins their float64
results to the numpy reference **exactly**: the functional mirrors execute
the same per-element operations in the same order, so IEEE determinism
makes the agreement bit-for-bit, not approximate.

Two namespaces are exercised:

* :mod:`xp_proxy` — the suite's own numpy-delegating wrapper, always
  available, proving the generic branches run and agree;
* ``array_api_strict`` — the standard's reference implementation
  (CI ``array-api`` job; skipped locally when not installed), proving no
  NumPy-only idiom leaks through the seam.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backend import (
    get_namespace,
    resolve_namespace,
    supports_inplace,
    to_numpy,
)
from repro.core.cosim import Scenario, ScenarioEngine
from repro.core.cosim.transient_scenarios import (
    PWMActivity,
    StepActivity,
    TransientScenarioEngine,
)
from repro.core.leakage import kernel as leakage_kernel
from repro.core.thermal import kernel as thermal_kernel
from repro.core.thermal.sources import HeatSource
from repro.floorplan import three_block_floorplan
from repro.technology import make_technology

from xp_proxy import xp_proxy

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC_REF = {"core": 0.045, "cache": 0.018, "io": 0.008}


def _namespaces():
    namespaces = [pytest.param(xp_proxy, id="xp_proxy")]
    try:
        import array_api_strict
    except ImportError:
        namespaces.append(
            pytest.param(
                None,
                id="array_api_strict",
                marks=pytest.mark.skip(reason="array_api_strict not installed"),
            )
        )
    else:
        namespaces.append(pytest.param(array_api_strict, id="array_api_strict"))
    return namespaces


@pytest.fixture(params=_namespaces())
def ns(request):
    return request.param


@pytest.fixture(scope="module")
def scenarios():
    technologies = [make_technology(name) for name in ("0.18um", "0.12um", "70nm")]
    return [
        Scenario(
            technology,
            supply_voltage=technology.vdd * scale,
            ambient_temperature=ambient,
            activity=activity,
        )
        for technology in technologies
        for scale in (0.9, 1.1)
        for ambient, activity in ((298.15, 1.0), (348.15, 0.4))
    ]


def _sources():
    return [
        HeatSource(x=0.2e-3, y=0.3e-3, width=0.25e-3, length=0.12e-3, power=0.8),
        HeatSource(x=0.7e-3, y=0.6e-3, width=0.1e-3, length=0.4e-3, power=0.35),
        HeatSource(x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.2e-3, power=-0.2,
                   depth=0.3e-3),
        HeatSource(x=0.8e-3, y=0.2e-3, width=0.05e-3, length=0.3e-3, power=0.5,
                   depth=0.5e-3),
    ]


def _points():
    rng = np.random.default_rng(20050307)
    return rng.uniform(0.0, 1e-3, size=(37, 2))


class TestNamespaceResolution:
    def test_proxy_arrays_resolve_to_the_proxy_namespace(self):
        array = xp_proxy.asarray([1.0, 2.0])
        assert get_namespace(array) is xp_proxy
        assert not supports_inplace(xp_proxy)

    def test_namespace_objects_pass_through_resolution(self, ns):
        assert resolve_namespace(ns) is ns


class TestThermalKernel:
    def test_temperature_rise_matches_numpy_bitwise(self, ns):
        sources = _sources()
        points = _points()
        reference = thermal_kernel.temperature_rise(
            points, thermal_kernel.SourceArray.from_sources(sources), 120.0
        )
        generic = thermal_kernel.temperature_rise(
            ns.asarray(points),
            thermal_kernel.SourceArray.from_sources(sources, xp=ns),
            120.0,
        )
        np.testing.assert_array_equal(to_numpy(generic), reference)

    def test_temperature_rise_chunked_matches_monolithic(self, ns):
        sources = _sources()
        points = _points()
        array = thermal_kernel.SourceArray.from_sources(sources, xp=ns)
        monolithic = thermal_kernel.temperature_rise(
            ns.asarray(points), array, 120.0
        )
        chunked = thermal_kernel.temperature_rise(
            ns.asarray(points), array, 120.0, chunk_elements=16
        )
        np.testing.assert_array_equal(to_numpy(chunked), to_numpy(monolithic))

    def test_pairwise_rise_matches_numpy_bitwise(self, ns):
        sources = _sources()
        points = _points()
        groups = np.asarray([0, 1, 0, 1])
        reference = thermal_kernel.pairwise_rise(
            points,
            thermal_kernel.SourceArray.from_sources(sources),
            120.0,
            groups=groups,
            group_count=2,
        )
        generic = thermal_kernel.pairwise_rise(
            ns.asarray(points),
            thermal_kernel.SourceArray.from_sources(sources, xp=ns),
            120.0,
            groups=groups,
            group_count=2,
        )
        np.testing.assert_array_equal(to_numpy(generic), reference)


class TestLeakageKernel:
    def test_safe_exp_clips_in_any_namespace(self, ns):
        values = ns.asarray([-2000.0, -1.0, 0.0, 1.0, 2000.0])
        result = to_numpy(leakage_kernel.safe_exp(values))
        reference = leakage_kernel.safe_exp(
            np.asarray([-2000.0, -1.0, 0.0, 1.0, 2000.0])
        )
        np.testing.assert_array_equal(result, reference)

    def test_subthreshold_current_matches_numpy_bitwise(self, ns, tech012):
        rng = np.random.default_rng(7)
        count = 9
        widths = rng.uniform(0.05e-6, 20e-6, count)
        vgs = rng.uniform(-0.3, 0.4, count)
        vds = rng.uniform(0.005, tech012.vdd, count)
        vsb = rng.uniform(0.0, 0.5, count)
        temperatures = rng.uniform(280.0, 400.0, count)
        reference = leakage_kernel.subthreshold_current(
            leakage_kernel.DeviceArray.from_device(tech012.nmos),
            widths,
            vgs,
            vds,
            vsb,
            tech012.vdd,
            temperatures,
            tech012.reference_temperature,
        )
        generic = leakage_kernel.subthreshold_current(
            leakage_kernel.DeviceArray.from_device(tech012.nmos, xp=ns),
            ns.asarray(widths),
            ns.asarray(vgs),
            ns.asarray(vds),
            ns.asarray(vsb),
            tech012.vdd,
            ns.asarray(temperatures),
            tech012.reference_temperature,
        )
        np.testing.assert_array_equal(to_numpy(generic), reference)

    def test_collapse_stacks_matches_numpy_bitwise(self, ns, tech012):
        chains = [[1.0e-6, 2.0e-6, 1.5e-6], [0.6e-6, 0.6e-6, 0.6e-6]]
        temperatures = np.asarray([318.15, 358.15])
        reference = leakage_kernel.collapse_stacks(
            leakage_kernel.StackArray.from_chains(chains),
            leakage_kernel.DeviceArray.from_device(tech012.nmos),
            tech012.vdd,
            temperatures,
        )
        generic = leakage_kernel.collapse_stacks(
            leakage_kernel.StackArray.from_chains(chains, xp=ns),
            leakage_kernel.DeviceArray.from_device(tech012.nmos, xp=ns),
            tech012.vdd,
            ns.asarray(temperatures),
        )
        np.testing.assert_array_equal(
            to_numpy(generic.effective_width), reference.effective_width
        )
        np.testing.assert_array_equal(
            to_numpy(generic.node_voltages), reference.node_voltages
        )
        np.testing.assert_array_equal(
            to_numpy(generic.top_node_voltage), reference.top_node_voltage
        )


class TestSteadyEngine:
    def test_solve_matches_numpy_bitwise(self, ns, scenarios):
        plan = three_block_floorplan()
        reference = ScenarioEngine(plan, DYNAMIC, STATIC_REF).solve(scenarios)
        result = ScenarioEngine(
            plan, DYNAMIC, STATIC_REF, array_backend=ns
        ).solve(scenarios)
        np.testing.assert_array_equal(
            result.block_temperatures, reference.block_temperatures
        )
        np.testing.assert_array_equal(result.static_power, reference.static_power)
        np.testing.assert_array_equal(result.converged, reference.converged)
        np.testing.assert_array_equal(
            result.iteration_counts, reference.iteration_counts
        )

    def test_results_leave_the_engine_as_numpy(self, ns, scenarios):
        result = ScenarioEngine(
            three_block_floorplan(), DYNAMIC, STATIC_REF, array_backend=ns
        ).solve(scenarios[:3])
        assert isinstance(result.block_temperatures, np.ndarray)
        assert result.block_temperatures.dtype == np.float64


class TestTransientEngine:
    def test_simulate_matches_numpy_bitwise(self, ns, scenarios):
        plan = three_block_floorplan()
        activity = StepActivity(before=0.3, after=1.0, switch_times=4e-3)
        kwargs = dict(
            duration=2e-2,
            time_step=1e-3,
            activity=activity,
            settle_tolerance=1e-4,
        )
        reference = TransientScenarioEngine(
            ScenarioEngine(plan, DYNAMIC, STATIC_REF)
        ).simulate(scenarios, **kwargs)
        result = TransientScenarioEngine(
            ScenarioEngine(plan, DYNAMIC, STATIC_REF, array_backend=ns)
        ).simulate(scenarios, **kwargs)
        np.testing.assert_array_equal(result.times, reference.times)
        np.testing.assert_array_equal(
            result.block_temperatures, reference.block_temperatures
        )
        np.testing.assert_array_equal(result.block_powers, reference.block_powers)
        np.testing.assert_array_equal(result.runaway, reference.runaway)
        np.testing.assert_array_equal(result.runaway_times, reference.runaway_times)

    def test_pwm_workload_matches_numpy_bitwise(self, ns, scenarios):
        plan = three_block_floorplan()
        activity = PWMActivity(periods=5e-3, duty_cycles=0.4)
        kwargs = dict(duration=1.5e-2, time_step=1e-3, activity=activity)
        reference = TransientScenarioEngine(
            ScenarioEngine(plan, DYNAMIC, STATIC_REF)
        ).simulate(scenarios[:4], **kwargs)
        result = TransientScenarioEngine(
            ScenarioEngine(plan, DYNAMIC, STATIC_REF, array_backend=ns)
        ).simulate(scenarios[:4], **kwargs)
        np.testing.assert_array_equal(
            result.block_temperatures, reference.block_temperatures
        )
        np.testing.assert_array_equal(result.block_powers, reference.block_powers)

    def test_runaway_detection_matches_numpy(self, ns, scenarios):
        plan = three_block_floorplan()
        hot = {name: power * 400.0 for name, power in DYNAMIC.items()}
        kwargs = dict(duration=5e-3, time_step=5e-4, max_temperature=420.0)
        reference = TransientScenarioEngine(
            ScenarioEngine(plan, hot, STATIC_REF)
        ).simulate(scenarios[:4], **kwargs)
        result = TransientScenarioEngine(
            ScenarioEngine(plan, hot, STATIC_REF, array_backend=ns)
        ).simulate(scenarios[:4], **kwargs)
        assert reference.runaway.any()
        np.testing.assert_array_equal(result.runaway, reference.runaway)
        np.testing.assert_array_equal(result.runaway_times, reference.runaway_times)
        np.testing.assert_array_equal(
            result.block_temperatures, reference.block_temperatures
        )
