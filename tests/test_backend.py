"""Unit tests for :mod:`repro.core.backend` — the Array-API/precision seam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import kinds
from repro.core.backend import (
    ARRAY_BACKENDS,
    PRECISIONS,
    Precision,
    array_backend_available,
    array_backend_names,
    get_namespace,
    precision_names,
    resolve_namespace,
    resolve_precision,
    result_float_dtype,
    supports_inplace,
    to_numpy,
)

from xp_proxy import ProxyArray, xp_proxy


class TestGetNamespace:
    def test_numpy_arrays_resolve_to_numpy(self):
        assert get_namespace(np.zeros(3)) is np

    def test_no_arrays_default_to_numpy(self):
        assert get_namespace() is np
        assert get_namespace(1.0, [2.0], None) is np

    def test_foreign_arrays_resolve_their_namespace(self):
        assert get_namespace(ProxyArray(np.zeros(3))) is xp_proxy

    def test_mixing_namespaces_is_an_error(self):
        with pytest.raises(TypeError, match="incompatible"):
            get_namespace(np.zeros(3), ProxyArray(np.zeros(3)))


class TestResolveNamespace:
    def test_none_and_numpy_resolve_to_numpy(self):
        assert resolve_namespace(None) is np
        assert resolve_namespace("numpy") is np

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ValueError, match="numpy"):
            resolve_namespace("not-a-backend")

    def test_namespace_objects_pass_through(self):
        assert resolve_namespace(xp_proxy) is xp_proxy
        assert resolve_namespace(np) is np

    def test_non_namespace_objects_are_rejected(self):
        with pytest.raises(TypeError):
            resolve_namespace(object())

    def test_unavailable_backend_raises_a_helpful_error(self):
        unavailable = [
            name for name in array_backend_names()
            if not array_backend_available(name)
        ]
        for name in unavailable:
            with pytest.raises(ImportError, match=name):
                resolve_namespace(name)

    def test_numpy_is_always_available(self):
        assert array_backend_available("numpy")
        assert not array_backend_available("not-a-backend")


class TestSupportsInplace:
    def test_only_numpy_supports_inplace(self):
        assert supports_inplace(np)
        assert not supports_inplace(xp_proxy)


class TestToNumpy:
    def test_ndarray_passes_through_unchanged(self):
        array = np.arange(3.0)
        assert to_numpy(array) is array

    def test_proxy_arrays_convert_via_dlpack(self):
        values = np.asarray([1.5, -2.5])
        converted = to_numpy(ProxyArray(values))
        assert isinstance(converted, np.ndarray)
        np.testing.assert_array_equal(converted, values)

    def test_plain_sequences_convert_via_asarray(self):
        np.testing.assert_array_equal(to_numpy([1.0, 2.0]), np.asarray([1.0, 2.0]))


class TestPrecisionRegistry:
    def test_registry_names(self):
        assert precision_names() == ("float64", "float32")
        assert set(PRECISIONS) == {"float64", "float32"}

    def test_none_resolves_to_float64(self):
        assert resolve_precision(None) is PRECISIONS["float64"]

    def test_names_resolve_and_objects_pass_through(self):
        float32 = resolve_precision("float32")
        assert float32.name == "float32"
        assert resolve_precision(float32) is float32

    def test_unknown_precision_lists_the_registry(self):
        with pytest.raises(ValueError, match="float64"):
            resolve_precision("float16")

    def test_float64_is_the_exact_reference(self):
        reference = PRECISIONS["float64"]
        assert reference.rtol == 0.0 and reference.atol == 0.0
        assert reference.dtype(np) == np.float64

    def test_float32_documents_nonzero_tolerances(self):
        single = PRECISIONS["float32"]
        assert single.rtol > 0.0 and single.atol > 0.0
        assert single.dtype(np) == np.float32

    def test_dtype_resolves_in_any_namespace(self):
        assert PRECISIONS["float32"].dtype(xp_proxy) == np.float32

    def test_precision_is_immutable(self):
        with pytest.raises(AttributeError):
            PRECISIONS["float64"].rtol = 1.0

    def test_precision_repr_mentions_the_name(self):
        assert "float32" in repr(PRECISIONS["float32"])
        assert isinstance(PRECISIONS["float32"], Precision)


class TestResultFloatDtype:
    def test_defaults_to_float64(self):
        assert result_float_dtype() == np.float64
        assert result_float_dtype(np.arange(3)) == np.float64

    def test_first_floating_operand_wins(self):
        assert result_float_dtype(np.zeros(2, np.float32)) == np.float32
        assert (
            result_float_dtype(np.zeros(2, np.float32), np.zeros(2, np.float64))
            == np.float32
        )

    def test_non_array_operands_are_skipped(self):
        assert result_float_dtype([1.0], np.zeros(2, np.float32)) == np.float32


class TestKindMirrors:
    """`repro.api.kinds` repeats the registries as plain literals so the
    CLI's `--help` stays numpy-free; the mirrors must never drift."""

    def test_array_backends_mirror(self):
        assert kinds.ARRAY_BACKENDS == ARRAY_BACKENDS == tuple(array_backend_names())

    def test_precisions_mirror(self):
        assert kinds.PRECISIONS == tuple(PRECISIONS)
