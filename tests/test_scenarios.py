"""Scenario engine: batched fixed points vs the scalar engine oracle.

The batched :class:`~repro.core.cosim.scenarios.ScenarioEngine` must
reproduce the looped :class:`~repro.core.cosim.engine.ElectroThermalEngine`
scenario-for-scenario (temperatures, convergence verdicts, iteration
counts, power breakdowns), reuse the cached geometry-only resistance
reduction across scenarios and engines, and be invariant under
permutation of the scenario order (each row's trajectory is independent).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cosim import (
    Scenario,
    ScenarioEngine,
    scenario_grid,
    unit_resistance_matrix,
)
from repro.core.cosim.resistance_cache import cache_size, clear_cache
from repro.floorplan import three_block_floorplan
from repro.technology import cmos_012um, make_technology

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC_REF = {"core": 0.045, "cache": 0.018, "io": 0.008}


@pytest.fixture(scope="module")
def plan():
    return three_block_floorplan()


@pytest.fixture(scope="module")
def engine(plan):
    return ScenarioEngine(plan, DYNAMIC, STATIC_REF)


@pytest.fixture(scope="module")
def grid():
    technologies = [make_technology(name) for name in ("0.18um", "0.12um", "70nm")]
    return scenario_grid(
        technologies,
        supply_scales=(0.9, 1.0, 1.1),
        ambient_temperatures=(298.15, 338.15),
        activities=(0.5, 1.0),
    )


class TestScenario:
    def test_defaults_come_from_the_technology(self):
        technology = cmos_012um()
        scenario = Scenario(technology)
        assert scenario.vdd == technology.vdd
        assert scenario.supply_scale == 1.0
        assert scenario.ambient == technology.thermal.ambient_temperature
        assert scenario.activity_factor("core") == 1.0

    def test_mapping_activity_defaults_to_unity(self):
        scenario = Scenario(cmos_012um(), activity={"core": 1.5})
        assert scenario.activity_factor("core") == 1.5
        assert scenario.activity_factor("io") == 1.0

    def test_validation(self):
        technology = cmos_012um()
        with pytest.raises(ValueError):
            Scenario(technology, supply_voltage=-1.0)
        with pytest.raises(ValueError):
            Scenario(technology, ambient_temperature=0.0)
        with pytest.raises(ValueError):
            Scenario(technology, activity=-0.5)
        with pytest.raises(ValueError):
            Scenario(technology, activity={"core": -2.0})

    def test_describe_mentions_the_node(self):
        scenario = Scenario(cmos_012um(), ambient_temperature=318.15)
        assert "0.12um" in scenario.describe()
        assert Scenario(cmos_012um(), label="hot").describe() == "hot"

    def test_grid_is_the_full_cross_product(self):
        technologies = [make_technology("0.18um"), make_technology("0.12um")]
        scenarios = scenario_grid(
            technologies,
            supply_scales=(0.9, 1.0),
            ambient_temperatures=(None, 338.15),
            activities=(1.0, 0.5, 0.25),
        )
        assert len(scenarios) == 2 * 2 * 2 * 3
        assert scenarios[0].technology is technologies[0]
        with pytest.raises(ValueError):
            scenario_grid([])

    def test_grid_accepts_one_shot_iterators(self):
        technologies = [make_technology("0.18um"), make_technology("0.12um")]
        scenarios = scenario_grid(
            technologies,
            supply_scales=iter([0.9, 1.0]),
            ambient_temperatures=iter([298.15, 338.15]),
            activities=iter([0.5, 1.0]),
        )
        assert len(scenarios) == 2 * 2 * 2 * 2


class TestEngineConstruction:
    def test_unknown_blocks_raise(self, plan):
        with pytest.raises(KeyError):
            ScenarioEngine(plan, {"rogue": 1.0}, {})
        with pytest.raises(ValueError):
            ScenarioEngine(plan, {}, {})

    def test_block_order_follows_the_floorplan(self, plan):
        engine = ScenarioEngine(plan, {"io": 0.1}, {"core": 0.2})
        assert engine.block_names == ("core", "io")

    def test_solve_validations(self, engine):
        scenario = Scenario(cmos_012um())
        with pytest.raises(ValueError):
            engine.solve([])
        with pytest.raises(ValueError):
            engine.solve([scenario], max_iterations=0)
        with pytest.raises(ValueError):
            engine.solve([scenario], tolerance=0.0)
        with pytest.raises(ValueError):
            engine.solve([scenario], damping=1.5)
        with pytest.raises(ValueError):
            engine.solve([scenario], max_temperature=200.0)


class TestScalarParity:
    def test_batch_matches_looped_scalar_engine(self, engine, grid):
        batch = engine.solve(grid)
        assert len(batch) == len(grid)
        for index, scenario in enumerate(grid):
            reference = engine.solve_scalar(scenario)
            assert bool(batch.converged[index]) == reference.converged
            assert batch.iteration_counts[index] == reference.iteration_count
            for column, name in enumerate(engine.block_names):
                assert batch.block_temperatures[index, column] == pytest.approx(
                    reference.block_temperatures[name], abs=1e-9
                )
                breakdown = reference.block_breakdowns[name]
                assert batch.dynamic_power[index, column] == breakdown.switching
                assert batch.static_power[index, column] == pytest.approx(
                    breakdown.static, rel=1e-9
                )

    def test_scenario_result_round_trip(self, engine, grid):
        batch = engine.solve(grid)
        repacked = batch.scenario_result(0)
        reference = engine.solve_scalar(grid[0])
        assert repacked.converged == reference.converged
        assert repacked.total_power == pytest.approx(reference.total_power, rel=1e-9)
        assert repacked.hottest_block() == reference.hottest_block()
        assert repacked.ambient_temperature == reference.ambient_temperature

    def test_summaries_are_consistent(self, engine, grid):
        batch = engine.solve(grid)
        assert batch.hottest_blocks()[0] in engine.block_names
        assert np.all(batch.peak_rise >= 0.0)
        assert np.all(
            batch.total_power
            == pytest.approx(
                (batch.dynamic_power + batch.static_power).sum(axis=1)
            )
        )
        core = batch.temperatures_of("core")
        assert core.shape == (len(grid),)
        rows = batch.as_rows()
        assert len(rows) == len(grid)
        assert rows[0][0] == grid[0].describe()

    def test_hotter_ambient_means_hotter_blocks(self, engine):
        technology = cmos_012um()
        scenarios = [
            Scenario(technology, ambient_temperature=a)
            for a in (298.15, 318.15, 338.15)
        ]
        batch = engine.solve(scenarios)
        assert np.all(np.diff(batch.peak_temperature) > 0.0)

    def test_runaway_scenarios_report_non_convergence(self, engine):
        leaky = make_technology("25nm")
        scenario = Scenario(leaky, supply_voltage=1.4 * leaky.vdd,
                            ambient_temperature=400.0)
        batch = engine.solve([scenario])
        reference = engine.solve_scalar(scenario)
        assert bool(batch.converged[0]) == reference.converged


class TestResistanceCache:
    def test_engines_share_one_geometry_reduction(self, plan):
        clear_cache()
        first = unit_resistance_matrix(plan, ("core", "cache", "io"))
        assert cache_size() == 1
        again = unit_resistance_matrix(plan, ("core", "cache", "io"))
        assert again is first
        assert cache_size() == 1
        assert not again.flags.writeable
        # A different block subset is a different reduction.
        unit_resistance_matrix(plan, ("core", "io"))
        assert cache_size() == 2

    def test_scalar_engine_matrix_is_the_scaled_cache_entry(self, engine, plan):
        scenario = Scenario(cmos_012um(), ambient_temperature=318.15)
        scalar = engine.scalar_engine(scenario)
        unit = unit_resistance_matrix(plan, engine.block_names)
        assert np.allclose(
            scalar.resistance_matrix, unit / scalar.conductivity, rtol=1e-12
        )


class TestPermutationInvariance:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(permutation=st.permutations(list(range(12))))
    def test_results_are_permutation_invariant(self, engine, grid, permutation):
        base = grid[:12]
        reference = engine.solve(base)
        shuffled = [base[i] for i in permutation]
        permuted = engine.solve(shuffled)
        for new_row, old_row in enumerate(permutation):
            assert np.array_equal(
                permuted.block_temperatures[new_row],
                reference.block_temperatures[old_row],
            )
            assert permuted.converged[new_row] == reference.converged[old_row]
            assert (
                permuted.iteration_counts[new_row]
                == reference.iteration_counts[old_row]
            )
            assert np.array_equal(
                permuted.static_power[new_row], reference.static_power[old_row]
            )

    def test_subset_solves_match_the_full_batch(self, engine, grid):
        """Dropping scenarios does not perturb the remaining rows."""
        full = engine.solve(grid)
        subset = engine.solve(grid[::3])
        for row, index in enumerate(range(0, len(grid), 3)):
            assert np.array_equal(
                subset.block_temperatures[row], full.block_temperatures[index]
            )
