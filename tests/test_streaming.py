"""Streaming execution: chunked runs must be bit-identical to monolithic.

The constant-memory path (``repro.core.cosim.streaming`` plus the
``StudySpec`` streaming fields) re-executes the exact monolithic
arithmetic chunk by chunk, so every test here asserts *exact* equality —
``np.array_equal``, not ``allclose`` — between chunked and monolithic
results across chunk sizes, including the degenerate 1-scenario chunks
and chunks larger than the grid.  The hypothesis property generalizes
the fixed sizes: any chunk size yields the same series.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    ScenarioGridSpec,
    ScenarioSpec,
    Study,
    StudyResult,
    StudySpec,
    as_scenario_grid_spec,
    run_study,
)
from repro.api.cli import main as cli_main
from repro.core.cosim import (
    PWMActivity,
    ScenarioEngine,
    TransientScenarioEngine,
    format_progress,
    scenario_grid,
    scenario_grid_stream,
    stream_steady,
    stream_transient,
)
from repro.floorplan import three_block_floorplan
from repro.technology import make_technology

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC = {"core": 0.045, "cache": 0.018, "io": 0.008}
TAUS = {"core": 2e-3, "cache": 1.5e-3, "io": 1e-3}
NODES = ("0.18um", "0.12um", "70nm")


@pytest.fixture(scope="module")
def plan():
    return three_block_floorplan()


@pytest.fixture(scope="module")
def engine(plan):
    return ScenarioEngine(plan, DYNAMIC, STATIC)


@pytest.fixture(scope="module")
def grid():
    technologies = [make_technology(name) for name in NODES]
    return scenario_grid(
        technologies,
        supply_scales=(0.9, 1.0, 1.1),
        ambient_temperatures=(298.15, 338.15),
        activities=(0.5, 1.0),
    )


@pytest.fixture(scope="module")
def steady_batch(engine, grid):
    return engine.solve(grid)


def assert_same_arrays(result, reference):
    """Bit-identical array payloads (specs/metadata may differ by design:
    the streamed result records its chunking, ``equals`` would reject it)."""
    assert set(result.arrays) == set(reference.arrays)
    for name, array in reference.arrays.items():
        streamed = result.array(name)
        assert streamed.dtype == array.dtype, name
        equal_nan = array.dtype.kind == "f"
        assert np.array_equal(streamed, array, equal_nan=equal_nan), name


def assert_fields_equal(fields, reference):
    """Exact per-field equality, NaN-tolerant for float arrays."""
    assert set(fields) == set(reference)
    for name, array in reference.items():
        streamed = np.asarray(fields[name])
        assert streamed.dtype == np.asarray(array).dtype
        equal_nan = streamed.dtype.kind == "f"
        assert np.array_equal(streamed, array, equal_nan=equal_nan), name


# --------------------------------------------------------------------- #
# Core: chunked steady streams vs the monolithic batch
# --------------------------------------------------------------------- #
class TestSteadyStreaming:
    @pytest.mark.parametrize("chunk_size", (1, 7, 64, 36))
    def test_fields_bit_identical(self, engine, grid, steady_batch, chunk_size):
        stream = stream_steady(
            engine, grid, chunk_size=chunk_size, keep_fields=True
        )
        assert stream.scenario_count == len(grid)
        assert stream.chunk_count == -(-len(grid) // chunk_size)
        assert_fields_equal(
            stream.fields,
            {
                "block_temperatures": steady_batch.block_temperatures,
                "dynamic_power": steady_batch.dynamic_power,
                "static_power": steady_batch.static_power,
                "ambient_temperatures": steady_batch.ambient_temperatures,
                "converged": steady_batch.converged,
                "iteration_counts": steady_batch.iteration_counts,
            },
        )

    @pytest.mark.parametrize("chunk_size", (1, 7, 64, 36))
    def test_series_bit_identical(self, engine, grid, steady_batch, chunk_size):
        stream = stream_steady(engine, grid, chunk_size=chunk_size)
        assert stream.fields is None
        assert np.array_equal(
            stream.series["peak_temperature"], steady_batch.peak_temperature
        )
        assert np.array_equal(stream.series["peak_rise"], steady_batch.peak_rise)
        assert np.array_equal(
            stream.series["total_power"], steady_batch.total_power
        )
        assert np.array_equal(
            stream.series["total_static_power"], steady_batch.total_static_power
        )
        assert np.array_equal(stream.series["converged"], steady_batch.converged)
        assert np.array_equal(
            stream.series["iteration_counts"], steady_batch.iteration_counts
        )
        assert np.array_equal(
            stream.block_temperature_max,
            steady_batch.block_temperatures.max(axis=0),
        )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(chunk_size=st.integers(min_value=1, max_value=50))
    def test_chunk_size_invariance(self, engine, grid, steady_batch, chunk_size):
        # The property behind the fixed sizes above: *any* chunking of the
        # grid reproduces the monolithic series exactly.
        stream = stream_steady(engine, grid, chunk_size=chunk_size)
        assert np.array_equal(
            stream.series["peak_temperature"], steady_batch.peak_temperature
        )
        assert np.array_equal(stream.series["converged"], steady_batch.converged)

    def test_lazy_source_with_total(self, engine, grid):
        # A generator source plus an explicit total streams identically to
        # the materialized list (the ScenarioGridSpec execution path).
        stream = stream_steady(
            engine, iter(grid), chunk_size=10, total=len(grid)
        )
        reference = stream_steady(engine, grid, chunk_size=10)
        for name in stream.series:
            assert np.array_equal(stream.series[name], reference.series[name])

    def test_progress_reports_every_chunk(self, engine, grid):
        updates = []
        stream = stream_steady(
            engine, grid, chunk_size=10, progress=updates.append
        )
        assert len(updates) == stream.chunk_count
        assert [u.chunk_index for u in updates] == list(range(len(updates)))
        rows = [u.rows_done for u in updates]
        assert rows == sorted(rows)
        assert rows[-1] == len(grid)
        assert all(u.total_rows == len(grid) for u in updates)
        line = format_progress(updates[0])
        assert "chunk" in line and "scenarios" in line

    def test_chunk_size_must_be_positive(self, engine, grid):
        with pytest.raises(ValueError):
            stream_steady(engine, grid, chunk_size=0)


# --------------------------------------------------------------------- #
# Core: chunked transient streams vs the monolithic batch
# --------------------------------------------------------------------- #
class TestTransientStreaming:
    DURATION = 10e-3
    TIME_STEP = 0.5e-3

    @pytest.fixture(scope="class")
    def tengine(self, plan):
        return TransientScenarioEngine.from_powers(
            plan, DYNAMIC, STATIC, time_constants=TAUS
        )

    @pytest.fixture(scope="class")
    def tgrid(self):
        technologies = [make_technology(name) for name in ("0.18um", "0.12um")]
        return scenario_grid(
            technologies,
            supply_scales=(0.95, 1.05),
            ambient_temperatures=(298.15, 328.15),
            activities=(0.5, 1.0),
        )

    @pytest.fixture(scope="class")
    def activity(self):
        return PWMActivity(4e-3, 0.5)

    @pytest.fixture(scope="class")
    def transient_batch(self, tengine, tgrid, activity):
        return tengine.simulate(
            tgrid, self.DURATION, self.TIME_STEP, activity=activity
        )

    @pytest.mark.parametrize("chunk_size", (1, 5, 16))
    def test_fields_bit_identical(
        self, tengine, tgrid, activity, transient_batch, chunk_size
    ):
        stream = stream_transient(
            tengine,
            tgrid,
            self.DURATION,
            self.TIME_STEP,
            activity=activity,
            chunk_size=chunk_size,
            keep_fields=True,
        )
        assert np.array_equal(stream.times, transient_batch.times)
        assert_fields_equal(
            stream.fields,
            {
                "times": transient_batch.times,
                "block_temperatures": transient_batch.block_temperatures,
                "block_powers": transient_batch.block_powers,
                "ambient_temperatures": transient_batch.ambient_temperatures,
                "runaway": transient_batch.runaway,
                "runaway_times": transient_batch.runaway_times,
            },
        )

    @pytest.mark.parametrize("chunk_size", (1, 5, 16))
    def test_series_bit_identical(
        self, tengine, tgrid, activity, transient_batch, chunk_size
    ):
        stream = stream_transient(
            tengine,
            tgrid,
            self.DURATION,
            self.TIME_STEP,
            activity=activity,
            chunk_size=chunk_size,
        )
        assert stream.fields is None
        assert np.array_equal(
            stream.series["peak_temperature"], transient_batch.peak_temperature
        )
        assert np.array_equal(
            stream.series["overshoot"], transient_batch.overshoot
        )
        assert np.array_equal(
            stream.series["settle_time"], transient_batch.settle_times(0.5)
        )
        assert np.array_equal(
            stream.series["total_energy"], transient_batch.total_energy()
        )
        assert np.array_equal(stream.series["runaway"], transient_batch.runaway)
        assert np.array_equal(
            stream.series["runaway_times"],
            transient_batch.runaway_times,
            equal_nan=True,
        )
        assert stream.runaway_count == int(transient_batch.runaway.sum())
        assert stream.max_overshoot == float(transient_batch.overshoot.max())
        assert np.array_equal(
            stream.block_temperature_max,
            transient_batch.block_temperatures.max(axis=(0, 1)),
        )


# --------------------------------------------------------------------- #
# Lazy grids: scenario_grid_stream and ScenarioGridSpec
# --------------------------------------------------------------------- #
class TestScenarioGridStream:
    def test_streams_the_grid_in_order(self):
        technologies = [make_technology(name) for name in NODES]
        kwargs = dict(
            supply_scales=(0.9, 1.1),
            ambient_temperatures=(298.15, 338.15),
            activities=(0.5, 1.0),
        )
        streamed = list(scenario_grid_stream(technologies, **kwargs))
        materialized = scenario_grid(technologies, **kwargs)
        assert len(streamed) == len(materialized)
        for lazy, eager in zip(streamed, materialized):
            assert lazy.technology is eager.technology
            assert lazy.supply_scale == eager.supply_scale
            assert lazy.ambient == eager.ambient
            assert lazy.activity == eager.activity

    def test_is_lazy(self):
        stream = scenario_grid_stream(
            [make_technology("0.12um")], supply_scales=(0.9, 1.0)
        )
        # A generator, not a sequence: nothing is materialized up front.
        assert iter(stream) is stream
        first = next(stream)
        assert first.supply_scale == pytest.approx(0.9)


class TestScenarioGridSpec:
    def test_count_and_stream_match_scenariospec_grid(self):
        spec = ScenarioGridSpec(
            technologies=("0.18um", "0.12um"),
            supply_scales=(0.9, 1.0),
            ambient_temperatures=(298.15, 318.15),
            activities=(0.5, 1.0),
        )
        assert spec.count == 16
        streamed = list(spec.build_stream())
        assert len(streamed) == 16
        reference = [
            s.build()
            for s in ScenarioSpec.grid(
                ["0.18um", "0.12um"],
                supply_scales=(0.9, 1.0),
                ambient_temperatures=(298.15, 318.15),
                activities=(0.5, 1.0),
            )
        ]
        for lazy, eager in zip(streamed, reference):
            assert lazy.vdd == eager.vdd
            assert lazy.ambient == eager.ambient
            assert lazy.activity == eager.activity

    def test_json_round_trip(self):
        spec = ScenarioGridSpec(
            technologies=("0.18um",),
            supply_scales=(0.9, 1.1),
            activities=(0.25, {"core": 1.0, "cache": 0.5, "io": 0.1}),
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioGridSpec.from_dict(data) == spec
        # Default axes are omitted from the serialized form.
        assert "ambient_temperatures" not in data

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one technology"):
            ScenarioGridSpec(technologies=())
        with pytest.raises(ValueError, match="sequence of technology"):
            ScenarioGridSpec(technologies="0.12um")
        with pytest.raises(ValueError, match="supply_scales must be positive"):
            ScenarioGridSpec(technologies=("0.12um",), supply_scales=(0.0,))
        with pytest.raises(ValueError, match="non-negative"):
            ScenarioGridSpec(technologies=("0.12um",), activities=(-0.5,))

    def test_as_scenario_grid_spec(self):
        assert as_scenario_grid_spec(None) is None
        spec = ScenarioGridSpec(technologies=("0.12um",))
        assert as_scenario_grid_spec(spec) is spec
        from_mapping = as_scenario_grid_spec({"technologies": ["0.12um"]})
        assert from_mapping == spec
        with pytest.raises(TypeError):
            as_scenario_grid_spec(42)


# --------------------------------------------------------------------- #
# StudySpec streaming fields
# --------------------------------------------------------------------- #
def _steady_spec(**overrides):
    base = dict(
        kind="steady",
        floorplan=three_block_floorplan(),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=tuple(
            ScenarioSpec.grid(
                ["0.18um", "0.12um"],
                supply_scales=(0.9, 1.0),
                ambient_temperatures=(298.15, 318.15),
            )
        ),
    )
    base.update(overrides)
    return StudySpec(**base)


class TestStudySpecStreaming:
    def test_defaults_do_not_stream(self):
        spec = _steady_spec()
        assert not spec.streaming
        data = spec.to_dict()
        for key in ("chunk_size", "reduction", "memmap_path", "scenario_grid"):
            assert key not in data

    @pytest.mark.parametrize(
        "overrides",
        (
            {"chunk_size": 4},
            {"reduction": True},
            {"memmap_path": "fields"},
        ),
    )
    def test_any_streaming_field_engages_streaming(self, overrides):
        assert _steady_spec(**overrides).streaming

    def test_round_trip_preserves_streaming_fields(self, tmp_path):
        spec = _steady_spec(
            scenarios=(),
            scenario_grid=ScenarioGridSpec(technologies=("0.12um",)),
            chunk_size=128,
            reduction=True,
            memmap_path=str(tmp_path / "fields"),
        )
        data = json.loads(json.dumps(spec.to_dict()))
        assert StudySpec.from_dict(data) == spec

    def test_scenario_count_and_stream(self):
        grid = ScenarioGridSpec(
            technologies=("0.18um", "0.12um"), supply_scales=(0.9, 1.0)
        )
        spec = _steady_spec(scenarios=(), scenario_grid=grid)
        assert spec.scenario_count == grid.count == 4
        stream, total = spec.scenario_stream()
        assert total == 4
        assert len(list(stream)) == 4
        assert len(spec.build_scenarios()) == 4

    def test_chunk_size_validated(self):
        with pytest.raises(ValueError):
            _steady_spec(chunk_size=0)

    def test_scenarios_and_grid_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            _steady_spec(
                scenario_grid=ScenarioGridSpec(technologies=("0.12um",))
            )

    def test_thermal_map_rejects_streaming_fields(self):
        plan = three_block_floorplan()
        for overrides, message in (
            ({"chunk_size": 4}, "chunk_size"),
            ({"reduction": True}, "reduction"),
            ({"memmap_path": "x"}, "memmap_path"),
        ):
            with pytest.raises(ValueError, match=message):
                StudySpec(
                    kind="thermal_map",
                    floorplan=plan,
                    block_powers=DYNAMIC,
                    **overrides,
                )

    def test_sweep_rejects_reduction_memmap_and_grid(self):
        def sweep_spec(**overrides):
            ambients = (298.15, 318.15)
            base = dict(
                kind="sweep",
                floorplan=three_block_floorplan(),
                dynamic_powers=DYNAMIC,
                static_powers=STATIC,
                parameter_name="ambient_K",
                parameter_values=ambients,
                scenarios=tuple(
                    ScenarioSpec.grid(
                        ["0.12um"], ambient_temperatures=ambients
                    )
                ),
            )
            base.update(overrides)
            return StudySpec(**base)

        with pytest.raises(ValueError, match="always reduced"):
            sweep_spec(reduction=True)
        with pytest.raises(ValueError, match="memmap_path applies"):
            sweep_spec(memmap_path="x")
        with pytest.raises(ValueError, match="scenario_grid applies"):
            sweep_spec(
                scenarios=(),
                scenario_grid=ScenarioGridSpec(technologies=("0.12um",)),
            )
        # chunk_size alone is the supported sweep streaming mode.
        assert sweep_spec(chunk_size=1).streaming

    def test_default_chunk_sizes_agree(self):
        # kinds.py mirrors the core default so the CLI stays numpy-free;
        # this pin keeps the two constants from drifting apart.
        from repro.api.kinds import DEFAULT_CHUNK_SIZE as api_default
        from repro.core.cosim.streaming import DEFAULT_CHUNK_SIZE as core_default

        assert api_default == core_default


# --------------------------------------------------------------------- #
# Facade: streamed studies vs their monolithic runs
# --------------------------------------------------------------------- #
class TestStreamedStudies:
    def test_chunked_steady_study_is_bit_identical(self):
        monolithic = run_study(_steady_spec())
        for chunk_size in (1, 3, 8):
            chunked = run_study(_steady_spec(chunk_size=chunk_size))
            assert_same_arrays(chunked, monolithic)
            assert chunked.metadata["streaming"]["chunk_size"] == chunk_size
            assert not chunked.metadata["streaming"]["reduced"]

    def test_reduced_steady_study_matches_series(self):
        monolithic = run_study(_steady_spec())
        reduced = run_study(_steady_spec(chunk_size=3, reduction=True))
        assert reduced.metadata["streaming"]["reduced"]
        assert "block_temperatures" not in reduced.arrays
        assert np.array_equal(
            reduced.array("peak_temperature"),
            monolithic.array("block_temperatures").max(axis=1),
        )
        assert np.array_equal(
            reduced.array("converged"), monolithic.array("converged")
        )
        assert np.array_equal(
            reduced.array("block_temperature_max"),
            monolithic.array("block_temperatures").max(axis=0),
        )
        summary = reduced.summary()
        assert summary["scenario_count"] == 8
        assert summary["peak_temperature_K"] == pytest.approx(
            float(monolithic.array("block_temperatures").max())
        )

    def test_memmap_fields_land_on_disk(self, tmp_path):
        target = tmp_path / "fields"
        result = run_study(_steady_spec(chunk_size=3, memmap_path=str(target)))
        monolithic = run_study(_steady_spec())
        assert_same_arrays(result, monolithic)
        on_disk = sorted(path.name for path in target.glob("*.npy"))
        assert "block_temperatures.npy" in on_disk
        reloaded = np.load(target / "block_temperatures.npy")
        assert np.array_equal(reloaded, monolithic.array("block_temperatures"))

    def test_grid_spec_study_matches_explicit_scenarios(self):
        grid = ScenarioGridSpec(
            technologies=("0.18um", "0.12um"),
            supply_scales=(0.9, 1.0),
            ambient_temperatures=(298.15, 318.15),
        )
        from_grid = run_study(
            _steady_spec(scenarios=(), scenario_grid=grid, chunk_size=3)
        )
        explicit = run_study(_steady_spec())
        assert_same_arrays(from_grid, explicit)

    def test_streamed_transient_study_is_bit_identical(self):
        def build(**overrides):
            study = Study.transient(
                floorplan=three_block_floorplan(),
                dynamic_powers=DYNAMIC,
                static_powers=STATIC,
                scenarios=ScenarioSpec.grid(["0.12um"], activities=(0.5, 1.0)),
                duration=10e-3,
                time_step=0.5e-3,
                time_constants=TAUS,
                **overrides,
            )
            return study

        monolithic = build().run()
        chunked = build(chunk_size=1).run()
        assert_same_arrays(chunked, monolithic)
        reduced = build(chunk_size=1, reduction=True).run()
        assert np.array_equal(
            reduced.array("times"), monolithic.array("times")
        )
        assert np.array_equal(
            reduced.array("runaway"), monolithic.array("runaway")
        )

    def test_streamed_sweep_study_matches_monolithic(self):
        ambients = (298.15, 318.15, 338.15)

        def build():
            return Study.sweep(
                floorplan=three_block_floorplan(),
                parameter_name="ambient_K",
                parameter_values=ambients,
                scenarios=ScenarioSpec.grid(
                    ["0.12um"], ambient_temperatures=ambients
                ),
                dynamic_powers=DYNAMIC,
                static_powers=STATIC,
            )

        monolithic = build().run()
        chunked = build().with_streaming(chunk_size=2).run()
        assert_same_arrays(chunked, monolithic)

    def test_with_streaming_returns_new_study(self):
        study = Study(_steady_spec())
        assert study.with_streaming() is study
        streamed = study.with_streaming(chunk_size=4, reduction=True)
        assert streamed is not study
        assert streamed.spec.chunk_size == 4
        assert streamed.spec.reduction
        assert not study.spec.streaming

    def test_run_accepts_progress_callback(self):
        updates = []
        study = Study(_steady_spec(chunk_size=3))
        study.run(progress=updates.append)
        assert [u.chunk_index for u in updates] == [0, 1, 2]
        assert updates[-1].rows_done == 8


# --------------------------------------------------------------------- #
# CLI streaming flags
# --------------------------------------------------------------------- #
class TestCLIStreaming:
    def _write_study(self, tmp_path):
        study_path = tmp_path / "study.json"
        Study(_steady_spec()).to_json(study_path)
        return study_path

    def test_chunk_size_reproduces_the_monolithic_result(
        self, tmp_path, capsys
    ):
        study_path = self._write_study(tmp_path)
        out_path = tmp_path / "results.json"
        assert (
            cli_main(
                [
                    "run",
                    str(study_path),
                    "--chunk-size",
                    "3",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        loaded = StudyResult.from_json(out_path)
        assert_same_arrays(loaded, run_study(_steady_spec()))

    def test_stream_flag_reduces(self, tmp_path, capsys):
        study_path = self._write_study(tmp_path)
        out_path = tmp_path / "reduced.json"
        assert (
            cli_main(
                [
                    "run",
                    str(study_path),
                    "--stream",
                    "--out",
                    str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        loaded = StudyResult.from_json(out_path)
        assert loaded.metadata["streaming"]["reduced"]
        assert "peak_temperature" in loaded.arrays

    def test_progress_goes_to_stderr_and_respects_quiet(
        self, tmp_path, capsys
    ):
        study_path = self._write_study(tmp_path)
        assert (
            cli_main(
                [
                    "run",
                    str(study_path),
                    "--chunk-size",
                    "3",
                    "--progress",
                    "--quiet",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "chunk" in captured.err
        assert captured.err.count("\n") == 3

    def test_memmap_flag_writes_fields(self, tmp_path, capsys):
        study_path = self._write_study(tmp_path)
        target = tmp_path / "fields"
        assert (
            cli_main(
                [
                    "run",
                    str(study_path),
                    "--memmap",
                    str(target),
                    "--quiet",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (target / "block_temperatures.npy").exists()

    def test_streaming_flags_rejected_for_thermal_map(self, tmp_path, capsys):
        study_path = tmp_path / "map.json"
        Study.thermal_map(
            floorplan=three_block_floorplan(),
            block_powers=DYNAMIC,
        ).to_json(study_path)
        assert cli_main(["run", str(study_path), "--stream"]) == 2
        assert "cannot stream" in capsys.readouterr().err
