"""Tests for repro.technology.parameters."""

import pytest

from repro.technology import REFERENCE_TEMPERATURE_K, thermal_voltage
from repro.technology.parameters import DeviceParameters, ThermalParameters


def make_device(**overrides):
    base = dict(
        device_type="nmos",
        i0=5.0e-7,
        n=1.4,
        vt0=0.32,
        body_effect=0.2,
        dibl=0.065,
        kt=1.1e-3,
        channel_length=0.12e-6,
        nominal_width=0.5e-6,
    )
    base.update(overrides)
    return DeviceParameters(**base)


class TestDeviceParametersValidation:
    def test_valid_construction(self):
        device = make_device()
        assert device.is_nmos

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            make_device(device_type="jfet")

    def test_negative_i0_rejected(self):
        with pytest.raises(ValueError):
            make_device(i0=-1.0)

    def test_sub_unity_ideality_rejected(self):
        with pytest.raises(ValueError):
            make_device(n=0.9)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            make_device(channel_length=0.0)


class TestThresholdVoltage:
    def test_zero_bias_equals_vt0(self):
        device = make_device()
        vth = device.threshold_voltage(vsb=0.0, vds=1.2, vdd=1.2)
        assert vth == pytest.approx(device.vt0)

    def test_body_effect_raises_threshold(self):
        device = make_device()
        assert device.threshold_voltage(vsb=0.5, vds=1.2, vdd=1.2) > device.vt0

    def test_dibl_lowers_threshold_at_high_vds(self):
        device = make_device()
        low_vds = device.threshold_voltage(vds=0.1, vdd=1.2)
        high_vds = device.threshold_voltage(vds=1.2, vdd=1.2)
        assert high_vds < low_vds

    def test_temperature_lowers_threshold(self):
        device = make_device()
        hot = device.threshold_voltage(vds=1.2, vdd=1.2, temperature=398.15)
        cold = device.threshold_voltage(vds=1.2, vdd=1.2, temperature=298.15)
        assert hot < cold
        assert cold - hot == pytest.approx(device.kt * 100.0)

    def test_subthreshold_swing(self):
        device = make_device()
        import math

        expected = device.n * thermal_voltage(300.0) * math.log(10.0)
        assert device.subthreshold_swing(300.0) == pytest.approx(expected)


class TestDeviceParameterCopies:
    def test_with_width(self):
        device = make_device()
        wider = device.with_width(2.0e-6)
        assert wider.nominal_width == pytest.approx(2.0e-6)
        assert wider.vt0 == device.vt0

    def test_scaled_overrides(self):
        device = make_device()
        scaled = device.scaled(vt0=0.25, dibl=0.1)
        assert scaled.vt0 == pytest.approx(0.25)
        assert scaled.dibl == pytest.approx(0.1)


class TestThermalParameters:
    def test_defaults_are_valid(self):
        thermal = ThermalParameters()
        assert thermal.ambient_temperature > 0.0
        assert thermal.conductivity > 0.0

    def test_invalid_thickness_rejected(self):
        with pytest.raises(ValueError):
            ThermalParameters(die_thickness=0.0)

    def test_negative_sink_resistance_rejected(self):
        with pytest.raises(ValueError):
            ThermalParameters(heat_sink_resistance=-1.0)


class TestTechnologyParameters:
    def test_fixture_is_consistent(self, tech012):
        assert tech012.vdd == pytest.approx(1.2)
        assert tech012.nmos.is_nmos
        assert not tech012.pmos.is_nmos

    def test_device_lookup(self, tech012):
        assert tech012.device("nmos") is tech012.nmos
        assert tech012.device("pmos") is tech012.pmos
        with pytest.raises(ValueError):
            tech012.device("bjt")

    def test_gate_capacitance_scales_with_width(self, tech012):
        narrow = tech012.gate_input_capacitance(0.5e-6)
        wide = tech012.gate_input_capacitance(1.0e-6)
        assert wide == pytest.approx(2.0 * narrow)

    def test_gate_capacitance_rejects_bad_width(self, tech012):
        with pytest.raises(ValueError):
            tech012.gate_input_capacitance(0.0)

    def test_with_supply(self, tech012):
        lowered = tech012.with_supply(1.0)
        assert lowered.vdd == pytest.approx(1.0)
        assert tech012.vdd == pytest.approx(1.2)

    def test_thermal_voltage_defaults_to_reference(self, tech012):
        assert tech012.thermal_voltage() == pytest.approx(
            thermal_voltage(REFERENCE_TEMPERATURE_K)
        )

    def test_invalid_vdd_rejected(self, tech012):
        with pytest.raises(ValueError):
            tech012.with_supply(-1.0)
