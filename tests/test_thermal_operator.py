"""The pluggable thermal-backend layer.

Three contracts are pinned here:

* **bit-identical default** — the ``analytical`` backend reproduces the
  pre-backend engines exactly: the operator's reduction equals the legacy
  inline ``ImageExpansion`` + grouped ``pairwise_rise`` arithmetic bit for
  bit, and a default-constructed engine is indistinguishable from one with
  the backend spelled out;
* **cross-backend parity** — the paper's accuracy claim as a test: on the
  three-block floorplan the analytical model agrees with the finite-volume
  reference within documented tolerances (self-resistances within 20%,
  the whole temperature profile within 25% of the reference's peak rise,
  per-block rises within 45%, identical hot-spot ordering; the mutual
  terms — an order of magnitude smaller than the self terms — within
  75%);
* **cache discipline** — reductions are cached per (backend, geometry)
  with least-recently-used eviction, so backends never clobber each other
  and long geometry sweeps keep their warm working set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cosim import ScenarioEngine, TransientScenarioEngine, scenario_grid
from repro.core.cosim.engine import ElectroThermalEngine, resolve_operator
from repro.core.cosim.resistance_cache import (
    cache_size,
    clear_cache,
    reduced_unit_matrix,
    unit_resistance_matrix,
)
from repro.core.thermal.images import ImageExpansion
from repro.core.thermal.kernel import pairwise_rise
from repro.core.thermal.operator import (
    THERMAL_BACKENDS,
    AnalyticalImageOperator,
    BackendCapabilities,
    FdmOperator,
    FosterOperator,
    ThermalOperator,
    backend_capabilities,
    make_operator,
)
from repro.floorplan import three_block_floorplan
from repro.technology import make_technology

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC_REF = {"core": 0.045, "cache": 0.018, "io": 0.008}

#: Documented cross-backend agreement on the three-block floorplan
#: (analytical rings=1 vs surface-extrapolated FDM, relative to the FDM
#: reference; measured 13% / 62% / 39% / 20% at the parity grid).  The
#: self terms dominate the reduction and track the reference closely; the
#: mutual terms are an order of magnitude smaller and carry a larger
#: relative error, which the profile-normalized bound keeps in
#: perspective.
SELF_RESISTANCE_TOLERANCE = 0.20
MUTUAL_RESISTANCE_TOLERANCE = 0.75
BLOCK_RISE_TOLERANCE = 0.45
PROFILE_RISE_TOLERANCE = 0.25

#: FDM grid used by the parity tests: fine enough for the tolerances
#: above, coarse enough to keep the suite fast.
PARITY_GRID = {"nx": 32, "ny": 32, "nz": 10}


@pytest.fixture(scope="module")
def plan():
    return three_block_floorplan()


@pytest.fixture(scope="module")
def names(plan):
    return plan.block_names()


@pytest.fixture(scope="module")
def analytical_matrix(plan, names):
    return AnalyticalImageOperator().reduce(plan, names)


@pytest.fixture(scope="module")
def fdm_matrix(plan, names):
    return FdmOperator(**PARITY_GRID).reduce(plan, names)


def legacy_reduction(plan, names, image_rings=1, include_bottom_images=True):
    """The pre-backend inline arithmetic, kept verbatim as the oracle."""
    expansion = ImageExpansion(
        plan.die, rings=image_rings, include_bottom_images=include_bottom_images
    )
    blocks = [plan.block(name) for name in names]
    unit_sources = [block.to_heat_source(1.0) for block in blocks]
    expanded, groups = expansion.expand_arrays(unit_sources)
    observers = np.asarray([[block.x, block.y] for block in blocks])
    return pairwise_rise(
        observers, expanded, 1.0, groups=groups, group_count=len(blocks)
    )


# --------------------------------------------------------------------- #
# Bit-identical default (the regression pin of the refactor)
# --------------------------------------------------------------------- #
class TestAnalyticalRegression:
    def test_operator_matches_legacy_arithmetic_exactly(self, plan, names):
        for rings, bottom in ((0, True), (1, True), (2, False)):
            operator = AnalyticalImageOperator(
                image_rings=rings, include_bottom_images=bottom
            )
            assert np.array_equal(
                operator.reduce(plan, names),
                legacy_reduction(plan, names, rings, bottom),
            )

    def test_unit_resistance_matrix_is_the_analytical_backend(self, plan, names):
        assert np.array_equal(
            unit_resistance_matrix(plan, names, image_rings=2),
            legacy_reduction(plan, names, image_rings=2),
        )

    def test_default_engine_is_bit_identical_to_explicit_analytical(self, plan):
        scenarios = scenario_grid(
            [make_technology("0.12um")],
            supply_scales=(0.9, 1.0),
            ambient_temperatures=(298.15, 338.15),
        )
        default = ScenarioEngine(plan, DYNAMIC, STATIC_REF).solve(scenarios)
        explicit = ScenarioEngine(
            plan, DYNAMIC, STATIC_REF, thermal_backend="analytical"
        ).solve(scenarios)
        operator_instance = ScenarioEngine(
            plan, DYNAMIC, STATIC_REF, thermal_backend=AnalyticalImageOperator()
        ).solve(scenarios)
        for other in (explicit, operator_instance):
            assert np.array_equal(default.block_temperatures, other.block_temperatures)
            assert np.array_equal(default.static_power, other.static_power)
            assert np.array_equal(default.converged, other.converged)
            assert np.array_equal(default.iteration_counts, other.iteration_counts)

    def test_scalar_engine_default_backend_unchanged(self, plan, tech012):
        from repro.core.cosim import block_models_from_powers

        models = block_models_from_powers(tech012, DYNAMIC, STATIC_REF)
        default = ElectroThermalEngine(tech012, plan, models)
        explicit = ElectroThermalEngine(
            tech012, plan, models, thermal_backend="analytical"
        )
        assert np.array_equal(default.resistance_matrix, explicit.resistance_matrix)
        a, b = default.solve(), explicit.solve()
        assert a.block_temperatures == b.block_temperatures

    def test_thermal_model_requires_the_field_maps_capability(self, plan, tech012):
        from repro.core.cosim import block_models_from_powers

        models = block_models_from_powers(tech012, DYNAMIC, STATIC_REF)
        engine = ElectroThermalEngine(
            tech012, plan, models, thermal_backend="foster"
        )
        result = engine.solve()
        # A surface map from a different thermal model than the one that
        # produced the converged powers would be silently inconsistent.
        with pytest.raises(ValueError, match="field_maps"):
            engine.thermal_model(result)

    def test_thermal_model_uses_the_operator_image_settings(self, plan, tech012):
        from repro.core.cosim import block_models_from_powers

        models = block_models_from_powers(tech012, DYNAMIC, STATIC_REF)
        engine = ElectroThermalEngine(
            tech012,
            plan,
            models,
            thermal_backend=AnalyticalImageOperator(image_rings=2),
        )
        model = engine.thermal_model(engine.solve())
        assert model.expansion.rings == 2


# --------------------------------------------------------------------- #
# Cross-backend parity (the paper's accuracy claim, pinned)
# --------------------------------------------------------------------- #
class TestCrossBackendParity:
    def test_self_resistances_match_fdm_reference(self, analytical_matrix, fdm_matrix):
        analytical = np.diag(analytical_matrix)
        reference = np.diag(fdm_matrix)
        relative = np.abs(analytical - reference) / reference
        assert relative.max() < SELF_RESISTANCE_TOLERANCE

    def test_mutual_resistances_match_fdm_reference(
        self, analytical_matrix, fdm_matrix
    ):
        off_diagonal = ~np.eye(len(analytical_matrix), dtype=bool)
        analytical = analytical_matrix[off_diagonal]
        reference = fdm_matrix[off_diagonal]
        assert (analytical > 0.0).all() and (reference > 0.0).all()
        relative = np.abs(analytical - reference) / reference
        assert relative.max() < MUTUAL_RESISTANCE_TOLERANCE

    def test_solved_block_rises_agree_within_documented_tolerance(self, plan):
        scenarios = scenario_grid(
            [make_technology("0.12um")], ambient_temperatures=(318.15,)
        )
        analytical = ScenarioEngine(plan, DYNAMIC, STATIC_REF).solve(scenarios)
        fdm = ScenarioEngine(
            plan,
            DYNAMIC,
            STATIC_REF,
            thermal_backend="fdm",
            backend_options=PARITY_GRID,
        ).solve(scenarios)
        assert fdm.converged.all()
        rise_analytical = (
            analytical.block_temperatures - analytical.ambient_temperatures[:, None]
        )
        rise_fdm = fdm.block_temperatures - fdm.ambient_temperatures[:, None]
        relative = np.abs(rise_analytical - rise_fdm) / rise_fdm
        assert relative.max() < BLOCK_RISE_TOLERANCE
        # The paper's claim is about estimating the chip's thermal
        # *profile*: every block's error is small against the profile scale.
        profile_error = np.abs(rise_analytical - rise_fdm).max() / rise_fdm.max()
        assert profile_error < PROFILE_RISE_TOLERANCE
        # Identical hot-spot ordering: the profile *shape* agrees.
        assert np.array_equal(
            np.argsort(rise_analytical, axis=1), np.argsort(rise_fdm, axis=1)
        )

    def test_fdm_reduction_converges_with_grid_refinement(self, plan, names):
        coarse = FdmOperator(nx=16, ny=16, nz=5).reduce(plan, names)
        fine = FdmOperator(nx=32, ny=32, nz=10).reduce(plan, names)
        # The extrapolated surface sampling approaches the converged self
        # terms from below, so refinement increases them, and the coarse
        # grid is already within ~15% of the fine one.
        assert (np.diag(fine) > np.diag(coarse)).all()
        assert (
            np.abs(np.diag(fine) - np.diag(coarse)).max() / np.diag(fine).max() < 0.2
        )

    def test_foster_is_a_diagonal_upper_bound_free_of_coupling(
        self, plan, names, analytical_matrix
    ):
        foster = FosterOperator().reduce(plan, names)
        off_diagonal = ~np.eye(len(names), dtype=bool)
        assert (foster[off_diagonal] == 0.0).all()
        # A 1-D column under each block ignores lateral spreading, so its
        # self resistance bounds the spreading models from above.
        assert (np.diag(foster) > np.diag(analytical_matrix)).all()

    def test_transient_engine_runs_on_fdm_backend(self, plan):
        scenarios = scenario_grid([make_technology("0.12um")])
        engine = TransientScenarioEngine.from_powers(
            plan,
            DYNAMIC,
            STATIC_REF,
            thermal_backend="fdm",
            backend_options={"nx": 12, "ny": 12, "nz": 4},
        )
        batch = engine.simulate(scenarios, duration=0.02, time_step=1e-3)
        assert batch.block_temperatures.shape[0] == 1
        assert np.isfinite(batch.block_temperatures).all()
        assert engine.thermal_backend == "fdm"


# --------------------------------------------------------------------- #
# Registry and capabilities
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_every_backend_is_constructible_by_name(self):
        for name in THERMAL_BACKENDS:
            operator = make_operator(name)
            assert isinstance(operator, ThermalOperator)
            assert operator.name == name

    def test_capabilities_cover_every_backend(self):
        capabilities = backend_capabilities()
        assert tuple(capabilities) == THERMAL_BACKENDS
        for name, entry in capabilities.items():
            assert entry.backend == name
            assert entry.conductivity_factorizes  # engine contract
            assert entry.description
            assert f"numerical={'yes' if entry.numerical else 'no'}" in entry.flags()
        assert capabilities["analytical"].field_maps
        assert not capabilities["foster"].mutual_coupling

    def test_operator_instances_pass_through(self):
        operator = FdmOperator(nx=8, ny=8, nz=4)
        assert make_operator(operator) is operator
        with pytest.raises(ValueError, match="already-built"):
            make_operator(operator, options={"nx": 16})

    def test_unknown_backend_is_named(self):
        with pytest.raises(ValueError, match="spectral"):
            make_operator("spectral")

    def test_backend_option_validation(self):
        with pytest.raises(ValueError, match="analytical"):
            make_operator("analytical", options={"nx": 8})
        with pytest.raises(ValueError, match="foster"):
            make_operator("foster", options={"nx": 8})
        with pytest.raises(ValueError, match="unknown fdm backend option"):
            make_operator("fdm", options={"cells": 8})
        with pytest.raises(ValueError, match="nz"):
            FdmOperator(nx=8, ny=8, nz=1)
        # Non-numeric / non-integer values fail as labelled ValueErrors at
        # the engine-level API too, not just through the spec layer (inf
        # reaches here via JSON, whose parser accepts the Infinity token).
        for bad in ("eight", [8], 2.5, True, float("inf"), float("nan")):
            with pytest.raises(ValueError, match="nx"):
                FdmOperator(nx=bad, ny=8, nz=4)
        with pytest.raises(ValueError, match="image_rings"):
            AnalyticalImageOperator(image_rings=-1)

    def test_engines_reject_non_factorizing_backends(self):
        class TemperatureDependentOperator(FosterOperator):
            @property
            def capabilities(self):
                return BackendCapabilities(
                    backend="nonlinear",
                    description="test double",
                    conductivity_factorizes=False,
                )

        with pytest.raises(ValueError, match="factorize"):
            resolve_operator(TemperatureDependentOperator(), 1, True, None)

    def test_with_backend_round_trip(self, plan):
        engine = ScenarioEngine(plan, DYNAMIC, STATIC_REF)
        foster = engine.with_backend("foster")
        assert foster.thermal_backend == "foster"
        assert foster.dynamic_powers == engine.dynamic_powers
        back = foster.with_backend("analytical")
        assert np.array_equal(back._unit_matrix, engine._unit_matrix)

    def test_with_backend_keeps_operator_image_settings(self, plan):
        # An explicitly-passed analytical operator carries its own image
        # configuration; the engine adopts it, so a backend round trip
        # reduces with the same physics as the original engine.
        engine = ScenarioEngine(
            plan,
            DYNAMIC,
            STATIC_REF,
            thermal_backend=AnalyticalImageOperator(image_rings=2),
        )
        assert engine.image_rings == 2
        round_tripped = engine.with_backend("foster").with_backend("analytical")
        assert round_tripped.image_rings == 2
        assert np.array_equal(round_tripped._unit_matrix, engine._unit_matrix)

    def test_image_rings_must_be_an_integer(self):
        with pytest.raises(ValueError, match="image_rings"):
            AnalyticalImageOperator(image_rings=1.9)
        with pytest.raises(ValueError, match="image_rings"):
            AnalyticalImageOperator(image_rings=True)


# --------------------------------------------------------------------- #
# Cache keying and LRU eviction
# --------------------------------------------------------------------- #
class TestReductionCache:
    def test_backends_cache_separately_per_geometry(self, plan, names):
        clear_cache()
        analytical = reduced_unit_matrix(AnalyticalImageOperator(), plan, names)
        foster = reduced_unit_matrix(FosterOperator(), plan, names)
        assert cache_size() == 2
        assert not np.array_equal(analytical, foster)
        # Hits return the cached (read-only) object without growth.
        again = reduced_unit_matrix(FosterOperator(), plan, names)
        assert again is foster
        assert cache_size() == 2
        with pytest.raises(ValueError):
            again[0, 0] = 1.0

    def test_eviction_is_least_recently_used(self, monkeypatch):
        from repro.core.cosim import resistance_cache

        clear_cache()
        monkeypatch.setattr(resistance_cache, "_CACHE_LIMIT", 3)
        operator = FosterOperator()
        plans = [
            three_block_floorplan(die_width=(1.0 + i / 10.0) * 1e-3) for i in range(4)
        ]
        matrices = [
            reduced_unit_matrix(operator, p, p.block_names()) for p in plans[:3]
        ]
        assert cache_size() == 3
        # Touch the oldest entry, making plans[1] the least recently used.
        assert (
            reduced_unit_matrix(operator, plans[0], plans[0].block_names())
            is matrices[0]
        )
        reduced_unit_matrix(operator, plans[3], plans[3].block_names())
        assert cache_size() == 3
        # plans[0] survived its touch, plans[2]/plans[3] are warm, and
        # plans[1] — the least recently used — was evicted (recomputing it
        # yields a fresh object).
        assert (
            reduced_unit_matrix(operator, plans[0], plans[0].block_names())
            is matrices[0]
        )
        assert (
            reduced_unit_matrix(operator, plans[2], plans[2].block_names())
            is matrices[2]
        )
        assert (
            reduced_unit_matrix(operator, plans[1], plans[1].block_names())
            is not matrices[1]
        )

    def test_long_geometry_sweep_stays_bounded(self):
        from repro.core.cosim import resistance_cache

        clear_cache()
        operator = FosterOperator()
        for i in range(resistance_cache._CACHE_LIMIT + 8):
            plan = three_block_floorplan(die_width=(1.0 + i / 100.0) * 1e-3)
            reduced_unit_matrix(operator, plan, plan.block_names())
        assert cache_size() == resistance_cache._CACHE_LIMIT
        clear_cache()
