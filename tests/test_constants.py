"""Tests for repro.technology.constants."""


import pytest

from repro.technology import constants


class TestTemperatureConversions:
    def test_celsius_to_kelvin_room(self):
        assert constants.celsius_to_kelvin(25.0) == pytest.approx(298.15)

    def test_kelvin_to_celsius_roundtrip(self):
        assert constants.kelvin_to_celsius(
            constants.celsius_to_kelvin(85.0)
        ) == pytest.approx(85.0)

    def test_celsius_below_absolute_zero_rejected(self):
        with pytest.raises(ValueError):
            constants.celsius_to_kelvin(-300.0)

    def test_negative_kelvin_rejected(self):
        with pytest.raises(ValueError):
            constants.kelvin_to_celsius(-1.0)


class TestThermalVoltage:
    def test_room_temperature_value(self):
        # kT/q at 300 K is the textbook 25.85 mV.
        assert constants.thermal_voltage(300.0) == pytest.approx(0.025852, rel=1e-3)

    def test_scales_linearly_with_temperature(self):
        assert constants.thermal_voltage(600.0) == pytest.approx(
            2.0 * constants.thermal_voltage(300.0)
        )

    def test_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            constants.thermal_voltage(0.0)


class TestSiliconPhysics:
    def test_bandgap_at_300K(self):
        assert constants.silicon_bandgap(300.0) == pytest.approx(1.12, abs=0.01)

    def test_bandgap_decreases_with_temperature(self):
        assert constants.silicon_bandgap(400.0) < constants.silicon_bandgap(300.0)

    def test_intrinsic_concentration_anchored_at_300K(self):
        assert constants.intrinsic_carrier_concentration(300.0) == pytest.approx(
            constants.SILICON_NI_300K
        )

    def test_intrinsic_concentration_grows_exponentially(self):
        cold = constants.intrinsic_carrier_concentration(300.0)
        hot = constants.intrinsic_carrier_concentration(400.0)
        assert hot > 50.0 * cold

    def test_bandgap_rejects_non_positive_temperature(self):
        with pytest.raises(ValueError):
            constants.silicon_bandgap(-10.0)


class TestUnitHelpers:
    def test_microns(self):
        assert constants.microns(0.12) == pytest.approx(0.12e-6)

    def test_nanometers(self):
        assert constants.nanometers(70.0) == pytest.approx(70.0e-9)

    def test_to_microns_roundtrip(self):
        assert constants.to_microns(constants.microns(3.5)) == pytest.approx(3.5)

    def test_milliwatts(self):
        assert constants.milliwatts(10.0) == pytest.approx(0.01)

    def test_boltzmann_ev_consistency(self):
        assert constants.BOLTZMANN_EV == pytest.approx(
            constants.BOLTZMANN / constants.ELEMENTARY_CHARGE
        )
