"""Tests for repro.baselines (prior-work leakage models)."""

import pytest

from repro.baselines.chen_roy import ChenRoyStackModel
from repro.baselines.gu_elmasry import GuElmasryStackModel, UnsupportedStackDepthError
from repro.baselines.narendra import (
    NarendraFullChipModel,
    NarendraStackModel,
    UnsupportedStackDepthError as NarendraUnsupported,
)
from repro.baselines.series_resistance import SeriesResistanceStackModel
from repro.circuit.stack import nmos_stack_from_widths, uniform_nmos_stack
from repro.core.leakage.gate_leakage import GateLeakageModel
from repro.core.leakage.subthreshold import single_device_off_current
from repro.spice.stack_solver import StackDCSolver


@pytest.fixture(scope="module")
def spice(tech012):
    return StackDCSolver(tech012)


@pytest.fixture(scope="module")
def proposed(tech012):
    return GateLeakageModel(tech012)


class TestChenRoy:
    def test_single_device_matches_closed_form(self, tech012):
        model = ChenRoyStackModel(tech012)
        stack = uniform_nmos_stack(1, 1e-6)
        expected = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, tech012.reference_temperature,
            tech012.reference_temperature,
        )
        assert model.stack_off_current(stack) == pytest.approx(expected, rel=0.01)

    def test_stacking_reduces_current(self, tech012):
        model = ChenRoyStackModel(tech012)
        currents = [
            model.stack_off_current(uniform_nmos_stack(n, 1e-6)) for n in (1, 2, 3, 4)
        ]
        assert all(b < a for a, b in zip(currents, currents[1:]))

    def test_less_accurate_than_proposed_model(self, tech012, spice, proposed):
        # The Fig. 8 claim: the proposed collapsing tracks SPICE better than
        # the Chen et al. baseline for deeper stacks.
        for depth in (2, 3, 4):
            stack = uniform_nmos_stack(depth, 1e-6)
            reference = spice.off_current(stack)
            proposed_error = abs(proposed.stack_off_current(stack) - reference) / reference
            chen = ChenRoyStackModel(tech012).stack_off_current(stack)
            chen_error = abs(chen - reference) / reference
            assert proposed_error < chen_error

    def test_estimate_reports_node_voltages(self, tech012):
        model = ChenRoyStackModel(tech012)
        estimate = model.evaluate_stack(uniform_nmos_stack(3, 1e-6))
        assert len(estimate.node_voltages) == 2
        assert estimate.effective_width > 0.0

    def test_all_on_stack_rejected(self, tech012):
        model = ChenRoyStackModel(tech012)
        with pytest.raises(ValueError):
            model.evaluate_stack(uniform_nmos_stack(2, 1e-6), (1, 1))


class TestGuElmasry:
    def test_supports_up_to_three(self, tech012):
        model = GuElmasryStackModel(tech012)
        for depth in (1, 2, 3):
            current = model.stack_off_current(uniform_nmos_stack(depth, 1e-6))
            assert current > 0.0

    def test_rejects_depth_four(self, tech012):
        model = GuElmasryStackModel(tech012)
        with pytest.raises(UnsupportedStackDepthError):
            model.stack_off_current(uniform_nmos_stack(4, 1e-6))

    def test_depth_limit_counts_off_devices_only(self, tech012):
        model = GuElmasryStackModel(tech012)
        stack = uniform_nmos_stack(4, 1e-6)
        # Only three devices OFF: within the model's scope.
        current = model.stack_off_current(stack, (0, 0, 1, 0))
        assert current > 0.0

    def test_reasonable_agreement_with_spice_for_two_stack(self, tech012, spice):
        model = GuElmasryStackModel(tech012)
        stack = uniform_nmos_stack(2, 1e-6)
        assert model.stack_off_current(stack) == pytest.approx(
            spice.off_current(stack), rel=0.6
        )


class TestNarendra:
    def test_two_stack_factor_below_one(self, tech012):
        model = NarendraStackModel(tech012)
        factor = model.two_stack_factor("nmos")
        assert 0.0 < factor < 1.0

    def test_two_stack_estimate_uses_factor(self, tech012):
        model = NarendraStackModel(tech012)
        single = model.stack_off_current(uniform_nmos_stack(1, 1e-6))
        double = model.stack_off_current(uniform_nmos_stack(2, 1e-6))
        assert double == pytest.approx(
            single * model.two_stack_factor("nmos"), rel=1e-6
        )

    def test_rejects_depth_three(self, tech012):
        model = NarendraStackModel(tech012)
        with pytest.raises(NarendraUnsupported):
            model.stack_off_current(uniform_nmos_stack(3, 1e-6))

    def test_order_of_magnitude_against_spice(self, tech012, spice):
        model = NarendraStackModel(tech012)
        stack = uniform_nmos_stack(2, 1e-6)
        estimate = model.stack_off_current(stack)
        reference = spice.off_current(stack)
        assert 0.2 < estimate / reference < 5.0

    def test_unequal_width_stack_supported(self, tech012):
        model = NarendraStackModel(tech012)
        current = model.stack_off_current(nmos_stack_from_widths([1e-6, 3e-6]))
        assert current > 0.0

    def test_full_chip_model(self, tech012):
        chip = NarendraFullChipModel(tech012, stacked_fraction=0.5)
        power = chip.chip_leakage_power(1.0e-3 * 1e3, 2.0e-3 * 1e3)  # widths in m
        assert power > 0.0
        more_stacking = NarendraFullChipModel(tech012, stacked_fraction=0.9)
        assert more_stacking.chip_leakage_power(1.0, 2.0) < chip.chip_leakage_power(1.0, 2.0)

    def test_full_chip_validation(self, tech012):
        with pytest.raises(ValueError):
            NarendraFullChipModel(tech012, stacked_fraction=1.5)
        chip = NarendraFullChipModel(tech012)
        with pytest.raises(ValueError):
            chip.chip_leakage_current(-1.0, 0.0)


class TestSeriesResistanceHeuristic:
    def test_overestimates_stack_leakage(self, tech012, spice):
        model = SeriesResistanceStackModel(tech012)
        stack = uniform_nmos_stack(3, 1e-6)
        naive = model.stack_off_current(stack)
        reference = spice.off_current(stack)
        assert naive > 3.0 * reference

    def test_single_device_matches(self, tech012):
        model = SeriesResistanceStackModel(tech012)
        stack = uniform_nmos_stack(1, 1e-6)
        expected = single_device_off_current(
            tech012.nmos, 1e-6, tech012.vdd, tech012.reference_temperature,
            tech012.reference_temperature,
        )
        assert model.stack_off_current(stack) == pytest.approx(expected)

    def test_scaling_is_one_over_n(self, tech012):
        model = SeriesResistanceStackModel(tech012)
        one = model.stack_off_current(uniform_nmos_stack(1, 1e-6))
        four = model.stack_off_current(uniform_nmos_stack(4, 1e-6))
        assert four == pytest.approx(one / 4.0)
