"""Tests for repro.core.thermal.resistance (Fig. 10 model)."""

import pytest

from repro.core.thermal.images import DieGeometry
from repro.core.thermal.resistance import (
    bounded_self_heating_resistance,
    device_thermal_resistance,
    mutual_thermal_resistance,
    resistance_matrix,
    self_heating_resistance,
)
from repro.core.thermal.sources import HeatSource, square_center_temperature

K_SI = 148.0


class TestSelfHeatingResistance:
    def test_consistent_with_eq18(self):
        resistance = self_heating_resistance(1e-6, 0.1e-6, conductivity=K_SI)
        assert resistance == pytest.approx(
            square_center_temperature(1.0, 1e-6, 0.1e-6, K_SI)
        )

    def test_smaller_device_has_higher_resistance(self):
        small = self_heating_resistance(1e-6, 0.35e-6, conductivity=K_SI)
        large = self_heating_resistance(10e-6, 0.35e-6, conductivity=K_SI)
        assert small > large

    def test_magnitude_for_035um_device(self):
        # A 10 um x 0.35 um transistor on bulk silicon: order 1e3 K/W.
        resistance = self_heating_resistance(10e-6, 0.35e-6, conductivity=K_SI)
        assert 300.0 < resistance < 5000.0

    def test_material_temperature_dependence(self):
        cold = self_heating_resistance(1e-6, 1e-6, temperature=300.0)
        hot = self_heating_resistance(1e-6, 1e-6, temperature=400.0)
        assert hot > cold  # silicon conducts worse when hot

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            self_heating_resistance(0.0, 1e-6)
        with pytest.raises(ValueError):
            self_heating_resistance(1e-6, 1e-6, conductivity=-1.0)

    def test_device_wrapper_area_factor(self):
        bare = device_thermal_resistance(1e-6, 0.1e-6, conductivity=K_SI)
        spread = device_thermal_resistance(
            1e-6, 0.1e-6, conductivity=K_SI, heated_area_factor=2.0
        )
        assert spread < bare
        with pytest.raises(ValueError):
            device_thermal_resistance(1e-6, 0.1e-6, heated_area_factor=0.0)


class TestBoundedResistance:
    def test_bottom_sink_reduces_resistance_for_large_blocks(self):
        die = DieGeometry(width=1e-3, length=1e-3, thickness=0.2e-3)
        block = HeatSource(x=0.5e-3, y=0.5e-3, width=0.4e-3, length=0.4e-3, power=1.0)
        free = self_heating_resistance(0.4e-3, 0.4e-3, conductivity=K_SI)
        bounded = bounded_self_heating_resistance(block, die, conductivity=K_SI)
        assert bounded < free

    def test_requires_positive_power(self):
        die = DieGeometry(width=1e-3, length=1e-3)
        block = HeatSource(x=0.5e-3, y=0.5e-3, width=0.1e-3, length=0.1e-3, power=0.0)
        with pytest.raises(ValueError):
            bounded_self_heating_resistance(block, die)


class TestMutualResistance:
    def test_decreases_with_distance(self):
        source = HeatSource(x=0.0, y=0.0, width=0.1e-3, length=0.1e-3, power=1.0)
        near = mutual_thermal_resistance(source, 0.2e-3, 0.0, conductivity=K_SI)
        far = mutual_thermal_resistance(source, 0.6e-3, 0.0, conductivity=K_SI)
        assert near > far > 0.0

    def test_requires_non_zero_power_probe(self):
        source = HeatSource(x=0.0, y=0.0, width=0.1e-3, length=0.1e-3, power=0.0)
        with pytest.raises(ValueError):
            mutual_thermal_resistance(source, 1e-3, 0.0, conductivity=K_SI)


class TestResistanceMatrix:
    def test_shape_and_symmetry_structure(self):
        sources = [
            HeatSource(x=0.2e-3, y=0.2e-3, width=0.1e-3, length=0.1e-3, power=1.0),
            HeatSource(x=0.8e-3, y=0.8e-3, width=0.1e-3, length=0.1e-3, power=1.0),
        ]
        matrix = resistance_matrix(sources, K_SI)
        assert len(matrix) == 2 and len(matrix[0]) == 2
        # Diagonal (self-heating) dominates the coupling terms.
        assert matrix[0][0] > matrix[0][1]
        assert matrix[1][1] > matrix[1][0]
        # Equal-footprint sources produce a symmetric matrix.
        assert matrix[0][1] == pytest.approx(matrix[1][0], rel=1e-9)

    def test_diagonal_matches_self_heating(self):
        source = HeatSource(x=0.5e-3, y=0.5e-3, width=0.2e-3, length=0.1e-3, power=2.0)
        matrix = resistance_matrix([source], K_SI)
        assert matrix[0][0] == pytest.approx(
            self_heating_resistance(0.2e-3, 0.1e-3, conductivity=K_SI)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            resistance_matrix([], K_SI)
        source = HeatSource(x=0.0, y=0.0, width=0.1e-3, length=0.1e-3, power=1.0)
        with pytest.raises(ValueError):
            resistance_matrix([source], 0.0)
