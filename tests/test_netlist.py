"""Tests for repro.circuit.netlist."""

import pytest

from repro.circuit.cells import inverter, nand_gate, nor_gate
from repro.circuit.netlist import Netlist, chain_of_inverters


@pytest.fixture
def small_netlist(tech012):
    """A 2-level netlist: Z = NOT(NAND(A, B) NOR C) structure.

    U1: N1 = NAND2(A, B)
    U2: N2 = NOR2(N1, C)
    U3: OUT = INV(N2)
    """
    netlist = Netlist("small", primary_inputs=("A", "B", "C"))
    netlist.add_instance(
        "U1", nand_gate(tech012, 2), {"A": "A", "B": "B", "Z": "N1"}, block="left"
    )
    netlist.add_instance(
        "U2", nor_gate(tech012, 2), {"A": "N1", "B": "C", "Z": "N2"}, block="right"
    )
    netlist.add_instance("U3", inverter(tech012), {"A": "N2", "Z": "OUT"}, block="right")
    return netlist


class TestConstruction:
    def test_instance_count_and_devices(self, small_netlist):
        assert len(small_netlist) == 3
        assert small_netlist.device_count() == 4 + 4 + 2

    def test_duplicate_instance_rejected(self, small_netlist, tech012):
        with pytest.raises(ValueError):
            small_netlist.add_instance("U1", inverter(tech012), {"A": "A", "Z": "X"})

    def test_duplicate_driver_rejected(self, small_netlist, tech012):
        with pytest.raises(ValueError):
            small_netlist.add_instance("U9", inverter(tech012), {"A": "A", "Z": "N1"})

    def test_driving_primary_input_rejected(self, small_netlist, tech012):
        with pytest.raises(ValueError):
            small_netlist.add_instance("U9", inverter(tech012), {"A": "N1", "Z": "A"})

    def test_unconnected_pin_rejected(self, tech012):
        netlist = Netlist("bad", primary_inputs=("A", "B"))
        with pytest.raises(ValueError):
            netlist.add_instance("U1", nand_gate(tech012, 2), {"A": "A", "Z": "N1"})

    def test_unknown_pin_rejected(self, tech012):
        netlist = Netlist("bad", primary_inputs=("A",))
        with pytest.raises(ValueError):
            netlist.add_instance(
                "U1", inverter(tech012), {"A": "A", "Q": "N1", "Z": "N2"}
            )

    def test_nets_and_outputs(self, small_netlist):
        assert set(small_netlist.nets()) == {"A", "B", "C", "N1", "N2", "OUT"}
        assert small_netlist.primary_outputs() == ("OUT",)


class TestEvaluation:
    def test_topological_order_respects_dependencies(self, small_netlist):
        order = [inst.name for inst in small_netlist.topological_order()]
        assert order.index("U1") < order.index("U2") < order.index("U3")

    @pytest.mark.parametrize(
        "a,b,c,expected",
        [(0, 0, 0, 1), (1, 1, 0, 0), (1, 1, 1, 1), (0, 1, 1, 1)],
    )
    def test_logic_evaluation(self, small_netlist, a, b, c, expected):
        # OUT = NOT(NOR(NAND(A, B), C)) = NAND(A, B) OR C.
        values = small_netlist.evaluate({"A": a, "B": b, "C": c})
        assert values["OUT"] == expected
        assert values["N1"] == (0 if (a and b) else 1)

    def test_missing_primary_input_rejected(self, small_netlist):
        with pytest.raises(KeyError):
            small_netlist.evaluate({"A": 1, "B": 0})

    def test_instance_input_vectors(self, small_netlist):
        vectors = small_netlist.instance_input_vectors({"A": 1, "B": 1, "C": 0})
        assert vectors["U1"] == {"A": 1, "B": 1}
        assert vectors["U2"] == {"A": 0, "B": 0}
        assert vectors["U3"] == {"A": 1}

    def test_undriven_net_detected(self, tech012):
        netlist = Netlist("bad", primary_inputs=("A",))
        netlist.add_instance("U1", nand_gate(tech012, 2), {"A": "A", "B": "QQ", "Z": "N1"})
        with pytest.raises(ValueError, match="undriven"):
            netlist.topological_order()

    def test_combinational_loop_detected(self, tech012):
        netlist = Netlist("loop", primary_inputs=("A",))
        netlist.add_instance("U1", nand_gate(tech012, 2), {"A": "A", "B": "N2", "Z": "N1"})
        netlist.add_instance("U2", inverter(tech012), {"A": "N1", "Z": "N2"})
        with pytest.raises(ValueError, match="loop"):
            netlist.topological_order()


class TestBlocks:
    def test_blocks_listed(self, small_netlist):
        assert small_netlist.blocks() == ("left", "right")

    def test_instances_in_block(self, small_netlist):
        right = small_netlist.instances_in_block("right")
        assert {inst.name for inst in right} == {"U2", "U3"}


class TestInverterChain:
    def test_chain_depth_and_logic(self, tech012):
        chain = chain_of_inverters(tech012, 5)
        assert len(chain) == 5
        values = chain.evaluate({"IN": 1})
        assert values["N5"] == 0  # odd number of inversions
        values = chain.evaluate({"IN": 0})
        assert values["N5"] == 1

    def test_bad_depth_rejected(self, tech012):
        with pytest.raises(ValueError):
            chain_of_inverters(tech012, 0)
