"""Tests for repro.core.thermal.sources (Eqs. 16, 18, 19)."""

import math

import pytest

from repro.core.thermal.sources import (
    HeatSource,
    buried_point_source_temperature,
    equivalent_point_distance,
    line_source_temperature,
    point_source_temperature,
    square_center_temperature,
)

K_SI = 148.0


class TestHeatSource:
    def test_area_and_density(self):
        source = HeatSource(0.0, 0.0, 2e-6, 1e-6, 4e-3)
        assert source.area == pytest.approx(2e-12)
        assert source.power_density == pytest.approx(2e9)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            HeatSource(0.0, 0.0, 0.0, 1e-6, 1e-3)
        with pytest.raises(ValueError):
            HeatSource(0.0, 0.0, 1e-6, 1e-6, 1e-3, depth=-1e-6)

    def test_geometric_transforms(self):
        source = HeatSource(1e-6, 2e-6, 1e-6, 1e-6, 1e-3)
        assert source.translated(1e-6, -1e-6).x == pytest.approx(2e-6)
        assert source.mirrored_x(0.0).x == pytest.approx(-1e-6)
        assert source.mirrored_y(5e-6).y == pytest.approx(8e-6)

    def test_sink_image(self):
        source = HeatSource(0.0, 0.0, 1e-6, 1e-6, 1e-3)
        sink = source.as_sink(600e-6)
        assert sink.power == pytest.approx(-1e-3)
        assert sink.depth == pytest.approx(600e-6)

    def test_scaled_power(self):
        source = HeatSource(0.0, 0.0, 1e-6, 1e-6, 1e-3)
        assert source.scaled_power(2.0).power == pytest.approx(2e-3)


class TestPointSource:
    def test_eq16_value(self):
        # T = P / (2 pi k r).
        assert point_source_temperature(1e-6, 1e-3, K_SI) == pytest.approx(
            1e-3 / (2.0 * math.pi * K_SI * 1e-6)
        )

    def test_inverse_distance(self):
        assert point_source_temperature(1e-6, 1e-3, K_SI) == pytest.approx(
            2.0 * point_source_temperature(2e-6, 1e-3, K_SI)
        )

    def test_buried_source_reduces_to_surface_at_zero_depth(self):
        assert buried_point_source_temperature(3e-6, 0.0, 1e-3, K_SI) == pytest.approx(
            point_source_temperature(3e-6, 1e-3, K_SI)
        )

    def test_buried_source_uses_3d_distance(self):
        value = buried_point_source_temperature(3e-6, 4e-6, 1e-3, K_SI)
        assert value == pytest.approx(point_source_temperature(5e-6, 1e-3, K_SI))

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            point_source_temperature(0.0, 1e-3, K_SI)
        with pytest.raises(ValueError):
            point_source_temperature(1e-6, 1e-3, -1.0)
        with pytest.raises(ValueError):
            buried_point_source_temperature(0.0, 0.0, 1e-3, K_SI)


class TestSquareCenter:
    def test_symmetric_in_w_and_l(self):
        assert square_center_temperature(1e-3, 1e-6, 0.1e-6, K_SI) == pytest.approx(
            square_center_temperature(1e-3, 0.1e-6, 1e-6, K_SI)
        )

    def test_linear_in_power(self):
        assert square_center_temperature(2e-3, 1e-6, 1e-6, K_SI) == pytest.approx(
            2.0 * square_center_temperature(1e-3, 1e-6, 1e-6, K_SI)
        )

    def test_smaller_source_runs_hotter(self):
        small = square_center_temperature(1e-3, 0.5e-6, 0.5e-6, K_SI)
        large = square_center_temperature(1e-3, 2e-6, 2e-6, K_SI)
        assert small > large

    def test_square_closed_form(self):
        # For W = L the bracket reduces to 2 W asinh(1).
        width = 1e-6
        expected = 1e-3 * 2.0 * width * math.asinh(1.0) / (
            math.pi * K_SI * width * width
        )
        assert square_center_temperature(1e-3, width, width, K_SI) == pytest.approx(
            expected
        )

    def test_paper_fig5_magnitude(self):
        # The paper's Fig. 5 example: W = 1 um, L = 0.1 um, P = 10 mW.
        value = square_center_temperature(10e-3, 1e-6, 0.1e-6, K_SI)
        assert 50.0 < value < 150.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            square_center_temperature(1e-3, -1e-6, 1e-6, K_SI)
        with pytest.raises(ValueError):
            square_center_temperature(1e-3, 1e-6, 1e-6, 0.0)


class TestLineSource:
    def test_symmetric_about_center(self):
        left = line_source_temperature(-2e-6, 1e-6, 1e-3, 4e-6, K_SI)
        right = line_source_temperature(2e-6, 1e-6, 1e-3, 4e-6, K_SI)
        assert left == pytest.approx(right, rel=1e-9)

    def test_axis_choice_swaps_coordinates(self):
        along_x = line_source_temperature(1e-6, 3e-6, 1e-3, 4e-6, K_SI, axis="x")
        along_y = line_source_temperature(3e-6, 1e-6, 1e-3, 4e-6, K_SI, axis="y")
        assert along_x == pytest.approx(along_y)

    def test_far_field_matches_point_source(self):
        distance = 200e-6
        line = line_source_temperature(0.0, distance, 1e-3, 4e-6, K_SI)
        point = point_source_temperature(distance, 1e-3, K_SI)
        assert line == pytest.approx(point, rel=1e-3)

    def test_diverges_on_the_line(self):
        on_line = line_source_temperature(0.0, 0.0, 1e-3, 4e-6, K_SI)
        near_line = line_source_temperature(0.0, 1e-6, 1e-3, 4e-6, K_SI)
        assert on_line > near_line > 0.0

    def test_invalid_axis_rejected(self):
        with pytest.raises(ValueError):
            line_source_temperature(0.0, 1e-6, 1e-3, 4e-6, K_SI, axis="z")

    def test_invalid_extent_rejected(self):
        with pytest.raises(ValueError):
            line_source_temperature(0.0, 1e-6, 1e-3, 0.0, K_SI)


class TestEquivalentPointDistance:
    def test_half_diagonal(self):
        assert equivalent_point_distance(3e-6, 4e-6) == pytest.approx(2.5e-6)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            equivalent_point_distance(0.0, 1e-6)
