"""Tests for repro.core.leakage.stack_collapse (paper Eqs. 3–12)."""

import math

import pytest

from repro.circuit.stack import nmos_stack_from_widths, uniform_nmos_stack
from repro.core.leakage.stack_collapse import StackCollapser
from repro.technology import thermal_voltage


@pytest.fixture(scope="module")
def collapser(tech012):
    return StackCollapser(tech012)


class TestBuildingBlocks:
    def test_alpha_definition(self, collapser, tech012):
        device = tech012.nmos
        expected = device.n / (1.0 + device.body_effect + 2.0 * device.dibl)
        assert collapser.alpha("nmos") == pytest.approx(expected)

    def test_stacking_exponent_definition(self, collapser, tech012):
        device = tech012.nmos
        assert collapser.stacking_exponent("nmos") == pytest.approx(
            1.0 + device.body_effect + device.dibl
        )

    def test_f_value_equal_widths_is_dibl_term(self, collapser, tech012):
        device = tech012.nmos
        vt = thermal_voltage(tech012.reference_temperature)
        expected = device.dibl * tech012.vdd / (device.n * vt)
        assert collapser.f_value(1e-6, 1e-6, "nmos") == pytest.approx(expected)

    def test_f_value_monotone_in_width_ratio(self, collapser):
        values = [
            collapser.f_value(r * 1e-6, 1e-6, "nmos")
            for r in (0.1, 0.5, 1.0, 2.0, 10.0)
        ]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_f_value_rejects_bad_widths(self, collapser):
        with pytest.raises(ValueError):
            collapser.f_value(0.0, 1e-6, "nmos")


class TestNodeVoltage:
    def test_matches_strong_asymptote_for_wide_top(self, collapser):
        # A top device 1000x wider drives f >> 1: Eq. (10) must approach
        # the Eq. (7) asymptote.
        unified = collapser.node_voltage(1000e-6, 1e-6, "nmos")
        strong = collapser.node_voltage_strong(1000e-6, 1e-6, "nmos")
        assert unified == pytest.approx(strong, rel=0.02)

    def test_matches_weak_asymptote_for_narrow_top(self, collapser, tech012):
        # A top device 10000x narrower drives f << 0: Eq. (10) must approach
        # the Eq. (8) asymptote VT * exp(f).
        unified = collapser.node_voltage(1e-10, 1e-6, "nmos")
        weak = collapser.node_voltage_weak(1e-10, 1e-6, "nmos")
        assert unified == pytest.approx(weak, rel=0.02)

    def test_monotone_in_width_ratio(self, collapser):
        voltages = [
            collapser.node_voltage(r * 1e-6, 1e-6, "nmos")
            for r in (0.01, 0.1, 1.0, 10.0, 100.0)
        ]
        assert all(b > a for a, b in zip(voltages, voltages[1:]))

    def test_always_positive(self, collapser):
        assert collapser.node_voltage(1e-9, 1e-6, "nmos") > 0.0

    @pytest.mark.parametrize("ratio", [0.05, 0.2, 1.0, 5.0, 25.0])
    def test_tracks_exact_solution_fig3(self, collapser, ratio):
        # The Fig. 3 claim: Eq. (10) is a good approximation to the exact
        # (numerically solved) node voltage across width ratios.
        lower = 1e-6
        upper = ratio * lower
        approx = collapser.node_voltage(upper, lower, "nmos")
        exact = collapser.exact_pair_node_voltage(upper, lower, "nmos")
        assert approx == pytest.approx(exact, rel=0.10, abs=2e-3)

    def test_exact_solver_balances_currents(self, collapser, tech012):
        from repro.core.leakage.subthreshold import SubthresholdBias, subthreshold_current

        node = collapser.exact_pair_node_voltage(2e-6, 1e-6, "nmos")
        device = tech012.nmos
        lower = subthreshold_current(
            device, 1e-6,
            SubthresholdBias(vgs=0.0, vds=node, vsb=0.0, vdd=tech012.vdd),
            tech012.reference_temperature,
        )
        upper = subthreshold_current(
            device, 2e-6,
            SubthresholdBias(
                vgs=-node, vds=tech012.vdd - node, vsb=node, vdd=tech012.vdd
            ),
            tech012.reference_temperature,
        )
        assert lower == pytest.approx(upper, rel=1e-6)


class TestPairCollapse:
    def test_equivalent_width_formula(self, collapser, tech012):
        pair = collapser.collapse_pair(2e-6, 1e-6, "nmos")
        device = tech012.nmos
        vt = thermal_voltage(tech012.reference_temperature)
        expected = 2e-6 * math.exp(
            -(1.0 + device.body_effect + device.dibl)
            * pair.node_voltage / (device.n * vt)
        )
        assert pair.equivalent_width == pytest.approx(expected)

    def test_equivalent_width_below_upper_width(self, collapser):
        pair = collapser.collapse_pair(2e-6, 1e-6, "nmos")
        assert 0.0 < pair.equivalent_width < 2e-6


class TestChainCollapse:
    def test_single_device_is_identity(self, collapser):
        result = collapser.collapse_chain_widths([1e-6], "nmos")
        assert result.effective_width == pytest.approx(1e-6)
        assert result.stack_depth == 1
        assert result.node_voltages == ()

    def test_effective_width_decreases_with_depth(self, collapser):
        widths = [
            collapser.collapse_chain_widths([1e-6] * n, "nmos").effective_width
            for n in (1, 2, 3, 4, 5)
        ]
        assert all(b < a for a, b in zip(widths, widths[1:]))

    def test_node_voltage_sum_is_top_node(self, collapser):
        result = collapser.collapse_chain_widths([1e-6, 1e-6, 1e-6], "nmos")
        assert result.top_node_voltage == pytest.approx(sum(result.node_voltages))
        assert len(result.node_voltages) == 2

    def test_final_width_consistent_with_eq11(self, collapser, tech012):
        # Eq. (11): W_eff = W_top * exp(-(1+gamma'+sigma) * V_{N-1} / (n VT)).
        result = collapser.collapse_chain_widths([1e-6, 1e-6, 1e-6], "nmos")
        device = tech012.nmos
        vt = thermal_voltage(tech012.reference_temperature)
        expected = 1e-6 * math.exp(
            -(1.0 + device.body_effect + device.dibl)
            * result.top_node_voltage / (device.n * vt)
        )
        assert result.effective_width == pytest.approx(expected, rel=1e-9)

    def test_stacking_factor_definition(self, collapser):
        result = collapser.collapse_chain_widths([2e-6, 1e-6], "nmos")
        assert result.stacking_factor == pytest.approx(
            result.effective_width / 1e-6
        )

    def test_empty_chain_rejected(self, collapser):
        with pytest.raises(ValueError):
            collapser.collapse_chain_widths([], "nmos")

    def test_negative_width_rejected(self, collapser):
        with pytest.raises(ValueError):
            collapser.collapse_chain_widths([1e-6, -1e-6], "nmos")


class TestStackCollapse:
    def test_on_devices_excluded(self, collapser):
        stack = uniform_nmos_stack(3, 1e-6)
        mixed = collapser.collapse_stack(stack, (0, 1, 0))
        pair = collapser.collapse_chain_widths([1e-6, 1e-6], "nmos")
        assert mixed.effective_width == pytest.approx(pair.effective_width)

    def test_all_on_chain_rejected(self, collapser):
        stack = uniform_nmos_stack(2, 1e-6)
        with pytest.raises(ValueError):
            collapser.collapse_stack(stack, (1, 1))

    def test_default_vector_is_all_off(self, collapser):
        stack = nmos_stack_from_widths([1e-6, 2e-6])
        default = collapser.collapse_stack(stack)
        explicit = collapser.collapse_stack(stack, (0, 0))
        assert default.effective_width == pytest.approx(explicit.effective_width)

    def test_parallel_chain_widths_add(self, collapser):
        a = collapser.collapse_chain_widths([1e-6, 1e-6], "nmos")
        b = collapser.collapse_chain_widths([2e-6, 2e-6], "nmos")
        total = collapser.effective_width_of_parallel_chains([a, b])
        assert total == pytest.approx(a.effective_width + b.effective_width)

    def test_parallel_chains_must_share_polarity(self, collapser):
        a = collapser.collapse_chain_widths([1e-6], "nmos")
        b = collapser.collapse_chain_widths([1e-6], "pmos")
        with pytest.raises(ValueError):
            collapser.effective_width_of_parallel_chains([a, b])

    def test_temperature_raises_node_voltages(self, collapser):
        cold = collapser.collapse_chain_widths([1e-6, 1e-6], "nmos", temperature=298.15)
        hot = collapser.collapse_chain_widths([1e-6, 1e-6], "nmos", temperature=398.15)
        assert hot.top_node_voltage > cold.top_node_voltage
