"""Tests for repro.spice.dc_solver and repro.spice.gate_solver."""

import pytest

from repro.circuit.cells import aoi22, inverter, nand_gate, nor_gate
from repro.circuit.netlist import Netlist
from repro.circuit.stack import uniform_nmos_stack
from repro.circuit.topology import network_from_stack, parallel_of_devices
from repro.circuit.devices import nmos
from repro.spice.dc_solver import NetworkDCSolver
from repro.spice.gate_solver import (
    GateLeakageReference,
    netlist_leakage_reference,
    netlist_total_leakage_reference,
)
from repro.spice.stack_solver import StackDCSolver


@pytest.fixture(scope="module")
def network_solver(tech012):
    return NetworkDCSolver(tech012)


@pytest.fixture(scope="module")
def reference(tech012):
    return GateLeakageReference(tech012)


class TestNetworkDCSolver:
    def test_series_network_matches_stack_solver(self, network_solver, tech012):
        stack = uniform_nmos_stack(3, 1e-6)
        network = network_from_stack(stack)
        inputs = {f"IN{i}": 0 for i in (1, 2, 3)}
        series_current = network_solver.network_current(
            network, inputs, 0.0, tech012.vdd
        )
        stack_current = StackDCSolver(tech012).off_current(stack)
        assert series_current == pytest.approx(stack_current, rel=1e-4)

    def test_parallel_network_adds_currents(self, network_solver, tech012):
        single = parallel_of_devices([nmos("MN1", 1e-6, "A")])
        double = parallel_of_devices(
            [nmos("MN1", 1e-6, "A"), nmos("MN2", 1e-6, "B")]
        )
        one = network_solver.network_current(single, {"A": 0}, 0.0, tech012.vdd)
        two = network_solver.network_current(
            double, {"A": 0, "B": 0}, 0.0, tech012.vdd
        )
        assert two == pytest.approx(2.0 * one, rel=1e-9)

    def test_zero_span_gives_zero_current(self, network_solver):
        network = parallel_of_devices([nmos("MN1", 1e-6, "A")])
        assert network_solver.network_current(network, {"A": 0}, 0.0, 0.0) == 0.0

    def test_inverted_span_rejected(self, network_solver):
        network = parallel_of_devices([nmos("MN1", 1e-6, "A")])
        with pytest.raises(ValueError):
            network_solver.network_current(network, {"A": 0}, 1.0, 0.0)

    def test_missing_input_rejected(self, network_solver, tech012):
        network = parallel_of_devices([nmos("MN1", 1e-6, "A")])
        with pytest.raises(KeyError):
            network_solver.network_current(network, {}, 0.0, tech012.vdd)


class TestGateLeakageReference:
    def test_inverter_two_states(self, reference, tech012):
        gate = inverter(tech012)
        leak_high_output = reference.off_current(gate, {"A": 0})  # NMOS leaks
        leak_low_output = reference.off_current(gate, {"A": 1})  # PMOS leaks
        assert leak_high_output > 0.0 and leak_low_output > 0.0
        # NMOS device leaks more than the PMOS at these parameters even
        # though the PMOS is drawn wider.
        assert leak_high_output != pytest.approx(leak_low_output, rel=0.01)

    def test_nand_all_zero_is_minimum_leakage(self, reference, tech012):
        gate = nand_gate(tech012, 2)
        currents = {
            (a, b): reference.off_current(gate, {"A": a, "B": b})
            for a in (0, 1) for b in (0, 1)
        }
        assert min(currents, key=currents.get) == (0, 0)

    def test_worst_case_vector_search(self, reference, tech012):
        gate = nand_gate(tech012, 2)
        worst = reference.worst_case_vector(gate)
        assert worst.current == pytest.approx(
            max(
                reference.off_current(gate, {"A": a, "B": b})
                for a in (0, 1) for b in (0, 1)
            )
        )

    def test_average_current_between_extremes(self, reference, tech012):
        gate = nor_gate(tech012, 2)
        average = reference.average_current(gate)
        worst = reference.worst_case_vector(gate).current
        assert 0.0 < average < worst

    def test_static_power_is_current_times_vdd(self, reference, tech012):
        gate = inverter(tech012)
        assert reference.static_power(gate, {"A": 0}) == pytest.approx(
            reference.off_current(gate, {"A": 0}) * tech012.vdd
        )

    def test_complex_gate_solves(self, reference, tech012):
        gate = aoi22(tech012)
        current = reference.off_current(gate, {"A": 1, "B": 0, "C": 0, "D": 0})
        assert current > 0.0


class TestNetlistReference:
    def test_per_instance_and_total(self, tech012):
        netlist = Netlist("pair", primary_inputs=("A", "B"))
        netlist.add_instance("U1", nand_gate(tech012, 2), {"A": "A", "B": "B", "Z": "N1"})
        netlist.add_instance("U2", inverter(tech012), {"A": "N1", "Z": "OUT"})
        results = netlist_leakage_reference(netlist, {"A": 0, "B": 1}, tech012)
        assert set(results) == {"U1", "U2"}
        total = netlist_total_leakage_reference(netlist, {"A": 0, "B": 1}, tech012)
        assert total == pytest.approx(sum(r.power for r in results.values()))
