"""Tests for repro.measurement (simulated self-heating bench, Figs. 9-10)."""

import numpy as np
import pytest

from repro.measurement.calibration import TemperatureCalibration
from repro.measurement.instruments import (
    Oscilloscope,
    PulseGenerator,
    SenseResistor,
    WaveformTrace,
)
from repro.measurement.selfheating import (
    DeviceUnderTest,
    SelfHeatingBench,
    default_test_devices,
)


@pytest.fixture(scope="module")
def bench(tech035):
    return SelfHeatingBench(tech035)


@pytest.fixture(scope="module")
def device(tech035):
    return default_test_devices(tech035)[1]  # 10 um wide nMOS


class TestInstruments:
    def test_waveform_trace_basic(self):
        trace = WaveformTrace(
            times=np.array([0.0, 1.0, 2.0]), values=np.array([1.0, 2.0, 3.0])
        )
        assert trace.duration == pytest.approx(2.0)
        assert trace.sample_period == pytest.approx(1.0)
        assert trace.mean() == pytest.approx(2.0)
        assert trace.steady_state_value(0.34) == pytest.approx(3.0)

    def test_waveform_window(self):
        trace = WaveformTrace(times=np.linspace(0, 9, 10), values=np.arange(10.0))
        window = trace.window(2.0, 5.0)
        assert window.times[0] == pytest.approx(2.0)
        assert window.times[-1] == pytest.approx(5.0)

    def test_waveform_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WaveformTrace(times=np.array([0.0, 1.0]), values=np.array([1.0]))

    def test_pulse_generator_waveform(self):
        pulse = PulseGenerator(frequency=3.0, duty_cycle=0.5, high_level=3.3)
        trace = pulse.waveform(duration=1.0, samples_per_period=100)
        assert trace.values.max() == pytest.approx(3.3)
        assert trace.values.min() == pytest.approx(0.0)
        on_fraction = float((trace.values > 0).mean())
        assert on_fraction == pytest.approx(0.5, abs=0.05)

    def test_pulse_generator_validation(self):
        with pytest.raises(ValueError):
            PulseGenerator(frequency=0.0)
        with pytest.raises(ValueError):
            PulseGenerator(duty_cycle=1.5)

    def test_sense_resistor(self):
        resistor = SenseResistor(resistance=10.0)
        assert resistor.voltage(np.array([1e-3]))[0] == pytest.approx(1e-2)
        with pytest.raises(ValueError):
            SenseResistor(resistance=0.0)

    def test_oscilloscope_noise_is_reproducible(self):
        scope = Oscilloscope(noise_rms=1e-3, seed=42)
        times = np.linspace(0, 1, 100)
        values = np.ones(100)
        first = scope.capture(times, values).values
        second = scope.capture(times, values).values
        assert np.allclose(first, second)
        assert not np.allclose(first, values)  # noise actually added

    def test_oscilloscope_quantisation(self):
        scope = Oscilloscope(noise_rms=0.0, vertical_resolution=0.5)
        trace = scope.capture(np.array([0.0, 1.0]), np.array([0.26, 0.74]))
        assert trace.values[0] == pytest.approx(0.5)
        assert trace.values[1] == pytest.approx(0.5)


class TestCalibration:
    def test_linear_fit(self):
        calibration = TemperatureCalibration.from_points(
            {30.0: 1.00, 35.0: 0.99, 40.0: 0.98}
        )
        assert calibration.slope == pytest.approx(-0.002, rel=1e-6)
        assert calibration.voltage_to_temperature(0.99) == pytest.approx(35.0, abs=1e-6)
        assert calibration.temperature_to_voltage(30.0) == pytest.approx(1.00, abs=1e-9)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            TemperatureCalibration.from_points({30.0: 1.0})

    def test_voltage_drop_conversion(self):
        calibration = TemperatureCalibration.from_points({30.0: 1.0, 40.0: 0.9})
        assert calibration.voltage_drop_to_temperature_rise(-0.05) == pytest.approx(5.0)


class TestDeviceUnderTest:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceUnderTest("bad", width=0.0, length=1e-6)
        with pytest.raises(ValueError):
            DeviceUnderTest("bad", width=1e-6, length=1e-6, temperature_coefficient=0.01)

    def test_default_devices_span_widths(self, tech035):
        devices = default_test_devices(tech035)
        assert len(devices) == 4
        widths = [d.width for d in devices]
        assert widths == sorted(widths)
        assert widths[-1] / widths[0] == pytest.approx(8.0)


class TestBench:
    def test_trace_shows_exponential_heating(self, bench, device):
        record = bench.simulate(device, ambient_celsius=30.0)
        times, rise = bench.extract_on_transient(record, bench.calibrate(device))
        assert rise[0] == pytest.approx(0.0, abs=1.0)
        assert rise[-1] > 3.0  # visible self-heating by the end of the pulse
        # Exponential shape: the first half rises more than the second half.
        half = len(rise) // 2
        assert (rise[half] - rise[0]) > (rise[-1] - rise[half])

    def test_hotter_ambient_lowers_initial_voltage(self, bench, device):
        cold = bench.simulate(device, ambient_celsius=30.0).initial_on_voltage()
        hot = bench.simulate(device, ambient_celsius=40.0).initial_on_voltage()
        assert hot < cold

    def test_calibration_recovers_ambient_spacing(self, bench, device):
        calibration = bench.calibrate(device, ambients_celsius=(30.0, 35.0, 40.0))
        assert calibration.slope < 0.0
        assert calibration.residual < 5e-3

    def test_measured_rth_matches_analytical_model(self, bench, device):
        measurement = bench.measure_thermal_resistance(device)
        assert measurement.resistance > 0.0
        # Fig. 10: model and measurement agree well (here within 20%).
        assert abs(measurement.relative_error) < 0.2

    def test_rth_decreases_with_device_width(self, bench, tech035):
        devices = default_test_devices(tech035)
        resistances = [
            bench.measure_thermal_resistance(device).resistance for device in devices
        ]
        assert all(b < a for a, b in zip(resistances, resistances[1:]))

    def test_average_on_power_positive(self, bench, device):
        record = bench.simulate(device, ambient_celsius=30.0)
        assert record.average_on_power() > 0.0

    def test_time_constant_extraction(self, bench, device):
        measurement = bench.measure_thermal_resistance(device)
        assert measurement.time_constant == pytest.approx(
            bench.response_time_constant, rel=0.3
        )

    def test_invalid_time_constant_rejected(self, tech035):
        with pytest.raises(ValueError):
            SelfHeatingBench(tech035, response_time_constant=0.0)
