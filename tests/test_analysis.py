"""Tests for repro.analysis (metrics, sweeps, grids, sections, isotherms)."""

import numpy as np
import pytest

from repro.analysis.grids import radial_distances, regular_grid
from repro.analysis.isotherms import (
    gradient_tangency_residual,
    hotspot_location,
    isotherm_levels,
    isotherm_mask,
    isotherm_statistics,
    isotherm_summary,
)
from repro.analysis.metrics import (
    absolute_relative_error,
    correlation,
    log_accuracy_decades,
    max_absolute_relative_error,
    mean_absolute_relative_error,
    relative_error,
    rms_error,
    rms_relative_error,
)
from repro.analysis.sections import cross_section_x, cross_section_y
from repro.analysis.sweep import grid_sweep, logspace, sweep


class TestMetrics:
    def test_relative_error_signed(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(-0.1)
        assert absolute_relative_error(0.9, 1.0) == pytest.approx(0.1)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_aggregate_metrics(self):
        estimates = [1.0, 2.2, 2.7]
        references = [1.0, 2.0, 3.0]
        assert mean_absolute_relative_error(estimates, references) == pytest.approx(
            (0.0 + 0.1 + 0.1) / 3.0
        )
        assert max_absolute_relative_error(estimates, references) == pytest.approx(0.1)
        assert rms_error([1.0, 3.0], [1.0, 1.0]) == pytest.approx(np.sqrt(2.0))
        assert rms_relative_error([2.0], [1.0]) == pytest.approx(1.0)

    def test_correlation(self):
        assert correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)
        with pytest.raises(ValueError):
            correlation([1, 1], [2, 3])

    def test_log_accuracy(self):
        assert log_accuracy_decades([10.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            log_accuracy_decades([0.0], [1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rms_error([1.0], [1.0, 2.0])


class TestSweep:
    def test_sweep_multiple_series(self):
        result = sweep("x", [1.0, 2.0, 3.0], {"square": lambda x: x**2, "id": lambda x: x})
        assert result.values == [1.0, 2.0, 3.0]
        assert list(result.series("square")) == [1.0, 4.0, 9.0]
        assert result.labels() == ("square", "id")
        rows = result.as_rows()
        assert rows[1] == (2.0, 4.0, 2.0)

    def test_unknown_series_rejected(self):
        result = sweep("x", [1.0], {"y": lambda x: x})
        with pytest.raises(KeyError):
            result.series("z")

    def test_sweep_requires_inputs(self):
        with pytest.raises(ValueError):
            sweep("x", [1.0], {})
        with pytest.raises(ValueError):
            sweep("x", [], {"y": lambda x: x})

    def test_grid_sweep(self):
        grid = grid_sweep([1.0, 2.0], [10.0, 20.0, 30.0], lambda x, y: x * y)
        assert grid.shape == (2, 3)
        assert grid[1, 2] == pytest.approx(60.0)

    def test_logspace(self):
        values = logspace(1.0, 100.0, 3)
        assert values[1] == pytest.approx(10.0)
        with pytest.raises(ValueError):
            logspace(-1.0, 10.0, 3)


class TestGrids:
    def test_regular_grid(self):
        grid = regular_grid(1e-3, 2e-3, nx=5, ny=9)
        assert grid.shape == (5, 9)
        xs, ys = grid.meshgrid()
        assert xs.shape == (5, 9)

    def test_grid_evaluate(self):
        grid = regular_grid(1.0, 1.0, nx=3, ny=3)
        field = grid.evaluate(lambda x, y: x + y)
        assert field[2, 2] == pytest.approx(2.0)

    def test_radial_distances(self):
        linear = radial_distances(1e-6, 10e-6, count=10, logarithmic=False)
        assert linear[0] == pytest.approx(1e-6)
        assert linear[-1] == pytest.approx(10e-6)
        log = radial_distances(1e-6, 100e-6, count=3)
        assert log[1] == pytest.approx(10e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            regular_grid(0.0, 1.0)
        with pytest.raises(ValueError):
            radial_distances(1e-6, 1e-7)


class TestSections:
    def _field(self, x, y):
        # A smooth bump centred at (0.5, 0.5) with zero gradient at x=0 and 1.
        return 300.0 + 10.0 * np.cos(np.pi * (x - 0.5)) ** 2

    def test_cross_section_x(self):
        section = cross_section_x(self._field, y=0.5, x_start=0.0, x_stop=1.0, samples=101)
        assert section.peak_position == pytest.approx(0.5, abs=0.02)
        assert section.peak_temperature == pytest.approx(310.0, abs=0.01)

    def test_edge_gradients_vanish_for_symmetric_field(self):
        section = cross_section_x(self._field, y=0.5, x_start=0.0, x_stop=1.0, samples=201)
        left, right = section.normalized_edge_gradients()
        assert left < 0.05 and right < 0.05

    def test_cross_section_y(self):
        section = cross_section_y(
            lambda x, y: self._field(y, x), x=0.5, y_start=0.0, y_stop=1.0
        )
        assert section.axis == "y"
        assert section.peak_temperature > 309.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cross_section_x(self._field, 0.5, 1.0, 0.0)
        with pytest.raises(ValueError):
            cross_section_x(self._field, 0.5, 0.0, 1.0, samples=2)


class TestIsotherms:
    @pytest.fixture
    def peaked_field(self):
        x = np.linspace(0.0, 1.0, 41)
        y = np.linspace(0.0, 1.0, 41)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        field = 300.0 + 20.0 * np.exp(-((xx - 0.4) ** 2 + (yy - 0.6) ** 2) / 0.02)
        return x, y, field

    def test_levels_span_range(self, peaked_field):
        _, _, field = peaked_field
        levels = isotherm_levels(field, count=5)
        assert len(levels) == 5
        assert min(levels) > field.min() and max(levels) < field.max()

    def test_statistics_monotone(self, peaked_field):
        _, _, field = peaked_field
        levels = isotherm_levels(field, count=6)
        stats = isotherm_statistics(field, levels)
        fractions = [s.enclosed_fraction for s in stats]
        assert all(b <= a for a, b in zip(fractions, fractions[1:]))

    def test_mask(self, peaked_field):
        _, _, field = peaked_field
        mask = isotherm_mask(field, 310.0)
        assert mask.dtype == bool
        assert 0 < mask.sum() < mask.size

    def test_hotspot_location(self, peaked_field):
        x, y, field = peaked_field
        hx, hy, value = hotspot_location(field, x, y)
        assert hx == pytest.approx(0.4, abs=0.03)
        assert hy == pytest.approx(0.6, abs=0.03)
        assert value == pytest.approx(320.0, abs=0.5)

    def test_gradient_tangency_residual_small_for_centered_bump(self):
        # A field with zero normal gradient at the boundary (cos^2 bump).
        x = np.linspace(0.0, 1.0, 41)
        y = np.linspace(0.0, 1.0, 41)
        xx, yy = np.meshgrid(x, y, indexing="ij")
        field = 300.0 + 5.0 * (np.cos(np.pi * (xx - 0.5)) * np.cos(np.pi * (yy - 0.5))) ** 2
        assert gradient_tangency_residual(field, x, y) < 0.1

    def test_constant_field_has_no_contours(self):
        field = np.full((5, 5), 300.0)
        with pytest.raises(ValueError):
            isotherm_levels(field)


class TestBatchedRouting:
    """The batched (kernel-convention) entry points must match the scalar ones."""

    @staticmethod
    def scalar_field(x, y):
        return 300.0 + 40.0 * x - 25.0 * y + 3.0 * x * y

    @classmethod
    def batched_field(cls, points):
        return cls.scalar_field(points[:, 0], points[:, 1])

    def test_cross_section_x_batched_matches_scalar(self):
        scalar = cross_section_x(self.scalar_field, 0.3, 0.0, 1.0, samples=17)
        batched = cross_section_x(
            self.batched_field, 0.3, 0.0, 1.0, samples=17, batched=True
        )
        assert np.allclose(scalar.temperatures, batched.temperatures)
        assert np.array_equal(scalar.positions, batched.positions)

    def test_cross_section_y_batched_matches_scalar(self):
        scalar = cross_section_y(self.scalar_field, 0.7, 0.0, 2.0, samples=11)
        batched = cross_section_y(
            self.batched_field, 0.7, 0.0, 2.0, samples=11, batched=True
        )
        assert np.allclose(scalar.temperatures, batched.temperatures)

    def test_grid_points_ordering(self):
        grid = regular_grid(1.0, 2.0, nx=3, ny=4)
        points = grid.points()
        assert points.shape == (12, 2)
        # Row-major in x: the first ny points share x_coordinates[0].
        assert np.allclose(points[:4, 0], grid.x_coordinates[0])
        assert np.allclose(points[:4, 1], grid.y_coordinates)

    def test_grid_evaluate_batched_matches_scalar(self):
        grid = regular_grid(1.0, 1.0, nx=5, ny=7)
        scalar = grid.evaluate(self.scalar_field)
        batched = grid.evaluate_batched(self.batched_field)
        assert np.allclose(scalar, batched)

    def test_grid_evaluate_batched_validates_shape(self):
        grid = regular_grid(1.0, 1.0, nx=3, ny=3)
        with pytest.raises(ValueError):
            grid.evaluate_batched(lambda points: points[:, 0][:-1])

    def test_grid_sweep_batched_matches_scalar(self):
        xs = np.linspace(0.0, 1.0, 4)
        ys = np.linspace(0.0, 1.0, 6)
        scalar = grid_sweep(xs, ys, self.scalar_field)
        batched = grid_sweep(xs, ys, self.batched_field, batched=True)
        assert np.allclose(scalar, batched)

    def test_grid_sweep_batched_validates_shape(self):
        with pytest.raises(ValueError):
            grid_sweep([0.0, 1.0], [0.0, 1.0], lambda pairs: pairs, batched=True)

    def test_isotherm_summary_combines_levels_and_statistics(self):
        field = np.linspace(300.0, 340.0, 100).reshape(10, 10)
        summary = isotherm_summary(field, count=5)
        assert len(summary) == 5
        fractions = [level.enclosed_fraction for level in summary]
        assert all(b <= a for a, b in zip(fractions, fractions[1:]))
