"""Tests for the `repro.api` facade: specs, study execution, results, CLI.

The serialization contract is property-tested with hypothesis:

* every spec survives ``spec -> to_dict -> json -> from_dict`` *equal*;
* every :class:`StudyResult` survives ``to_json -> from_json`` with
  bit-identical arrays (well inside the 1e-12 acceptance band);
* a re-run of a JSON-round-tripped :class:`StudySpec` reproduces the
  original result arrays bit-for-bit (the cache/replay guarantee).
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.api import (
    FloorplanSpec,
    OptimizeSpec,
    OptimizeVariable,
    ScenarioSpec,
    Study,
    StudyResult,
    StudySpec,
    TechnologySpec,
    WorkloadSpec,
    run_study,
)
from repro.api.cli import main as cli_main
from repro.core.cosim import (
    PWMActivity,
    ScenarioEngine,
    TransientScenarioEngine,
    scenario_grid,
)
from repro.core.thermal import ChipThermalModel
from repro.floorplan import Block, Floorplan, as_block, three_block_floorplan
from repro.technology import make_technology
from repro.technology.nodes import node_names

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC = {"core": 0.045, "cache": 0.018, "io": 0.008}

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
finite = dict(allow_nan=False, allow_infinity=False)

technology_specs = st.builds(
    TechnologySpec,
    node=st.sampled_from(node_names()),
    ambient_celsius=st.floats(0.0, 100.0, **finite),
)

activities = st.one_of(
    st.floats(0.0, 2.0, **finite),
    st.dictionaries(
        st.sampled_from(("core", "cache", "io")),
        st.floats(0.0, 2.0, **finite),
        max_size=3,
    ),
)


@st.composite
def scenario_specs(draw):
    supply_mode = draw(st.sampled_from(("default", "scale", "voltage")))
    return ScenarioSpec(
        technology=draw(technology_specs),
        supply_scale=(
            draw(st.floats(0.5, 1.5, **finite)) if supply_mode == "scale" else None
        ),
        supply_voltage=(
            draw(st.floats(0.5, 5.0, **finite)) if supply_mode == "voltage" else None
        ),
        ambient_temperature=draw(
            st.one_of(st.none(), st.floats(250.0, 400.0, **finite))
        ),
        activity=draw(activities),
        label=draw(st.sampled_from(("", "hot", "corner A"))),
    )


@st.composite
def floorplan_specs(draw):
    # Non-overlapping by construction: each block is centred in its own
    # cell of a 2 x 2 grid on a 1 mm die.
    cells = draw(
        st.lists(
            st.sampled_from(((0, 0), (0, 1), (1, 0), (1, 1))),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    die = 1.0e-3
    half = die / 2.0
    blocks = []
    for index, (i, j) in enumerate(cells):
        fill = draw(st.floats(0.2, 0.9, **finite))
        blocks.append(
            Block(
                name=f"block{index}",
                x=(i + 0.5) * half,
                y=(j + 0.5) * half,
                width=fill * half,
                length=fill * half,
            )
        )
    return FloorplanSpec(
        die_width=die,
        die_length=die,
        die_thickness=draw(st.floats(100e-6, 700e-6, **finite)),
        blocks=tuple(blocks),
        name=draw(st.sampled_from(("floorplan", "soc"))),
    )


@st.composite
def workload_specs(draw):
    kind = draw(st.sampled_from(("constant", "step", "pwm", "trace")))
    if kind == "constant":
        parameters = {"multipliers": draw(st.floats(0.0, 2.0, **finite))}
    elif kind == "step":
        parameters = {
            "before": draw(st.floats(0.0, 2.0, **finite)),
            "after": draw(st.floats(0.0, 2.0, **finite)),
            "switch_times": draw(st.floats(1e-4, 1e-2, **finite)),
        }
    elif kind == "pwm":
        parameters = {
            "periods": draw(st.floats(1e-4, 1e-2, **finite)),
            "duty_cycles": draw(st.floats(0.05, 0.95, **finite)),
            "on": draw(st.floats(0.5, 2.0, **finite)),
            "off": draw(st.floats(0.0, 0.4, **finite)),
        }
    else:
        times = draw(
            st.lists(
                st.floats(0.0, 1e-2, **finite), min_size=1, max_size=5, unique=True
            )
        )
        times = sorted(times)
        values = draw(
            st.lists(
                st.floats(0.0, 2.0, **finite),
                min_size=len(times),
                max_size=len(times),
            )
        )
        parameters = {"times": times, "values": values}
    return WorkloadSpec(kind=kind, parameters=parameters)


@st.composite
def optimize_specs(draw):
    # Valid against the three-block floorplan study_specs() builds around:
    # movable/variable names must resolve to core/cache/io-derived names.
    problem = draw(st.sampled_from(("placement", "supply")))
    objective = draw(
        st.one_of(
            st.sampled_from(
                (
                    "peak_rise",
                    "peak_temperature",
                    "total_power",
                    "total_static_power",
                    "runaway_margin",
                )
            ),
            st.just({"peak_rise": 1.0, "total_power": 5.0}),
        )
    )
    constraints = {}
    if draw(st.booleans()):
        constraints["temperature_cap"] = draw(st.floats(350.0, 450.0, **finite))
        if draw(st.booleans()):
            constraints["penalty_weight"] = draw(st.floats(0.1, 50.0, **finite))
    movable = ()
    variables = ()
    if problem == "placement":
        movable = tuple(
            draw(
                st.lists(
                    st.sampled_from(("core", "cache", "io")),
                    unique=True,
                    max_size=3,
                )
            )
        )
    elif draw(st.booleans()):
        variables = (
            OptimizeVariable(
                name="supply_scale",
                lower=draw(st.floats(0.6, 0.9, **finite)),
                upper=draw(st.floats(1.0, 1.2, **finite)),
            ),
        )
    return OptimizeSpec(
        problem=problem,
        objective=objective,
        variables=variables,
        constraints=constraints,
        strategy=draw(
            st.sampled_from(("random", "grid", "coordinate", "nelder_mead"))
        ),
        budget=draw(st.integers(1, 128)),
        generation_size=draw(st.integers(1, 32)),
        seed=draw(st.integers(0, 2**16)),
        movable=movable,
    )


@st.composite
def study_specs(draw):
    kind = draw(
        st.sampled_from(("steady", "transient", "thermal_map", "sweep", "optimize"))
    )
    floorplan = FloorplanSpec.from_floorplan(three_block_floorplan())
    if kind == "thermal_map":
        return StudySpec(
            kind=kind,
            floorplan=floorplan,
            block_powers={"core": 0.3, "cache": 0.1},
            technology=draw(st.one_of(st.none(), technology_specs)),
            ambient_temperature=draw(
                st.one_of(st.none(), st.floats(250.0, 400.0, **finite))
            ),
            map_samples=(draw(st.integers(2, 30)), draw(st.integers(2, 30))),
        )
    scenarios = tuple(draw(st.lists(scenario_specs(), min_size=1, max_size=3)))
    thermal_backend = draw(st.sampled_from(("analytical", "fdm", "foster")))
    backend_options = {}
    if thermal_backend == "fdm" and draw(st.booleans()):
        backend_options = {
            "nx": draw(st.integers(2, 24)),
            "ny": draw(st.integers(2, 24)),
            "nz": draw(st.integers(2, 8)),
        }
    common = dict(
        floorplan=floorplan,
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=scenarios,
        thermal_backend=thermal_backend,
        backend_options=backend_options,
        label=draw(st.sampled_from(("", "study"))),
    )
    if kind == "transient":
        return StudySpec(
            kind=kind,
            duration=draw(st.floats(1e-3, 1e-1, **finite)),
            time_step=draw(st.floats(1e-4, 1e-3, **finite)),
            workload=draw(st.one_of(st.none(), workload_specs())),
            time_constants=draw(
                st.one_of(
                    st.none(),
                    st.just({"core": 2e-3, "cache": 1.5e-3, "io": 1e-3}),
                )
            ),
            **common,
        )
    if kind == "sweep":
        return StudySpec(
            kind=kind,
            parameter_name="axis",
            parameter_values=tuple(float(i) for i in range(len(scenarios))),
            **common,
        )
    if kind == "optimize":
        return StudySpec(kind=kind, optimize=draw(optimize_specs()), **common)
    return StudySpec(kind=kind, **common)


# --------------------------------------------------------------------- #
# Spec round trips (spec -> dict -> json -> spec, equality)
# --------------------------------------------------------------------- #
class TestSpecRoundTrip:
    @given(spec=technology_specs)
    def test_technology(self, spec):
        assert TechnologySpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert TechnologySpec.from_json(spec.to_json()) == spec

    @given(spec=scenario_specs())
    def test_scenario(self, spec):
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @given(spec=floorplan_specs())
    def test_floorplan(self, spec):
        assert FloorplanSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert FloorplanSpec.from_json(spec.to_json()) == spec

    @given(spec=workload_specs())
    def test_workload(self, spec):
        assert WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert WorkloadSpec.from_json(spec.to_json()) == spec

    @given(spec=optimize_specs())
    def test_optimize(self, spec):
        assert OptimizeSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert OptimizeSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=30, deadline=None)
    @given(spec=study_specs())
    def test_study(self, spec):
        assert StudySpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec
        assert StudySpec.from_json(spec.to_json()) == spec

    def test_json_file_round_trip(self, tmp_path):
        spec = StudySpec(
            kind="steady",
            floorplan=FloorplanSpec.from_floorplan(three_block_floorplan()),
            dynamic_powers=DYNAMIC,
            static_powers=STATIC,
            scenarios=(ScenarioSpec(technology=TechnologySpec("0.12um")),),
        )
        path = tmp_path / "study.json"
        spec.to_json(path)
        assert StudySpec.from_json(path) == spec


# --------------------------------------------------------------------- #
# Result round trips (StudyResult -> JSON -> StudyResult, array parity)
# --------------------------------------------------------------------- #
def _minimal_spec():
    return StudySpec(
        kind="steady",
        floorplan=FloorplanSpec.from_floorplan(three_block_floorplan()),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=(ScenarioSpec(technology=TechnologySpec("0.12um")),),
    )


class TestResultRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(
        temperatures=npst.arrays(
            dtype=np.float64,
            shape=npst.array_shapes(min_dims=2, max_dims=2, max_side=5),
            elements=st.one_of(
                st.floats(min_value=-1e30, max_value=1e30, allow_subnormal=False),
                st.just(float("nan")),
            ),
        ),
        flags=npst.arrays(dtype=np.bool_, shape=st.integers(1, 5)),
    )
    def test_arbitrary_arrays_survive_json(self, temperatures, flags):
        result = StudyResult(
            kind="steady",
            spec=_minimal_spec(),
            arrays={"block_temperatures": temperatures, "converged": flags},
            metadata={"block_names": ["core", "cache", "io"]},
        )
        loaded = StudyResult.from_json(result.to_json())
        assert loaded.equals(result)
        for name, array in result.arrays.items():
            reloaded = loaded.array(name)
            assert reloaded.dtype == array.dtype
            assert reloaded.shape == array.shape
            # Bit-identical, which trivially satisfies the <=1e-12 band.
            assert np.array_equal(reloaded, array, equal_nan=True) or np.array_equal(
                reloaded, array
            )

    def test_every_kind_round_trips(self, tmp_path):
        for study in (
            _steady_study(),
            _transient_study(),
            _thermal_map_study(),
            _sweep_study(),
            _optimize_study(),
        ):
            result = study.run()
            path = tmp_path / f"{result.kind}.json"
            result.to_json(path)
            loaded = StudyResult.from_json(path)
            assert loaded.equals(result)
            assert loaded.summary() == result.summary()
            assert loaded.native is None

    def test_result_arrays_are_read_only(self):
        result = _steady_study().run()
        with pytest.raises(ValueError):
            result.array("block_temperatures")[0, 0] = 0.0
        copy = result.as_arrays()["block_temperatures"]
        copy[0, 0] = 0.0  # copies are writable

    def test_equals_detects_metadata_divergence(self):
        result = _steady_study().run()
        loaded = StudyResult.from_json(result.to_json())
        loaded.metadata["block_names"] = ["tampered"]
        assert not loaded.equals(result)


# --------------------------------------------------------------------- #
# Facade execution parity against the engines it fronts
# --------------------------------------------------------------------- #
def _steady_study():
    return Study.steady(
        floorplan=three_block_floorplan(),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=ScenarioSpec.grid(
            ["0.18um", "0.12um"],
            supply_scales=(0.9, 1.0),
            ambient_temperatures=(298.15, 318.15),
        ),
    )


def _transient_study():
    return Study.transient(
        floorplan=three_block_floorplan(),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=ScenarioSpec.grid(["0.12um"], activities=(0.5, 1.0)),
        duration=20e-3,
        time_step=0.5e-3,
        workload=WorkloadSpec(
            kind="pwm", parameters={"periods": 4e-3, "duty_cycles": 0.4}
        ),
        time_constants={"core": 2e-3, "cache": 1.5e-3, "io": 1e-3},
    )


def _thermal_map_study():
    return Study.thermal_map(
        floorplan=three_block_floorplan(),
        block_powers={"core": 0.3, "cache": 0.12, "io": 0.06},
        technology="0.12um",
        ambient_temperature=318.15,
        samples=(40, 40),
    )


def _sweep_study():
    ambients = (298.15, 318.15, 338.15)
    return Study.sweep(
        floorplan=three_block_floorplan(),
        parameter_name="ambient_K",
        parameter_values=ambients,
        scenarios=ScenarioSpec.grid(["0.12um"], ambient_temperatures=ambients),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
    )


def _optimize_study():
    return Study.optimize(
        floorplan=three_block_floorplan(),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=ScenarioSpec.grid(
            ["0.12um"], ambient_temperatures=(298.15, 318.15)
        ),
        problem="supply",
        objective="total_power",
        constraints={"temperature_cap": 420.0, "penalty_weight": 2.0},
        strategy="random",
        budget=12,
        generation_size=6,
        seed=3,
    )


class TestFacadeParity:
    def test_steady_matches_direct_engine(self):
        result = _steady_study().run()
        engine = ScenarioEngine(three_block_floorplan(), DYNAMIC, STATIC)
        technologies = [make_technology("0.18um"), make_technology("0.12um")]
        batch = engine.solve(
            scenario_grid(
                technologies,
                supply_scales=(0.9, 1.0),
                ambient_temperatures=(298.15, 318.15),
            )
        )
        assert np.array_equal(
            result.array("block_temperatures"), batch.block_temperatures
        )
        assert np.array_equal(result.array("static_power"), batch.static_power)
        assert np.array_equal(result.array("converged"), batch.converged)
        assert result.native is not None
        assert result.metadata["block_names"] == list(batch.block_names)

    def test_transient_matches_direct_engine(self):
        result = _transient_study().run()
        engine = TransientScenarioEngine(
            ScenarioEngine(three_block_floorplan(), DYNAMIC, STATIC),
            time_constants={"core": 2e-3, "cache": 1.5e-3, "io": 1e-3},
        )
        batch = engine.simulate(
            scenario_grid([make_technology("0.12um")], activities=(0.5, 1.0)),
            duration=20e-3,
            time_step=0.5e-3,
            activity=PWMActivity(periods=4e-3, duty_cycles=0.4),
        )
        assert np.array_equal(result.array("times"), batch.times)
        assert np.array_equal(
            result.array("block_temperatures"), batch.block_temperatures
        )
        assert np.array_equal(result.array("block_powers"), batch.block_powers)

    def test_thermal_map_matches_direct_model(self):
        result = _thermal_map_study().run()
        plan = three_block_floorplan()
        technology = make_technology("0.12um")
        model = ChipThermalModel(
            plan.die,
            ambient_temperature=318.15,
            material=technology.thermal.silicon,
        )
        model.add_sources(
            plan.to_heat_sources({"core": 0.3, "cache": 0.12, "io": 0.06})
        )
        surface = model.surface_map(nx=40, ny=40)
        assert np.array_equal(result.array("temperature"), surface.temperature)
        assert result.summary()["peak_temperature_K"] == surface.peak_temperature

    def test_sweep_matches_analysis_helper(self):
        from repro.analysis import scenario_sweep

        result = _sweep_study().run()
        ambients = (298.15, 318.15, 338.15)
        engine = ScenarioEngine(three_block_floorplan(), DYNAMIC, STATIC)
        sweep = scenario_sweep(
            engine,
            "ambient_K",
            ambients,
            scenario_grid([make_technology("0.12um")], ambient_temperatures=ambients),
        )
        for label in sweep.labels():
            assert np.array_equal(result.array(label), sweep.series(label)), label
        assert np.array_equal(result.array("values"), np.asarray(sweep.values))

    def test_rerun_of_reloaded_spec_is_bit_identical(self, tmp_path):
        # The acceptance criterion: write the spec to JSON, reload, re-run,
        # compare every result array bit-for-bit.
        for study in (
            _steady_study(),
            _transient_study(),
            _thermal_map_study(),
            _optimize_study(),
        ):
            first = study.run()
            path = tmp_path / "spec.json"
            study.to_json(path)
            reloaded = Study.from_json(path)
            assert reloaded.spec == study.spec
            second = reloaded.run()
            assert second.equals(first)

    def test_scenario_spec_grid_matches_runtime_grid(self):
        specs = ScenarioSpec.grid(
            ["0.18um", "0.12um"],
            supply_scales=(0.9, 1.1),
            ambient_temperatures=(None, 318.15),
            activities=(0.5, {"core": 1.5}),
        )
        spec_scenarios = StudySpec(
            kind="steady",
            floorplan=FloorplanSpec.from_floorplan(three_block_floorplan()),
            dynamic_powers=DYNAMIC,
            scenarios=specs,
        ).build_scenarios()
        technologies = [make_technology("0.18um"), make_technology("0.12um")]
        runtime = scenario_grid(
            technologies,
            supply_scales=(0.9, 1.1),
            ambient_temperatures=(None, 318.15),
            activities=(0.5, {"core": 1.5}),
        )
        assert len(spec_scenarios) == len(runtime) == 16
        for built, reference in zip(spec_scenarios, runtime):
            assert built.vdd == reference.vdd
            assert built.ambient == reference.ambient
            assert built.activity_factor("core") == reference.activity_factor("core")

    def test_technologies_are_shared_across_scenarios(self):
        spec = _steady_study().spec
        scenarios = spec.build_scenarios()
        assert scenarios[0].technology is scenarios[1].technology

    def test_fluent_refinement(self):
        study = _steady_study().with_solver(tolerance=1e-3).with_label("refined")
        assert study.spec.solver == {"tolerance": 1e-3}
        assert study.spec.label == "refined"
        assert study.run().summary()["study"] == "refined"


# --------------------------------------------------------------------- #
# Optimize studies through the declarative layer
# --------------------------------------------------------------------- #
class TestOptimizeStudies:
    def test_run_matches_direct_search(self):
        # The facade adds nothing to the physics: the same problem driven
        # through run_search directly yields the identical outcome.
        from repro.optimize import SupplyProblem, TemperatureCap, run_search

        result = _optimize_study().run()
        spec = _optimize_study().spec
        problem = SupplyProblem(
            three_block_floorplan(),
            DYNAMIC,
            STATIC,
            spec.build_scenarios(),
            objective="total_power",
            temperature_cap=TemperatureCap(limit=420.0, penalty_weight=2.0),
        )
        outcome = run_search(
            problem, strategy="random", budget=12, generation_size=6, seed=3
        )
        assert np.array_equal(result.array("best_candidate"), outcome.best_candidate)
        assert np.array_equal(result.array("objective_trace"), outcome.objective_trace)
        assert result.metadata["best_objective"] == outcome.best_objective
        assert result.metadata["evaluations"] == outcome.evaluations
        assert result.metadata["variable_names"] == list(outcome.variable_names)

    def test_seeded_replay_is_bit_identical(self, tmp_path):
        first = _optimize_study().run()
        assert run_study(first.spec).equals(first)
        # ... and through a JSON-shipped result file, as the CI smoke does.
        path = tmp_path / "optimize.json"
        first.to_json(path)
        loaded = StudyResult.from_json(path)
        assert loaded.equals(first)
        assert run_study(loaded.spec).equals(first)

    def test_placement_study_runs_and_replays(self):
        study = Study.optimize(
            floorplan=three_block_floorplan(),
            dynamic_powers=DYNAMIC,
            static_powers=STATIC,
            scenarios=(ScenarioSpec(technology=TechnologySpec("0.12um")),),
            problem="placement",
            objective="peak_rise",
            movable=("core",),
            strategy="coordinate",
            budget=10,
            seed=5,
        )
        result = study.run()
        assert result.metadata["variable_names"] == ["core.x", "core.y"]
        assert result.metadata["best_feasible"]
        # The moved core stays on the die.
        best = result.metadata["best_detail"]
        assert 0.0 <= best["core.x"] <= 1.0e-3
        assert 0.0 <= best["core.y"] <= 1.0e-3
        assert run_study(study.spec).equals(result)

    def test_summary_reports_search_shape(self):
        result = _optimize_study().run()
        summary = result.summary()
        assert summary["problem"] == "supply"
        assert summary["strategy"] == "random"
        assert summary["evaluations"] <= 12
        assert summary["generation_count"] == result.array("objective_trace").shape[0]
        assert math.isfinite(summary["best_objective"])
        assert "supply_scale" in result.metadata["variable_names"]

    def test_kind_literals_mirror_runtime_registries(self):
        # api.kinds keeps plain literals so `repro --help` stays
        # numpy-free; they must track the optimizer registries exactly.
        from repro.api.kinds import (
            OPTIMIZE_OBJECTIVES,
            OPTIMIZE_PROBLEMS,
            OPTIMIZE_STRATEGIES,
            STUDY_KINDS,
        )
        from repro.optimize import objectives, search

        assert "optimize" in STUDY_KINDS
        assert OPTIMIZE_STRATEGIES == search.STRATEGIES
        assert OPTIMIZE_OBJECTIVES == tuple(objectives.OBJECTIVES)
        assert OPTIMIZE_PROBLEMS == ("placement", "supply")


class TestOptimizeValidation:
    """Every rejection names the offending field (the spec ergonomics bar)."""

    def test_optimize_kind_requires_optimize_block(self):
        with pytest.raises(ValueError, match="require an optimize block"):
            _minimal_spec().replace(kind="optimize")

    def test_optimize_block_requires_optimize_kind(self):
        with pytest.raises(ValueError, match="only applies to optimize"):
            _minimal_spec().replace(optimize=OptimizeSpec())

    def test_unknown_problem_lists_known(self):
        with pytest.raises(ValueError, match="placement, supply"):
            OptimizeSpec(problem="routing")

    def test_unknown_objective_lists_known(self):
        with pytest.raises(ValueError, match="known objectives: peak_rise"):
            OptimizeSpec(objective="nope")

    def test_zero_objective_weight_named(self):
        with pytest.raises(ValueError, match="'total_power'"):
            OptimizeSpec(objective={"total_power": 0.0})

    def test_unknown_strategy_lists_known(self):
        with pytest.raises(ValueError, match="nelder_mead"):
            OptimizeSpec(strategy="anneal")

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            OptimizeSpec(budget=0)

    def test_penalty_weight_requires_cap(self):
        with pytest.raises(
            ValueError,
            match=r"constraints\['penalty_weight'\] requires "
            r"constraints\['temperature_cap'\]",
        ):
            OptimizeSpec(constraints={"penalty_weight": 2.0})

    def test_unknown_constraint_named(self):
        with pytest.raises(ValueError, match="bogus"):
            OptimizeSpec(constraints={"bogus": 1.0})

    def test_variable_bounds_must_be_ordered(self):
        with pytest.raises(
            ValueError, match=r"variables\['x'\] requires lower < upper"
        ):
            OptimizeVariable(name="x", lower=1.0, upper=1.0)

    def test_movable_unknown_block_named(self):
        spec = _optimize_study().spec
        with pytest.raises(ValueError, match="gpu"):
            spec.replace(
                optimize=OptimizeSpec(problem="placement", movable=("gpu",))
            )

    def test_movable_is_placement_only(self):
        spec = _optimize_study().spec
        with pytest.raises(ValueError, match="only applies to the 'placement'"):
            spec.replace(optimize=OptimizeSpec(problem="supply", movable=("core",)))

    def test_variable_override_must_match_problem(self):
        spec = _optimize_study().spec
        with pytest.raises(ValueError, match="'core.z' matches no"):
            spec.replace(
                optimize=OptimizeSpec(
                    problem="placement",
                    variables=(
                        OptimizeVariable(name="core.z", lower=0.0, upper=1.0),
                    ),
                )
            )

    def test_scenario_grid_is_rejected(self):
        with pytest.raises(ValueError, match="enumerate their operating"):
            _optimize_study().spec.replace(
                scenario_grid={"technologies": ("0.12um",)}
            )

    def test_streaming_fields_are_rejected(self):
        with pytest.raises(ValueError, match="chunk_size does not apply"):
            _optimize_study().spec.replace(chunk_size=8)
        with pytest.raises(ValueError, match="reduction does not apply"):
            _optimize_study().spec.replace(reduction=True)


# --------------------------------------------------------------------- #
# Validation ergonomics
# --------------------------------------------------------------------- #
class TestValidation:
    def test_unknown_node_names_node(self):
        with pytest.raises(ValueError, match="13nm"):
            TechnologySpec(node="13nm")

    def test_block_mapping_missing_field(self):
        with pytest.raises(ValueError, match="width"):
            Block.from_mapping({"name": "a", "x": 0.0, "y": 0.0, "length": 1e-3})

    def test_block_mapping_unknown_field(self):
        with pytest.raises(ValueError, match="depth"):
            Block.from_mapping(
                {"name": "a", "x": 0, "y": 0, "width": 1e-3, "length": 1e-3, "depth": 1}
            )

    def test_block_mapping_bad_number(self):
        with pytest.raises(ValueError, match="'x'"):
            Block.from_mapping(
                {"name": "a", "x": "wide", "y": 0, "width": 1e-3, "length": 1e-3}
            )

    def test_block_tuple_coercion(self):
        block = as_block(("a", 1e-4, 2e-4, 1e-4, 1e-4))
        assert block.name == "a"
        with pytest.raises(ValueError, match="tuple"):
            as_block(("a", 1e-4))

    def test_floorplan_accepts_plain_block_descriptions(self):
        plan = Floorplan(three_block_floorplan().die)
        plan.add_block(
            {"name": "m", "x": 5e-4, "y": 5e-4, "width": 1e-4, "length": 1e-4}
        )
        plan.add_block(("t", 1e-4, 1e-4, 1e-4, 1e-4))
        assert set(plan.block_names()) == {"m", "t"}

    def test_floorplan_spec_rejects_overlaps(self):
        with pytest.raises(ValueError, match="overlaps"):
            FloorplanSpec(
                blocks=(
                    ("a", 5e-4, 5e-4, 4e-4, 4e-4),
                    ("b", 5e-4, 5e-4, 4e-4, 4e-4),
                )
            )

    def test_scenario_rejects_double_supply(self):
        with pytest.raises(ValueError, match="supply_scale or supply_voltage"):
            ScenarioSpec(supply_scale=1.0, supply_voltage=1.2)

    def test_workload_unknown_kind(self):
        with pytest.raises(ValueError, match="sawtooth"):
            WorkloadSpec(kind="sawtooth")

    def test_workload_missing_parameter(self):
        with pytest.raises(ValueError, match="duty_cycles"):
            WorkloadSpec(kind="pwm", parameters={"periods": 1e-3})

    def test_workload_unknown_parameter(self):
        with pytest.raises(ValueError, match="phase"):
            WorkloadSpec(
                kind="pwm",
                parameters={"periods": 1e-3, "duty_cycles": 0.5, "phase": 0.1},
            )

    def test_study_unknown_kind(self):
        with pytest.raises(ValueError, match="spectral"):
            StudySpec(kind="spectral")

    def test_study_unknown_block_in_powers(self):
        with pytest.raises(ValueError, match="gpu"):
            _minimal_spec().replace(dynamic_powers={"gpu": 1.0})

    def test_steady_rejects_transient_fields(self):
        with pytest.raises(ValueError, match="duration"):
            _minimal_spec().replace(duration=1.0)

    def test_sweep_requires_aligned_values(self):
        with pytest.raises(ValueError, match="one-to-one"):
            _minimal_spec().replace(
                kind="sweep", parameter_name="x", parameter_values=(1.0, 2.0)
            )

    def test_solver_keys_are_kind_checked(self):
        with pytest.raises(ValueError, match="settle_tolerance"):
            _minimal_spec().replace(solver={"settle_tolerance": 0.1})

    def test_unknown_spec_field_named(self):
        with pytest.raises(ValueError, match="florplan"):
            StudySpec.from_dict({"kind": "steady", "florplan": {}})

    def test_study_requires_scenarios(self):
        with pytest.raises(ValueError, match="scenario"):
            _minimal_spec().replace(scenarios=())

    def test_steady_rejects_thermal_map_fields(self):
        with pytest.raises(ValueError, match="ambient_temperature"):
            _minimal_spec().replace(ambient_temperature=398.15)
        with pytest.raises(ValueError, match="technology"):
            _minimal_spec().replace(technology=TechnologySpec("0.12um"))
        with pytest.raises(ValueError, match="block_powers"):
            _minimal_spec().replace(block_powers={"core": 1.0})
        with pytest.raises(ValueError, match="map_samples"):
            _minimal_spec().replace(map_samples=(10, 10))

    def test_thermal_map_rejects_engine_fields(self):
        spec = _thermal_map_study().spec
        with pytest.raises(ValueError, match="dynamic_powers"):
            spec.replace(dynamic_powers={"core": 1.0})
        with pytest.raises(ValueError, match="duration"):
            spec.replace(duration=1.0)

    def test_spec_mappings_are_read_only(self):
        # A mutable mapping would let callers desync a Study's cached
        # compilation from its spec and break bit-identical replay.
        spec = _minimal_spec()
        with pytest.raises(TypeError):
            spec.dynamic_powers["core"] = 2.0
        with pytest.raises(TypeError):
            spec.solver["tolerance"] = 1.0
        workload = WorkloadSpec(
            kind="pwm", parameters={"periods": 1e-3, "duty_cycles": 0.5}
        )
        with pytest.raises(TypeError):
            workload.parameters["periods"] = 2e-3


# --------------------------------------------------------------------- #
# Thermal backends through the declarative layer
# --------------------------------------------------------------------- #
class TestThermalBackendSpec:
    def test_kind_registry_mirrors_operator_registry(self):
        # api.kinds keeps plain literals so `repro --help` stays
        # numpy-free; they must track the operator registry exactly.
        from repro.api.kinds import FDM_GRID_OPTIONS, THERMAL_BACKENDS
        from repro.core.thermal import operator

        assert THERMAL_BACKENDS == operator.THERMAL_BACKENDS
        assert FDM_GRID_OPTIONS == operator.FDM_GRID_OPTIONS

    @settings(max_examples=25, deadline=None)
    @given(
        backend=st.sampled_from(("analytical", "fdm", "foster")),
        grid=st.one_of(
            st.none(),
            st.fixed_dictionaries(
                {
                    "nx": st.integers(2, 48),
                    "ny": st.integers(2, 48),
                    "nz": st.integers(2, 16),
                }
            ),
        ),
    )
    def test_thermal_backend_round_trips_through_json(self, backend, grid):
        spec = _minimal_spec().replace(
            thermal_backend=backend,
            backend_options=grid if (grid and backend == "fdm") else {},
        )
        reloaded = StudySpec.from_json(spec.to_json())
        assert reloaded == spec
        assert reloaded.thermal_backend == backend
        # Defaults stay out of the serialized form (forward-compatible
        # with pre-backend study files).
        if backend == "analytical":
            assert "thermal_backend" not in spec.to_dict()

    def test_unknown_backend_is_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="analytical, fdm, foster"):
            _minimal_spec().replace(thermal_backend="spectral")

    def test_backend_options_require_fdm(self):
        with pytest.raises(ValueError, match="only apply to the 'fdm'"):
            _minimal_spec().replace(backend_options={"nx": 8})

    def test_backend_options_are_kind_and_range_checked(self):
        with pytest.raises(ValueError, match="cells"):
            _minimal_spec().replace(
                thermal_backend="fdm", backend_options={"cells": 8}
            )
        for bad in (1, 2.5, "eight", True):
            with pytest.raises(ValueError, match="nx"):
                _minimal_spec().replace(
                    thermal_backend="fdm", backend_options={"nx": bad}
                )

    def test_thermal_map_is_analytical_only(self):
        with pytest.raises(ValueError, match="field-map"):
            _thermal_map_study().spec.replace(thermal_backend="fdm")

    def test_fdm_study_runs_end_to_end_and_records_backend(self):
        study = Study.steady(
            floorplan=three_block_floorplan(),
            dynamic_powers=DYNAMIC,
            static_powers=STATIC,
            scenarios=(ScenarioSpec(technology=TechnologySpec("0.12um")),),
            thermal_backend="fdm",
            backend_options={"nx": 16, "ny": 16, "nz": 6},
        )
        result = study.run()
        assert result.summary()["thermal_backend"] == "fdm"
        assert result.array("converged").all()
        # The engine the facade compiled really reduces through FDM.
        assert study._engine.thermal_backend == "fdm"
        # And a JSON-shipped copy reproduces the arrays bit for bit.
        replay = run_study(StudySpec.from_json(study.to_json()))
        assert np.array_equal(
            replay.array("block_temperatures"), result.array("block_temperatures")
        )

    def test_with_backend_produces_comparable_studies(self):
        base = Study.steady(
            floorplan=three_block_floorplan(),
            dynamic_powers=DYNAMIC,
            static_powers=STATIC,
            scenarios=(ScenarioSpec(technology=TechnologySpec("0.12um")),),
        )
        foster = base.with_backend("foster")
        assert base.spec.thermal_backend == "analytical"
        assert foster.spec.thermal_backend == "foster"
        hot_analytical = base.run().summary()["peak_temperature_K"]
        hot_foster = foster.run().summary()["peak_temperature_K"]
        # The uncoupled 1-D-column limit runs hotter on the hot block.
        assert hot_foster > hot_analytical

    def test_sweep_helper_accepts_backend(self):
        from repro.analysis.sweep import scenario_sweep

        engine = ScenarioEngine(three_block_floorplan(), DYNAMIC, STATIC)
        scenarios = scenario_grid([make_technology("0.12um")], supply_scales=(0.9, 1.0))
        swept = scenario_sweep(
            engine,
            "supply_scale",
            (0.9, 1.0),
            scenarios,
            thermal_backend="foster",
        )
        direct = engine.with_backend("foster").solve(scenarios)
        assert np.allclose(swept.series("peak_temperature"), direct.peak_temperature)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCLI:
    def test_run_executes_and_writes_results(self, tmp_path, capsys):
        study_path = tmp_path / "study.json"
        out_path = tmp_path / "results.json"
        _steady_study().to_json(study_path)
        assert cli_main(["run", str(study_path), "--out", str(out_path)]) == 0
        captured = capsys.readouterr().out
        assert "steady" in captured
        loaded = StudyResult.from_json(out_path)
        assert loaded.equals(_steady_study().run())

    def test_run_quiet(self, tmp_path, capsys):
        study_path = tmp_path / "study.json"
        _thermal_map_study().to_json(study_path)
        assert cli_main(["run", str(study_path), "--quiet"]) == 0
        assert capsys.readouterr().out == ""

    def test_run_missing_file(self, tmp_path, capsys):
        assert cli_main(["run", str(tmp_path / "nope.json")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_run_invalid_study(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "spectral"}))
        assert cli_main(["run", str(bad)]) == 2
        assert "invalid study file" in capsys.readouterr().err

    def test_info(self, capsys):
        assert cli_main(["info"]) == 0
        captured = capsys.readouterr().out
        assert "study kinds" in captured
        assert "0.12um" in captured
        # The backend listing names every backend with capability flags.
        assert "thermal backends" in captured
        for backend in ("analytical", "fdm", "foster"):
            assert f"{backend}: " in captured
        assert "field_maps=yes" in captured
        assert "numerical=yes" in captured
        # The optimizer registries are listed (numpy-free literals).
        assert "optimize problems: placement, supply" in captured
        assert "optimize strategies: " in captured
        assert "optimize objectives: " in captured
        assert "nelder_mead" in captured

    def test_run_reports_engine_errors(self, tmp_path, capsys):
        # Validates as a spec, but the engine rejects the combination at
        # run time: the CLI must report and exit 2, not traceback.
        study_path = tmp_path / "study.json"
        _steady_study().with_solver(max_temperature=200.0).to_json(study_path)
        assert cli_main(["run", str(study_path)]) == 2
        assert "failed to run" in capsys.readouterr().err

    def test_argument_parsing_is_numpy_free(self):
        # `repro --help` must not pay for the model stack.
        import subprocess
        import sys as _sys

        code = (
            "import sys, repro.api.cli; "
            "assert 'numpy' not in sys.modules, 'cli import pulled numpy'"
        )
        subprocess.run([_sys.executable, "-c", code], check=True)

    def test_example_studies_run(self, tmp_path):
        # The JSON files shipped under examples/ (exercised by CI's
        # cli-smoke job) must stay loadable and runnable.
        from pathlib import Path

        examples = Path(__file__).resolve().parents[1] / "examples"
        for name in (
            "study_steady",
            "study_transient",
            "study_thermal_map",
            "study_backend_fdm",
            "study_optimize",
        ):
            spec = StudySpec.from_json(examples / f"{name}.json")
            result = run_study(spec.replace(label=spec.label or name))
            assert result.kind == spec.kind


def test_transient_workload_none_means_nominal():
    base = _transient_study()
    explicit = Study(
        base.spec.replace(
            workload=WorkloadSpec(kind="constant", parameters={"multipliers": 1.0})
        )
    )
    nominal = Study(base.spec.replace(workload=None))
    temps_explicit = explicit.run().array("block_temperatures")
    temps_nominal = nominal.run().array("block_temperatures")
    assert np.array_equal(temps_explicit, temps_nominal)


def test_math_is_finite_on_defaults():
    # Guard rail: the default steady study converges to finite physics.
    result = _steady_study().run()
    assert np.isfinite(result.array("block_temperatures")).all()
    assert math.isfinite(result.summary()["peak_temperature_K"])
