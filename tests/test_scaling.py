"""Tests for repro.technology.scaling (the Fig. 1 projection engine)."""

import pytest

from repro.technology.scaling import (
    ChipScalingAssumptions,
    TechnologyScalingStudy,
    device_off_current,
)


@pytest.fixture(scope="module")
def study():
    return TechnologyScalingStudy()


class TestAssumptionsValidation:
    def test_defaults_valid(self):
        assumptions = ChipScalingAssumptions()
        assert assumptions.reference_node == "0.18um"

    def test_bad_activity_rejected(self):
        with pytest.raises(ValueError):
            ChipScalingAssumptions(activity_factor=0.0)

    def test_bad_growth_rejected(self):
        with pytest.raises(ValueError):
            ChipScalingAssumptions(transistor_growth_per_node=-1.0)

    def test_unknown_reference_node_rejected(self):
        with pytest.raises(ValueError):
            TechnologyScalingStudy(
                ChipScalingAssumptions(reference_node="0.18um"),
                nodes=("0.12um", "70nm"),
            )


class TestScalingRules:
    def test_transistor_count_at_reference(self, study):
        assert study.transistor_count("0.18um") == pytest.approx(40.0e6)

    def test_transistor_count_grows_per_node(self, study):
        assert study.transistor_count("0.13um") == pytest.approx(
            40.0e6 * 1.9, rel=1e-9
        )

    def test_frequency_at_reference(self, study):
        assert study.clock_frequency("0.18um") == pytest.approx(1.0e9)

    def test_frequency_decreases_for_older_nodes(self, study):
        assert study.clock_frequency("0.8um") < study.clock_frequency("0.18um")

    def test_unknown_node_raises(self, study):
        with pytest.raises(KeyError):
            study.transistor_count("5nm")


class TestPowerProjection:
    def test_static_power_increases_with_temperature(self, study):
        node = "0.10um"
        assert study.static_power(node, 100.0) > study.static_power(node, 25.0)
        assert study.static_power(node, 150.0) > study.static_power(node, 100.0)

    def test_static_power_grows_monotonically_with_scaling(self, study):
        values = [p.static_power(100.0) for p in study.project()]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_dynamic_power_is_positive_everywhere(self, study):
        assert all(p.dynamic_power > 0.0 for p in study.project())

    def test_crossover_moves_earlier_when_hotter(self, study):
        nodes = list(study._node_names)
        hot = study.crossover_node(150.0)
        warm = study.crossover_node(100.0)
        assert hot is not None and warm is not None
        assert nodes.index(hot) <= nodes.index(warm)

    def test_no_crossover_at_room_temperature(self, study):
        # At 25 degC static power stays below dynamic for every projected node
        # (the paper's Fig. 1 shows the same).
        assert study.crossover_node(25.0) is None

    def test_crossover_is_sub_100nm(self, study):
        node = study.crossover_node(150.0)
        assert node in ("0.10um", "70nm", "50nm", "35nm", "25nm")

    def test_projection_object_round_trip(self, study):
        projection = study.project_node("70nm")
        assert projection.node == "70nm"
        assert projection.static_power(150.0) == pytest.approx(
            projection.static_power_by_temperature[150.0]
        )
        with pytest.raises(KeyError):
            projection.static_power(60.0)

    def test_total_power_uses_hottest_projection(self, study):
        projection = study.project_node("70nm")
        assert projection.total_power == pytest.approx(
            projection.dynamic_power + projection.static_power(150.0)
        )

    def test_series_layout(self, study):
        series = study.as_series()
        assert set(series) == {"dynamic", "static_25C", "static_100C", "static_150C"}
        assert len(series["dynamic"]) == len(list(study.project()))


class TestDeviceOffCurrentHelper:
    def test_rejects_bad_width(self, tech012):
        with pytest.raises(ValueError):
            device_off_current(tech012.nmos, -1.0, 1.2, 300.0, 298.15)

    def test_increases_with_temperature(self, tech012):
        cold = device_off_current(tech012.nmos, 1e-6, 1.2, 298.15, 298.15)
        hot = device_off_current(tech012.nmos, 1e-6, 1.2, 398.15, 298.15)
        assert hot > 10.0 * cold
