"""Tests for repro.circuit.devices."""

import pytest

from repro.circuit.devices import MOSFET, BiasedDevice, auto_name, nmos, pmos


class TestConstruction:
    def test_nmos_helper(self):
        device = nmos("MN1", 1e-6, gate_input="A")
        assert device.is_nmos and not device.is_pmos
        assert device.gate_input == "A"

    def test_pmos_helper(self):
        device = pmos("MP1", 2e-6)
        assert device.is_pmos

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            nmos("MN1", 0.0)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            MOSFET(name="M1", device_type="nmos", width=1e-6, length=-1e-7)

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            MOSFET(name="M1", device_type="finfet", width=1e-6)

    def test_auto_name_unique(self):
        assert auto_name("M") != auto_name("M")


class TestConductionState:
    def test_nmos_on_when_gate_high(self):
        device = nmos("MN1", 1e-6)
        assert device.is_on(1) and device.is_off(0)

    def test_pmos_on_when_gate_low(self):
        device = pmos("MP1", 1e-6)
        assert device.is_on(0) and device.is_off(1)

    def test_invalid_logic_value_rejected(self):
        with pytest.raises(ValueError):
            nmos("MN1", 1e-6).is_on(2)


class TestTechnologyIntegration:
    def test_effective_length_falls_back_to_technology(self, tech012):
        device = nmos("MN1", 1e-6)
        assert device.effective_length(tech012) == pytest.approx(
            tech012.nmos.channel_length
        )

    def test_explicit_length_wins(self, tech012):
        device = nmos("MN1", 1e-6, length=0.25e-6)
        assert device.effective_length(tech012) == pytest.approx(0.25e-6)

    def test_parameters_lookup(self, tech012):
        assert nmos("MN1", 1e-6).parameters(tech012) is tech012.nmos
        assert pmos("MP1", 1e-6).parameters(tech012) is tech012.pmos

    def test_gate_voltage(self, tech012):
        device = nmos("MN1", 1e-6)
        assert device.gate_voltage(1, tech012.vdd) == pytest.approx(tech012.vdd)
        assert device.gate_voltage(0, tech012.vdd) == pytest.approx(0.0)

    def test_with_width_copy(self):
        device = nmos("MN1", 1e-6)
        wider = device.with_width(3e-6)
        assert wider.width == pytest.approx(3e-6)
        assert device.width == pytest.approx(1e-6)


class TestBiasedDevice:
    def test_nmos_magnitudes(self):
        bias = BiasedDevice(
            device=nmos("MN1", 1e-6),
            gate_voltage=0.0,
            drain_voltage=1.2,
            source_voltage=0.1,
            body_voltage=0.0,
        )
        assert bias.vgs == pytest.approx(-0.1)
        assert bias.vds == pytest.approx(1.1)
        assert bias.vsb == pytest.approx(0.1)

    def test_pmos_magnitudes_mirror_nmos(self):
        bias = BiasedDevice(
            device=pmos("MP1", 1e-6),
            gate_voltage=1.2,
            drain_voltage=0.1,
            source_voltage=1.1,
            body_voltage=1.2,
        )
        assert bias.vgs == pytest.approx(-0.1)
        assert bias.vds == pytest.approx(1.0)
        assert bias.vsb == pytest.approx(0.1)
