"""Chip thermal mapping: the paper's Section 3 workflow on a small SoC.

Builds a six-block floorplan on a 2 mm x 2 mm die, assigns block powers,
runs a thermal-map study through the `repro.api` facade (the analytical
model with method-of-images boundary conditions), prints the block
temperatures, an ASCII heat map and the mid-die cross-section, and
cross-checks the hottest block against the finite-volume reference solver.

Run with::

    python examples/chip_thermal_map.py
"""

from __future__ import annotations

import numpy as np

from repro import Block, DieGeometry, Floorplan, Study
from repro.analysis.sections import CrossSection
from repro.floorplan.powermap import fdm_sources_from_blocks, rasterize_block_powers
from repro.reporting import print_table
from repro.thermalsim import FiniteVolumeThermalSolver

AMBIENT = 273.15 + 45.0


def build_floorplan() -> Floorplan:
    """A small SoC: CPU, GPU, two caches, a memory controller and IO."""
    die = DieGeometry(width=2e-3, length=2e-3, thickness=0.4e-3)
    plan = Floorplan(die, name="soc")
    plan.add_blocks(
        [
            Block("cpu", x=0.55e-3, y=1.45e-3, width=0.8e-3, length=0.7e-3),
            Block("gpu", x=1.45e-3, y=1.45e-3, width=0.7e-3, length=0.7e-3),
            Block("l2", x=0.45e-3, y=0.75e-3, width=0.6e-3, length=0.5e-3),
            Block("l3", x=1.15e-3, y=0.75e-3, width=0.6e-3, length=0.5e-3),
            Block("memctl", x=1.75e-3, y=0.70e-3, width=0.4e-3, length=0.6e-3),
            Block("io", x=1.0e-3, y=0.2e-3, width=1.6e-3, length=0.25e-3),
        ]
    )
    return plan


BLOCK_POWERS = {
    "cpu": 0.9,
    "gpu": 0.7,
    "l2": 0.15,
    "l3": 0.12,
    "memctl": 0.2,
    "io": 0.1,
}


def ascii_heat_map(surface, rows: int = 18, columns: int = 36) -> str:
    """Render a surface map as ASCII art (one character per sample)."""
    shades = " .:-=+*#%@"
    field = surface.rise
    x_index = np.linspace(0, field.shape[0] - 1, columns).astype(int)
    y_index = np.linspace(0, field.shape[1] - 1, rows).astype(int)
    low, high = field.min(), field.max()
    span = max(high - low, 1e-12)
    lines = []
    for j in reversed(y_index):
        line = ""
        for i in x_index:
            level = int((field[i, j] - low) / span * (len(shades) - 1))
            line += shades[level]
        lines.append(line)
    return "\n".join(lines)


def main() -> None:
    plan = build_floorplan()

    # The analytical model runs as a declarative thermal-map study: one
    # facade call builds the image expansion and evaluates the whole
    # 192x192 grid in a single batched kernel call.
    result = Study.thermal_map(
        floorplan=plan,
        block_powers=BLOCK_POWERS,
        ambient_temperature=AMBIENT,
        samples=(192, 192),
        label="SoC surface map",
    ).run()
    surface = result.native

    power_map = rasterize_block_powers(plan, BLOCK_POWERS, nx=64, ny=64)
    print(f"total chip power: {power_map.total_power:.2f} W, "
          f"peak power density: {power_map.peak_power_density / 1e4:.1f} W/cm^2")

    temps = result.summary()["source_temperatures_K"]
    rows = [
        [name, BLOCK_POWERS[name], temps[name] - AMBIENT, temps[name] - 273.15]
        for name in plan.block_names()
    ]
    print_table(
        ["block", "power (W)", "rise (K)", "junction (degC)"],
        rows,
        title="analytical block temperatures (method of images, 1 ring)",
    )

    print("\nsurface temperature-rise map (hotter = denser):\n")
    print(ascii_heat_map(surface))

    positions, temperatures = surface.cross_section_x(1.45e-3)
    section = CrossSection(
        positions=positions,
        temperatures=temperatures,
        axis="x",
        fixed_coordinate=1.45e-3,
    )
    stride = max(1, positions.size // 12)
    print_table(
        ["x (um)", "temperature (degC)"],
        [
            [x * 1e6, t - 273.15]
            for x, t in zip(section.positions[::stride], section.temperatures[::stride])
        ],
        title="cross-section through the CPU/GPU row",
    )
    left, right = section.normalized_edge_gradients()
    print(f"\nnormalised edge gradients (adiabatic sides): {left:.3f}, {right:.3f}")

    fdm = FiniteVolumeThermalSolver(
        plan.die.width,
        plan.die.length,
        plan.die.thickness,
        nx=32,
        ny=32,
        nz=8,
        ambient_temperature=AMBIENT,
    )
    numeric = fdm.solve(fdm_sources_from_blocks(plan, BLOCK_POWERS))
    hottest_analytic = max(temps, key=temps.get)
    hottest_numeric = max(
        plan.block_names(),
        key=lambda name: numeric.rise_at(plan.block(name).x, plan.block(name).y),
    )
    print(
        f"hottest block: {hottest_analytic} (analytical) / {hottest_numeric} "
        f"(finite-volume reference); peak analytical rise "
        f"{surface.peak_temperature - AMBIENT:.1f} K vs numerical "
        f"{numeric.peak_rise:.1f} K"
    )


if __name__ == "__main__":
    main()
