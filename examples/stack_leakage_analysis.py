"""Stack leakage analysis: the paper's Section 2 workflow on real cells.

The script reproduces the analysis a library designer would run with the
paper's model:

* how much the stacking effect reduces leakage as NAND fan-in grows,
* how the analytical model compares against the numerical ("SPICE")
  reference and against the prior-work models for every stack depth,
* which input vectors minimise the standby leakage of each cell (the
  "sleep vector" selection problem), and
* how the leakage of the whole library scales with temperature.

Run with::

    python examples/stack_leakage_analysis.py
"""

from __future__ import annotations

from repro import cmos_012um, uniform_nmos_stack
from repro.baselines import ChenRoyStackModel, SeriesResistanceStackModel
from repro.circuit import standard_cell, standard_cell_names, vector_label
from repro.core.leakage import GateLeakageModel
from repro.reporting import print_table
from repro.spice import GateLeakageReference, StackDCSolver


def stack_depth_study(technology) -> None:
    """Stacking effect and model accuracy for N = 1..4 (the Fig. 8 sweep)."""
    model = GateLeakageModel(technology)
    spice = StackDCSolver(technology)
    chen = ChenRoyStackModel(technology)
    naive = SeriesResistanceStackModel(technology)

    rows = []
    for depth in (1, 2, 3, 4):
        stack = uniform_nmos_stack(depth, 1e-6)
        reference = spice.off_current(stack)
        analytic = model.stack_off_current(stack)
        rows.append(
            [
                depth,
                reference,
                analytic,
                100.0 * abs(analytic - reference) / reference,
                chen.stack_off_current(stack),
                naive.stack_off_current(stack),
            ]
        )
    print_table(
        [
            "stack depth",
            "SPICE-like (A)",
            "proposed model (A)",
            "error (%)",
            "Chen'98 [8] (A)",
            "naive 1/N (A)",
        ],
        rows,
        title="nMOS stack leakage, 1um devices, 0.12um technology, 25 degC",
    )


def sleep_vector_study(technology) -> None:
    """Best and worst standby vectors for every cell of the library."""
    model = GateLeakageModel(technology)
    rows = []
    for name in standard_cell_names():
        gate = standard_cell(name, technology)
        best = model.best_case_vector(gate)
        worst = model.worst_case_vector(gate)
        rows.append(
            [
                name,
                vector_label(gate.inputs, best.input_vector),
                best.current,
                vector_label(gate.inputs, worst.input_vector),
                worst.current,
                worst.current / best.current,
            ]
        )
    print_table(
        [
            "cell",
            "best vector",
            "I_off best (A)",
            "worst vector",
            "I_off worst (A)",
            "worst/best",
        ],
        rows,
        title="standby (sleep) vector selection per cell",
    )


def temperature_study(technology) -> None:
    """Average library leakage versus junction temperature."""
    model = GateLeakageModel(technology)
    reference = GateLeakageReference(technology)
    temperatures = (25.0, 50.0, 75.0, 100.0, 125.0)
    rows = []
    for celsius in temperatures:
        kelvin = 273.15 + celsius
        analytic = sum(
            model.average_current(standard_cell(name, technology), temperature=kelvin)
            for name in standard_cell_names()
        )
        numeric = sum(
            reference.average_current(
                standard_cell(name, technology), temperature=kelvin
            )
            for name in ("INV", "NAND2", "NOR2")
        )
        rows.append([celsius, analytic, numeric])
    print_table(
        [
            "junction (degC)",
            "library average I_off, model (A)",
            "INV+NAND2+NOR2 average, reference (A)",
        ],
        rows,
        title="temperature dependence of standby current",
    )


def main() -> None:
    technology = cmos_012um()
    stack_depth_study(technology)
    sleep_vector_study(technology)
    temperature_study(technology)


if __name__ == "__main__":
    main()
