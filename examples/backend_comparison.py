"""Analytical-vs-FDM accuracy/speed comparison as one declarative study.

The paper's central claim is that the closed-form image-method model
reproduces a numerical reference "accurately enough for the estimation of
the thermal profile of large ICs" — at a tiny fraction of the cost.  With
the pluggable thermal-backend layer that trade-off is a first-class
workload: the *same* declarative study runs through every backend by
switching one field.

1. declares a steady operating grid on the paper's three-block floorplan,
2. runs it through the ``analytical`` (paper model), ``fdm`` (finite-volume
   reference) and ``foster`` (lumped smoke-level) backends via
   :meth:`repro.Study.with_backend`,
3. tabulates per-backend peak temperatures, per-block disagreement against
   the FDM reference and reduction wall time.

Run with::

    python examples/backend_comparison.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ScenarioSpec, Study, three_block_floorplan
from repro.core.thermal import backend_capabilities
from repro.reporting import print_table

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC_REF = {"core": 0.045, "cache": 0.018, "io": 0.008}
#: Grid of the FDM reference; finer grids converge further but cost more.
FDM_GRID = {"nx": 32, "ny": 32, "nz": 10}


def main() -> None:
    base = Study.steady(
        floorplan=three_block_floorplan(),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC_REF,
        scenarios=ScenarioSpec.grid(
            ["0.12um"],
            supply_scales=(0.9, 1.0, 1.1),
            ambient_temperatures=(298.15, 318.15),
        ),
        label="backend accuracy/speed comparison",
    )

    studies = {
        "analytical": base,
        "fdm": base.with_backend("fdm", FDM_GRID),
        "foster": base.with_backend("foster"),
    }

    results = {}
    seconds = {}
    for name, study in studies.items():
        start = time.perf_counter()
        results[name] = study.run()
        seconds[name] = time.perf_counter() - start

    reference = results["fdm"]
    reference_rise = (
        reference.array("block_temperatures")
        - reference.array("ambient_temperatures")[:, np.newaxis]
    )

    rows = []
    for name, result in results.items():
        rise = (
            result.array("block_temperatures")
            - result.array("ambient_temperatures")[:, np.newaxis]
        )
        profile_error = np.abs(rise - reference_rise).max() / reference_rise.max()
        summary = result.summary()
        rows.append(
            [
                name,
                summary["peak_temperature_K"],
                100.0 * profile_error,
                f"{summary['converged_count']}/{summary['scenario_count']}",
                1e3 * seconds[name],
            ]
        )
    print_table(
        ["backend", "peak T (K)", "profile error vs fdm (%)", "converged", "run (ms)"],
        rows,
        title="one declarative study, three thermal backends",
    )
    print(
        "\nNote: the foster backend's 1-D columns overestimate self-heating"
        "\n(no lateral spreading), enough to drive this grid's hot block into"
        "\nthe runaway ceiling — which is exactly the kind of conservative"
        "\nsmoke signal it is for."
    )

    print("\nbackend capabilities:")
    for name, capabilities in backend_capabilities().items():
        print(f"  {name}: {capabilities.description}")
        print(f"    [{capabilities.flags()}]")

    # The same comparison ships as JSON: `repro run
    # examples/study_backend_fdm.json` replays the FDM half from disk.
    print("\ndeclarative form: examples/study_backend_fdm.json")
    print("  (same grid, thermal_backend='fdm'; run it with `repro run`)")


if __name__ == "__main__":
    main()
