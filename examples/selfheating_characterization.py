"""Self-heating characterization: the paper's measurement flow, simulated.

Reproduces the Section 4.2 laboratory procedure end to end on the simulated
bench:

1. pulse each test transistor at 3 Hz and capture the sense-resistor voltage
   at three ambient temperatures (Fig. 9),
2. build the voltage-to-temperature calibration from the three captures,
3. fit the exponential ON-phase transient and extract the thermal resistance
   of each device (Fig. 10),
4. compare the extracted resistances against the analytical Eq. (18) model
   and against a finite-volume computation.

Run with::

    python examples/selfheating_characterization.py
"""

from __future__ import annotations

import numpy as np

from repro import cmos_035um
from repro.measurement import SelfHeatingBench, default_test_devices
from repro.reporting import print_table
from repro.thermalsim import FiniteVolumeThermalSolver, RectangularSource

AMBIENTS = (30.0, 35.0, 40.0)


def ascii_trace(
    times: np.ndarray, values: np.ndarray, rows: int = 10, columns: int = 64
) -> str:
    """Tiny ASCII oscilloscope rendering of one waveform."""
    picked = np.linspace(0, len(times) - 1, columns).astype(int)
    samples = values[picked]
    low, high = samples.min(), samples.max()
    span = max(high - low, 1e-12)
    grid = [[" "] * columns for _ in range(rows)]
    for column, value in enumerate(samples):
        row = int((value - low) / span * (rows - 1))
        grid[rows - 1 - row][column] = "*"
    return "\n".join("".join(line) for line in grid)


def main() -> None:
    technology = cmos_035um()
    bench = SelfHeatingBench(technology)
    devices = default_test_devices(technology)

    # --- Fig. 9: pulsed capture of one device at three ambients ---------- #
    device = devices[1]
    print(f"pulsed self-heating capture of {device.name} "
          f"(W = {device.width * 1e6:.0f} um, L = {device.length * 1e6:.2f} um)\n")
    for ambient in AMBIENTS:
        record = bench.simulate(device, ambient_celsius=ambient)
        print(f"ambient {ambient:.0f} degC — sense voltage over two 3 Hz periods:")
        print(ascii_trace(record.times, record.sense_trace.values))
        print()

    calibration = bench.calibrate(device, AMBIENTS)
    print_table(
        ["ambient (degC)", "initial ON voltage (V)"],
        [[t, v] for t, v in calibration.points],
        title="temperature calibration points",
    )
    print(f"calibration: {calibration.slope * 1e3:.3f} mV/degC "
          f"(rms residual {calibration.residual * 1e6:.0f} uV)\n")

    # --- Fig. 10: thermal resistance of the four devices ----------------- #
    rows = []
    for test_device in devices:
        measurement = bench.measure_thermal_resistance(test_device)
        rows.append(
            [
                test_device.name,
                test_device.width * 1e6,
                measurement.power * 1e3,
                measurement.temperature_rise,
                measurement.resistance,
                measurement.model_resistance,
                100.0 * measurement.relative_error,
            ]
        )
    print_table(
        [
            "device",
            "W (um)",
            "P (mW)",
            "dT (K)",
            "Rth measured (K/W)",
            "Rth model (K/W)",
            "model error (%)",
        ],
        rows,
        title="thermal resistance: simulated measurement vs analytical model",
    )

    # --- independent numerical cross-check for the widest device --------- #
    widest = devices[-1]
    solver = FiniteVolumeThermalSolver(
        die_width=200e-6,
        die_length=200e-6,
        die_thickness=150e-6,
        nx=40,
        ny=40,
        nz=10,
        ambient_temperature=303.15,
    )
    source = RectangularSource(
        x=100e-6, y=100e-6, width=widest.width, length=5e-6, power=10e-3
    )
    print(
        f"\nfinite-volume sanity check for {widest.name}: "
        f"{solver.thermal_resistance(source):.0f} K/W for a 5 um-long heat "
        f"footprint (the analytical channel-only value is "
        f"{bench.model_resistance(widest):.0f} K/W)"
    )


if __name__ == "__main__":
    main()
