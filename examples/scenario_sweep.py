"""Multi-scenario electro-thermal sweeps through the batched engine.

The scenario engine solves a whole grid of operating conditions —
technology node x supply voltage x ambient temperature x workload
activity — in one batched fixed point, reusing a single cached
block-to-block thermal reduction for every scenario on the floorplan.
This example

1. declares a 3-axis grid over three technology nodes,
2. solves all scenarios at once and tabulates the hottest cases,
3. uses :func:`repro.analysis.scenario_sweep` to express a conventional
   1-D ambient sweep as a thin wrapper over one scenario batch, and
4. cross-checks one scenario against the looped scalar engine.

Run with::

    python examples/scenario_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import scenario_sweep
from repro.core.cosim import Scenario, ScenarioEngine, scenario_grid
from repro.floorplan import three_block_floorplan
from repro.reporting import print_table
from repro.technology import make_technology

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC_REF = {"core": 0.045, "cache": 0.018, "io": 0.008}
NODES = ("0.18um", "0.12um", "70nm")


def main() -> None:
    plan = three_block_floorplan()
    engine = ScenarioEngine(plan, DYNAMIC, STATIC_REF)

    # One batched solve over the full operating grid.
    technologies = [make_technology(name) for name in NODES]
    scenarios = scenario_grid(
        technologies,
        supply_scales=(0.9, 1.0, 1.1),
        ambient_temperatures=(298.15, 318.15, 338.15),
        activities=(0.5, 1.0),
    )
    batch = engine.solve(scenarios)
    print(
        f"solved {len(batch)} scenarios in one batch; "
        f"{int(batch.converged.sum())} converged "
        f"({int((~batch.converged).sum())} thermal runaways)"
    )

    hottest = np.argsort(batch.peak_temperature)[-5:][::-1]
    rows = []
    for index in hottest:
        rows.append(
            [
                batch.scenarios[index].describe(),
                batch.peak_temperature[index] - 273.15,
                batch.total_power[index],
                batch.hottest_blocks()[index],
                "yes" if batch.converged[index] else "RUNAWAY",
            ]
        )
    print_table(
        ["scenario", "peak (degC)", "total power (W)", "hot block", "converged"],
        rows,
        title="five hottest operating scenarios",
    )

    # A classic 1-D sweep is now a thin wrapper over a scenario batch.
    technology = make_technology("0.12um")
    ambients = [273.15 + celsius for celsius in (25.0, 45.0, 65.0, 85.0)]
    sweep_result = scenario_sweep(
        engine,
        "ambient_K",
        ambients,
        [Scenario(technology, ambient_temperature=value) for value in ambients],
    )
    print_table(
        ["ambient (K)", "peak T (K)", "total power (W)", "static (W)"],
        [
            [
                value,
                sweep_result.series("peak_temperature")[index],
                sweep_result.series("total_power")[index],
                sweep_result.series("total_static_power")[index],
            ]
            for index, value in enumerate(sweep_result.values)
        ],
        title="ambient sweep as one scenario batch",
    )

    # The batched path reproduces the scalar engine exactly.
    scenario = Scenario(technology, ambient_temperature=318.15)
    batched = engine.solve([scenario]).scenario_result(0)
    scalar = engine.solve_scalar(scenario)
    gap = max(
        abs(batched.block_temperatures[name] - scalar.block_temperatures[name])
        for name in engine.block_names
    )
    print(
        f"\nbatched vs scalar parity on {scenario.describe()}: "
        f"max block-temperature gap {gap:.2e} K"
    )


if __name__ == "__main__":
    main()
