"""Multi-scenario electro-thermal sweeps through the `repro.api` facade.

The scenario engine solves a whole grid of operating conditions —
technology node x supply voltage x ambient temperature x workload
activity — in one batched fixed point, reusing a single cached
block-to-block thermal reduction for every scenario on the floorplan.
This example drives it entirely through the declarative facade:

1. declares a 3-axis grid over three technology nodes as
   :class:`repro.ScenarioSpec` objects,
2. runs them all at once with ``Study.steady(...).run()`` and tabulates
   the hottest cases,
3. expresses a conventional 1-D ambient sweep as a sweep-kind study, and
4. cross-checks one scenario against the looped scalar engine.

Run with::

    python examples/scenario_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioSpec, Study, three_block_floorplan
from repro.api import build_engine
from repro.reporting import print_table

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC_REF = {"core": 0.045, "cache": 0.018, "io": 0.008}
NODES = ("0.18um", "0.12um", "70nm")


def main() -> None:
    plan = three_block_floorplan()

    # One batched solve over the full operating grid, declared as specs.
    study = Study.steady(
        floorplan=plan,
        dynamic_powers=DYNAMIC,
        static_powers=STATIC_REF,
        scenarios=ScenarioSpec.grid(
            NODES,
            supply_scales=(0.9, 1.0, 1.1),
            ambient_temperatures=(298.15, 318.15, 338.15),
            activities=(0.5, 1.0),
        ),
        label="three-node operating grid",
    )
    result = study.run()
    batch = result.native
    print(
        f"solved {len(batch)} scenarios in one batch; "
        f"{int(batch.converged.sum())} converged "
        f"({int((~batch.converged).sum())} thermal runaways)"
    )

    hottest = np.argsort(batch.peak_temperature)[-5:][::-1]
    rows = []
    for index in hottest:
        rows.append(
            [
                batch.scenarios[index].describe(),
                batch.peak_temperature[index] - 273.15,
                batch.total_power[index],
                batch.hottest_blocks()[index],
                "yes" if batch.converged[index] else "RUNAWAY",
            ]
        )
    print_table(
        ["scenario", "peak (degC)", "total power (W)", "hot block", "converged"],
        rows,
        title="five hottest operating scenarios",
    )

    # A classic 1-D sweep is now a sweep-kind study over the same facade.
    ambients = [273.15 + celsius for celsius in (25.0, 45.0, 65.0, 85.0)]
    sweep_result = Study.sweep(
        floorplan=plan,
        parameter_name="ambient_K",
        parameter_values=ambients,
        scenarios=ScenarioSpec.grid(["0.12um"], ambient_temperatures=ambients),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC_REF,
    ).run()
    print_table(
        ["ambient (K)", "peak T (K)", "total power (W)", "static (W)"],
        [
            [
                value,
                sweep_result.array("peak_temperature")[index],
                sweep_result.array("total_power")[index],
                sweep_result.array("total_static_power")[index],
            ]
            for index, value in enumerate(sweep_result.array("values"))
        ],
        title="ambient sweep as one sweep-kind study",
    )

    # The batched path reproduces the scalar engine exactly.
    single = study.spec.replace(
        scenarios=(
            ScenarioSpec(technology="0.12um", ambient_temperature=318.15),
        )
    )
    scenario = single.build_scenarios()[0]
    engine = build_engine(single)
    batched = engine.solve([scenario]).scenario_result(0)
    scalar = engine.solve_scalar(scenario)
    gap = max(
        abs(batched.block_temperatures[name] - scalar.block_temperatures[name])
        for name in engine.block_names
    )
    print(
        f"\nbatched vs scalar parity on {scenario.describe()}: "
        f"max block-temperature gap {gap:.2e} K"
    )


if __name__ == "__main__":
    main()
