"""Concurrent electro-thermal co-simulation of a gate-level design.

The paper's headline use case: static power and junction temperature must be
solved *together* because each drives the other.  This example

1. builds a small gate-level design (an array of NAND/NOR clusters), places
   it into floorplan blocks,
2. runs the electro-thermal engine at several heat-sink temperatures,
3. compares the coupled solution against the conventional "evaluate power at
   a guessed temperature" flow, and
4. sweeps the heat-sink temperature to locate the onset of thermal runaway.

Run with::

    python examples/electrothermal_cosim.py
"""

from __future__ import annotations

from repro import (
    Block,
    DieGeometry,
    ElectroThermalEngine,
    Floorplan,
    Netlist,
    ScenarioSpec,
    Study,
    cmos_012um,
    nand_gate,
    nor_gate,
)
from repro.core.cosim import NetlistBlockModel, ScaledLeakageBlockModel
from repro.core.dynamic import SwitchingActivity
from repro.reporting import print_table

AMBIENTS_CELSIUS = (25.0, 45.0, 65.0, 85.0)


def build_cluster_netlist(
    technology, prefix: str, block: str, clusters: int
) -> Netlist:
    """A column of NAND2 -> NOR2 clusters assigned to one block."""
    netlist = Netlist(f"{prefix}_cluster", primary_inputs=("A", "B", "C"))
    for index in range(clusters):
        nand_out = f"{prefix}_n{index}"
        nor_out = f"{prefix}_z{index}"
        netlist.add_instance(
            f"{prefix}_U{2 * index}",
            nand_gate(technology, 2),
            {"A": "A", "B": "B", "Z": nand_out},
            block=block,
        )
        netlist.add_instance(
            f"{prefix}_U{2 * index + 1}",
            nor_gate(technology, 2),
            {"A": nand_out, "B": "C", "Z": nor_out},
            block=block,
        )
    return netlist


def main() -> None:
    technology = cmos_012um()
    die = DieGeometry(width=0.8e-3, length=0.8e-3, thickness=0.4e-3)
    plan = Floorplan(die, name="cosim_demo")
    plan.add_block(Block("datapath", x=0.28e-3, y=0.5e-3, width=0.4e-3, length=0.45e-3))
    plan.add_block(
        Block("control", x=0.62e-3, y=0.55e-3, width=0.25e-3, length=0.35e-3)
    )
    plan.add_block(Block("sram", x=0.45e-3, y=0.15e-3, width=0.6e-3, length=0.2e-3))

    datapath = build_cluster_netlist(technology, "dp", "datapath", clusters=60)
    control = build_cluster_netlist(technology, "ct", "control", clusters=25)

    block_models = {
        "datapath": NetlistBlockModel(
            "datapath",
            datapath,
            {"A": 0, "B": 1, "C": 0},
            technology,
            activity=SwitchingActivity(
                activity=0.18, frequency=1.2e9, external_load=4e-15
            ),
        ),
        "control": NetlistBlockModel(
            "control",
            control,
            {"A": 1, "B": 1, "C": 0},
            technology,
            activity=SwitchingActivity(
                activity=0.10, frequency=1.2e9, external_load=3e-15
            ),
        ),
        # The SRAM block is modelled at the abstract level: mostly leakage.
        "sram": ScaledLeakageBlockModel(
            name="sram",
            technology=technology,
            dynamic_power=0.02,
            static_power_at_reference=0.03,
        ),
    }

    rows = []
    for ambient_celsius in AMBIENTS_CELSIUS:
        engine = ElectroThermalEngine(
            technology,
            plan,
            block_models,
            ambient_temperature=273.15 + ambient_celsius,
        )
        naive = engine.isothermal_result(273.15 + ambient_celsius)
        coupled = engine.solve()
        rows.append(
            [
                ambient_celsius,
                coupled.block_temperatures["datapath"] - 273.15,
                naive.total_static_power,
                coupled.total_static_power,
                coupled.total_power,
                "yes" if coupled.converged else "RUNAWAY",
            ]
        )
    print_table(
        [
            "heat sink (degC)",
            "datapath junction (degC)",
            "static @sink-T (W)",
            "static coupled (W)",
            "total coupled (W)",
            "converged",
        ],
        rows,
        title="coupled vs uncoupled estimation across heat-sink temperatures",
    )

    engine = ElectroThermalEngine(
        technology, plan, block_models, ambient_temperature=273.15 + 85.0
    )
    result = engine.solve()
    per_block = []
    for name in plan.block_names():
        breakdown = result.block_breakdowns[name]
        per_block.append(
            [
                name,
                result.block_temperatures[name] - 273.15,
                breakdown.switching,
                breakdown.short_circuit,
                breakdown.static,
                100.0 * breakdown.static_fraction,
            ]
        )
    print_table(
        [
            "block",
            "junction (degC)",
            "switching (W)",
            "short-circuit (W)",
            "static (W)",
            "static share (%)",
        ],
        per_block,
        title="per-block breakdown at an 85 degC heat sink",
    )
    print(
        f"\nfixed point reached in {result.iteration_count} iterations; "
        f"hottest block: {result.hottest_block()} at "
        f"{result.peak_temperature - 273.15:.1f} degC"
    )

    # Whole-die view through the batched kernel.  The 85 degC case above is
    # a thermal runaway (result.converged is False, its powers are clamped),
    # so map a heat-sink temperature whose fixed point truly converges: a
    # 150x150 map plus the mid-die cut, each a single vectorized evaluation.
    cool_engine = ElectroThermalEngine(
        technology, plan, block_models, ambient_temperature=273.15 + 45.0
    )
    cool = cool_engine.solve()
    chip = cool_engine.thermal_model(cool)
    surface = chip.surface_map(nx=150, ny=150)
    xs, cut = chip.cross_section(y=0.5 * plan.die.length, samples=7)
    print(
        f"45 degC heat sink (converged={cool.converged}): surface peak "
        f"{surface.peak_temperature - 273.15:.1f} degC; mid-die cut "
        + ", ".join(f"{t - 273.15:.1f}" for t in cut)
        + " degC"
    )

    # Hand the gate-level design to the declarative layer: the netlist
    # models' reference powers become a serializable sweep-kind study that
    # locates the runaway onset on a fine ambient grid in one batched call.
    reference = engine.isothermal_result(technology.reference_temperature)
    dynamic_ref = {
        name: breakdown.switching + breakdown.short_circuit
        for name, breakdown in reference.block_breakdowns.items()
    }
    static_ref = {
        name: breakdown.static
        for name, breakdown in reference.block_breakdowns.items()
    }
    ambients = [273.15 + celsius for celsius in range(25, 126, 5)]
    onset = Study.sweep(
        floorplan=plan,
        parameter_name="ambient_K",
        parameter_values=ambients,
        scenarios=ScenarioSpec.grid(["0.12um"], ambient_temperatures=ambients),
        dynamic_powers=dynamic_ref,
        static_powers=static_ref,
        label="runaway onset sweep",
    ).run()
    converged = onset.array("converged").astype(bool)
    if converged.all():
        print("\ndeclarative ambient sweep: no runaway up to 125 degC")
    else:
        first = int((~converged).argmax())
        print(
            f"\ndeclarative ambient sweep: thermal runaway sets in at a "
            f"{ambients[first] - 273.15:.0f} degC heat sink "
            f"({int(converged.sum())}/{len(ambients)} ambients converge)"
        )


if __name__ == "__main__":
    main()
