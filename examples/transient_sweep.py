"""Batched transient electro-thermal sweeps through the `repro.api` facade.

The transient scenario engine integrates the time-domain electro-thermal
relaxation for a whole grid of operating conditions at once — one array
valued time loop instead of one Python integration per scenario.  This
example drives it entirely through the declarative facade:

1. declares a grid of scenarios (two technology nodes x ambients x
   activities) over the three-block floorplan,
2. drives all of them with a pulse-width-modulated workload declared as a
   :class:`repro.WorkloadSpec` (the paper's pulsed self-heating story at
   block granularity) via ``Study.transient(...).run()``,
3. summarizes each scenario with the standard transient metrics (peak
   temperature, overshoot, settle time, dissipated energy, runaway), and
4. cross-checks one scenario against the looped scalar simulator.

Run with::

    python examples/transient_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioSpec, Study, three_block_floorplan
from repro.analysis import transient_scenario_sweep
from repro.api import build_engine
from repro.core.cosim import PWMActivity, TransientScenarioEngine
from repro.reporting import print_table

DYNAMIC = {"core": 0.22, "cache": 0.09, "io": 0.04}
STATIC_REF = {"core": 0.045, "cache": 0.018, "io": 0.008}
#: Millisecond-scale block time constants keep the demo fast.
TAUS = {"core": 2e-3, "cache": 1.5e-3, "io": 1e-3}
#: Every scenario pulses between idle and its activity multiplier at
#: 250 Hz with a 40% duty cycle.
WORKLOAD = {"kind": "pwm", "parameters": {"periods": 4e-3, "duty_cycles": 0.4}}


def main() -> None:
    plan = three_block_floorplan()
    study = Study.transient(
        floorplan=plan,
        dynamic_powers=DYNAMIC,
        static_powers=STATIC_REF,
        scenarios=ScenarioSpec.grid(
            ["0.18um", "0.12um"],
            ambient_temperatures=(298.15, 318.15),
            activities=(0.5, 1.0, 1.5),
        ),
        duration=40e-3,
        time_step=0.1e-3,
        workload=WORKLOAD,
        time_constants=TAUS,
        solver={"settle_tolerance": 1e-6},
        label="PWM workload grid",
    )
    result = study.run()
    batch = result.native
    print(
        f"integrated {len(batch)} scenarios x {len(batch.times)} time steps "
        f"in one batch; {int(batch.runaway.sum())} thermal runaway(s)"
    )

    hottest = np.argsort(batch.peak_temperature)[-5:][::-1]
    energies = batch.total_energy()
    print_table(
        ["scenario", "peak (degC)", "ripple (K)", "energy (mJ)", "runaway"],
        [
            [
                batch.scenarios[index].describe(),
                batch.peak_temperature[index] - 273.15,
                batch.overshoot[index],
                1e3 * energies[index],
                "RUNAWAY" if batch.runaway[index] else "no",
            ]
            for index in hottest
        ],
        title="five hottest scenarios under the 250 Hz PWM workload",
    )

    # The same batch expressed as a conventional 1-D sweep over ambient.
    # `transient_scenario_sweep` shares its series definitions with the
    # facade's reporting (repro.api.results).
    ambients = [273.15 + celsius for celsius in (15.0, 25.0, 35.0, 45.0)]
    ambient_spec = study.spec.replace(
        scenarios=ScenarioSpec.grid(["0.12um"], ambient_temperatures=ambients),
        solver={},
    )
    sweep = transient_scenario_sweep(
        TransientScenarioEngine(build_engine(ambient_spec), time_constants=TAUS),
        "ambient_K",
        ambients,
        ambient_spec.build_scenarios(),
        duration=40e-3,
        time_step=0.1e-3,
        activity=ambient_spec.workload.build(),
    )
    print_table(
        ["ambient (K)", "peak T (K)", "settle (ms)", "overshoot (K)"],
        [
            [
                value,
                sweep.series("peak_temperature")[index],
                1e3 * sweep.series("settle_time")[index],
                sweep.series("overshoot")[index],
            ]
            for index, value in enumerate(sweep.values)
        ],
        title="ambient sweep as one transient batch",
    )

    # The batched path reproduces the scalar simulator.
    row = 1
    scenarios = study.spec.build_scenarios()
    engine = TransientScenarioEngine(build_engine(study.spec), time_constants=TAUS)
    workload = PWMActivity(periods=4e-3, duty_cycles=0.4)
    reference = engine.simulate_scalar(
        scenarios[row],
        duration=40e-3,
        time_step=0.1e-3,
        activity=workload,
        row=row,
    )
    temperatures, _ = reference.as_arrays()
    aligned = engine.simulate(
        scenarios,
        duration=40e-3,
        time_step=0.1e-3,
        activity=workload,
        include_activity_edges=False,
    )
    gap = np.abs(aligned.block_temperatures[row] - temperatures).max()
    print(
        f"\nbatched vs scalar parity on {scenarios[row].describe()}: "
        f"max block-temperature gap {gap:.2e} K"
    )


if __name__ == "__main__":
    main()
