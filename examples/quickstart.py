"""Quickstart: the declarative `repro.api` facade in a dozen lines each.

Run with::

    python examples/quickstart.py

The script walks through the capabilities the paper combines, all through
the one front door (:class:`repro.Study`):

1. a steady study — concurrent electro-thermal fixed points over a small
   scenario grid (Section 2 + 3 coupled),
2. a thermal-map study — the analytical surface profile of fixed block
   powers (Section 3),
3. a transient study — a pulsed workload charging the block thermal time
   constants (the paper's self-heating story),
4. the serialization contract: specs and results round-trip through JSON,
   and a reloaded spec re-runs bit-identically (also available from the
   command line: ``python -m repro run study.json``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ScenarioSpec, Study, three_block_floorplan
from repro.reporting import print_table

DYNAMIC = {"core": 0.25, "cache": 0.10, "io": 0.05}
STATIC = {"core": 0.05, "cache": 0.02, "io": 0.01}


def steady_demo() -> None:
    """Concurrent power-temperature estimation over a 2 x 2 scenario grid."""
    study = Study.steady(
        floorplan=three_block_floorplan(),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=ScenarioSpec.grid(
            ["0.18um", "0.12um"], ambient_temperatures=(298.15, 318.15)
        ),
        label="steady quickstart",
    )
    result = study.run()
    batch = result.native  # the full ScenarioBatchResult remains available
    print_table(
        ["scenario", "peak (degC)", "total power (W)", "converged"],
        [
            [label, peak - 273.15, power, "yes" if ok else "RUNAWAY"]
            for label, peak, power, ok in zip(
                result.metadata["scenario_labels"],
                batch.peak_temperature,
                batch.total_power,
                batch.converged,
            )
        ],
        title="steady study: one batched fixed point for the whole grid",
    )


def thermal_map_demo() -> None:
    """Analytical surface map of fixed block powers (Eq. 18-21)."""
    study = Study.thermal_map(
        floorplan=three_block_floorplan(),
        block_powers={"core": 0.30, "cache": 0.12, "io": 0.06},
        technology="0.12um",
        ambient_temperature=318.15,
        samples=(200, 200),
        label="thermal-map quickstart",
    )
    summary = study.run().summary()
    peak_x, peak_y = summary["peak_location_m"]
    print(
        f"\nsurface map ({summary['samples'][0]}x{summary['samples'][1]} samples): "
        f"peak {summary['peak_temperature_K'] - 273.15:.1f} degC at "
        f"({peak_x * 1e6:.0f} um, {peak_y * 1e6:.0f} um)"
    )
    rows = [
        [name, temperature - 273.15]
        for name, temperature in summary["source_temperatures_K"].items()
    ]
    print_table(
        ["block", "junction (degC)"],
        rows,
        title="block centre temperatures (45 degC heat sink)",
    )


def transient_demo() -> None:
    """A 250 Hz PWM workload integrated for every scenario at once."""
    study = Study.transient(
        floorplan=three_block_floorplan(),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=ScenarioSpec.grid(["0.12um"], activities=(0.5, 1.0, 1.5)),
        duration=40e-3,
        time_step=0.5e-3,
        workload={"kind": "pwm", "parameters": {"periods": 4e-3, "duty_cycles": 0.4}},
        time_constants={"core": 2e-3, "cache": 1.5e-3, "io": 1e-3},
        label="transient quickstart",
    )
    result = study.run()
    batch = result.native
    print_table(
        ["scenario", "peak (degC)", "ripple (K)", "energy (mJ)"],
        [
            [label, peak - 273.15, ripple, 1e3 * energy]
            for label, peak, ripple, energy in zip(
                result.metadata["scenario_labels"],
                batch.peak_temperature,
                batch.overshoot,
                batch.total_energy(),
            )
        ],
        title="transient study: batched PWM self-heating",
    )


def serialization_demo() -> None:
    """Specs and results are JSON documents; replay is bit-exact."""
    study = Study.steady(
        floorplan=three_block_floorplan(),
        dynamic_powers=DYNAMIC,
        static_powers=STATIC,
        scenarios=ScenarioSpec.grid(["0.12um"], ambient_temperatures=(318.15,)),
    )
    first = study.run()
    with tempfile.TemporaryDirectory() as scratch:
        spec_path = Path(scratch) / "study.json"
        study.to_json(spec_path)
        replayed = Study.from_json(spec_path).run()
    print(
        f"\nspec -> JSON -> spec -> run: bit-identical replay "
        f"{'confirmed' if replayed.equals(first) else 'FAILED'} "
        f"(also runnable as `python -m repro run {spec_path.name}`)"
    )


def main() -> None:
    steady_demo()
    thermal_map_demo()
    transient_demo()
    serialization_demo()


if __name__ == "__main__":
    main()
