"""Quickstart: leakage, thermal and coupled estimation in a dozen lines each.

Run with::

    python examples/quickstart.py

The script walks through the three capabilities the paper combines:

1. analytical static-power estimation of a gate (Section 2),
2. analytical thermal profile of a heat source (Section 3),
3. the concurrent electro-thermal fixed point that ties them together.
"""

from __future__ import annotations

from repro import (
    ElectroThermalEngine,
    GateLeakageModel,
    HeatSource,
    block_models_from_powers,
    cmos_012um,
    nand_gate,
    self_heating_resistance,
    three_block_floorplan,
)
from repro.reporting import print_table


def leakage_demo() -> None:
    """Static power of a NAND2 gate for every input vector."""
    technology = cmos_012um()
    gate = nand_gate(technology, fan_in=2)
    model = GateLeakageModel(technology)

    rows = []
    for bits, current in sorted(model.per_vector_currents(gate).items()):
        rows.append(["".join(map(str, bits)), current, current * technology.vdd])
    print_table(
        ["input vector", "leakage current (A)", "static power (W)"],
        rows,
        title="NAND2 static power at 25 degC, 0.12um",
    )

    hot = model.worst_case_vector(gate, temperature=273.15 + 110.0)
    print(
        f"\nworst-case vector at 110 degC: {hot.input_vector} -> "
        f"{hot.current:.3e} A ({hot.current / model.worst_case_vector(gate).current:.0f}x "
        f"the 25 degC value)"
    )


def thermal_demo() -> None:
    """Temperature field of a single hot transistor (the paper's Fig. 5 device)."""
    resistance = self_heating_resistance(1e-6, 0.1e-6)
    source = HeatSource(x=0.0, y=0.0, width=1e-6, length=0.1e-6, power=10e-3)
    print(f"\nself-heating resistance of a 1um x 0.1um device: {resistance:.0f} K/W")
    print(f"steady-state rise at 10 mW: {10e-3 * resistance:.1f} K")

    from repro import rectangle_temperature
    from repro.technology.materials import SILICON

    conductivity = SILICON.conductivity_at(300.0)
    rows = [
        [distance * 1e6, rectangle_temperature(distance, 0.0, source, conductivity)]
        for distance in (0.0, 0.5e-6, 1e-6, 2e-6, 5e-6, 20e-6)
    ]
    print_table(
        ["distance from device (um)", "temperature rise (K)"],
        rows,
        title="analytical thermal profile (Eq. 20)",
    )


def cosim_demo() -> None:
    """Concurrent power-temperature estimation of a small three-block chip."""
    technology = cmos_012um()
    floorplan = three_block_floorplan()
    blocks = block_models_from_powers(
        technology,
        dynamic_powers={"core": 0.25, "cache": 0.10, "io": 0.05},
        static_powers_at_reference={"core": 0.05, "cache": 0.02, "io": 0.01},
    )
    engine = ElectroThermalEngine(
        technology, floorplan, blocks, ambient_temperature=318.15
    )

    naive = engine.isothermal_result(technology.reference_temperature)
    coupled = engine.solve()

    rows = []
    for name in floorplan.block_names():
        rows.append(
            [
                name,
                coupled.block_temperatures[name] - 273.15,
                naive.block_breakdowns[name].static,
                coupled.block_breakdowns[name].static,
            ]
        )
    print_table(
        ["block", "junction (degC)", "static @25C guess (W)", "static coupled (W)"],
        rows,
        title="concurrent electro-thermal estimation (45 degC heat sink)",
    )
    print(
        f"\nchip static power: {naive.total_static_power:.3f} W if temperature is "
        f"ignored vs {coupled.total_static_power:.3f} W self-consistently "
        f"({coupled.total_static_power / naive.total_static_power:.2f}x)"
    )

    # Full-chip surface map of the converged solution: the 200x200 grid is a
    # single call into the vectorized thermal kernel.
    surface = engine.thermal_model(coupled).surface_map(nx=200, ny=200)
    peak_x, peak_y = surface.peak_location
    print(
        f"converged surface map (200x200 samples): peak "
        f"{surface.peak_temperature - 273.15:.1f} degC at "
        f"({peak_x * 1e6:.0f} um, {peak_y * 1e6:.0f} um)"
    )


def main() -> None:
    leakage_demo()
    thermal_demo()
    cosim_demo()


if __name__ == "__main__":
    main()
