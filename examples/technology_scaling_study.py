"""Technology scaling study: regenerating the paper's Fig. 1 motivation.

Sweeps a representative chip design across the predefined technology nodes
(0.8 um down to 25 nm), evaluates its dynamic and static power at several
junction temperatures with the library's own compact models, locates the
static/dynamic crossover node per temperature and reports the per-device
leakage trend that drives it.

Run with::

    python examples/technology_scaling_study.py
"""

from __future__ import annotations

from repro.reporting import print_table
from repro.technology import make_technology, node_names
from repro.technology.scaling import (
    ChipScalingAssumptions,
    TechnologyScalingStudy,
    device_off_current,
)

TEMPERATURES = (25.0, 100.0, 150.0)


def per_device_leakage_table() -> None:
    """Leakage density per micron of device width across nodes."""
    rows = []
    for name in node_names():
        technology = make_technology(name)
        densities = [
            device_off_current(
                technology.nmos,
                1e-6,
                technology.vdd,
                273.15 + celsius,
                technology.reference_temperature,
            )
            for celsius in TEMPERATURES
        ]
        rows.append([name, technology.vdd, technology.nmos.vt0, *densities])
    print_table(
        [
            "node",
            "Vdd (V)",
            "Vth (V)",
            *[f"Ioff/um @ {t:g}C (A)" for t in TEMPERATURES],
        ],
        rows,
        title="per-device subthreshold leakage across technology nodes",
    )


def chip_projection(assumptions: ChipScalingAssumptions, label: str) -> None:
    """Chip-level dynamic vs static projection for one set of assumptions."""
    study = TechnologyScalingStudy(
        assumptions=assumptions, temperatures_celsius=TEMPERATURES
    )
    rows = []
    for projection in study.project():
        rows.append(
            [
                projection.node,
                projection.transistor_count / 1e6,
                projection.frequency / 1e9,
                projection.dynamic_power,
                *[projection.static_power(t) for t in TEMPERATURES],
            ]
        )
    print_table(
        [
            "node",
            "Mtransistors",
            "f (GHz)",
            "dynamic (W)",
            *[f"static @ {t:g}C (W)" for t in TEMPERATURES],
        ],
        rows,
        title=f"Fig. 1 style projection — {label}",
    )
    crossover_rows = [
        [t, study.crossover_node(t) or "none within range"] for t in TEMPERATURES
    ]
    print_table(
        ["junction temperature (degC)", "first node where static > dynamic"],
        crossover_rows,
        title=f"crossover nodes — {label}",
    )


def main() -> None:
    per_device_leakage_table()
    chip_projection(ChipScalingAssumptions(), label="default assumptions")
    # A lower-activity, slower design leaks relatively more: the crossover
    # moves to older nodes, illustrating how design style shifts the balance.
    chip_projection(
        ChipScalingAssumptions(activity_factor=0.05, frequency_growth_per_node=1.2),
        label="low-activity design",
    )


if __name__ == "__main__":
    main()
