"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
project can be installed editable (``pip install -e .``) on environments
whose setuptools predates PEP 660 wheel-less editable installs (e.g. offline
machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
