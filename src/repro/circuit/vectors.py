"""Input-vector utilities.

Gate leakage is strongly input-vector dependent (the stacking effect can
change a gate's OFF current by more than an order of magnitude), so the
leakage experiments always specify either an explicit vector, an exhaustive
enumeration, or a probability-weighted average over vectors.  This module
provides those utilities.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple


def enumerate_vectors(input_names: Sequence[str]) -> Iterator[Dict[str, int]]:
    """Yield every binary input vector over ``input_names``.

    Vectors are yielded in ascending binary order with ``input_names[0]`` as
    the most significant bit, which keeps orderings reproducible across runs.
    """
    names = list(input_names)
    if not names:
        raise ValueError("at least one input name is required")
    if len(set(names)) != len(names):
        raise ValueError("input names must be unique")
    for bits in itertools.product((0, 1), repeat=len(names)):
        yield dict(zip(names, bits))


def vector_from_bits(input_names: Sequence[str], bits: Sequence[int]) -> Dict[str, int]:
    """Build a named input vector from a list of bits (same order as names)."""
    names = list(input_names)
    values = [int(b) for b in bits]
    if len(names) != len(values):
        raise ValueError("bits length must match the number of input names")
    if any(v not in (0, 1) for v in values):
        raise ValueError("bits must be 0 or 1")
    return dict(zip(names, values))


def vector_to_bits(input_names: Sequence[str], vector: Mapping[str, int]) -> Tuple[int, ...]:
    """Extract a bit tuple from a named vector in the given name order."""
    try:
        bits = tuple(int(vector[name]) for name in input_names)
    except KeyError as exc:
        raise KeyError(f"vector is missing input {exc.args[0]!r}") from exc
    if any(b not in (0, 1) for b in bits):
        raise ValueError("vector values must be 0 or 1")
    return bits


def vector_label(input_names: Sequence[str], vector: Mapping[str, int]) -> str:
    """Compact string label such as ``"A=0 B=1"`` for reports and tables."""
    return " ".join(f"{name}={int(vector[name])}" for name in input_names)


@dataclass(frozen=True)
class VectorDistribution:
    """A probability distribution over input vectors.

    Used for average-leakage estimation: the expected leakage of a gate is
    the probability-weighted sum of its per-vector leakage.
    """

    input_names: Tuple[str, ...]
    probabilities: Tuple[Tuple[Tuple[int, ...], float], ...]

    def __post_init__(self) -> None:
        if not self.input_names:
            raise ValueError("at least one input name is required")
        total = sum(p for _, p in self.probabilities)
        if not self.probabilities:
            raise ValueError("the distribution must contain at least one vector")
        if any(p < 0.0 for _, p in self.probabilities):
            raise ValueError("probabilities must be non-negative")
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1 (got {total})")
        width = len(self.input_names)
        for bits, _ in self.probabilities:
            if len(bits) != width:
                raise ValueError("every vector must cover all inputs")
            if any(b not in (0, 1) for b in bits):
                raise ValueError("vector bits must be 0 or 1")

    def items(self) -> Iterator[Tuple[Dict[str, int], float]]:
        """Yield ``(named_vector, probability)`` pairs."""
        for bits, probability in self.probabilities:
            yield vector_from_bits(self.input_names, bits), probability

    @classmethod
    def uniform(cls, input_names: Sequence[str]) -> "VectorDistribution":
        """Uniform distribution over all vectors of the given inputs."""
        names = tuple(input_names)
        count = 2 ** len(names)
        probability = 1.0 / count
        probabilities = tuple(
            (tuple(bits), probability)
            for bits in itertools.product((0, 1), repeat=len(names))
        )
        return cls(input_names=names, probabilities=probabilities)

    @classmethod
    def from_signal_probabilities(
        cls, one_probabilities: Mapping[str, float]
    ) -> "VectorDistribution":
        """Independent per-input probabilities of being logic 1."""
        names = tuple(one_probabilities)
        if not names:
            raise ValueError("at least one input is required")
        for name, p in one_probabilities.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability of {name!r} must be in [0, 1]")
        probabilities: List[Tuple[Tuple[int, ...], float]] = []
        for bits in itertools.product((0, 1), repeat=len(names)):
            probability = 1.0
            for name, bit in zip(names, bits):
                p_one = one_probabilities[name]
                probability *= p_one if bit == 1 else (1.0 - p_one)
            probabilities.append((tuple(bits), probability))
        return cls(input_names=names, probabilities=tuple(probabilities))

    def expectation(self, per_vector_value) -> float:
        """Probability-weighted average of ``per_vector_value(vector)``."""
        return sum(
            probability * per_vector_value(vector)
            for vector, probability in self.items()
        )
