"""MOSFET device instances and on/off state evaluation.

The leakage model of the paper works on *structural* information: which
transistors exist, how wide they are, which are ON and which are OFF for a
given input vector.  This module provides the :class:`MOSFET` instance
object used throughout the circuit substrate and the helpers that decide a
device's conduction state from its gate logic value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from ..technology.parameters import DeviceParameters, TechnologyParameters

_instance_counter = itertools.count()


@dataclass(frozen=True)
class MOSFET:
    """A single MOS transistor instance.

    Attributes
    ----------
    name:
        Instance name (unique within its gate / stack).
    device_type:
        ``"nmos"`` or ``"pmos"``.
    width:
        Channel width [m].
    length:
        Channel length [m]; ``None`` means "use the technology's nominal
        length for this device type".
    gate_input:
        Name of the logic input driving the gate terminal.
    """

    name: str
    device_type: str
    width: float
    length: Optional[float] = None
    gate_input: str = ""

    def __post_init__(self) -> None:
        if self.device_type not in ("nmos", "pmos"):
            raise ValueError("device_type must be 'nmos' or 'pmos'")
        if self.width <= 0.0:
            raise ValueError("width must be positive")
        if self.length is not None and self.length <= 0.0:
            raise ValueError("length must be positive when given")

    @property
    def is_nmos(self) -> bool:
        """True when the device is an n-channel MOSFET."""
        return self.device_type == "nmos"

    @property
    def is_pmos(self) -> bool:
        """True when the device is a p-channel MOSFET."""
        return self.device_type == "pmos"

    def effective_length(self, technology: TechnologyParameters) -> float:
        """Channel length [m], falling back to the technology default."""
        if self.length is not None:
            return self.length
        return technology.device(self.device_type).channel_length

    def parameters(self, technology: TechnologyParameters) -> DeviceParameters:
        """Compact-model parameters of this device's type."""
        return technology.device(self.device_type)

    def is_on(self, gate_logic_value: int) -> bool:
        """Conduction state for a gate logic value (0 or 1).

        An NMOS conducts when its gate is high; a PMOS conducts when its gate
        is low.  Subthreshold conduction of OFF devices is exactly what the
        leakage model computes, so "ON" here means *strong-inversion* ON.
        """
        if gate_logic_value not in (0, 1):
            raise ValueError("gate logic value must be 0 or 1")
        if self.is_nmos:
            return gate_logic_value == 1
        return gate_logic_value == 0

    def is_off(self, gate_logic_value: int) -> bool:
        """Complement of :meth:`is_on`."""
        return not self.is_on(gate_logic_value)

    def with_width(self, width: float) -> "MOSFET":
        """Copy of the device with a different channel width."""
        return replace(self, width=width)

    def gate_voltage(self, logic_value: int, vdd: float) -> float:
        """Gate terminal voltage [V] for a rail-to-rail logic value."""
        if logic_value not in (0, 1):
            raise ValueError("logic value must be 0 or 1")
        if vdd <= 0.0:
            raise ValueError("vdd must be positive")
        return vdd if logic_value == 1 else 0.0


def nmos(
    name: str,
    width: float,
    gate_input: str = "",
    length: Optional[float] = None,
) -> MOSFET:
    """Convenience constructor for an NMOS instance."""
    return MOSFET(
        name=name, device_type="nmos", width=width, length=length,
        gate_input=gate_input,
    )


def pmos(
    name: str,
    width: float,
    gate_input: str = "",
    length: Optional[float] = None,
) -> MOSFET:
    """Convenience constructor for a PMOS instance."""
    return MOSFET(
        name=name, device_type="pmos", width=width, length=length,
        gate_input=gate_input,
    )


def auto_name(prefix: str) -> str:
    """Generate a unique instance name with the given prefix."""
    return f"{prefix}{next(_instance_counter)}"


@dataclass(frozen=True)
class BiasedDevice:
    """A MOSFET together with the terminal voltages applied to it.

    The numerical (SPICE-like) solver and the analytical collapsing both need
    the device *plus* its bias point; this small value object keeps the two
    together.  All voltages are absolute node voltages referenced to ground.
    """

    device: MOSFET
    gate_voltage: float
    drain_voltage: float
    source_voltage: float
    body_voltage: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def vgs(self) -> float:
        """Gate-source voltage magnitude appropriate for the device polarity."""
        if self.device.is_nmos:
            return self.gate_voltage - self.source_voltage
        return self.source_voltage - self.gate_voltage

    @property
    def vds(self) -> float:
        """Drain-source voltage magnitude appropriate for the device polarity."""
        if self.device.is_nmos:
            return self.drain_voltage - self.source_voltage
        return self.source_voltage - self.drain_voltage

    @property
    def vsb(self) -> float:
        """Source-body voltage magnitude appropriate for the device polarity."""
        if self.device.is_nmos:
            return self.source_voltage - self.body_voltage
        return self.body_voltage - self.source_voltage
