"""Gate-level combinational netlists.

The full-chip leakage estimator and the electro-thermal engine both need a
circuit bigger than a single gate: a combinational netlist of standard-cell
instances.  :class:`Netlist` stores cell instances with their pin-to-net
connections, performs topological evaluation of logic values from primary
inputs, and exposes per-instance views that the leakage model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .cells import LogicGate


@dataclass(frozen=True)
class GateInstance:
    """A placed instance of a :class:`LogicGate` inside a netlist.

    Attributes
    ----------
    name:
        Unique instance name.
    cell:
        The logic gate this instance realises.
    connections:
        Mapping from the cell's pin names (inputs and output) to net names.
    block:
        Optional floorplan block this instance belongs to; used by the
        electro-thermal engine to aggregate power per block.
    """

    name: str
    cell: LogicGate
    connections: Dict[str, str]
    block: Optional[str] = None

    def __post_init__(self) -> None:
        expected_pins = set(self.cell.inputs) | {self.cell.output_name}
        actual_pins = set(self.connections)
        missing = expected_pins - actual_pins
        extra = actual_pins - expected_pins
        if missing:
            raise ValueError(f"instance {self.name}: unconnected pins {sorted(missing)}")
        if extra:
            raise ValueError(f"instance {self.name}: unknown pins {sorted(extra)}")

    @property
    def output_net(self) -> str:
        """Net driven by this instance's output."""
        return self.connections[self.cell.output_name]

    @property
    def input_nets(self) -> Tuple[str, ...]:
        """Nets feeding this instance's inputs, in declared input order."""
        return tuple(self.connections[pin] for pin in self.cell.inputs)

    def input_vector(self, net_values: Mapping[str, int]) -> Dict[str, int]:
        """Translate net logic values into the cell's pin-named input vector."""
        vector = {}
        for pin in self.cell.inputs:
            net = self.connections[pin]
            if net not in net_values:
                raise KeyError(
                    f"instance {self.name}: net {net!r} has no logic value"
                )
            vector[pin] = int(net_values[net])
        return vector


class Netlist:
    """A combinational gate-level netlist.

    Parameters
    ----------
    name:
        Netlist (design) name.
    primary_inputs:
        Names of the externally driven nets.
    """

    def __init__(self, name: str, primary_inputs: Sequence[str]) -> None:
        if not name:
            raise ValueError("netlist name must not be empty")
        inputs = list(primary_inputs)
        if len(set(inputs)) != len(inputs):
            raise ValueError("primary input names must be unique")
        self.name = name
        self._primary_inputs: Tuple[str, ...] = tuple(inputs)
        self._instances: Dict[str, GateInstance] = {}
        self._driver_of_net: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def primary_inputs(self) -> Tuple[str, ...]:
        """Externally driven net names."""
        return self._primary_inputs

    def add_instance(
        self,
        name: str,
        cell: LogicGate,
        connections: Mapping[str, str],
        block: Optional[str] = None,
    ) -> GateInstance:
        """Add a cell instance; returns the created :class:`GateInstance`."""
        if name in self._instances:
            raise ValueError(f"duplicate instance name {name!r}")
        instance = GateInstance(
            name=name, cell=cell, connections=dict(connections), block=block
        )
        output = instance.output_net
        if output in self._primary_inputs:
            raise ValueError(
                f"instance {name} drives primary input net {output!r}"
            )
        if output in self._driver_of_net:
            raise ValueError(
                f"net {output!r} already driven by {self._driver_of_net[output]!r}"
            )
        self._instances[name] = instance
        self._driver_of_net[output] = name
        return instance

    def instances(self) -> Tuple[GateInstance, ...]:
        """All instances in insertion order."""
        return tuple(self._instances.values())

    def instance(self, name: str) -> GateInstance:
        """Look up an instance by name."""
        if name not in self._instances:
            raise KeyError(f"no instance named {name!r}")
        return self._instances[name]

    def __len__(self) -> int:
        return len(self._instances)

    def nets(self) -> Tuple[str, ...]:
        """Every net name (primary inputs first, then instance outputs)."""
        seen: List[str] = list(self._primary_inputs)
        seen_set: Set[str] = set(seen)
        for instance in self._instances.values():
            for net in (*instance.input_nets, instance.output_net):
                if net not in seen_set:
                    seen.append(net)
                    seen_set.add(net)
        return tuple(seen)

    def primary_outputs(self) -> Tuple[str, ...]:
        """Nets driven by an instance but not consumed by any other instance."""
        consumed: Set[str] = set()
        for instance in self._instances.values():
            consumed.update(instance.input_nets)
        outputs = [
            instance.output_net
            for instance in self._instances.values()
            if instance.output_net not in consumed
        ]
        return tuple(outputs)

    def device_count(self) -> int:
        """Total transistor count across all instances."""
        return sum(instance.cell.device_count() for instance in self._instances.values())

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def topological_order(self) -> Tuple[GateInstance, ...]:
        """Instances ordered so every driver precedes its fanout.

        Raises ``ValueError`` when the netlist contains a combinational loop
        or an instance input that nothing drives.
        """
        resolved: Set[str] = set(self._primary_inputs)
        remaining = dict(self._instances)
        ordered: List[GateInstance] = []
        while remaining:
            progressed = False
            for name in list(remaining):
                instance = remaining[name]
                if all(net in resolved for net in instance.input_nets):
                    ordered.append(instance)
                    resolved.add(instance.output_net)
                    del remaining[name]
                    progressed = True
            if not progressed:
                undriven = sorted(
                    net
                    for inst in remaining.values()
                    for net in inst.input_nets
                    if net not in resolved and net not in self._driver_of_net
                )
                if undriven:
                    raise ValueError(
                        f"netlist {self.name}: undriven nets {undriven}"
                    )
                raise ValueError(
                    f"netlist {self.name}: combinational loop among "
                    f"{sorted(remaining)}"
                )
        return tuple(ordered)

    def evaluate(self, primary_input_values: Mapping[str, int]) -> Dict[str, int]:
        """Logic value of every net for the given primary-input assignment."""
        net_values: Dict[str, int] = {}
        for net in self._primary_inputs:
            if net not in primary_input_values:
                raise KeyError(f"missing value for primary input {net!r}")
            value = int(primary_input_values[net])
            if value not in (0, 1):
                raise ValueError("primary input values must be 0 or 1")
            net_values[net] = value
        for instance in self.topological_order():
            vector = instance.input_vector(net_values)
            net_values[instance.output_net] = instance.cell.evaluate(vector)
        return net_values

    def instance_input_vectors(
        self, primary_input_values: Mapping[str, int]
    ) -> Dict[str, Dict[str, int]]:
        """Pin-named input vector of every instance for a primary assignment."""
        net_values = self.evaluate(primary_input_values)
        return {
            instance.name: instance.input_vector(net_values)
            for instance in self._instances.values()
        }

    def instances_in_block(self, block: str) -> Tuple[GateInstance, ...]:
        """Instances assigned to a given floorplan block."""
        return tuple(
            instance
            for instance in self._instances.values()
            if instance.block == block
        )

    def blocks(self) -> Tuple[str, ...]:
        """Names of all blocks referenced by at least one instance."""
        names = sorted(
            {
                instance.block
                for instance in self._instances.values()
                if instance.block is not None
            }
        )
        return tuple(names)


def chain_of_inverters(
    technology, depth: int, name: str = "inv_chain"
) -> Netlist:
    """Build a simple inverter chain netlist (useful for tests and examples)."""
    from .cells import inverter

    if depth < 1:
        raise ValueError("depth must be at least 1")
    netlist = Netlist(name, primary_inputs=("IN",))
    previous = "IN"
    for index in range(depth):
        out = f"N{index + 1}"
        netlist.add_instance(
            f"U{index + 1}",
            inverter(technology),
            {"A": previous, "Z": out},
        )
        previous = out
    return netlist
