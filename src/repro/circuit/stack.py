"""Transistor stacks: chains of series-connected devices.

The paper's central leakage construct is the *OFF chain* — a set of series-
connected transistors between two rails with at least one device in the OFF
state (Section 2.1).  :class:`TransistorStack` is the explicit representation
of such a chain: transistor ``T1`` is closest to the source rail (ground for
an NMOS stack, VDD for a PMOS stack) and ``TN`` connects to the opposite
rail, exactly as in the paper's Fig. 2.

Stacks are used directly by the Fig. 3 / Fig. 8 experiments and are the unit
the gate-level topology extraction (:mod:`repro.circuit.topology`) produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from .devices import MOSFET, nmos, pmos


@dataclass(frozen=True)
class StackInput:
    """Logic value applied to the gate of one stack transistor."""

    transistor: MOSFET
    logic_value: int

    def __post_init__(self) -> None:
        if self.logic_value not in (0, 1):
            raise ValueError("logic value must be 0 or 1")

    @property
    def is_off(self) -> bool:
        """True when the transistor is OFF for this input value."""
        return self.transistor.is_off(self.logic_value)


class TransistorStack:
    """A chain of N series-connected transistors of one polarity.

    Parameters
    ----------
    transistors:
        Devices ordered from the source rail upwards: ``transistors[0]`` is
        ``T1`` (source terminal tied to the rail: ground for NMOS, VDD for
        PMOS) and ``transistors[-1]`` is ``TN`` (drain tied to the opposite
        rail).
    """

    def __init__(self, transistors: Sequence[MOSFET]) -> None:
        devices = list(transistors)
        if not devices:
            raise ValueError("a stack needs at least one transistor")
        first_type = devices[0].device_type
        if any(d.device_type != first_type for d in devices):
            raise ValueError("all transistors in a stack must share a polarity")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ValueError("transistor names within a stack must be unique")
        self._devices: Tuple[MOSFET, ...] = tuple(devices)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def devices(self) -> Tuple[MOSFET, ...]:
        """Transistors ordered from the source rail (T1) upwards (TN)."""
        return self._devices

    @property
    def device_type(self) -> str:
        """Polarity of the stack (``"nmos"`` or ``"pmos"``)."""
        return self._devices[0].device_type

    @property
    def is_nmos(self) -> bool:
        """True for an NMOS (pull-down) stack."""
        return self._devices[0].is_nmos

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self):
        return iter(self._devices)

    def __getitem__(self, index: int) -> MOSFET:
        return self._devices[index]

    @property
    def widths(self) -> Tuple[float, ...]:
        """Channel widths [m] ordered from T1 to TN."""
        return tuple(d.width for d in self._devices)

    @property
    def internal_node_count(self) -> int:
        """Number of internal nodes V1 ... V(N-1) between series devices."""
        return len(self._devices) - 1

    def input_names(self) -> Tuple[str, ...]:
        """Gate input names ordered from T1 to TN."""
        return tuple(d.gate_input for d in self._devices)

    # ------------------------------------------------------------------ #
    # Input-vector handling
    # ------------------------------------------------------------------ #
    def apply_inputs(self, logic_values: Sequence[int]) -> Tuple[StackInput, ...]:
        """Pair each transistor with its gate logic value (T1 first)."""
        if len(logic_values) != len(self._devices):
            raise ValueError(
                f"expected {len(self._devices)} logic values, got {len(logic_values)}"
            )
        return tuple(
            StackInput(transistor=d, logic_value=int(v))
            for d, v in zip(self._devices, logic_values)
        )

    def off_devices(self, logic_values: Sequence[int]) -> Tuple[MOSFET, ...]:
        """The OFF transistors of the chain for a given input vector.

        Per the paper's collapsing technique, ON transistors are absorbed
        into the internal nodes of the chain and only the OFF transistors
        participate in the equivalent-width computation.  Order (T1 first)
        is preserved.
        """
        inputs = self.apply_inputs(logic_values)
        return tuple(i.transistor for i in inputs if i.is_off)

    def is_off_chain(self, logic_values: Sequence[int]) -> bool:
        """True when at least one transistor of the chain is OFF."""
        return len(self.off_devices(logic_values)) > 0

    def is_on_chain(self, logic_values: Sequence[int]) -> bool:
        """True when every transistor of the chain is ON."""
        return not self.is_off_chain(logic_values)

    def all_off_vector(self) -> Tuple[int, ...]:
        """Input vector that turns every transistor of the chain OFF."""
        value = 0 if self.is_nmos else 1
        return tuple(value for _ in self._devices)

    def all_on_vector(self) -> Tuple[int, ...]:
        """Input vector that turns every transistor of the chain ON."""
        value = 1 if self.is_nmos else 0
        return tuple(value for _ in self._devices)

    def subchain(self, indices: Iterable[int]) -> "TransistorStack":
        """Stack formed by a subset of devices (order preserved)."""
        picked = [self._devices[i] for i in sorted(set(indices))]
        return TransistorStack(picked)

    def __repr__(self) -> str:
        widths_um = ", ".join(f"{w * 1e6:.3g}" for w in self.widths)
        return (
            f"TransistorStack({self.device_type}, N={len(self)}, "
            f"W(um)=[{widths_um}])"
        )


def uniform_nmos_stack(
    depth: int,
    width: float,
    length: Optional[float] = None,
    name_prefix: str = "MN",
) -> TransistorStack:
    """NMOS stack of ``depth`` identical transistors (Fig. 8 workloads)."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    devices = [
        nmos(f"{name_prefix}{i + 1}", width, gate_input=f"IN{i + 1}", length=length)
        for i in range(depth)
    ]
    return TransistorStack(devices)


def uniform_pmos_stack(
    depth: int,
    width: float,
    length: Optional[float] = None,
    name_prefix: str = "MP",
) -> TransistorStack:
    """PMOS stack of ``depth`` identical transistors."""
    if depth < 1:
        raise ValueError("depth must be at least 1")
    devices = [
        pmos(f"{name_prefix}{i + 1}", width, gate_input=f"IN{i + 1}", length=length)
        for i in range(depth)
    ]
    return TransistorStack(devices)


def nmos_stack_from_widths(
    widths: Sequence[float],
    length: Optional[float] = None,
    name_prefix: str = "MN",
) -> TransistorStack:
    """NMOS stack with per-device widths (T1 first)."""
    if not widths:
        raise ValueError("at least one width is required")
    devices = [
        nmos(f"{name_prefix}{i + 1}", w, gate_input=f"IN{i + 1}", length=length)
        for i, w in enumerate(widths)
    ]
    return TransistorStack(devices)


def pmos_stack_from_widths(
    widths: Sequence[float],
    length: Optional[float] = None,
    name_prefix: str = "MP",
) -> TransistorStack:
    """PMOS stack with per-device widths (T1 first)."""
    if not widths:
        raise ValueError("at least one width is required")
    devices = [
        pmos(f"{name_prefix}{i + 1}", w, gate_input=f"IN{i + 1}", length=length)
        for i, w in enumerate(widths)
    ]
    return TransistorStack(devices)
