"""Static CMOS standard cells built from series/parallel networks.

A :class:`LogicGate` couples a pull-up (PMOS) and a pull-down (NMOS) network
that share the gate's output node.  The cell constructors below build the
classic static CMOS library (inverter, NAND, NOR, AOI/OAI complex gates)
with widths derived from a technology's nominal device sizes and standard
series up-sizing rules, so that the leakage experiments operate on realistic
cell geometries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..technology.parameters import TechnologyParameters
from .devices import MOSFET, nmos, pmos
from .topology import (
    DeviceLeaf,
    Network,
    ParallelNetwork,
    SeriesNetwork,
    parallel_of_devices,
    series_of_devices,
)


@dataclass(frozen=True)
class LogicGate:
    """A static CMOS gate: complementary pull-up and pull-down networks.

    Attributes
    ----------
    name:
        Cell name, e.g. ``"NAND2"``.
    inputs:
        Ordered tuple of input names.
    pull_up:
        PMOS network between the output and VDD.
    pull_down:
        NMOS network between the output and ground.
    output_name:
        Name of the output net.
    """

    name: str
    inputs: Tuple[str, ...]
    pull_up: Network
    pull_down: Network
    output_name: str = "Z"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.inputs:
            raise ValueError("a gate needs at least one input")
        if self.pull_up.device_type() != "pmos":
            raise ValueError("pull-up network must be built from PMOS devices")
        if self.pull_down.device_type() != "nmos":
            raise ValueError("pull-down network must be built from NMOS devices")
        missing_up = set(self.pull_up.input_names()) - set(self.inputs)
        missing_down = set(self.pull_down.input_names()) - set(self.inputs)
        if missing_up or missing_down:
            raise ValueError(
                f"networks reference inputs not declared by the gate: "
                f"{sorted(missing_up | missing_down)}"
            )

    # ------------------------------------------------------------------ #
    # Logic behaviour
    # ------------------------------------------------------------------ #
    def _check_vector(self, inputs: Dict[str, int]) -> Dict[str, int]:
        vector = {}
        for name in self.inputs:
            if name not in inputs:
                raise KeyError(f"input vector is missing {name!r}")
            value = int(inputs[name])
            if value not in (0, 1):
                raise ValueError("logic values must be 0 or 1")
            vector[name] = value
        return vector

    def evaluate(self, inputs: Dict[str, int]) -> int:
        """Logic value of the output for a full input vector.

        The gate must be complementary: exactly one of the two networks
        conducts for every input vector.  Non-complementary states raise.
        """
        vector = self._check_vector(inputs)
        up = self.pull_up.conducts(vector)
        down = self.pull_down.conducts(vector)
        if up and down:
            raise ValueError(
                f"{self.name}: both networks conduct for {vector} (crowbar state)"
            )
        if not up and not down:
            raise ValueError(
                f"{self.name}: neither network conducts for {vector} "
                f"(floating output)"
            )
        return 1 if up else 0

    def truth_table(self) -> Dict[Tuple[int, ...], int]:
        """Full truth table keyed by input tuples in declared input order."""
        from .vectors import enumerate_vectors

        table: Dict[Tuple[int, ...], int] = {}
        for vector in enumerate_vectors(self.inputs):
            key = tuple(vector[name] for name in self.inputs)
            table[key] = self.evaluate(vector)
        return table

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def devices(self) -> Tuple[MOSFET, ...]:
        """Every transistor of the cell (pull-up first)."""
        return self.pull_up.devices() + self.pull_down.devices()

    def device_count(self) -> int:
        """Total transistor count of the cell."""
        return len(self.devices())

    def total_width(self) -> float:
        """Sum of all channel widths [m] (a proxy for cell area / leakage)."""
        return sum(d.width for d in self.devices())

    def leakage_network(self, inputs: Dict[str, int]) -> Network:
        """The non-conducting network that carries the gate's leakage.

        For a complementary gate exactly one network conducts; subthreshold
        current from VDD to ground flows through the *other* network, which
        is what the paper's collapsing technique analyses.
        """
        vector = self._check_vector(inputs)
        if self.pull_up.conducts(vector):
            return self.pull_down
        return self.pull_up

    def output_capacitance(
        self,
        technology: TechnologyParameters,
        external_load: float = 0.0,
        drain_capacitance_factor: float = 0.6,
    ) -> float:
        """Estimate of the capacitance [F] loading the gate output.

        The self-load is the drain diffusion of every device connected to the
        output, approximated as a fraction of the gate capacitance of the
        same width; ``external_load`` adds wire plus fanout capacitance.
        """
        if external_load < 0.0:
            raise ValueError("external_load must be non-negative")
        self_load = sum(
            drain_capacitance_factor
            * technology.gate_input_capacitance(d.width)
            for d in self.devices()
        )
        return self_load + external_load

    def input_capacitance(
        self, technology: TechnologyParameters, input_name: str
    ) -> float:
        """Gate capacitance [F] presented by one of the cell's inputs."""
        if input_name not in self.inputs:
            raise KeyError(f"{self.name} has no input {input_name!r}")
        width = sum(
            d.width for d in self.devices() if d.gate_input == input_name
        )
        if width == 0.0:
            raise ValueError(f"input {input_name!r} drives no device")
        return technology.gate_input_capacitance(width)


# ---------------------------------------------------------------------- #
# Sizing helpers
# ---------------------------------------------------------------------- #
def _nominal_widths(
    technology: TechnologyParameters,
    size: float,
) -> Tuple[float, float]:
    """Nominal (NMOS, PMOS) widths scaled by a drive-strength multiplier."""
    if size <= 0.0:
        raise ValueError("size must be positive")
    return (
        technology.nmos.nominal_width * size,
        technology.pmos.nominal_width * size,
    )


# ---------------------------------------------------------------------- #
# Standard-cell constructors
# ---------------------------------------------------------------------- #
def inverter(
    technology: TechnologyParameters,
    size: float = 1.0,
    input_name: str = "A",
    name: str = "INV",
) -> LogicGate:
    """Static CMOS inverter."""
    wn, wp = _nominal_widths(technology, size)
    return LogicGate(
        name=name,
        inputs=(input_name,),
        pull_up=DeviceLeaf(pmos("MP1", wp, gate_input=input_name)),
        pull_down=DeviceLeaf(nmos("MN1", wn, gate_input=input_name)),
    )


def nand_gate(
    technology: TechnologyParameters,
    fan_in: int = 2,
    size: float = 1.0,
    input_names: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> LogicGate:
    """N-input static CMOS NAND: series NMOS pull-down, parallel PMOS pull-up.

    Series NMOS devices are up-sized by the fan-in so the worst-case pull-down
    resistance matches the reference inverter, the standard sizing rule.
    """
    if fan_in < 1:
        raise ValueError("fan_in must be at least 1")
    names = list(input_names) if input_names else [
        chr(ord("A") + i) for i in range(fan_in)
    ]
    if len(names) != fan_in:
        raise ValueError("input_names length must equal fan_in")
    wn, wp = _nominal_widths(technology, size)
    # Pull-down: series chain, input closest to ground first (T1).
    nmos_devices = [
        nmos(f"MN{i + 1}", wn * fan_in, gate_input=names[i]) for i in range(fan_in)
    ]
    pmos_devices = [
        pmos(f"MP{i + 1}", wp, gate_input=names[i]) for i in range(fan_in)
    ]
    return LogicGate(
        name=name or f"NAND{fan_in}",
        inputs=tuple(names),
        pull_up=parallel_of_devices(pmos_devices),
        pull_down=series_of_devices(nmos_devices),
    )


def nor_gate(
    technology: TechnologyParameters,
    fan_in: int = 2,
    size: float = 1.0,
    input_names: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> LogicGate:
    """N-input static CMOS NOR: parallel NMOS pull-down, series PMOS pull-up."""
    if fan_in < 1:
        raise ValueError("fan_in must be at least 1")
    names = list(input_names) if input_names else [
        chr(ord("A") + i) for i in range(fan_in)
    ]
    if len(names) != fan_in:
        raise ValueError("input_names length must equal fan_in")
    wn, wp = _nominal_widths(technology, size)
    nmos_devices = [
        nmos(f"MN{i + 1}", wn, gate_input=names[i]) for i in range(fan_in)
    ]
    pmos_devices = [
        pmos(f"MP{i + 1}", wp * fan_in, gate_input=names[i]) for i in range(fan_in)
    ]
    return LogicGate(
        name=name or f"NOR{fan_in}",
        inputs=tuple(names),
        pull_up=series_of_devices(pmos_devices),
        pull_down=parallel_of_devices(nmos_devices),
    )


def aoi21(
    technology: TechnologyParameters,
    size: float = 1.0,
    input_names: Sequence[str] = ("A", "B", "C"),
    name: str = "AOI21",
) -> LogicGate:
    """AND-OR-INVERT gate: ``Z = not(A*B + C)``."""
    a, b, c = input_names
    wn, wp = _nominal_widths(technology, size)
    # Pull-down: (A series B) parallel C; series devices doubled in width.
    pull_down = ParallelNetwork(
        [
            series_of_devices(
                [nmos("MN1", 2 * wn, gate_input=a), nmos("MN2", 2 * wn, gate_input=b)]
            ),
            DeviceLeaf(nmos("MN3", wn, gate_input=c)),
        ]
    )
    # Pull-up: (A parallel B) series C; series devices doubled in width.
    pull_up = SeriesNetwork(
        [
            DeviceLeaf(pmos("MP3", 2 * wp, gate_input=c)),
            parallel_of_devices(
                [pmos("MP1", 2 * wp, gate_input=a), pmos("MP2", 2 * wp, gate_input=b)]
            ),
        ]
    )
    return LogicGate(
        name=name, inputs=tuple(input_names), pull_up=pull_up, pull_down=pull_down,
    )


def aoi22(
    technology: TechnologyParameters,
    size: float = 1.0,
    input_names: Sequence[str] = ("A", "B", "C", "D"),
    name: str = "AOI22",
) -> LogicGate:
    """AND-OR-INVERT gate: ``Z = not(A*B + C*D)``."""
    a, b, c, d = input_names
    wn, wp = _nominal_widths(technology, size)
    pull_down = ParallelNetwork(
        [
            series_of_devices(
                [nmos("MN1", 2 * wn, gate_input=a), nmos("MN2", 2 * wn, gate_input=b)]
            ),
            series_of_devices(
                [nmos("MN3", 2 * wn, gate_input=c), nmos("MN4", 2 * wn, gate_input=d)]
            ),
        ]
    )
    pull_up = SeriesNetwork(
        [
            parallel_of_devices(
                [pmos("MP1", 2 * wp, gate_input=a), pmos("MP2", 2 * wp, gate_input=b)]
            ),
            parallel_of_devices(
                [pmos("MP3", 2 * wp, gate_input=c), pmos("MP4", 2 * wp, gate_input=d)]
            ),
        ]
    )
    return LogicGate(
        name=name, inputs=tuple(input_names), pull_up=pull_up, pull_down=pull_down,
    )


def oai21(
    technology: TechnologyParameters,
    size: float = 1.0,
    input_names: Sequence[str] = ("A", "B", "C"),
    name: str = "OAI21",
) -> LogicGate:
    """OR-AND-INVERT gate: ``Z = not((A + B) * C)``."""
    a, b, c = input_names
    wn, wp = _nominal_widths(technology, size)
    pull_down = SeriesNetwork(
        [
            DeviceLeaf(nmos("MN3", 2 * wn, gate_input=c)),
            parallel_of_devices(
                [nmos("MN1", 2 * wn, gate_input=a), nmos("MN2", 2 * wn, gate_input=b)]
            ),
        ]
    )
    pull_up = ParallelNetwork(
        [
            series_of_devices(
                [pmos("MP1", 2 * wp, gate_input=a), pmos("MP2", 2 * wp, gate_input=b)]
            ),
            DeviceLeaf(pmos("MP3", wp, gate_input=c)),
        ]
    )
    return LogicGate(
        name=name, inputs=tuple(input_names), pull_up=pull_up, pull_down=pull_down,
    )


#: Constructors of the default standard-cell library keyed by cell name.
STANDARD_CELLS = {
    "INV": inverter,
    "NAND2": lambda tech, size=1.0: nand_gate(tech, 2, size),
    "NAND3": lambda tech, size=1.0: nand_gate(tech, 3, size),
    "NAND4": lambda tech, size=1.0: nand_gate(tech, 4, size),
    "NOR2": lambda tech, size=1.0: nor_gate(tech, 2, size),
    "NOR3": lambda tech, size=1.0: nor_gate(tech, 3, size),
    "NOR4": lambda tech, size=1.0: nor_gate(tech, 4, size),
    "AOI21": aoi21,
    "AOI22": aoi22,
    "OAI21": oai21,
}


def standard_cell(
    name: str, technology: TechnologyParameters, size: float = 1.0
) -> LogicGate:
    """Instantiate a standard cell from the built-in library by name."""
    key = name.strip().upper()
    if key not in STANDARD_CELLS:
        known = ", ".join(sorted(STANDARD_CELLS))
        raise KeyError(f"unknown cell {name!r}; known cells: {known}")
    return STANDARD_CELLS[key](technology, size)


def standard_cell_names() -> Tuple[str, ...]:
    """Names of all cells in the built-in library."""
    return tuple(sorted(STANDARD_CELLS))
