"""Series/parallel transistor network topologies and OFF-chain extraction.

Static CMOS gates are built from a pull-up network (PMOS devices between the
output and VDD) and a pull-down network (NMOS devices between the output and
ground), each of which is a series/parallel composition of transistors.

For the paper's leakage analysis (Section 2.1) the relevant structural
operation is: given an input vector,

1. enumerate every *chain* (root-to-rail path of series devices) of the
   network,
2. classify each chain as ON (every device ON) or OFF (at least one device
   OFF),
3. discard OFF chains that are in parallel with an ON chain (the ON chain
   clamps both ends of the OFF chain to the same rail, so it carries no
   subthreshold current from supply to ground),
4. hand the remaining OFF chains to the collapsing procedure; parallel OFF
   chains simply add their collapsed effective widths.

This module implements the series/parallel composition
(:class:`SeriesNetwork`, :class:`ParallelNetwork`, :class:`DeviceLeaf`),
conduction analysis and chain extraction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .devices import MOSFET
from .stack import TransistorStack


class Network(ABC):
    """Abstract series/parallel transistor network."""

    @abstractmethod
    def devices(self) -> Tuple[MOSFET, ...]:
        """Every device in the network (document order, duplicates removed)."""

    @abstractmethod
    def conducts(self, inputs: Dict[str, int]) -> bool:
        """True when the network forms a strong-inversion conducting path."""

    @abstractmethod
    def chains(self) -> Tuple[Tuple[MOSFET, ...], ...]:
        """Every root-to-rail series chain of the network."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def device_type(self) -> str:
        """Polarity of the network's devices (must be homogeneous)."""
        devices = self.devices()
        if not devices:
            raise ValueError("empty network has no device type")
        first = devices[0].device_type
        if any(d.device_type != first for d in devices):
            raise ValueError("network mixes NMOS and PMOS devices")
        return first

    def input_names(self) -> Tuple[str, ...]:
        """Sorted unique gate input names used by the network."""
        return tuple(sorted({d.gate_input for d in self.devices()}))

    def _logic_value(self, device: MOSFET, inputs: Dict[str, int]) -> int:
        if device.gate_input not in inputs:
            raise KeyError(
                f"input vector is missing a value for {device.gate_input!r}"
            )
        value = inputs[device.gate_input]
        if value not in (0, 1):
            raise ValueError("logic values must be 0 or 1")
        return value

    def off_chains(self, inputs: Dict[str, int]) -> Tuple[TransistorStack, ...]:
        """OFF chains relevant for leakage under the given input vector.

        Implements steps 1–3 of the module docstring.  Each returned stack
        contains *only the OFF devices* of its chain, ordered from the rail
        end (T1) upwards, because the collapsing procedure treats ON devices
        as part of the chain's internal nodes.
        """
        relevant: List[TransistorStack] = []
        for chain in self.chains():
            logic = [self._logic_value(d, inputs) for d in chain]
            off_devices = [d for d, v in zip(chain, logic) if d.is_off(v)]
            if not off_devices:
                # An ON chain: clamps the output to the rail.  It contributes
                # no leakage itself and (because the whole network then
                # conducts) suppresses its parallel OFF chains too -- which is
                # handled by the caller checking `conducts()` first.
                continue
            relevant.append(TransistorStack(off_devices))
        if self.conducts(inputs):
            # Paper rule: an OFF chain in parallel with an ON chain is
            # discarded.  When the *whole* network conducts, every OFF chain
            # is in parallel with some conducting path between the same two
            # rails, so none of them carries rail-to-rail leakage.
            return tuple()
        return tuple(relevant)


@dataclass(frozen=True)
class DeviceLeaf(Network):
    """A single transistor as a degenerate network."""

    device: MOSFET

    def devices(self) -> Tuple[MOSFET, ...]:
        return (self.device,)

    def conducts(self, inputs: Dict[str, int]) -> bool:
        return self.device.is_on(self._logic_value(self.device, inputs))

    def chains(self) -> Tuple[Tuple[MOSFET, ...], ...]:
        return ((self.device,),)


class SeriesNetwork(Network):
    """Series composition: children connected drain-to-source in a chain.

    The first child is the one whose free terminal ties to the rail (ground
    for NMOS, VDD for PMOS), matching the stack ordering convention.
    """

    def __init__(self, children: Sequence[Network]) -> None:
        kids = list(children)
        if not kids:
            raise ValueError("a series network needs at least one child")
        self._children: Tuple[Network, ...] = tuple(kids)
        self.device_type()  # validates homogeneity

    @property
    def children(self) -> Tuple[Network, ...]:
        return self._children

    def devices(self) -> Tuple[MOSFET, ...]:
        collected: List[MOSFET] = []
        for child in self._children:
            collected.extend(child.devices())
        return tuple(collected)

    def conducts(self, inputs: Dict[str, int]) -> bool:
        return all(child.conducts(inputs) for child in self._children)

    def chains(self) -> Tuple[Tuple[MOSFET, ...], ...]:
        partial: List[Tuple[MOSFET, ...]] = [()]
        for child in self._children:
            extended: List[Tuple[MOSFET, ...]] = []
            for prefix in partial:
                for chain in child.chains():
                    extended.append(prefix + chain)
            partial = extended
        return tuple(partial)


class ParallelNetwork(Network):
    """Parallel composition: children share both end terminals."""

    def __init__(self, children: Sequence[Network]) -> None:
        kids = list(children)
        if not kids:
            raise ValueError("a parallel network needs at least one child")
        self._children: Tuple[Network, ...] = tuple(kids)
        self.device_type()  # validates homogeneity

    @property
    def children(self) -> Tuple[Network, ...]:
        return self._children

    def devices(self) -> Tuple[MOSFET, ...]:
        collected: List[MOSFET] = []
        for child in self._children:
            collected.extend(child.devices())
        return tuple(collected)

    def conducts(self, inputs: Dict[str, int]) -> bool:
        return any(child.conducts(inputs) for child in self._children)

    def chains(self) -> Tuple[Tuple[MOSFET, ...], ...]:
        collected: List[Tuple[MOSFET, ...]] = []
        for child in self._children:
            collected.extend(child.chains())
        return tuple(collected)


def series(*children: Network) -> SeriesNetwork:
    """Convenience constructor for a series composition."""
    return SeriesNetwork(children)


def parallel(*children: Network) -> ParallelNetwork:
    """Convenience constructor for a parallel composition."""
    return ParallelNetwork(children)


def leaf(device: MOSFET) -> DeviceLeaf:
    """Convenience constructor wrapping a device into a network leaf."""
    return DeviceLeaf(device)


def series_of_devices(devices: Sequence[MOSFET]) -> SeriesNetwork:
    """Series network built directly from an ordered device list."""
    return SeriesNetwork([DeviceLeaf(d) for d in devices])


def parallel_of_devices(devices: Sequence[MOSFET]) -> ParallelNetwork:
    """Parallel network built directly from a device list."""
    return ParallelNetwork([DeviceLeaf(d) for d in devices])


def network_from_stack(stack: TransistorStack) -> SeriesNetwork:
    """Wrap an explicit :class:`TransistorStack` as a series network."""
    return series_of_devices(list(stack.devices))
