"""Circuit substrate: devices, stacks, cells, netlists and input vectors.

The leakage models of :mod:`repro.core.leakage` and the numerical reference
solvers of :mod:`repro.spice` both operate on the structures defined here:
MOSFET instances, series-connected transistor stacks, series/parallel pull
networks, static CMOS standard cells and gate-level netlists.
"""

from .cells import (
    LogicGate,
    STANDARD_CELLS,
    aoi21,
    aoi22,
    inverter,
    nand_gate,
    nor_gate,
    oai21,
    standard_cell,
    standard_cell_names,
)
from .devices import MOSFET, BiasedDevice, auto_name, nmos, pmos
from .netlist import GateInstance, Netlist, chain_of_inverters
from .stack import (
    StackInput,
    TransistorStack,
    nmos_stack_from_widths,
    pmos_stack_from_widths,
    uniform_nmos_stack,
    uniform_pmos_stack,
)
from .topology import (
    DeviceLeaf,
    Network,
    ParallelNetwork,
    SeriesNetwork,
    leaf,
    network_from_stack,
    parallel,
    parallel_of_devices,
    series,
    series_of_devices,
)
from .vectors import (
    VectorDistribution,
    enumerate_vectors,
    vector_from_bits,
    vector_label,
    vector_to_bits,
)

__all__ = [
    "MOSFET",
    "BiasedDevice",
    "auto_name",
    "nmos",
    "pmos",
    "StackInput",
    "TransistorStack",
    "uniform_nmos_stack",
    "uniform_pmos_stack",
    "nmos_stack_from_widths",
    "pmos_stack_from_widths",
    "Network",
    "DeviceLeaf",
    "SeriesNetwork",
    "ParallelNetwork",
    "series",
    "parallel",
    "leaf",
    "series_of_devices",
    "parallel_of_devices",
    "network_from_stack",
    "LogicGate",
    "STANDARD_CELLS",
    "inverter",
    "nand_gate",
    "nor_gate",
    "aoi21",
    "aoi22",
    "oai21",
    "standard_cell",
    "standard_cell_names",
    "GateInstance",
    "Netlist",
    "chain_of_inverters",
    "VectorDistribution",
    "enumerate_vectors",
    "vector_from_bits",
    "vector_to_bits",
    "vector_label",
]
