"""Figure-series containers.

Every paper figure the benchmarks regenerate boils down to a handful of
labelled (x, y) series.  :class:`Series` and :class:`FigureData` hold them in
a uniform shape, so benchmarks can both print them (through
:mod:`repro.reporting.tables`) and assert on their qualitative properties
(who is larger, where curves cross, monotonicity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .tables import format_table


@dataclass(frozen=True)
class Series:
    """One labelled data series.

    Attributes
    ----------
    label:
        Series name (legend entry).
    x:
        Independent-variable samples.
    y:
        Dependent-variable samples (same length as ``x``).
    x_label, y_label:
        Axis descriptions (units included).
    """

    label: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("x and y must have the same length")
        if not self.x:
            raise ValueError("a series needs at least one point")

    @classmethod
    def from_arrays(
        cls,
        label: str,
        x: Sequence[float],
        y: Sequence[float],
        x_label: str = "x",
        y_label: str = "y",
    ) -> "Series":
        """Build a series from any two equal-length sequences."""
        return cls(
            label=label,
            x=tuple(float(v) for v in x),
            y=tuple(float(v) for v in y),
            x_label=x_label,
            y_label=y_label,
        )

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The series as numpy arrays."""
        return np.asarray(self.x), np.asarray(self.y)

    def value_at(self, x: float) -> float:
        """Linear interpolation of the series at ``x``."""
        xs, ys = self.as_arrays()
        return float(np.interp(x, xs, ys))

    @property
    def peak(self) -> float:
        """Maximum y value."""
        return max(self.y)

    def is_monotonic_increasing(self) -> bool:
        """True when y never decreases along the series."""
        return all(b >= a for a, b in zip(self.y, self.y[1:]))

    def is_monotonic_decreasing(self) -> bool:
        """True when y never increases along the series."""
        return all(b <= a for a, b in zip(self.y, self.y[1:]))


@dataclass
class FigureData:
    """All series of one regenerated paper figure.

    Attributes
    ----------
    figure_id:
        Paper figure identifier (e.g. ``"fig5"``).
    title:
        Human-readable description.
    series:
        The labelled series, keyed by label.
    notes:
        Free-form notes recorded alongside the data (e.g. error metrics).
    """

    figure_id: str
    title: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add(self, series: Series) -> None:
        """Add one series (labels must be unique within a figure)."""
        if series.label in self.series:
            raise ValueError(f"duplicate series label {series.label!r}")
        self.series[series.label] = series

    def add_note(self, note: str) -> None:
        """Attach a free-form note (printed with the figure table)."""
        self.notes.append(note)

    def get(self, label: str) -> Series:
        """Look up a series by label."""
        if label not in self.series:
            known = ", ".join(sorted(self.series))
            raise KeyError(f"unknown series {label!r}; known series: {known}")
        return self.series[label]

    def labels(self) -> Tuple[str, ...]:
        """All series labels in insertion order."""
        return tuple(self.series)

    def to_table(self, precision: int = 4) -> str:
        """Render the figure's series as one aligned table.

        Series are aligned on the x values of the first series; series with
        different x grids are interpolated onto it.
        """
        if not self.series:
            raise ValueError("the figure has no series")
        labels = list(self.series)
        reference = self.series[labels[0]]
        headers = [reference.x_label] + [
            f"{label} [{self.series[label].y_label}]" for label in labels
        ]
        rows = []
        for x in reference.x:
            row = [x] + [self.series[label].value_at(x) for label in labels]
            rows.append(row)
        table = format_table(
            headers, rows, title=f"{self.figure_id}: {self.title}", precision=precision
        )
        if self.notes:
            table += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return table

    def print(self, precision: int = 4) -> str:
        """Print and return the figure table."""
        text = self.to_table(precision)
        print()
        print(text)
        return text
