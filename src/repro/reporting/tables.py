"""Plain-text table formatting for benchmark output.

The benchmark harness prints the rows/series each paper figure reports;
these helpers format them as aligned ASCII tables so the comparison reads
directly in the pytest / benchmark logs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_value(value, precision: int = 4) -> str:
    """Human-readable formatting: engineering-style floats, plain ints/strings."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if 1e-3 <= magnitude < 1e5:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}e}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Format headers plus rows as an aligned ASCII table."""
    header_list = [str(h) for h in headers]
    if not header_list:
        raise ValueError("at least one column header is required")
    formatted_rows: List[List[str]] = []
    for row in rows:
        cells = [format_value(cell, precision) for cell in row]
        if len(cells) != len(header_list):
            raise ValueError(
                f"row has {len(cells)} cells but the table has "
                f"{len(header_list)} columns"
            )
        formatted_rows.append(cells)

    widths = [len(h) for h in header_list]
    for cells in formatted_rows:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def format_line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_line(header_list))
    lines.append(separator)
    lines.extend(format_line(cells) for cells in formatted_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Format and print a table; returns the formatted string."""
    text = format_table(headers, rows, title=title, precision=precision)
    print()
    print(text)
    return text
