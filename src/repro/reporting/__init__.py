"""Reporting helpers: ASCII tables and figure-series containers."""

from .series import FigureData, Series
from .tables import format_table, format_value, print_table

__all__ = [
    "format_value",
    "format_table",
    "print_table",
    "Series",
    "FigureData",
]
