"""Die floorplans: a set of named blocks on a rectangular die.

The floorplan is the structural object shared by the thermal model (blocks
are heat sources), the leakage model (instances are assigned to blocks) and
the electro-thermal engine (power and temperature are exchanged per block).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.thermal.images import DieGeometry
from ..core.thermal.sources import HeatSource
from .block import Block, BlockLike, as_block


class Floorplan:
    """A rectangular die populated with named blocks.

    Parameters
    ----------
    die:
        Die geometry (width, length, thickness).
    name:
        Optional design name.
    allow_overlaps:
        When False (default) adding a block that overlaps an existing one
        raises; set True for abstract power-density studies.
    """

    def __init__(
        self,
        die: DieGeometry,
        name: str = "floorplan",
        allow_overlaps: bool = False,
    ) -> None:
        self.die = die
        self.name = name
        self.allow_overlaps = allow_overlaps
        self._blocks: Dict[str, Block] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_block(self, block: BlockLike) -> Block:
        """Add a block; it must fit on the die and not collide with others.

        Besides :class:`Block` instances, plain mappings and
        ``(name, x, y, width, length)`` tuples are accepted (see
        :func:`~repro.floorplan.block.as_block`), so declarative callers can
        hand block descriptions straight through.
        """
        block = as_block(block)
        if block.name in self._blocks:
            raise ValueError(f"duplicate block name {block.name!r}")
        if (
            block.x_min < -1e-12
            or block.y_min < -1e-12
            or block.x_max > self.die.width + 1e-12
            or block.y_max > self.die.length + 1e-12
        ):
            raise ValueError(f"block {block.name!r} does not fit on the die")
        if not self.allow_overlaps:
            for existing in self._blocks.values():
                if block.overlaps(existing):
                    raise ValueError(f"block {block.name!r} overlaps {existing.name!r}")
        self._blocks[block.name] = block
        return block

    def add_blocks(self, blocks: Iterable[BlockLike]) -> None:
        """Add several blocks (each coerced as in :meth:`add_block`)."""
        for block in blocks:
            self.add_block(block)

    @classmethod
    def from_blocks(
        cls,
        die: DieGeometry,
        blocks: Iterable[BlockLike],
        name: str = "floorplan",
        allow_overlaps: bool = False,
    ) -> "Floorplan":
        """Build a populated floorplan in one call (the spec-layer hook)."""
        plan = cls(die, name=name, allow_overlaps=allow_overlaps)
        plan.add_blocks(blocks)
        return plan

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def blocks(self) -> Tuple[Block, ...]:
        """All blocks in insertion order."""
        return tuple(self._blocks.values())

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        if name not in self._blocks:
            raise KeyError(f"no block named {name!r}")
        return self._blocks[name]

    def block_names(self) -> Tuple[str, ...]:
        """Names of all blocks in insertion order."""
        return tuple(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    @property
    def total_block_area(self) -> float:
        """Combined block footprint [m^2]."""
        return sum(block.area for block in self._blocks.values())

    @property
    def utilization(self) -> float:
        """Fraction of the die area covered by blocks."""
        return self.total_block_area / (self.die.width * self.die.length)

    def block_at(self, x: float, y: float) -> Optional[Block]:
        """The block containing the point, or ``None`` (first match wins)."""
        for block in self._blocks.values():
            if block.contains(x, y):
                return block
        return None

    # ------------------------------------------------------------------ #
    # Thermal coupling
    # ------------------------------------------------------------------ #
    def to_heat_sources(self, block_powers: Mapping[str, float]) -> List[HeatSource]:
        """Heat sources for the given per-block powers [W].

        Blocks without an entry dissipate zero power and are omitted.
        Unknown block names in ``block_powers`` raise, to catch typos early.
        """
        unknown = set(block_powers) - set(self._blocks)
        if unknown:
            raise KeyError(f"unknown blocks in power map: {sorted(unknown)}")
        sources = []
        for name, block in self._blocks.items():
            power = float(block_powers.get(name, 0.0))
            if power != 0.0:
                sources.append(block.to_heat_source(power))
        if not sources:
            raise ValueError("every block has zero power; nothing to simulate")
        return sources


def three_block_floorplan(
    die_width: float = 1.0e-3,
    die_length: float = 1.0e-3,
    die_thickness: float = 500.0e-6,
) -> Floorplan:
    """The paper's Fig. 6 scenario: three logic blocks on a 1 mm x 1 mm die.

    The paper does not tabulate the block coordinates; the layout below
    places one large block towards a corner and two smaller ones elsewhere,
    which reproduces the figure's qualitative structure (distinct hot spots,
    isotherms tangential to the die edges).
    """
    die = DieGeometry(width=die_width, length=die_length, thickness=die_thickness)
    plan = Floorplan(die, name="three_blocks")
    plan.add_block(
        Block(
            name="core",
            x=0.30 * die_width,
            y=0.62 * die_length,
            width=0.34 * die_width,
            length=0.30 * die_length,
        )
    )
    plan.add_block(
        Block(
            name="cache",
            x=0.72 * die_width,
            y=0.70 * die_length,
            width=0.26 * die_width,
            length=0.22 * die_length,
        )
    )
    plan.add_block(
        Block(
            name="io",
            x=0.55 * die_width,
            y=0.25 * die_length,
            width=0.30 * die_width,
            length=0.18 * die_length,
        )
    )
    return plan
