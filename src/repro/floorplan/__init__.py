"""Floorplan substrate: blocks, die floorplans and gridded power maps."""

from .block import Block, BlockLike, as_block
from .floorplan import Floorplan, three_block_floorplan
from .powermap import (
    PowerMap,
    fdm_sources_from_blocks,
    heat_sources_from_blocks,
    rasterize_block_powers,
)

__all__ = [
    "Block",
    "BlockLike",
    "as_block",
    "Floorplan",
    "three_block_floorplan",
    "PowerMap",
    "rasterize_block_powers",
    "heat_sources_from_blocks",
    "fdm_sources_from_blocks",
]
