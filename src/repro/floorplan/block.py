"""Floorplan blocks.

A block is a named rectangular region of the die that groups logic (and
therefore power).  Blocks are the granularity at which the electro-thermal
engine couples power and temperature, following the paper's "at a higher
level of abstraction an entire circuit block can be considered as a heat
source".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..core.thermal.sources import HeatSource


@dataclass(frozen=True)
class Block:
    """A rectangular floorplan block.

    Attributes
    ----------
    name:
        Unique block name.
    x, y:
        Centre coordinates [m] in die coordinates.
    width, length:
        Extents along x and y [m].
    gate_count:
        Number of gate instances assigned to the block (used for default
        power-density estimates when no netlist is attached).
    total_device_width:
        Total transistor width [m] inside the block (drives default leakage
        estimates at block granularity).
    metadata:
        Free-form annotations (e.g. activity, clock domain).
    """

    name: str
    x: float
    y: float
    width: float
    length: float
    gate_count: int = 0
    total_device_width: float = 0.0
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("block name must not be empty")
        if self.width <= 0.0 or self.length <= 0.0:
            raise ValueError("block dimensions must be positive")
        if self.gate_count < 0:
            raise ValueError("gate_count must be non-negative")
        if self.total_device_width < 0.0:
            raise ValueError("total_device_width must be non-negative")

    @property
    def area(self) -> float:
        """Block footprint [m^2]."""
        return self.width * self.length

    @property
    def x_min(self) -> float:
        return self.x - 0.5 * self.width

    @property
    def x_max(self) -> float:
        return self.x + 0.5 * self.width

    @property
    def y_min(self) -> float:
        return self.y - 0.5 * self.length

    @property
    def y_max(self) -> float:
        return self.y + 0.5 * self.length

    def contains(self, x: float, y: float) -> bool:
        """True when the point lies inside the block footprint."""
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    def overlaps(self, other: "Block") -> bool:
        """True when the two block footprints overlap with non-zero area."""
        return (
            self.x_min < other.x_max
            and other.x_min < self.x_max
            and self.y_min < other.y_max
            and other.y_min < self.y_max
        )

    def to_heat_source(self, power: float) -> HeatSource:
        """Heat source with this block's footprint dissipating ``power``."""
        return HeatSource(
            x=self.x,
            y=self.y,
            width=self.width,
            length=self.length,
            power=power,
            name=self.name,
        )

    def moved_to(self, x: float, y: float) -> "Block":
        """Copy of the block centred at a new position."""
        return replace(self, x=x, y=y)

    def resized(self, width: float, length: float) -> "Block":
        """Copy of the block with new dimensions."""
        return replace(self, width=width, length=length)
