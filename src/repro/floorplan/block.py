"""Floorplan blocks.

A block is a named rectangular region of the die that groups logic (and
therefore power).  Blocks are the granularity at which the electro-thermal
engine couples power and temperature, following the paper's "at a higher
level of abstraction an entire circuit block can be considered as a heat
source".
"""

from __future__ import annotations

from collections import abc
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Mapping, Sequence, Union

from ..core.thermal.sources import HeatSource


@dataclass(frozen=True)
class Block:
    """A rectangular floorplan block.

    Attributes
    ----------
    name:
        Unique block name.
    x, y:
        Centre coordinates [m] in die coordinates.
    width, length:
        Extents along x and y [m].
    gate_count:
        Number of gate instances assigned to the block (used for default
        power-density estimates when no netlist is attached).
    total_device_width:
        Total transistor width [m] inside the block (drives default leakage
        estimates at block granularity).
    metadata:
        Free-form annotations (e.g. activity, clock domain).
    """

    name: str
    x: float
    y: float
    width: float
    length: float
    gate_count: int = 0
    total_device_width: float = 0.0
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("block name must not be empty")
        if self.width <= 0.0 or self.length <= 0.0:
            raise ValueError("block dimensions must be positive")
        if self.gate_count < 0:
            raise ValueError("gate_count must be non-negative")
        if self.total_device_width < 0.0:
            raise ValueError("total_device_width must be non-negative")

    @property
    def area(self) -> float:
        """Block footprint [m^2]."""
        return self.width * self.length

    @property
    def x_min(self) -> float:
        return self.x - 0.5 * self.width

    @property
    def x_max(self) -> float:
        return self.x + 0.5 * self.width

    @property
    def y_min(self) -> float:
        return self.y - 0.5 * self.length

    @property
    def y_max(self) -> float:
        return self.y + 0.5 * self.length

    def contains(self, x: float, y: float) -> bool:
        """True when the point lies inside the block footprint."""
        return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max

    def overlaps(self, other: "Block") -> bool:
        """True when the two block footprints overlap with non-zero area."""
        return (
            self.x_min < other.x_max
            and other.x_min < self.x_max
            and self.y_min < other.y_max
            and other.y_min < self.y_max
        )

    def to_heat_source(self, power: float) -> HeatSource:
        """Heat source with this block's footprint dissipating ``power``."""
        return HeatSource(
            x=self.x,
            y=self.y,
            width=self.width,
            length=self.length,
            power=power,
            name=self.name,
        )

    def moved_to(self, x: float, y: float) -> "Block":
        """Copy of the block centred at a new position."""
        return replace(self, x=x, y=y)

    def resized(self, width: float, length: float) -> "Block":
        """Copy of the block with new dimensions."""
        return replace(self, width=width, length=length)

    @classmethod
    def from_mapping(cls, data: Mapping[str, object]) -> "Block":
        """Build a block from a plain mapping, validating field names.

        Declarative callers (the :mod:`repro.api` specs, JSON study files)
        describe blocks as dictionaries; this constructor reports missing,
        unknown or non-numeric entries as :class:`ValueError` naming the
        offending field instead of a bare ``KeyError``/``TypeError``.
        """
        known = {spec.name for spec in fields(cls)}
        required = ("name", "x", "y", "width", "length")
        missing = [name for name in required if name not in data]
        if missing:
            raise ValueError(
                f"block spec is missing required field(s): {', '.join(missing)}"
            )
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"block spec has unknown field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        values: Dict[str, object] = {"name": data["name"]}
        if not isinstance(values["name"], str):
            raise ValueError("block spec field 'name' must be a string")
        for key in ("x", "y", "width", "length", "total_device_width"):
            if key in data:
                try:
                    values[key] = float(data[key])  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    raise ValueError(
                        f"block spec field {key!r} must be a number, "
                        f"got {data[key]!r}"
                    ) from None
        if "gate_count" in data:
            try:
                values["gate_count"] = int(data["gate_count"])  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ValueError(
                    f"block spec field 'gate_count' must be an integer, "
                    f"got {data['gate_count']!r}"
                ) from None
        if "metadata" in data:
            metadata = data["metadata"]
            if not isinstance(metadata, abc.Mapping):
                raise ValueError("block spec field 'metadata' must be a mapping")
            values["metadata"] = dict(metadata)
        return cls(**values)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        """Plain-data description, the inverse of :meth:`from_mapping`.

        Default-valued optional fields are omitted so serialized floorplans
        stay compact.
        """
        data: Dict[str, object] = {
            "name": self.name,
            "x": self.x,
            "y": self.y,
            "width": self.width,
            "length": self.length,
        }
        if self.gate_count:
            data["gate_count"] = self.gate_count
        if self.total_device_width:
            data["total_device_width"] = self.total_device_width
        if self.metadata:
            data["metadata"] = dict(self.metadata)
        return data


#: Anything :func:`as_block` can coerce into a :class:`Block`.
BlockLike = Union[Block, Mapping[str, object], Sequence[object]]


def as_block(value: BlockLike) -> Block:
    """Coerce a block description into a :class:`Block`.

    Accepts a :class:`Block` (returned unchanged), a mapping of field names
    (see :meth:`Block.from_mapping`) or a ``(name, x, y, width, length)``
    tuple.  Malformed descriptions raise :class:`ValueError` naming the
    offending field.
    """
    if isinstance(value, Block):
        return value
    if isinstance(value, abc.Mapping):
        return Block.from_mapping(value)
    if isinstance(value, abc.Sequence) and not isinstance(value, (str, bytes)):
        items = tuple(value)
        if len(items) != 5:
            raise ValueError(
                "block tuple must be (name, x, y, width, length), "
                f"got {len(items)} item(s)"
            )
        return Block.from_mapping(
            dict(zip(("name", "x", "y", "width", "length"), items))
        )
    raise TypeError(
        f"cannot interpret {type(value).__name__!r} as a block; "
        "expected Block, mapping or (name, x, y, width, length) tuple"
    )
