"""Gridded power-density maps.

A :class:`PowerMap` rasterises per-block powers onto a regular grid of the
die surface.  It is the exchange format between the floorplan world and the
numerical finite-volume solver, and a convenient way to inspect power
density hot spots independently of the thermal solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Tuple

import numpy as np

from ..core.thermal.sources import HeatSource
from ..thermalsim.fdm import RectangularSource
from .floorplan import Floorplan


@dataclass(frozen=True)
class PowerMap:
    """Power rasterised onto a regular grid of the die surface.

    Attributes
    ----------
    x_edges, y_edges:
        Cell edge coordinates [m]; the grid has ``len(x_edges) - 1`` by
        ``len(y_edges) - 1`` cells.
    cell_power:
        Power [W] per cell, shape ``(nx, ny)``.
    """

    x_edges: np.ndarray
    y_edges: np.ndarray
    cell_power: np.ndarray

    @property
    def total_power(self) -> float:
        """Total power [W] on the map."""
        return float(self.cell_power.sum())

    @property
    def cell_area(self) -> float:
        """Area [m^2] of one grid cell."""
        dx = float(self.x_edges[1] - self.x_edges[0])
        dy = float(self.y_edges[1] - self.y_edges[0])
        return dx * dy

    @property
    def power_density(self) -> np.ndarray:
        """Areal power density [W/m^2] per cell."""
        return self.cell_power / self.cell_area

    @property
    def peak_power_density(self) -> float:
        """Highest cell power density [W/m^2]."""
        return float(self.power_density.max())

    def cell_centers(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cell centre coordinates along x and y."""
        xc = 0.5 * (self.x_edges[:-1] + self.x_edges[1:])
        yc = 0.5 * (self.y_edges[:-1] + self.y_edges[1:])
        return xc, yc


def rasterize_block_powers(
    floorplan: Floorplan,
    block_powers: Mapping[str, float],
    nx: int = 64,
    ny: int = 64,
) -> PowerMap:
    """Rasterise per-block powers onto an ``nx`` x ``ny`` grid.

    Each block's power is spread uniformly over its footprint and assigned
    to cells proportionally to the overlap area, so the map conserves total
    power exactly regardless of resolution.
    """
    if nx < 1 or ny < 1:
        raise ValueError("grid must have at least one cell per dimension")
    die = floorplan.die
    x_edges = np.linspace(0.0, die.width, nx + 1)
    y_edges = np.linspace(0.0, die.length, ny + 1)
    cell_power = np.zeros((nx, ny))
    for block in floorplan.blocks():
        power = float(block_powers.get(block.name, 0.0))
        if power == 0.0:
            continue
        overlap_x = np.clip(
            np.minimum(x_edges[1:], block.x_max) - np.maximum(x_edges[:-1], block.x_min),
            0.0,
            None,
        )
        overlap_y = np.clip(
            np.minimum(y_edges[1:], block.y_max) - np.maximum(y_edges[:-1], block.y_min),
            0.0,
            None,
        )
        overlap = np.outer(overlap_x, overlap_y)
        total = overlap.sum()
        if total <= 0.0:
            raise ValueError(f"block {block.name!r} does not overlap the die grid")
        cell_power += power * overlap / total
    return PowerMap(x_edges=x_edges, y_edges=y_edges, cell_power=cell_power)


def heat_sources_from_blocks(
    floorplan: Floorplan, block_powers: Mapping[str, float]
) -> List[HeatSource]:
    """Analytical heat sources for the floorplan's blocks (Eq. 21 input)."""
    return floorplan.to_heat_sources(block_powers)


def fdm_sources_from_blocks(
    floorplan: Floorplan, block_powers: Mapping[str, float]
) -> List[RectangularSource]:
    """Finite-volume solver sources for the floorplan's blocks."""
    sources = []
    for heat_source in floorplan.to_heat_sources(block_powers):
        sources.append(
            RectangularSource(
                x=heat_source.x,
                y=heat_source.y,
                width=heat_source.width,
                length=heat_source.length,
                power=heat_source.power,
                name=heat_source.name,
            )
        )
    return sources
