"""Sampling grids for surface evaluations.

Small helpers shared by benchmarks and examples when they need regular or
logarithmic sampling of the die surface or of radial distances from a heat
source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np


@dataclass(frozen=True)
class SurfaceGrid:
    """A regular rectangular sampling grid.

    Attributes
    ----------
    x_coordinates, y_coordinates:
        Sample coordinates [m] along each axis.
    """

    x_coordinates: np.ndarray
    y_coordinates: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        """Number of samples along (x, y)."""
        return len(self.x_coordinates), len(self.y_coordinates)

    def meshgrid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Full coordinate meshes (indexing='ij')."""
        return np.meshgrid(self.x_coordinates, self.y_coordinates, indexing="ij")

    def points(self) -> np.ndarray:
        """Every grid sample as an ``(nx * ny, 2)`` array, row-major in x."""
        mesh_x, mesh_y = self.meshgrid()
        return np.column_stack([mesh_x.ravel(), mesh_y.ravel()])

    def evaluate(self, field: Callable[[float, float], float]) -> np.ndarray:
        """Sample a scalar field over the grid, one call per sample."""
        values = np.empty(self.shape)
        for i, x in enumerate(self.x_coordinates):
            for j, y in enumerate(self.y_coordinates):
                values[i, j] = field(float(x), float(y))
        return values

    def evaluate_batched(
        self, field: Callable[[np.ndarray], np.ndarray]
    ) -> np.ndarray:
        """Sample a batched field over the grid in a single call.

        ``field`` receives the full ``(nx * ny, 2)`` point array (see
        :meth:`points`) and must return one value per point — the calling
        convention of the vectorized thermal kernel.
        """
        values = np.asarray(field(self.points()), dtype=float)
        if values.shape != (self.x_coordinates.size * self.y_coordinates.size,):
            raise ValueError("the batched field must return one value per point")
        return values.reshape(self.shape)


def regular_grid(
    width: float, length: float, nx: int = 50, ny: int = 50
) -> SurfaceGrid:
    """Regular grid covering ``[0, width] x [0, length]``."""
    if width <= 0.0 or length <= 0.0:
        raise ValueError("grid extents must be positive")
    if nx < 2 or ny < 2:
        raise ValueError("at least two samples per axis are required")
    return SurfaceGrid(
        x_coordinates=np.linspace(0.0, width, nx),
        y_coordinates=np.linspace(0.0, length, ny),
    )


def radial_distances(
    inner: float, outer: float, count: int = 50, logarithmic: bool = True
) -> np.ndarray:
    """Distances from a source centre, linearly or logarithmically spaced."""
    if inner <= 0.0 or outer <= inner:
        raise ValueError("need 0 < inner < outer")
    if count < 2:
        raise ValueError("count must be at least 2")
    if logarithmic:
        return np.logspace(np.log10(inner), np.log10(outer), count)
    return np.linspace(inner, outer, count)
