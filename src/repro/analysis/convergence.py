"""Convergence-trace helpers for optimization studies.

Design-space searches (:mod:`repro.optimize`) report one objective value
per generation of candidates; these helpers turn that raw series into the
monotone best-so-far trace stored in optimize :class:`~repro.api.results.
StudyResult` arrays and into the headline improvement figure shown by
``summary()``.
"""

from __future__ import annotations

import numpy as np


def best_so_far(values) -> np.ndarray:
    """Running minimum of a per-generation objective series.

    Parameters
    ----------
    values:
        One objective value per generation (lower is better).

    Returns
    -------
    numpy.ndarray
        Monotone non-increasing trace of the best value seen so far.
    """
    series = np.asarray(values, dtype=float)
    if series.ndim != 1:
        raise ValueError("values must be a one-dimensional series")
    if series.size == 0:
        return series.copy()
    return np.minimum.accumulate(series)


def improvement(trace) -> float:
    """Absolute objective decrease over a best-so-far trace.

    ``trace[0] - trace[-1]``: how much the search improved on its first
    generation.  Zero for an empty or single-generation trace that never
    improved; always non-negative for a monotone trace.
    """
    series = np.asarray(trace, dtype=float)
    if series.size == 0:
        return 0.0
    return float(series[0] - series[-1])
