"""Analysis utilities: grids, cross-sections, isotherms, sweeps, metrics."""

from .convergence import best_so_far, improvement
from .grids import SurfaceGrid, radial_distances, regular_grid
from .isotherms import (
    IsothermLevel,
    gradient_tangency_residual,
    hotspot_location,
    isotherm_levels,
    isotherm_mask,
    isotherm_statistics,
    isotherm_summary,
)
from .metrics import (
    absolute_relative_error,
    correlation,
    log_accuracy_decades,
    max_absolute_relative_error,
    mean_absolute_relative_error,
    relative_error,
    rms_error,
    rms_relative_error,
)
from .sections import (
    BatchedTemperatureField,
    CrossSection,
    cross_section_x,
    cross_section_y,
)
from .sweep import (
    SweepResult,
    grid_sweep,
    logspace,
    scenario_sweep,
    steady_batch_series,
    sweep,
    transient_batch_series,
    transient_scenario_sweep,
)

__all__ = [
    "best_so_far",
    "improvement",
    "SurfaceGrid",
    "regular_grid",
    "radial_distances",
    "CrossSection",
    "BatchedTemperatureField",
    "cross_section_x",
    "cross_section_y",
    "IsothermLevel",
    "isotherm_levels",
    "isotherm_statistics",
    "isotherm_summary",
    "isotherm_mask",
    "hotspot_location",
    "gradient_tangency_residual",
    "relative_error",
    "absolute_relative_error",
    "mean_absolute_relative_error",
    "max_absolute_relative_error",
    "rms_error",
    "rms_relative_error",
    "correlation",
    "log_accuracy_decades",
    "SweepResult",
    "sweep",
    "scenario_sweep",
    "steady_batch_series",
    "transient_batch_series",
    "transient_scenario_sweep",
    "grid_sweep",
    "logspace",
]
