"""Isotherm extraction from sampled temperature maps.

Fig. 6 of the paper shows isothermal contour lines of the three-block IC and
argues that the heat flux (orthogonal to the isotherms) is tangent to the
die edges.  The helpers here extract isotherm levels, the area enclosed by
each level and coarse contour masks from a :class:`~repro.core.thermal.superposition.SurfaceMap`
(or any sampled field), which is what the Fig. 6 benchmark reports instead
of a plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class IsothermLevel:
    """One isotherm level and its summary statistics.

    Attributes
    ----------
    temperature:
        The level's temperature [K].
    enclosed_fraction:
        Fraction of the sampled area at or above this temperature.
    cell_count:
        Number of samples at or above this temperature.
    """

    temperature: float
    enclosed_fraction: float
    cell_count: int


def isotherm_levels(
    temperature: np.ndarray,
    count: int = 8,
    minimum: float = None,
    maximum: float = None,
) -> List[float]:
    """Evenly spaced isotherm levels spanning a sampled field's range."""
    field = np.asarray(temperature, dtype=float)
    if field.size == 0:
        raise ValueError("the temperature field is empty")
    if count < 1:
        raise ValueError("count must be at least 1")
    low = float(field.min()) if minimum is None else minimum
    high = float(field.max()) if maximum is None else maximum
    if high <= low:
        raise ValueError("the field has no temperature spread to contour")
    # Exclude the exact extremes so every level encloses a non-trivial region.
    return list(np.linspace(low, high, count + 2)[1:-1])


def isotherm_statistics(
    temperature: np.ndarray, levels: Sequence[float]
) -> List[IsothermLevel]:
    """Enclosed-area statistics for each isotherm level."""
    field = np.asarray(temperature, dtype=float)
    if field.size == 0:
        raise ValueError("the temperature field is empty")
    statistics = []
    for level in levels:
        mask = field >= level
        statistics.append(
            IsothermLevel(
                temperature=float(level),
                enclosed_fraction=float(mask.mean()),
                cell_count=int(mask.sum()),
            )
        )
    return statistics


def isotherm_summary(
    temperature: np.ndarray,
    count: int = 8,
    minimum: float = None,
    maximum: float = None,
) -> List[IsothermLevel]:
    """Levels plus enclosed-area statistics of a sampled field in one call.

    Convenience wrapper combining :func:`isotherm_levels` and
    :func:`isotherm_statistics`; pairs naturally with the batched surface
    maps produced by the vectorized thermal kernel
    (``isotherm_summary(model.surface_map(nx, ny).temperature)``).
    """
    levels = isotherm_levels(temperature, count=count, minimum=minimum, maximum=maximum)
    return isotherm_statistics(temperature, levels)


def isotherm_mask(temperature: np.ndarray, level: float) -> np.ndarray:
    """Boolean mask of samples at or above an isotherm level."""
    return np.asarray(temperature, dtype=float) >= level


def hotspot_location(
    temperature: np.ndarray,
    x_coordinates: np.ndarray,
    y_coordinates: np.ndarray,
) -> Tuple[float, float, float]:
    """Location and value of the hottest sample: ``(x, y, temperature)``."""
    field = np.asarray(temperature, dtype=float)
    if field.shape != (len(x_coordinates), len(y_coordinates)):
        raise ValueError("field shape must match the coordinate axes")
    index = np.unravel_index(int(np.argmax(field)), field.shape)
    return (
        float(x_coordinates[index[0]]),
        float(y_coordinates[index[1]]),
        float(field[index]),
    )


def gradient_tangency_residual(
    temperature: np.ndarray,
    x_coordinates: np.ndarray,
    y_coordinates: np.ndarray,
) -> float:
    """Worst normalised boundary-normal gradient of a sampled field.

    With correct adiabatic sides the temperature gradient normal to each die
    edge vanishes, i.e. the isotherms meet the edges at right angles (the
    heat flux is tangent).  The residual is the largest normal gradient on
    any edge sample divided by the peak interior gradient magnitude.
    """
    field = np.asarray(temperature, dtype=float)
    if field.shape != (len(x_coordinates), len(y_coordinates)):
        raise ValueError("field shape must match the coordinate axes")
    gx, gy = np.gradient(field, x_coordinates, y_coordinates)
    interior = np.sqrt(gx[1:-1, 1:-1] ** 2 + gy[1:-1, 1:-1] ** 2)
    peak_interior = float(interior.max()) if interior.size else 0.0
    if peak_interior == 0.0:
        return 0.0
    normal_edges = [
        np.abs(gx[0, :]),
        np.abs(gx[-1, :]),
        np.abs(gy[:, 0]),
        np.abs(gy[:, -1]),
    ]
    worst = max(float(edge.max()) for edge in normal_edges)
    return worst / peak_interior
