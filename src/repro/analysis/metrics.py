"""Error metrics used by the validation benchmarks.

All comparisons in the paper are "model vs SPICE" or "model vs measurement"
curves; these helpers quantify such comparisons with the usual scalar
metrics (relative error, RMS, maximum, correlation) so benchmarks and tests
can assert on them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def relative_error(estimate: float, reference: float) -> float:
    """Signed relative error ``(estimate - reference) / reference``."""
    if reference == 0.0:
        raise ValueError("reference value must be non-zero")
    return (estimate - reference) / reference


def absolute_relative_error(estimate: float, reference: float) -> float:
    """Magnitude of the relative error."""
    return abs(relative_error(estimate, reference))


def _as_arrays(estimates: Sequence[float], references: Sequence[float]):
    a = np.asarray(estimates, dtype=float)
    b = np.asarray(references, dtype=float)
    if a.shape != b.shape:
        raise ValueError("estimate and reference sequences must match in length")
    if a.size == 0:
        raise ValueError("at least one sample is required")
    return a, b


def mean_absolute_relative_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Mean of the per-sample absolute relative errors."""
    a, b = _as_arrays(estimates, references)
    if np.any(b == 0.0):
        raise ValueError("reference values must be non-zero")
    return float(np.mean(np.abs((a - b) / b)))


def max_absolute_relative_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Worst per-sample absolute relative error."""
    a, b = _as_arrays(estimates, references)
    if np.any(b == 0.0):
        raise ValueError("reference values must be non-zero")
    return float(np.max(np.abs((a - b) / b)))


def rms_error(estimates: Sequence[float], references: Sequence[float]) -> float:
    """Root-mean-square absolute error."""
    a, b = _as_arrays(estimates, references)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def rms_relative_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Root-mean-square relative error."""
    a, b = _as_arrays(estimates, references)
    if np.any(b == 0.0):
        raise ValueError("reference values must be non-zero")
    return float(np.sqrt(np.mean(((a - b) / b) ** 2)))


def correlation(estimates: Sequence[float], references: Sequence[float]) -> float:
    """Pearson correlation coefficient between the two series."""
    a, b = _as_arrays(estimates, references)
    if a.size < 2:
        raise ValueError("correlation needs at least two samples")
    if np.std(a) == 0.0 or np.std(b) == 0.0:
        raise ValueError("correlation is undefined for constant series")
    return float(np.corrcoef(a, b)[0, 1])


def log_accuracy_decades(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Worst absolute log10 ratio between estimate and reference.

    Useful for leakage currents that span orders of magnitude: 0.3 decades
    corresponds to a factor-of-2 worst-case mismatch.
    """
    a, b = _as_arrays(estimates, references)
    if np.any(a <= 0.0) or np.any(b <= 0.0):
        raise ValueError("log accuracy requires strictly positive values")
    return float(np.max(np.abs(np.log10(a / b))))
