"""Cross-sections and boundary diagnostics of surface temperature maps.

Fig. 7 of the paper shows the temperature along a cut through the middle of
the die and argues that the temperature derivative (and therefore the heat
flux) vanishes at both die edges — the signature of correctly enforced
adiabatic boundary conditions.  These helpers extract such cuts and quantify
the edge-gradient condition for any callable temperature field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

TemperatureField = Callable[[float, float], float]

#: A field evaluated on a whole ``(N, 2)`` batch of points at once, e.g.
#: :meth:`repro.core.thermal.superposition.ChipThermalModel.temperatures`.
BatchedTemperatureField = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CrossSection:
    """A one-dimensional cut through a temperature field.

    Attributes
    ----------
    positions:
        Sample positions [m] along the cut.
    temperatures:
        Temperature [K] at each position.
    axis:
        ``"x"`` when the cut runs along x at fixed y, ``"y"`` otherwise.
    fixed_coordinate:
        The fixed coordinate [m] of the cut.
    """

    positions: np.ndarray
    temperatures: np.ndarray
    axis: str
    fixed_coordinate: float

    @property
    def peak_temperature(self) -> float:
        """Hottest temperature [K] on the cut."""
        return float(self.temperatures.max())

    @property
    def peak_position(self) -> float:
        """Position [m] of the hottest sample."""
        return float(self.positions[int(np.argmax(self.temperatures))])

    def gradient(self) -> np.ndarray:
        """Finite-difference temperature gradient [K/m] along the cut."""
        return np.gradient(self.temperatures, self.positions)

    def edge_gradients(self) -> Tuple[float, float]:
        """Gradient [K/m] at the first and last sample of the cut."""
        gradients = self.gradient()
        return float(gradients[0]), float(gradients[-1])

    def normalized_edge_gradients(self) -> Tuple[float, float]:
        """Edge gradients normalised by the cut's peak interior gradient.

        Values much smaller than 1 indicate the adiabatic-edge condition is
        satisfied (the Fig. 7 claim).
        """
        gradients = np.abs(self.gradient())
        interior_peak = float(gradients[1:-1].max()) if gradients.size > 2 else 0.0
        if interior_peak == 0.0:
            return 0.0, 0.0
        first, last = self.edge_gradients()
        return abs(first) / interior_peak, abs(last) / interior_peak


def _sample_line(
    field, positions: np.ndarray, fixed: float, axis: str, batched: bool
) -> np.ndarray:
    if batched:
        fixed_column = np.full(positions.size, fixed)
        if axis == "x":
            points = np.column_stack([positions, fixed_column])
        else:
            points = np.column_stack([fixed_column, positions])
        return np.asarray(field(points), dtype=float)
    if axis == "x":
        return np.asarray([field(float(p), fixed) for p in positions])
    return np.asarray([field(fixed, float(p)) for p in positions])


def cross_section_x(
    field: TemperatureField,
    y: float,
    x_start: float,
    x_stop: float,
    samples: int = 101,
    batched: bool = False,
) -> CrossSection:
    """Sample a temperature field along x at fixed ``y``.

    With ``batched=True`` the field is a :data:`BatchedTemperatureField`
    called once with every ``(x, y)`` sample — the fast path for the
    vectorized thermal kernel.
    """
    if samples < 3:
        raise ValueError("at least three samples are required")
    if x_stop <= x_start:
        raise ValueError("x_stop must exceed x_start")
    positions = np.linspace(x_start, x_stop, samples)
    temperatures = _sample_line(field, positions, y, "x", batched)
    return CrossSection(
        positions=positions, temperatures=temperatures, axis="x", fixed_coordinate=y
    )


def cross_section_y(
    field: TemperatureField,
    x: float,
    y_start: float,
    y_stop: float,
    samples: int = 101,
    batched: bool = False,
) -> CrossSection:
    """Sample a temperature field along y at fixed ``x``.

    ``batched=True`` follows the same single-call convention as
    :func:`cross_section_x`.
    """
    if samples < 3:
        raise ValueError("at least three samples are required")
    if y_stop <= y_start:
        raise ValueError("y_stop must exceed y_start")
    positions = np.linspace(y_start, y_stop, samples)
    temperatures = _sample_line(field, positions, x, "y", batched)
    return CrossSection(
        positions=positions, temperatures=temperatures, axis="y", fixed_coordinate=x
    )
