"""Parameter sweeps.

Benchmarks and examples repeatedly evaluate a model over a one- or
two-dimensional grid of parameters (stack depth, width ratio, temperature,
technology node ...).  :class:`SweepResult` packages that pattern: it
records the swept values together with the evaluated results and exposes
them as aligned arrays for reporting.

Electro-thermal sweeps are thin wrappers over scenario batches: declare
the swept operating points as :class:`~repro.core.cosim.scenarios.Scenario`
objects and :func:`scenario_sweep` solves them all in one batched
fixed-point call instead of looping whole co-simulations per value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cosim.scenarios import Scenario, ScenarioBatchResult, ScenarioEngine
from ..core.cosim.streaming import stream_steady, stream_transient
from ..core.cosim.transient_scenarios import (
    ActivityGrid,
    TransientBatchResult,
    TransientScenarioEngine,
)
from .grids import SurfaceGrid

#: Steady series labels, in :func:`steady_batch_series` emission order.
_STEADY_SERIES = (
    "peak_temperature",
    "peak_rise",
    "total_power",
    "total_static_power",
    "converged",
)

#: Transient series labels, in :func:`transient_batch_series` emission order.
_TRANSIENT_SERIES = (
    "peak_temperature",
    "peak_rise",
    "overshoot",
    "settle_time",
    "total_energy",
    "runaway",
)


def steady_batch_series(batch: ScenarioBatchResult) -> Dict[str, List[float]]:
    """The standard per-scenario series of a steady batch.

    One definition shared by :func:`scenario_sweep` and the sweep-kind
    studies of the :mod:`repro.api` facade.
    """
    return {
        "peak_temperature": [float(v) for v in batch.peak_temperature],
        "peak_rise": [float(v) for v in batch.peak_rise],
        "total_power": [float(v) for v in batch.total_power],
        "total_static_power": [float(v) for v in batch.total_static_power],
        "converged": [float(v) for v in batch.converged],
    }


def transient_batch_series(
    batch: TransientBatchResult, settle_tolerance_kelvin: float = 0.5
) -> Dict[str, List[float]]:
    """The standard per-scenario series of a transient batch.

    One definition shared by :func:`transient_scenario_sweep` and the
    facade's transient reporting.
    """
    return {
        "peak_temperature": [float(v) for v in batch.peak_temperature],
        "peak_rise": [float(v) for v in batch.peak_rise],
        "overshoot": [float(v) for v in batch.overshoot],
        "settle_time": [float(v) for v in batch.settle_times(settle_tolerance_kelvin)],
        "total_energy": [float(v) for v in batch.total_energy()],
        "runaway": [float(v) for v in batch.runaway],
    }


@dataclass
class SweepResult:
    """Result of a one-dimensional parameter sweep.

    Attributes
    ----------
    parameter_name:
        Name of the swept parameter.
    values:
        The swept parameter values, in sweep order.
    results:
        Per-value results keyed by series label.
    """

    parameter_name: str
    values: List[float] = field(default_factory=list)
    results: Dict[str, List[float]] = field(default_factory=dict)

    def series(self, label: str) -> np.ndarray:
        """One result series as an array."""
        if label not in self.results:
            known = ", ".join(sorted(self.results))
            raise KeyError(f"unknown series {label!r}; known series: {known}")
        return np.asarray(self.results[label])

    def labels(self) -> Tuple[str, ...]:
        """All series labels."""
        return tuple(self.results)

    def as_rows(self) -> List[Tuple[float, ...]]:
        """Rows of (parameter, series1, series2, ...) for tabular output."""
        labels = list(self.results)
        rows = []
        for index, value in enumerate(self.values):
            rows.append((value, *(self.results[label][index] for label in labels)))
        return rows


def sweep(
    parameter_name: str,
    values: Iterable[float],
    evaluators: Dict[str, Callable[[float], float]],
) -> SweepResult:
    """Evaluate several labelled functions over the same parameter values.

    Parameters
    ----------
    parameter_name:
        Name of the swept parameter (reporting only).
    values:
        Parameter values to sweep.
    evaluators:
        Mapping from series label to a callable of one parameter value.
    """
    if not evaluators:
        raise ValueError("at least one evaluator is required")
    result = SweepResult(parameter_name=parameter_name)
    result.results = {label: [] for label in evaluators}
    for value in values:
        result.values.append(float(value))
        for label, evaluator in evaluators.items():
            result.results[label].append(float(evaluator(value)))
    if not result.values:
        raise ValueError("at least one parameter value is required")
    return result


def grid_sweep(
    x_values: Sequence[float],
    y_values: Sequence[float],
    evaluator: Callable[..., float],
    batched: bool = False,
) -> np.ndarray:
    """Evaluate a function over a 2-D grid, returning a (len(x), len(y)) array.

    With ``batched=True`` the evaluator is called once with the full
    ``(len(x) * len(y), 2)`` array of parameter pairs and must return one
    value per pair — the convention of the vectorized thermal kernel, which
    turns whole-floorplan sweeps into a single broadcast.
    """
    if not len(x_values) or not len(y_values):
        raise ValueError("both parameter axes need at least one value")
    if batched:
        return SurfaceGrid(
            x_coordinates=np.asarray(x_values, dtype=float),
            y_coordinates=np.asarray(y_values, dtype=float),
        ).evaluate_batched(evaluator)
    grid = np.empty((len(x_values), len(y_values)))
    for i, x in enumerate(x_values):
        for j, y in enumerate(y_values):
            grid[i, j] = evaluator(float(x), float(y))
    return grid


def scenario_sweep(
    engine: ScenarioEngine,
    parameter_name: str,
    values: Sequence[float],
    scenarios: Sequence[Scenario],
    extra_series: Optional[
        Dict[str, Callable[[ScenarioBatchResult, int], float]]
    ] = None,
    thermal_backend: Optional[str] = None,
    backend_options: Optional[Dict[str, int]] = None,
    chunk_size: Optional[int] = None,
    **solve_kwargs,
) -> SweepResult:
    """One batched fixed point packaged as a :class:`SweepResult`.

    The electro-thermal counterpart of :func:`sweep`: instead of calling a
    scalar evaluator per value, the swept operating points are declared as
    scenarios and solved concurrently by the
    :class:`~repro.core.cosim.scenarios.ScenarioEngine`.

    Parameters
    ----------
    engine:
        Scenario engine over the swept floorplan.
    parameter_name:
        Name of the swept parameter (reporting only).
    values:
        The swept parameter value of each scenario (same order/length).
    scenarios:
        One scenario per swept value.
    extra_series:
        Optional extra series, each computed as ``fn(batch, index)``.
    thermal_backend, backend_options:
        When set, the sweep runs through
        :meth:`~repro.core.cosim.scenarios.ScenarioEngine.with_backend`
        instead of ``engine``'s own backend — one keyword turns any sweep
        into a backend-comparison run.
    chunk_size:
        When set, solve through
        :func:`~repro.core.cosim.streaming.stream_steady` in fixed-size
        chunks with online reduction — same series, bit-identical values,
        constant memory in the sweep length.  ``extra_series`` need the
        full batch and are rejected under chunking.
    solve_kwargs:
        Forwarded to :meth:`~repro.core.cosim.scenarios.ScenarioEngine.solve`.
    """
    if len(values) != len(scenarios):
        raise ValueError("values and scenarios must align one-to-one")
    if thermal_backend is not None:
        engine = engine.with_backend(thermal_backend, backend_options)
    elif backend_options:
        raise ValueError("backend_options require thermal_backend")
    result = SweepResult(parameter_name=parameter_name)
    result.values = [float(value) for value in values]
    if chunk_size is not None:
        if extra_series:
            raise ValueError(
                "extra_series evaluate against the full batch result and "
                "are not available with chunked (chunk_size=) execution"
            )
        stream = stream_steady(
            engine, scenarios, chunk_size=chunk_size, **solve_kwargs
        )
        result.results = {
            label: [float(v) for v in stream.series[label]]
            for label in _STEADY_SERIES
        }
        return result
    batch = engine.solve(list(scenarios), **solve_kwargs)
    result.results = steady_batch_series(batch)
    for label, evaluator in (extra_series or {}).items():
        result.results[label] = [
            float(evaluator(batch, index)) for index in range(len(batch))
        ]
    return result


def transient_scenario_sweep(
    engine: TransientScenarioEngine,
    parameter_name: str,
    values: Sequence[float],
    scenarios: Sequence[Scenario],
    duration: float,
    time_step: float,
    activity: Optional[ActivityGrid] = None,
    settle_tolerance_kelvin: float = 0.5,
    extra_series: Optional[
        Dict[str, Callable[[TransientBatchResult, int], float]]
    ] = None,
    thermal_backend: Optional[str] = None,
    backend_options: Optional[Dict[str, int]] = None,
    chunk_size: Optional[int] = None,
    **simulate_kwargs,
) -> SweepResult:
    """One batched transient integration packaged as a :class:`SweepResult`.

    The time-domain counterpart of :func:`scenario_sweep`: the swept
    operating points are integrated concurrently by the
    :class:`~repro.core.cosim.transient_scenarios.TransientScenarioEngine`
    and summarized per scenario with the standard transient metrics —
    peak temperature, overshoot above the final state, settle time (within
    ``settle_tolerance_kelvin`` of the final temperatures), dissipated
    energy and the thermal-runaway verdict.

    Parameters
    ----------
    engine:
        Transient scenario engine over the swept floorplan.
    parameter_name:
        Name of the swept parameter (reporting only).
    values:
        The swept parameter value of each scenario (same order/length).
    scenarios:
        One scenario per swept value.
    duration, time_step, activity:
        Forwarded to :meth:`TransientScenarioEngine.simulate`.
    settle_tolerance_kelvin:
        Band [K] around the final temperatures defining the settle time.
    extra_series:
        Optional extra series, each computed as ``fn(batch, index)``.
    thermal_backend, backend_options:
        When set, the sweep runs through
        :meth:`~repro.core.cosim.transient_scenarios.TransientScenarioEngine.with_backend`
        instead of ``engine``'s own backend.
    chunk_size:
        When set, integrate through
        :func:`~repro.core.cosim.streaming.stream_transient` in fixed-size
        chunks with online reduction — same series, bit-identical values,
        memory bounded by the chunk (not the sweep).  ``extra_series`` need
        the full batch and are rejected under chunking.
    simulate_kwargs:
        Further keyword arguments for
        :meth:`TransientScenarioEngine.simulate`.
    """
    if len(values) != len(scenarios):
        raise ValueError("values and scenarios must align one-to-one")
    if thermal_backend is not None:
        engine = engine.with_backend(thermal_backend, backend_options)
    elif backend_options:
        raise ValueError("backend_options require thermal_backend")
    result = SweepResult(parameter_name=parameter_name)
    result.values = [float(value) for value in values]
    if chunk_size is not None:
        if extra_series:
            raise ValueError(
                "extra_series evaluate against the full batch result and "
                "are not available with chunked (chunk_size=) execution"
            )
        stream = stream_transient(
            engine,
            scenarios,
            duration,
            time_step,
            activity=activity,
            chunk_size=chunk_size,
            settle_tolerance_kelvin=settle_tolerance_kelvin,
            **simulate_kwargs,
        )
        result.results = {
            label: [float(v) for v in stream.series[label]]
            for label in _TRANSIENT_SERIES
        }
        return result
    batch = engine.simulate(
        list(scenarios), duration, time_step, activity=activity, **simulate_kwargs
    )
    result.results = transient_batch_series(
        batch, settle_tolerance_kelvin=settle_tolerance_kelvin
    )
    for label, evaluator in (extra_series or {}).items():
        result.results[label] = [
            float(evaluator(batch, index)) for index in range(len(batch))
        ]
    return result


def logspace(start: float, stop: float, count: int) -> np.ndarray:
    """Logarithmically spaced values between two positive endpoints."""
    if start <= 0.0 or stop <= 0.0:
        raise ValueError("log spacing requires positive endpoints")
    if count < 2:
        raise ValueError("count must be at least 2")
    return np.logspace(np.log10(start), np.log10(stop), count)
