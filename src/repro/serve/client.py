"""A minimal stdlib client for the study service.

Used by the replay benchmark (``benchmarks/serve_replay.py``), the test
suite and the CI smoke job; applications are equally welcome to speak the
plain JSON protocol with any HTTP library (see ``docs/serving.md`` for
``curl`` examples).
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPConnection
from typing import Any, Dict, Mapping, Optional, Tuple


class ServeError(RuntimeError):
    """A non-200 reply from the service, carrying the decoded body."""

    def __init__(self, status: int, body: Mapping[str, Any]) -> None:
        message = body.get("error", {}).get("message", "unknown error")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.body = dict(body)


class StudyClient:
    """A persistent connection to one ``repro serve`` endpoint.

    Not thread-safe (one :class:`http.client.HTTPConnection` underneath);
    concurrent callers should hold one client each.  Usable as a context
    manager.
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = None) -> None:
        self.host = host
        self.port = port
        self._conn = HTTPConnection(host, port, timeout=timeout)

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self._conn.sock is None:
            self._conn.connect()
            # Small request/response pairs stall ~40ms per round trip on
            # Nagle + delayed ACK; latency matters more than segment count.
            self._conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, data

    def run(self, spec: Any) -> Dict[str, Any]:
        """POST one study spec; returns the result envelope.

        Accepts a :class:`~repro.api.specs.StudySpec` (anything with a
        ``to_dict()``) or its already-serialized mapping form.  Raises
        :class:`ServeError` on any non-200 reply (status and structured
        body preserved on the exception).
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        status, data = self._request("POST", "/run", payload)
        if status != 200:
            raise ServeError(status, data)
        return data

    def stats(self) -> Dict[str, Any]:
        """GET ``/stats``; returns the service's counter tree."""
        status, data = self._request("GET", "/stats")
        if status != 200:
            raise ServeError(status, data)
        return data["stats"]

    def healthz(self) -> bool:
        """GET ``/healthz``; True when the service answers ok."""
        status, data = self._request("GET", "/healthz")
        return status == 200 and data.get("status") == "ok"

    def shutdown(self) -> None:
        """POST ``/shutdown``: ask the server to drain and exit."""
        status, data = self._request("POST", "/shutdown")
        if status != 200:
            raise ServeError(status, data)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "StudyClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
