"""Admission batching: coalesce concurrent compatible requests into one solve.

The batched engines get *faster per scenario* as batches grow (one
:class:`~repro.core.cosim.scenarios.ScenarioPhysics` precomputation, one
fixed-point loop), so a service handling concurrent small requests that
share an engine configuration should not solve them one by one.  The
:class:`AdmissionBatcher` holds the first request of a compatible group
open for a configurable **window**; every compatible request admitted
inside the window joins the group, and the whole group executes as one
call — the service concatenates the scenario lists, solves once, and
scatters per-request rows back out via
:meth:`~repro.core.cosim.scenarios.ScenarioBatchResult.slice_rows`.

The scheme is leader-based and needs no background threads: the first
requester of a group becomes its leader, sleeps out the window, then
executes for everyone; followers merely wait on their futures.  A window
of ``0`` disables batching (every request is its own group), which is the
service default — batching trades a bounded latency floor for throughput,
a choice the operator makes explicitly (see ``docs/serving.md``).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Sequence, Tuple


class _Group:
    """Requests admitted under one key, awaiting their shared flush."""

    __slots__ = ("entries", "flush")

    def __init__(self) -> None:
        self.entries: List[Tuple[Any, Future]] = []
        self.flush = threading.Event()


class AdmissionBatcher:
    """Groups concurrent requests by key and executes each group once.

    Parameters
    ----------
    window:
        Seconds the first request of a group waits for company before the
        group executes.  ``0`` executes immediately (no coalescing).
    execute:
        Callable receiving the group's request payloads (in admission
        order) and returning one result per payload, same order.  It runs
        on the leader's thread.  If it raises for a multi-request group,
        the batcher retries each member individually so one member's
        failure (e.g. a solver ceiling valid for its siblings) cannot
        poison the rest.
    """

    def __init__(
        self,
        window: float,
        execute: Callable[[Sequence[Any]], Sequence[Any]],
    ) -> None:
        if window < 0.0:
            raise ValueError("window must be non-negative seconds")
        self.window = float(window)
        self._execute = execute
        self._lock = threading.Lock()
        self._pending: Dict[str, _Group] = {}
        self._requests = 0
        self._groups = 0
        self._coalesced_requests = 0
        self._largest_group = 0
        self._fallbacks = 0

    def submit(self, key: str, payload: Any) -> Future:
        """Admit one request; returns the future carrying its result.

        The calling thread may become the group leader, in which case the
        group's execution happens on it before this method returns (its
        own future is then already resolved).  Followers return
        immediately and wait on the future.
        """
        future: Future = Future()
        with self._lock:
            group = self._pending.get(key)
            leader = group is None
            if leader:
                group = _Group()
                self._pending[key] = group
            group.entries.append((payload, future))
            self._requests += 1
        if leader:
            if self.window > 0.0:
                # drain() sets the event to flush early on shutdown.
                group.flush.wait(self.window)
            with self._lock:
                self._pending.pop(key, None)
                entries = list(group.entries)
                self._groups += 1
                self._largest_group = max(self._largest_group, len(entries))
                if len(entries) > 1:
                    self._coalesced_requests += len(entries)
            self._run(entries)
        return future

    def _run(self, entries: List[Tuple[Any, Future]]) -> None:
        """Execute one group and resolve its futures."""
        payloads = [payload for payload, _ in entries]
        try:
            results = self._execute(payloads)
        except Exception as error:
            if len(entries) == 1:
                entries[0][1].set_exception(error)
                return
            # Per-member retry: group-global failures (one member tripping
            # a batch-wide validation) must not reject its siblings.
            with self._lock:
                self._fallbacks += 1
            for payload, future in entries:
                try:
                    result = self._execute([payload])[0]
                except Exception as member_error:
                    future.set_exception(member_error)
                else:
                    future.set_result(result)
            return
        for (_, future), result in zip(entries, results):
            future.set_result(result)

    def drain(self) -> None:
        """Release every waiting leader immediately (shutdown path).

        Pending groups execute at once instead of sleeping out their
        window; in-flight work completes normally.
        """
        with self._lock:
            groups = list(self._pending.values())
        for group in groups:
            group.flush.set()

    def stats(self) -> Dict[str, Any]:
        """Lifetime admission counters, as plain data."""
        with self._lock:
            return {
                "window_s": self.window,
                "requests": self._requests,
                "groups": self._groups,
                "coalesced_requests": self._coalesced_requests,
                "largest_group": self._largest_group,
                "fallbacks": self._fallbacks,
            }
