"""The HTTP face of the study service (stdlib only, JSON in / JSON out).

A thin transport adapter over :class:`~repro.serve.service.StudyService`:
request bodies are exactly the :meth:`StudySpec.to_dict
<repro.api.specs._SpecSerialization.to_dict>` format the CLI reads and
writes, responses are exactly the envelopes
:meth:`~repro.api.results.StudyResult.envelope` produces — a file that
round-trips through ``repro run`` round-trips through ``POST /run``
unchanged.

Routes
------
``POST /run``
    Body: one serialized :class:`~repro.api.specs.StudySpec`.  Replies
    200 with a result envelope; 400 with a structured error naming the
    offending spec field where one can be identified; 504 on a
    per-request timeout; 503 once shutdown has begun.
``GET /stats``
    Cache, batching and execution counters
    (:meth:`~repro.serve.service.StudyService.stats`).
``GET /healthz``
    Liveness: ``{"status": "ok"}``.
``POST /shutdown``
    Begins graceful shutdown and replies before the server exits:
    the listener stops accepting, in-flight handler threads are joined
    (``block_on_close``), then the service drains and closes.

Served over :class:`http.server.ThreadingHTTPServer` with
*non-daemonic* handler threads, which is what makes the drain real:
``server_close()`` blocks until every in-flight request has finished.
"""

from __future__ import annotations

import dataclasses
import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..api import specs as _specs
from .service import ServeTimeoutError, ServiceClosedError, StudyService

#: Spec field names recognized when turning a validation message into a
#: structured 400 (every dataclass field across the spec vocabulary).
_SPEC_FIELD_NAMES = frozenset(
    field.name
    for cls in (
        _specs.TechnologySpec,
        _specs.FloorplanSpec,
        _specs.WorkloadSpec,
        _specs.ScenarioSpec,
        _specs.ScenarioGridSpec,
        _specs.StudySpec,
    )
    for field in dataclasses.fields(cls)
)

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
#: "no field(s) 'max_iterations'" / "option(s) 'foo'" — the quoted token
#: names the client's own input key, even when it is not a spec field.
_NAMED_KEY = re.compile(r"(?:field|option|key)\(?s?\)?\s+'([A-Za-z_][A-Za-z0-9_]*)'")


def error_body(message: str) -> Dict[str, Any]:
    """A structured error payload, naming the offending field if found.

    Spec validation messages name what they reject either explicitly
    ("has no field(s) ``'max_iterations'``") or as the clause subject
    ("``ambient_temperature`` must be positive").  The explicit form
    wins; otherwise the first word of the message's first clause that
    matches a known spec field becomes the machine-readable ``field``
    entry (only the first clause — later clauses enumerate *valid*
    names, which must not be mistaken for the offender).
    """
    body: Dict[str, Any] = {"status": "error", "error": {"message": message}}
    named = _NAMED_KEY.search(message)
    if named:
        body["error"]["field"] = named.group(1)
        return body
    first_clause = message.split(";", 1)[0]
    for word in _WORD.findall(first_clause):
        if word in _SPEC_FIELD_NAMES:
            body["error"]["field"] = word
            break
    return body


class StudyRequestHandler(BaseHTTPRequestHandler):
    """One HTTP request against the shared :class:`StudyService`."""

    #: Advertised in the ``Server`` response header.
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    # Headers and body flush as separate writes; without TCP_NODELAY the
    # second write waits out the peer's delayed ACK (~40ms per request).
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args: Any) -> None:
        """Route stdlib request logging through the server's quiet flag."""
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _reply(self, status: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body is empty; expected a JSON StudySpec")
        try:
            data = json.loads(raw.decode("utf-8"))
        except json.JSONDecodeError as error:
            raise ValueError(f"request body is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object (a StudySpec)")
        return data

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve the read-only routes: ``/stats`` and ``/healthz``."""
        service: StudyService = self.server.service  # type: ignore[attr-defined]
        if self.path == "/stats":
            self._reply(200, {"status": "ok", "stats": service.stats()})
        elif self.path == "/healthz":
            self._reply(200, {"status": "ok"})
        else:
            self._reply(404, error_body(f"no such route: GET {self.path}"))

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Serve the mutating routes: ``/run`` and ``/shutdown``."""
        service: StudyService = self.server.service  # type: ignore[attr-defined]
        if self.path == "/run":
            try:
                data = self._read_json()
                envelope = service.submit(data)
            except ValueError as error:
                self._reply(400, error_body(str(error)))
            except ServeTimeoutError as error:
                self._reply(504, error_body(str(error)))
            except ServiceClosedError as error:
                self._reply(503, error_body(str(error)))
            except Exception as error:  # pragma: no cover - defensive
                self._reply(500, error_body(f"internal error: {error}"))
            else:
                self._reply(200, envelope)
        elif self.path == "/shutdown":
            self._reply(200, {"status": "ok", "message": "shutting down"})
            # shutdown() must come from another thread: it blocks until
            # serve_forever() exits, and serve_forever() cannot exit while
            # this handler (one of its workers) is still inside it.
            threading.Thread(
                target=self.server.shutdown, name="repro-serve-shutdown"
            ).start()
        else:
            self._reply(404, error_body(f"no such route: POST {self.path}"))


class StudyServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`StudyService`.

    Handler threads are **non-daemonic** and ``server_close()`` blocks on
    them (``block_on_close``), so the shutdown sequence in :meth:`run` is
    a true drain: stop accepting, finish every in-flight request, then
    close the service (flushing admission groups and joining worker
    pools).
    """

    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: StudyService,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, StudyRequestHandler)
        self.service = service
        self.quiet = quiet

    def run(self) -> None:
        """Serve until :meth:`shutdown`, then drain and close the service."""
        try:
            self.serve_forever()
        finally:
            self.server_close()  # joins in-flight handler threads
            self.service.close()


def make_server(
    host: str,
    port: int,
    service: Optional[StudyService] = None,
    quiet: bool = True,
    **service_options: Any,
) -> StudyServer:
    """Build a ready-to-run server (own service unless one is passed).

    ``service_options`` forward to :class:`~repro.serve.service.StudyService`
    when no ``service`` is given.  Bind to port ``0`` for an ephemeral
    port (tests); the bound address is ``server.server_address``.
    """
    if service is None:
        service = StudyService(**service_options)
    return StudyServer((host, port), service, quiet=quiet)
