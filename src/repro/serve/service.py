"""The long-lived study service: caching, batching and sharded execution.

:class:`StudyService` is the transport-free core of ``repro serve`` (the
HTTP layer in :mod:`repro.serve.server` is a thin adapter over it).  One
request is one serialized :class:`~repro.api.specs.StudySpec`; one
response is one result envelope
(:meth:`~repro.api.results.StudyResult.envelope`).  Between the two sit
three layers, each amortizing work across requests that a one-shot
``repro run`` pays every time:

1. **Content-addressed caches** — results are keyed by the spec's
   :meth:`~repro.api.specs._SpecSerialization.content_hash` (an identical
   re-request is served bit-identically without touching an engine), and
   compiled engines — reduced operator matrix included — by
   :meth:`~repro.api.specs.StudySpec.engine_hash` (requests differing only
   in scenarios, workload or solver options share one compilation).  Both
   are LRU-bounded with counters on :meth:`stats`.
2. **Admission batching** — concurrent steady requests sharing an engine
   configuration and solver options coalesce into one concatenated
   :meth:`~repro.core.cosim.scenarios.ScenarioEngine.solve` inside a
   configurable window, and per-request rows scatter back out via
   :meth:`~repro.core.cosim.scenarios.ScenarioBatchResult.slice_rows` —
   bit-identical to solo solves because row trajectories are independent.
3. **Process-pool sharding** — with ``workers > 0``, execution moves into
   single-process pools; requests are routed by floorplan content hash, so
   a given floorplan always lands in the worker whose engine cache is
   already warm.  Graceful shutdown drains pending admissions and joins
   the pools; per-request timeouts bound the wait on pool results.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..api.kinds import DEFAULT_ENGINE_CACHE_SIZE, DEFAULT_RESULT_CACHE_SIZE
from ..api.results import StudyResult
from ..api.specs import StudySpec
from ..api.study import _solver_options, build_engine, run_study
from .batching import AdmissionBatcher
from .cache import LRUCache

#: Study kinds whose concurrent requests may share one engine solve.
#: Steady batches are the coalescible case: one fixed point over the
#: concatenated scenario rows is bit-identical per row to solo solves.
#: Transient runs share a time grid per solve and sweeps bind results to
#: per-request parameter axes, so both execute per request (still through
#: the shared engine cache); streamed requests keep their own chunking.
COALESCIBLE_KINDS = ("steady",)


class ServiceClosedError(RuntimeError):
    """Raised for requests admitted after :meth:`StudyService.close`."""


class ServeTimeoutError(RuntimeError):
    """Raised when a request exceeds the service's per-request timeout."""


def solve_key(spec: StudySpec) -> str:
    """Admission-batching key: requests coalesce only when equal here.

    Engine-determining fields (via
    :meth:`~repro.api.specs.StudySpec.engine_canonical_json`) plus the
    study kind and the exact solver options — everything a concatenated
    solve shares across its members.
    """
    solver = json.dumps(
        {name: value for name, value in spec.solver.items()},
        sort_keys=True,
        separators=(",", ":"),
        default=list,
    )
    return f"{spec.kind}|{spec.engine_canonical_json()}|{solver}"


class ExecutionCore:
    """Engine cache plus solve bookkeeping, shared by every execution site.

    The in-process service holds one; each process-pool worker holds its
    own module-global instance (:func:`_worker_execute_group`), so engine
    compilations are cached wherever the solving actually happens.
    """

    def __init__(self, engine_cache_size: int = DEFAULT_ENGINE_CACHE_SIZE) -> None:
        self.engines = LRUCache(engine_cache_size, name="engine")
        self._lock = threading.Lock()
        self._solves = 0
        self._coalesced_solves = 0

    def _count_solve(self, coalesced: bool) -> None:
        with self._lock:
            self._solves += 1
            if coalesced:
                self._coalesced_solves += 1

    def execute_group(self, specs: Sequence[StudySpec]) -> List[StudyResult]:
        """Run one admission group; one result per spec, same order.

        Thermal maps and optimize searches run directly (neither compiles
        a cacheable engine up front; optimize builds its engines inside
        the search).  Singleton groups and non-coalescible kinds run
        :func:`~repro.api.study.run_study` against the cached engine.
        Multi-spec steady groups run as **one** concatenated solve whose
        rows are sliced back per request.
        """
        first = specs[0]
        if first.kind in ("thermal_map", "optimize"):
            results = []
            for spec in specs:
                self._count_solve(coalesced=False)
                results.append(run_study(spec))
            return results
        engine, _ = self.engines.get_or_build(
            first.engine_hash(), lambda: build_engine(first)
        )
        if len(specs) == 1 or first.kind not in COALESCIBLE_KINDS:
            results = []
            for spec in specs:
                self._count_solve(coalesced=False)
                results.append(run_study(spec, engine=engine))
            return results
        # Coalesced steady solve: concatenate every member's scenarios,
        # fix the whole batch in one engine call, scatter rows back.
        scenario_lists = [spec.build_scenarios() for spec in specs]
        merged = [scenario for chunk in scenario_lists for scenario in chunk]
        self._count_solve(coalesced=True)
        batch = engine.solve(merged, **_solver_options(first))
        results = []
        start = 0
        for spec, scenarios in zip(specs, scenario_lists):
            stop = start + len(scenarios)
            results.append(
                StudyResult.from_steady_batch(spec, batch.slice_rows(start, stop))
            )
            start = stop
        return results

    def stats(self) -> Dict[str, Any]:
        """Engine-cache counters plus solve counts, as plain data."""
        with self._lock:
            counts = {
                "solves": self._solves,
                "coalesced_solves": self._coalesced_solves,
            }
        return {"engine_cache": self.engines.stats(), **counts}


#: Per-worker-process execution core (see :func:`_worker_execute_group`).
_WORKER_CORE: Optional[ExecutionCore] = None


def _worker_execute_group(payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Process-pool entry point: spec dicts in, result dicts out.

    Each worker process lazily builds one module-global
    :class:`ExecutionCore` and keeps it for its lifetime — the parent
    routes a given floorplan to the same worker, so that worker's engine
    cache stays warm across requests exactly like the in-process cache.
    """
    global _WORKER_CORE
    if _WORKER_CORE is None:
        _WORKER_CORE = ExecutionCore()
    specs = [StudySpec.from_dict(payload) for payload in payloads]
    return [result.to_dict() for result in _WORKER_CORE.execute_group(specs)]


class StudyService:
    """The transport-free study service (see the module docstring).

    Parameters
    ----------
    engine_cache_size:
        Compiled engines kept across requests (in-process mode; each pool
        worker keeps its own cache of the same size).
    result_cache_size:
        Serialized results kept across requests, keyed by spec content
        hash.
    window:
        Admission-batching window [s]; ``0`` (default) disables
        coalescing.
    workers:
        Single-process pools to shard floorplans across; ``0`` (default)
        executes in the calling thread.
    timeout:
        Per-request timeout [s] enforced while waiting on pool results and
        batched-group futures; ``None`` waits indefinitely.  Inline
        execution on the caller's own thread cannot be interrupted, so the
        bound is best-effort by design.
    """

    def __init__(
        self,
        engine_cache_size: int = DEFAULT_ENGINE_CACHE_SIZE,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        window: float = 0.0,
        workers: int = 0,
        timeout: Optional[float] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if timeout is not None and timeout <= 0.0:
            raise ValueError("timeout must be positive seconds (or None)")
        self._core = ExecutionCore(engine_cache_size)
        self._results = LRUCache(result_cache_size, name="result")
        self._batcher = AdmissionBatcher(window, self._execute_group)
        self._timeout = timeout
        self._pools: List[ProcessPoolExecutor] = [
            ProcessPoolExecutor(max_workers=1) for _ in range(workers)
        ]
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._errors = 0

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(self, request: Union[StudySpec, Mapping[str, Any]]) -> Dict[str, Any]:
        """Execute one study request; returns its response envelope.

        ``request`` is a :class:`~repro.api.specs.StudySpec` or its plain
        ``to_dict`` data (what ``POST /run`` carries).  Spec validation
        errors propagate as :class:`ValueError` (the HTTP layer's 400);
        :class:`ServeTimeoutError` and :class:`ServiceClosedError` map to
        504 and 503.  The envelope's ``served`` mapping records how this
        delivery was produced: result-cache hit or miss, engine-cache and
        batching counters deltas aside, and wall time.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shutting down")
            self._requests += 1
        begin = time.perf_counter()
        try:
            spec = (
                request
                if isinstance(request, StudySpec)
                else StudySpec.from_dict(request)
            )
            spec_hash = spec.content_hash()
            # get + put (not get_or_build): the solve must run outside the
            # cache lock or concurrent requests could never coalesce.
            body, cached = self._results.get(spec_hash)
            if not cached:
                body = self._run(spec).envelope()
                self._results.put(spec_hash, body)
        except Exception:
            with self._lock:
                self._errors += 1
            raise
        envelope = dict(body)
        envelope["served"] = {
            "result_cache": "hit" if cached else "miss",
            "elapsed_ms": (time.perf_counter() - begin) * 1e3,
        }
        return envelope

    def _run(self, spec: StudySpec) -> StudyResult:
        """Result-cache miss path: route one spec through batching + pools."""
        if self._batcher.window > 0.0 and spec.kind in COALESCIBLE_KINDS:
            if not spec.streaming:
                future = self._batcher.submit(solve_key(spec), spec)
                try:
                    return future.result(timeout=self._wait_budget())
                except FutureTimeoutError:
                    raise ServeTimeoutError(
                        f"request exceeded the {self._timeout:g}s timeout"
                    ) from None
        return self._execute_group([spec])[0]

    def _wait_budget(self) -> Optional[float]:
        """Follower wait bound: the timeout plus the full admission window."""
        if self._timeout is None:
            return None
        return self._timeout + self._batcher.window

    def _execute_group(self, specs: Sequence[StudySpec]) -> List[StudyResult]:
        """Run one admission group inline or on the owning floorplan shard."""
        if not self._pools:
            return self._core.execute_group(list(specs))
        pool = self._pools[self._shard(specs[0])]
        payloads = [spec.to_dict() for spec in specs]
        handle = pool.submit(_worker_execute_group, payloads)
        try:
            dicts = handle.result(timeout=self._timeout)
        except FutureTimeoutError:
            raise ServeTimeoutError(
                f"request exceeded the {self._timeout:g}s timeout"
            ) from None
        return [StudyResult.from_dict(data) for data in dicts]

    def _shard(self, spec: StudySpec) -> int:
        """Stable floorplan -> pool routing (warm caches per worker)."""
        return int(spec.floorplan.content_hash()[:8], 16) % len(self._pools)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: caches, batching, execution, counters.

        In process-pool mode the engine cache (and its counters) lives
        inside each worker, so the parent-side ``engine_cache`` block
        reads zero — ``execution.mode`` says where to look.
        """
        with self._lock:
            requests = {"submitted": self._requests, "errors": self._errors}
            closed = self._closed
        return {
            "uptime_s": time.monotonic() - self._started,
            "closed": closed,
            "requests": requests,
            "result_cache": self._results.stats(),
            "batching": self._batcher.stats(),
            "execution": {
                "mode": "process-pool" if self._pools else "inline",
                "workers": len(self._pools),
                **self._core.stats(),
            },
        }

    def close(self) -> None:
        """Graceful shutdown: refuse new work, flush admissions, join pools.

        In-flight requests complete normally (the HTTP layer joins its
        handler threads *before* calling this); leaders sleeping out an
        admission window are released immediately.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.drain()
        for pool in self._pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "StudyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
