"""Thread-safe LRU caches with hit/miss accounting for the study service.

One small primitive backs both serve-layer caches: the **compile cache**
(engine key -> built :class:`~repro.core.cosim.scenarios.ScenarioEngine`,
whose construction embeds the reduced operator matrix) and the **result
cache** (spec content hash -> serialized
:class:`~repro.api.results.StudyResult` payload).  Both are bounded,
evict least-recently-used entries, and expose their counters on the
service's ``/stats`` endpoint — the observable that lets tests assert
"the second identical request skipped recompilation".
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Tuple


class LRUCache:
    """A size-bounded, thread-safe, least-recently-used mapping.

    Values are built under the cache lock (:meth:`get_or_build`), so two
    concurrent requests for the same cold key perform exactly one build —
    the second blocks briefly and then hits.  That serializes builds, which
    is deliberate: an engine compilation is milliseconds (analytical) to
    hundreds of milliseconds (FDM), and duplicating it per concurrent
    requester is the cost this cache exists to remove.
    """

    def __init__(self, limit: int, name: str = "cache") -> None:
        if int(limit) < 1:
            raise ValueError(f"{name} limit must be at least 1, got {limit!r}")
        self.limit = int(limit)
        self.name = name
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_build(self, key: str, build: Callable[[], Any]) -> Tuple[Any, bool]:
        """The value under ``key`` plus a hit flag, building it on a miss.

        A hit moves the entry to the most-recently-used end; a miss calls
        ``build()`` (under the lock — see the class docstring), stores the
        value, and evicts from the least-recently-used end down to
        :attr:`limit`.  A ``build`` that raises stores nothing.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key], True
            self._misses += 1
            value = build()
            self._entries[key] = value
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value, False

    def get(self, key: str) -> Tuple[Any, bool]:
        """The value under ``key`` plus a hit flag; no build on a miss.

        The lock-free-build counterpart of :meth:`get_or_build` for
        values whose computation must *not* serialize other requests
        (the service's result cache: a study solve can take seconds, and
        holding the cache lock across it would defeat admission
        batching).  Callers compute outside the lock and :meth:`put` the
        value back; concurrent identical misses may compute twice, which
        the admission batcher coalesces anyway.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key], True
            self._misses += 1
            return None, False

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (most recently used), evicting LRU."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.limit:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept: they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus current occupancy, as plain data."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "limit": self.limit,
            }
