"""`repro.serve` — the long-lived study service behind ``repro serve``.

Turns the one-shot ``repro run`` pipeline into a resident HTTP service
that amortizes work across requests.  Three layers, bottom up:

* **caching** (:mod:`repro.serve.cache`) — LRU compile cache of built
  engines (reduced operator matrices included) keyed by engine hash, and
  an LRU result cache keyed by full-spec content hash, both with hit/miss
  counters surfaced on ``GET /stats``;
* **admission batching** (:mod:`repro.serve.batching`) — concurrent
  steady requests sharing an engine configuration coalesce into one
  batched solve within a configurable window, with per-request scatter;
* **service + transport** (:mod:`repro.serve.service`,
  :mod:`repro.serve.server`) — the transport-free
  :class:`~repro.serve.service.StudyService` (optionally sharding
  floorplans across process pools, with graceful shutdown and
  per-request timeouts) and the stdlib HTTP adapter speaking exactly the
  CLI's JSON spec/result formats.

Quick start::

    from repro.serve import make_server

    server = make_server("127.0.0.1", 0, window=0.02)
    print("listening on", server.server_address)
    server.run()  # serve until POST /shutdown, then drain and exit

Names resolve lazily (PEP 562) so importing :mod:`repro` stays cheap.
"""

from importlib import import_module
from typing import TYPE_CHECKING

#: Public name -> defining submodule, resolved on first attribute access.
_EXPORTS = {
    "LRUCache": "repro.serve.cache",
    "AdmissionBatcher": "repro.serve.batching",
    "ExecutionCore": "repro.serve.service",
    "ServeTimeoutError": "repro.serve.service",
    "ServiceClosedError": "repro.serve.service",
    "StudyService": "repro.serve.service",
    "solve_key": "repro.serve.service",
    "StudyServer": "repro.serve.server",
    "make_server": "repro.serve.server",
    "ServeError": "repro.serve.client",
    "StudyClient": "repro.serve.client",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # static analyzers see eager imports; runtime stays lazy
    from .batching import AdmissionBatcher
    from .cache import LRUCache
    from .client import ServeError, StudyClient
    from .server import StudyServer, make_server
    from .service import (
        ExecutionCore,
        ServeTimeoutError,
        ServiceClosedError,
        StudyService,
        solve_key,
    )
