"""Baseline: Chen / Johnson / Wei / Roy stack-leakage model (ISLPED 1998).

Reference [8] of the paper: *Estimation of standby leakage power in CMOS
circuits considering accurate modeling of transistor stacks*.  This is the
model Fig. 8 compares the proposed technique against.

The original publication derives the internal node voltages of an OFF stack
under the assumption that every device operates with a drain-source voltage
well above the thermal voltage, so the ``(1 - exp(-VDS/VT))`` drain factor
can be dropped for every transistor, and treats the body effect only through
the DIBL-like linearisation of the uppermost device.  We implement that
formulation faithfully at the level of its approximations:

* node voltages follow the strong-bias asymptote (the analogue of the DATE
  paper's Eq. 7) for every pair, with the body-effect coefficient omitted
  from the balance (the ISLPED derivation lumps it into the fitted DIBL
  coefficient);
* the final stack current is the top device's subthreshold current at those
  node voltages.

Relative to the proposed model the missing drain-factor correction and the
simplified node balance over-estimate the internal node voltages of shallow
or narrow-ratio stacks, which is exactly the systematic deviation the
paper's Fig. 8 shows for model [8].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuit.stack import TransistorStack
from ..technology.constants import thermal_voltage
from ..technology.parameters import TechnologyParameters
from ..core.leakage.subthreshold import SubthresholdBias, subthreshold_current


@dataclass(frozen=True)
class ChenRoyStackEstimate:
    """Result of the Chen-Roy baseline for one stack and vector."""

    current: float
    node_voltages: Tuple[float, ...]
    effective_width: float
    temperature: float


class ChenRoyStackModel:
    """Stack-leakage baseline after Chen et al., ISLPED'98 (paper ref. [8])."""

    def __init__(self, technology: TechnologyParameters) -> None:
        self.technology = technology

    def _node_voltage(
        self,
        upper_width: float,
        lower_width: float,
        device_type: str,
        temperature: float,
    ) -> float:
        """Strong-bias node voltage with the body effect omitted.

        Balancing the two devices' subthreshold currents without the drain
        factor and without the body-effect term gives

        ``dV = n VT [ln(W_up / W_low) + sigma Vdd / (n VT)] / (1 + 2 sigma)``
        """
        device = self.technology.device(device_type)
        vt = thermal_voltage(temperature)
        vdd = self.technology.vdd
        numerator = device.n * vt * math.log(upper_width / lower_width) + device.dibl * vdd
        value = numerator / (1.0 + 2.0 * device.dibl)
        return max(value, 0.0)

    def evaluate_stack(
        self,
        stack: TransistorStack,
        logic_values: Optional[Sequence[int]] = None,
        temperature: Optional[float] = None,
    ) -> ChenRoyStackEstimate:
        """Estimate the OFF current of a stack for one input vector."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        if logic_values is None:
            logic_values = stack.all_off_vector()
        off_devices = stack.off_devices(logic_values)
        if not off_devices:
            raise ValueError("the stack has no OFF device for this vector")
        device = self.technology.device(stack.device_type)
        vdd = self.technology.vdd
        widths = [d.width for d in off_devices]

        if len(widths) == 1:
            bias = SubthresholdBias(
                vgs=0.0, vds=vdd, vsb=0.0, vdd=vdd, temperature=temperature
            )
            current = subthreshold_current(
                device, widths[0], bias, self.technology.reference_temperature
            )
            return ChenRoyStackEstimate(
                current=current,
                node_voltages=(),
                effective_width=widths[0],
                temperature=temperature,
            )

        # Walk the chain bottom-up accumulating node voltages; each pair sees
        # the *physical* upper device width (no re-collapsing), which is the
        # ISLPED formulation.
        node_voltages: List[float] = []
        accumulated = 0.0
        for lower, upper in zip(widths[:-1], widths[1:]):
            step = self._node_voltage(upper, lower, stack.device_type, temperature)
            accumulated += step
            node_voltages.append(accumulated)

        # Top device evaluated at the accumulated source voltage; drain factor
        # dropped (the model's defining approximation).
        top_source = node_voltages[-1]
        top_bias = SubthresholdBias(
            vgs=-top_source,
            vds=vdd - top_source,
            vsb=top_source,
            vdd=vdd,
            temperature=temperature,
        )
        current = subthreshold_current(
            device,
            widths[-1],
            top_bias,
            self.technology.reference_temperature,
            include_drain_factor=False,
        )
        # Express the estimate as an effective width for apples-to-apples
        # comparison with the proposed model's Eq. (13).
        reference_bias = SubthresholdBias(
            vgs=0.0, vds=vdd, vsb=0.0, vdd=vdd, temperature=temperature
        )
        unit_current = subthreshold_current(
            device, 1.0, reference_bias, self.technology.reference_temperature,
            include_drain_factor=False,
        )
        effective_width = current / unit_current if unit_current > 0.0 else 0.0
        return ChenRoyStackEstimate(
            current=current,
            node_voltages=tuple(node_voltages),
            effective_width=effective_width,
            temperature=temperature,
        )

    def stack_off_current(
        self,
        stack: TransistorStack,
        logic_values: Optional[Sequence[int]] = None,
        temperature: Optional[float] = None,
    ) -> float:
        """OFF current [A] of a stack for one input vector."""
        return self.evaluate_stack(stack, logic_values, temperature).current
