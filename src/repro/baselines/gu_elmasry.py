"""Baseline: Gu & Elmasry static-power model (JSSC 1996).

Reference [7] of the paper: *Power dissipation analysis and optimization of
deep submicron CMOS digital circuits*.  The DATE'05 paper characterises it
as applicable only to gates with **up to three** serially connected
transistors and as assuming that every device's drain-source voltage is
much larger than the thermal voltage.

We implement the model at that level of fidelity: explicit closed forms for
stacks of one, two and three OFF devices, obtained by equating the
drain-factor-free subthreshold currents of adjacent devices (the strong-bias
asymptote) and solving the resulting linear system for the internal node
voltages.  Deeper stacks raise :class:`UnsupportedStackDepthError`, which is
itself part of the reproduction — it is the limitation the DATE'05 paper
calls out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..circuit.stack import TransistorStack
from ..technology.constants import thermal_voltage
from ..technology.parameters import TechnologyParameters
from ..core.leakage.subthreshold import SubthresholdBias, subthreshold_current


class UnsupportedStackDepthError(ValueError):
    """Raised when the Gu-Elmasry model is asked for a stack deeper than 3."""


@dataclass(frozen=True)
class GuElmasryEstimate:
    """Result of the Gu-Elmasry baseline for one stack."""

    current: float
    node_voltages: Tuple[float, ...]
    temperature: float


class GuElmasryStackModel:
    """Stack-leakage baseline after Gu & Elmasry, JSSC'96 (paper ref. [7])."""

    MAX_DEPTH = 3

    def __init__(self, technology: TechnologyParameters) -> None:
        self.technology = technology

    def _pair_voltage(
        self,
        upper_width: float,
        lower_width: float,
        device_type: str,
        temperature: float,
    ) -> float:
        """Strong-bias node voltage including body effect and DIBL.

        ``dV = [n VT ln(W_up/W_low) + sigma Vdd] / (1 + gamma' + 2 sigma)``
        clamped at zero (the strong-bias asymptote cannot go negative).
        """
        device = self.technology.device(device_type)
        vt = thermal_voltage(temperature)
        vdd = self.technology.vdd
        numerator = device.n * vt * math.log(upper_width / lower_width) + device.dibl * vdd
        value = numerator / (1.0 + device.body_effect + 2.0 * device.dibl)
        return max(value, 0.0)

    def evaluate_stack(
        self,
        stack: TransistorStack,
        logic_values: Optional[Sequence[int]] = None,
        temperature: Optional[float] = None,
    ) -> GuElmasryEstimate:
        """Estimate the OFF current of a stack of at most three OFF devices."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        if logic_values is None:
            logic_values = stack.all_off_vector()
        off_devices = stack.off_devices(logic_values)
        if not off_devices:
            raise ValueError("the stack has no OFF device for this vector")
        if len(off_devices) > self.MAX_DEPTH:
            raise UnsupportedStackDepthError(
                f"the Gu-Elmasry model supports at most {self.MAX_DEPTH} series "
                f"OFF transistors (got {len(off_devices)})"
            )
        device = self.technology.device(stack.device_type)
        vdd = self.technology.vdd
        widths = [d.width for d in off_devices]

        node_voltages = []
        accumulated = 0.0
        # Pairwise strong-bias balance with the collapsed width of the devices
        # above (the three-device case of the original paper).
        collapsed_upper = widths[-1]
        per_pair = []
        for lower in reversed(widths[:-1]):
            step = self._pair_voltage(
                collapsed_upper, lower, stack.device_type, temperature
            )
            per_pair.append(step)
            exponent = (
                1.0 + device.body_effect + device.dibl
            ) * step / (device.n * thermal_voltage(temperature))
            collapsed_upper = collapsed_upper * math.exp(-exponent)
        for step in reversed(per_pair):
            accumulated += step
            node_voltages.append(accumulated)

        source_voltage = node_voltages[-1] if node_voltages else 0.0
        top_bias = SubthresholdBias(
            vgs=-source_voltage,
            vds=vdd - source_voltage,
            vsb=source_voltage,
            vdd=vdd,
            temperature=temperature,
        )
        current = subthreshold_current(
            device,
            widths[-1],
            top_bias,
            self.technology.reference_temperature,
            include_drain_factor=False,
        )
        return GuElmasryEstimate(
            current=current,
            node_voltages=tuple(node_voltages),
            temperature=temperature,
        )

    def stack_off_current(
        self,
        stack: TransistorStack,
        logic_values: Optional[Sequence[int]] = None,
        temperature: Optional[float] = None,
    ) -> float:
        """OFF current [A] of a stack (at most 3 OFF devices)."""
        return self.evaluate_stack(stack, logic_values, temperature).current
