"""Prior-work leakage models used as comparison baselines (Fig. 8)."""

from .chen_roy import ChenRoyStackEstimate, ChenRoyStackModel
from .gu_elmasry import (
    GuElmasryEstimate,
    GuElmasryStackModel,
    UnsupportedStackDepthError as GuElmasryUnsupportedDepth,
)
from .narendra import (
    NarendraEstimate,
    NarendraFullChipModel,
    NarendraStackModel,
    UnsupportedStackDepthError as NarendraUnsupportedDepth,
)
from .series_resistance import SeriesResistanceStackModel

__all__ = [
    "ChenRoyStackModel",
    "ChenRoyStackEstimate",
    "GuElmasryStackModel",
    "GuElmasryEstimate",
    "GuElmasryUnsupportedDepth",
    "NarendraStackModel",
    "NarendraFullChipModel",
    "NarendraEstimate",
    "NarendraUnsupportedDepth",
    "SeriesResistanceStackModel",
]
