"""Naive baseline: OFF transistors as equal series "leakage resistances".

A back-of-the-envelope heuristic still common in early power spreadsheets:
an N-high OFF stack is assumed to leak ``1/N`` of a single OFF device of the
same (bottom) width, i.e. the devices are treated as identical linear
resistors.  It ignores the exponential suppression produced by the internal
node voltages, so it dramatically *over*-estimates stack leakage — a useful
lower bar in the Fig. 8 comparison and in the accuracy ablations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit.stack import TransistorStack
from ..technology.parameters import TechnologyParameters
from ..core.leakage.subthreshold import single_device_off_current


class SeriesResistanceStackModel:
    """Equal-series-resistance stack leakage heuristic."""

    def __init__(self, technology: TechnologyParameters) -> None:
        self.technology = technology

    def stack_off_current(
        self,
        stack: TransistorStack,
        logic_values: Optional[Sequence[int]] = None,
        temperature: Optional[float] = None,
    ) -> float:
        """OFF current [A]: single-device leakage of the mean width over N."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        if logic_values is None:
            logic_values = stack.all_off_vector()
        off_devices = stack.off_devices(logic_values)
        if not off_devices:
            raise ValueError("the stack has no OFF device for this vector")
        device = self.technology.device(stack.device_type)
        mean_width = sum(d.width for d in off_devices) / len(off_devices)
        single = single_device_off_current(
            device,
            mean_width,
            self.technology.vdd,
            temperature,
            self.technology.reference_temperature,
        )
        return single / len(off_devices)
