"""Baseline: Narendra et al. full-chip subthreshold leakage model (JSSC 2004).

Reference [9] of the paper: *Full-chip subthreshold leakage power prediction
and reduction techniques for sub-0.18 um CMOS*.  The DATE'05 paper
characterises it as valid only for gates with **at most two** serially
connected transistors and as assuming every drain-source voltage is much
larger than the thermal voltage.

Two pieces are implemented:

* :class:`NarendraStackModel` — the one- and two-device closed forms,
  including the well-known *stacking factor* expression for a two-high stack
  of equal-width devices,

  ``X_s = Ioff(stack of 2) / Ioff(single)
        = 10^(-Vdd sigma (1 + 2 gamma') / ((1 + gamma' + 2 sigma) S))``

  with ``S`` the subthreshold swing (the JSSC paper's Eq. for the universal
  two-stack factor, rewritten with this library's parameter names);
* :class:`NarendraFullChipModel` — the full-chip estimate: total leaking
  width times the average per-width leakage scaled by the average stacking
  factor, which is how the original paper projects chip-level leakage from
  design data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuit.stack import TransistorStack
from ..technology.constants import thermal_voltage
from ..technology.parameters import TechnologyParameters
from ..core.leakage.subthreshold import single_device_off_current


class UnsupportedStackDepthError(ValueError):
    """Raised when the Narendra model is asked for a stack deeper than 2."""


@dataclass(frozen=True)
class NarendraEstimate:
    """Result of the Narendra baseline for one stack."""

    current: float
    stacking_factor: float
    temperature: float


class NarendraStackModel:
    """Stack-leakage baseline after Narendra et al., JSSC'04 (paper ref. [9])."""

    MAX_DEPTH = 2

    def __init__(self, technology: TechnologyParameters) -> None:
        self.technology = technology

    def two_stack_factor(
        self, device_type: str, temperature: Optional[float] = None
    ) -> float:
        """Universal two-stack leakage reduction factor ``X_s`` (< 1)."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        device = self.technology.device(device_type)
        vt = thermal_voltage(temperature)
        swing = device.n * vt * math.log(10.0)
        exponent = (
            self.technology.vdd
            * device.dibl
            * (1.0 + 2.0 * device.body_effect)
            / ((1.0 + device.body_effect + 2.0 * device.dibl) * swing)
        )
        return 10.0 ** (-exponent)

    def evaluate_stack(
        self,
        stack: TransistorStack,
        logic_values: Optional[Sequence[int]] = None,
        temperature: Optional[float] = None,
    ) -> NarendraEstimate:
        """Estimate the OFF current of a one- or two-device OFF stack."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        if logic_values is None:
            logic_values = stack.all_off_vector()
        off_devices = stack.off_devices(logic_values)
        if not off_devices:
            raise ValueError("the stack has no OFF device for this vector")
        if len(off_devices) > self.MAX_DEPTH:
            raise UnsupportedStackDepthError(
                f"the Narendra model supports at most {self.MAX_DEPTH} series "
                f"OFF transistors (got {len(off_devices)})"
            )
        device = self.technology.device(stack.device_type)
        vdd = self.technology.vdd

        if len(off_devices) == 1:
            current = single_device_off_current(
                device,
                off_devices[0].width,
                vdd,
                temperature,
                self.technology.reference_temperature,
            )
            return NarendraEstimate(
                current=current, stacking_factor=1.0, temperature=temperature
            )

        # Two-device stack: single-device leakage of the upper device scaled
        # by the universal stacking factor, corrected for the width ratio
        # through the strong-bias node-voltage shift.
        lower, upper = off_devices[0], off_devices[1]
        base_current = single_device_off_current(
            device, upper.width, vdd, temperature,
            self.technology.reference_temperature,
        )
        factor = self.two_stack_factor(stack.device_type, temperature)
        vt = thermal_voltage(temperature)
        ratio_shift = math.exp(
            -(1.0 + device.body_effect + device.dibl)
            * (device.n * vt * math.log(upper.width / lower.width))
            / ((1.0 + device.body_effect + 2.0 * device.dibl) * device.n * vt)
        ) if upper.width != lower.width else 1.0
        current = base_current * factor * ratio_shift
        return NarendraEstimate(
            current=current, stacking_factor=factor, temperature=temperature
        )

    def stack_off_current(
        self,
        stack: TransistorStack,
        logic_values: Optional[Sequence[int]] = None,
        temperature: Optional[float] = None,
    ) -> float:
        """OFF current [A] of a one- or two-device stack."""
        return self.evaluate_stack(stack, logic_values, temperature).current


class NarendraFullChipModel:
    """Full-chip leakage projection after Narendra et al., JSSC'04.

    Parameters
    ----------
    technology:
        Technology parameters.
    stacked_fraction:
        Fraction of the total leaking width that sits in two-high (or deeper)
        stacks and therefore benefits from the stacking factor.
    """

    def __init__(
        self, technology: TechnologyParameters, stacked_fraction: float = 0.5
    ) -> None:
        if not 0.0 <= stacked_fraction <= 1.0:
            raise ValueError("stacked_fraction must be in [0, 1]")
        self.technology = technology
        self.stacked_fraction = stacked_fraction
        self._stack_model = NarendraStackModel(technology)

    def chip_leakage_current(
        self,
        total_nmos_width: float,
        total_pmos_width: float,
        temperature: Optional[float] = None,
    ) -> float:
        """Chip-level leakage current [A] from total device widths."""
        if total_nmos_width < 0.0 or total_pmos_width < 0.0:
            raise ValueError("total widths must be non-negative")
        if temperature is None:
            temperature = self.technology.reference_temperature
        current = 0.0
        for device_type, width in (("nmos", total_nmos_width), ("pmos", total_pmos_width)):
            if width == 0.0:
                continue
            device = self.technology.device(device_type)
            per_width = single_device_off_current(
                device, 1.0, self.technology.vdd, temperature,
                self.technology.reference_temperature,
            )
            factor = self._stack_model.two_stack_factor(device_type, temperature)
            effective = (
                (1.0 - self.stacked_fraction) + self.stacked_fraction * factor
            )
            # Half the width leaks at any time in static CMOS (the other half
            # belongs to the conducting network).
            current += 0.5 * width * per_width * effective
        return current

    def chip_leakage_power(
        self,
        total_nmos_width: float,
        total_pmos_width: float,
        temperature: Optional[float] = None,
    ) -> float:
        """Chip-level static power [W]."""
        return (
            self.chip_leakage_current(total_nmos_width, total_pmos_width, temperature)
            * self.technology.vdd
        )
