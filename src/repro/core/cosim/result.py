"""Result containers for the electro-thermal co-simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..dynamic.total import PowerBreakdown


@dataclass(frozen=True)
class CosimIteration:
    """State of one fixed-point iteration.

    Attributes
    ----------
    index:
        Iteration number (0 is the initial, isothermal evaluation).
    block_temperatures:
        Junction temperature [K] of every block at the end of the iteration.
    block_powers:
        Total power [W] of every block evaluated at the iteration's
        temperatures.
    max_temperature_change:
        Largest block-temperature change [K] with respect to the previous
        iteration (infinity for the first one).
    """

    index: int
    block_temperatures: Dict[str, float]
    block_powers: Dict[str, float]
    max_temperature_change: float


@dataclass(frozen=True)
class CosimResult:
    """Converged (or best-effort) electro-thermal solution.

    Attributes
    ----------
    block_temperatures:
        Self-consistent junction temperature [K] per block.
    block_breakdowns:
        Power breakdown per block at the final temperatures.
    ambient_temperature:
        Heat-sink temperature [K].
    converged:
        Whether the fixed point met the tolerance within the iteration cap.
    iterations:
        Per-iteration history.
    """

    block_temperatures: Dict[str, float]
    block_breakdowns: Dict[str, PowerBreakdown]
    ambient_temperature: float
    converged: bool
    iterations: Tuple[CosimIteration, ...] = ()

    @property
    def iteration_count(self) -> int:
        """Number of fixed-point iterations performed."""
        return len(self.iterations)

    @property
    def total_power(self) -> float:
        """Chip total power [W] at the converged temperatures."""
        return sum(b.total for b in self.block_breakdowns.values())

    @property
    def total_static_power(self) -> float:
        """Chip static power [W] at the converged temperatures."""
        return sum(b.static for b in self.block_breakdowns.values())

    @property
    def total_dynamic_power(self) -> float:
        """Chip dynamic power [W]."""
        return sum(b.dynamic for b in self.block_breakdowns.values())

    @property
    def peak_temperature(self) -> float:
        """Hottest block junction temperature [K]."""
        return max(self.block_temperatures.values())

    @property
    def peak_rise(self) -> float:
        """Hottest block temperature rise [K] above ambient."""
        return self.peak_temperature - self.ambient_temperature

    def hottest_block(self) -> str:
        """Name of the hottest block."""
        return max(self.block_temperatures, key=self.block_temperatures.get)
