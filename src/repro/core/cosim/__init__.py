"""Concurrent electro-thermal co-simulation (the paper's headline capability)."""

from .coupling import (
    BlockPowerModel,
    NetlistBlockModel,
    ScaledLeakageBlockModel,
    block_models_from_powers,
    leakage_temperature_ratio,
    leakage_temperature_ratio_batch,
)
from .engine import ElectroThermalEngine
from .resistance_cache import reduced_unit_matrix, unit_resistance_matrix
from .result import CosimIteration, CosimResult
from .scenarios import (
    Scenario,
    ScenarioBatchResult,
    ScenarioEngine,
    ScenarioPhysics,
    scenario_grid,
)
from .transient import (
    TransientCosimResult,
    TransientElectroThermalSimulator,
    square_wave_activity_profile,
    step_activity_profile,
)
from .transient_scenarios import (
    ActivityGrid,
    ConstantActivity,
    PWMActivity,
    StepActivity,
    TraceActivity,
    TransientBatchResult,
    TransientScenarioEngine,
    integrate_relaxation,
)

__all__ = [
    "TransientElectroThermalSimulator",
    "TransientCosimResult",
    "step_activity_profile",
    "square_wave_activity_profile",
    "ActivityGrid",
    "ConstantActivity",
    "StepActivity",
    "PWMActivity",
    "TraceActivity",
    "TransientBatchResult",
    "TransientScenarioEngine",
    "integrate_relaxation",
    "ScenarioPhysics",
    "BlockPowerModel",
    "ScaledLeakageBlockModel",
    "NetlistBlockModel",
    "block_models_from_powers",
    "leakage_temperature_ratio",
    "leakage_temperature_ratio_batch",
    "ElectroThermalEngine",
    "CosimIteration",
    "CosimResult",
    "Scenario",
    "ScenarioBatchResult",
    "ScenarioEngine",
    "scenario_grid",
    "reduced_unit_matrix",
    "unit_resistance_matrix",
]
