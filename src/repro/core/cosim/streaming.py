"""Constant-memory streaming execution over scenario grids.

The batched engines (:class:`~repro.core.cosim.scenarios.ScenarioEngine`,
:class:`~repro.core.cosim.transient_scenarios.TransientScenarioEngine`)
materialize the full ``(n_scenarios, n_blocks)`` (× ``n_steps``) tensor in
one shot, so a 10^6–10^7-row grid swaps or OOMs long before the CPU is the
bottleneck.  This module keeps memory flat in the grid size instead:

* :class:`ChunkPlan` cuts a (possibly lazy) scenario stream into
  fixed-size chunks and owns one
  :class:`~repro.core.cosim.scenarios.Workspace` of preallocated work
  buffers that every chunk reuses — the damped fixed point and the
  exact-exponential transient update run via ``out=``/in-place ufuncs on
  the same storage, chunk after chunk;
* :class:`OnlineSteadyReduction` / :class:`OnlineTransientReduction`
  accumulate the standard per-scenario metric series (peak temperature and
  rise, powers, convergence/runaway verdicts and first-crossing times,
  settle times, energy) plus global and per-block aggregates chunk by
  chunk, without ever holding the full field tensor;
* :func:`stream_steady` / :func:`stream_transient` drive the two engines
  over a plan, optionally persisting the *full* per-scenario fields to
  ``numpy`` memmaps (real ``.npy`` files, reloadable with ``np.load``)
  when the caller does want every row on disk.

Chunked execution is **bit-identical** to the monolithic path by
construction: both run the exact same in-place update loops
(:func:`~repro.core.cosim.scenarios.solve_fixed_point`,
:func:`~repro.core.cosim.transient_scenarios.integrate_relaxation`), and
every scenario row's trajectory is independent of its neighbors, so the
chunk boundaries cannot change a single float.  ``tests/test_streaming.py``
pins exact equality across chunk sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from .scenarios import (
    Scenario,
    ScenarioBatchResult,
    ScenarioEngine,
    Workspace,
    validate_fixed_point_options,
)
from .transient_scenarios import (
    ActivityGrid,
    TransientBatchResult,
    TransientScenarioEngine,
)

#: Default scenario rows per chunk for steady fixed points (a few MB of
#: work buffers at typical block counts).
DEFAULT_CHUNK_SIZE = 65536

#: Default rows per chunk for transient integrations, where each row
#: carries a full time history (``steps x blocks``) through the chunk.
DEFAULT_TRANSIENT_CHUNK_SIZE = 2048


class ChunkPlan:
    """Fixed-size chunking of a scenario stream, with shared work buffers.

    One plan drives one streamed run: :meth:`chunks` slices the scenario
    iterable into lists of at most ``chunk_size`` rows (the last chunk may
    be shorter), and :attr:`workspace` holds the preallocated buffers the
    per-chunk solver loops reuse via ``out=``/in-place ufuncs.  Buffers
    are allocated in the engine's working dtype (see
    :mod:`repro.core.backend`), so a ``precision="float32"`` policy
    halves the streamed working-set memory too; results still leave every
    chunk as host ``float64`` arrays.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        chunk_size = int(chunk_size)
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.chunk_size = chunk_size
        self.workspace = Workspace()

    def chunks(self, scenarios: Iterable[Scenario]) -> Iterator[List[Scenario]]:
        """Consecutive chunks of at most :attr:`chunk_size` scenarios."""
        chunk: List[Scenario] = []
        for scenario in scenarios:
            chunk.append(scenario)
            if len(chunk) == self.chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


@dataclass(frozen=True)
class StreamProgress:
    """One progress observation of a streamed run (per completed chunk)."""

    rows_done: int
    total_rows: Optional[int]
    chunk_index: int
    elapsed_seconds: float

    @property
    def rows_per_second(self) -> float:
        """Throughput so far (0.0 until time has measurably passed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.rows_done / self.elapsed_seconds

    @property
    def eta_seconds(self) -> Optional[float]:
        """Projected remaining seconds (``None`` without a known total)."""
        rate = self.rows_per_second
        if self.total_rows is None or rate <= 0.0:
            return None
        return max(self.total_rows - self.rows_done, 0) / rate


#: Per-chunk progress observer.
ProgressCallback = Callable[[StreamProgress], None]


def _known_total(
    scenarios: Iterable[Scenario], total: Optional[int]
) -> Optional[int]:
    if total is not None:
        total = int(total)
        if total < 1:
            raise ValueError("total must be at least 1 when given")
        return total
    try:
        return len(scenarios)  # type: ignore[arg-type]
    except TypeError:
        return None


class _FieldSink:
    """Full per-scenario field storage: in-memory arrays or ``.npy`` memmaps.

    Arrays are created on the first chunk (when trailing shapes are known)
    sized for the full grid, filled chunk by chunk, and handed out once at
    :meth:`finalize`.  With a directory path, each named field becomes a
    ``<name>.npy`` memmap on disk — a real array file, reloadable with
    ``np.load(..., mmap_mode="r")`` — so peak RSS stays bounded by the
    chunk, not the grid.
    """

    def __init__(self, total: int, directory: Optional[Union[str, Path]]) -> None:
        if total < 1:
            raise ValueError("field storage needs at least one scenario row")
        self.total = total
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._arrays: Dict[str, np.ndarray] = {}

    def _create(self, name: str, tail: Tuple[int, ...], dtype) -> np.ndarray:
        shape = (self.total, *tail)
        if self.directory is None:
            return np.empty(shape, dtype=dtype)
        return np.lib.format.open_memmap(
            self.directory / f"{name}.npy", mode="w+", dtype=dtype, shape=shape
        )

    def write(self, name: str, offset: int, values: np.ndarray) -> None:
        """Store one chunk's rows of the named field at ``offset``."""
        values = np.asarray(values)
        array = self._arrays.get(name)
        if array is None:
            array = self._create(name, values.shape[1:], values.dtype)
            self._arrays[name] = array
        array[offset : offset + values.shape[0]] = values

    def write_shared(self, name: str, values: np.ndarray) -> None:
        """Store a grid-wide (non-per-scenario) array, e.g. the time grid."""
        values = np.asarray(values)
        if name not in self._arrays:
            if self.directory is None:
                self._arrays[name] = values.copy()
            else:
                array = np.lib.format.open_memmap(
                    self.directory / f"{name}.npy",
                    mode="w+",
                    dtype=values.dtype,
                    shape=values.shape,
                )
                array[...] = values
                self._arrays[name] = array

    def finalize(self) -> Dict[str, np.ndarray]:
        """Flush memmaps and return the named field arrays."""
        for array in self._arrays.values():
            if isinstance(array, np.memmap):
                array.flush()
        return dict(self._arrays)


class OnlineSteadyReduction:
    """Chunk-by-chunk accumulator of the steady batch metrics.

    Per-scenario series (1-D over the whole grid) and global/per-block
    aggregates are computed from each chunk's
    :class:`~repro.core.cosim.scenarios.ScenarioBatchResult` through the
    *same* property definitions the monolithic path reports, so streamed
    values are bit-identical to their monolithic counterparts (``max`` and
    ``sum``-per-row commute with chunking because every reduction here is
    per-row or an exact associative fold).
    """

    #: Per-scenario series accumulated, in emission order.
    SERIES = (
        "peak_temperature",
        "peak_rise",
        "total_power",
        "total_static_power",
        "converged",
        "iteration_counts",
        "ambient_temperatures",
    )

    def __init__(self) -> None:
        self._series: Dict[str, List[np.ndarray]] = {
            name: [] for name in self.SERIES
        }
        self.scenario_count = 0
        self.chunk_count = 0
        self.converged_count = 0
        self.block_names: Tuple[str, ...] = ()
        self._block_max: Optional[np.ndarray] = None

    def update(self, batch: ScenarioBatchResult) -> None:
        """Fold one chunk's batch result into the running reduction."""
        if not self.block_names:
            self.block_names = batch.block_names
        elif self.block_names != batch.block_names:
            raise ValueError("chunks must share one block ordering")
        self._series["peak_temperature"].append(batch.peak_temperature)
        self._series["peak_rise"].append(batch.peak_rise)
        self._series["total_power"].append(batch.total_power)
        self._series["total_static_power"].append(batch.total_static_power)
        self._series["converged"].append(batch.converged.copy())
        self._series["iteration_counts"].append(batch.iteration_counts.copy())
        self._series["ambient_temperatures"].append(
            batch.ambient_temperatures.copy()
        )
        self.scenario_count += len(batch)
        self.chunk_count += 1
        self.converged_count += int(batch.converged.sum())
        chunk_max = batch.block_temperatures.max(axis=0)
        if self._block_max is None:
            self._block_max = chunk_max
        else:
            self._block_max = np.maximum(self._block_max, chunk_max)

    def series(self) -> Dict[str, np.ndarray]:
        """The accumulated per-scenario series, concatenated."""
        if self.scenario_count == 0:
            raise ValueError("no chunks were reduced")
        return {
            name: np.concatenate(parts) for name, parts in self._series.items()
        }

    @property
    def block_temperature_max(self) -> np.ndarray:
        """Hottest junction temperature [K] per block over the grid."""
        if self._block_max is None:
            raise ValueError("no chunks were reduced")
        return self._block_max

    @property
    def runaway_count(self) -> int:
        """Scenarios reporting non-convergence (incl. runaway ceiling)."""
        return self.scenario_count - self.converged_count


class OnlineTransientReduction:
    """Chunk-by-chunk accumulator of the transient batch metrics.

    The per-scenario transient metrics (peak, overshoot, settle time,
    energy, runaway) each depend only on that scenario's own time history,
    which is complete within its chunk — so folding chunk results through
    the same :class:`TransientBatchResult` properties the monolithic path
    uses reproduces the monolithic series bit-for-bit.
    """

    SERIES = (
        "peak_temperature",
        "peak_rise",
        "overshoot",
        "settle_time",
        "total_energy",
        "runaway",
        "runaway_times",
        "ambient_temperatures",
    )

    def __init__(self, settle_tolerance_kelvin: float = 0.5) -> None:
        if settle_tolerance_kelvin <= 0.0:
            raise ValueError("settle_tolerance_kelvin must be positive")
        self.settle_tolerance_kelvin = float(settle_tolerance_kelvin)
        self._series: Dict[str, List[np.ndarray]] = {
            name: [] for name in self.SERIES
        }
        self.scenario_count = 0
        self.chunk_count = 0
        self.runaway_count = 0
        self.block_names: Tuple[str, ...] = ()
        self.times: Optional[np.ndarray] = None
        self._block_max: Optional[np.ndarray] = None
        self._max_overshoot = 0.0

    def update(self, batch: TransientBatchResult) -> None:
        """Fold one chunk's transient result into the running reduction."""
        if not self.block_names:
            self.block_names = batch.block_names
        elif self.block_names != batch.block_names:
            raise ValueError("chunks must share one block ordering")
        if self.times is None:
            self.times = np.asarray(batch.times).copy()
        elif not np.array_equal(self.times, batch.times):
            raise ValueError("chunks must share one time grid")
        overshoot = batch.overshoot
        self._series["peak_temperature"].append(batch.peak_temperature)
        self._series["peak_rise"].append(batch.peak_rise)
        self._series["overshoot"].append(overshoot)
        self._series["settle_time"].append(
            batch.settle_times(self.settle_tolerance_kelvin)
        )
        self._series["total_energy"].append(batch.total_energy())
        self._series["runaway"].append(batch.runaway.copy())
        self._series["runaway_times"].append(batch.runaway_times.copy())
        self._series["ambient_temperatures"].append(
            batch.ambient_temperatures.copy()
        )
        self.scenario_count += len(batch)
        self.chunk_count += 1
        self.runaway_count += int(batch.runaway.sum())
        self._max_overshoot = max(self._max_overshoot, float(overshoot.max()))
        chunk_max = batch.block_temperatures.max(axis=(0, 1))
        if self._block_max is None:
            self._block_max = chunk_max
        else:
            self._block_max = np.maximum(self._block_max, chunk_max)

    def series(self) -> Dict[str, np.ndarray]:
        """The accumulated per-scenario series, concatenated."""
        if self.scenario_count == 0:
            raise ValueError("no chunks were reduced")
        return {
            name: np.concatenate(parts) for name, parts in self._series.items()
        }

    @property
    def block_temperature_max(self) -> np.ndarray:
        """Hottest sampled temperature [K] per block over the grid."""
        if self._block_max is None:
            raise ValueError("no chunks were reduced")
        return self._block_max

    @property
    def max_overshoot(self) -> float:
        """Largest overshoot [K] above the final state over the grid."""
        return self._max_overshoot

    @property
    def step_count(self) -> int:
        """Samples of the shared time grid."""
        if self.times is None:
            raise ValueError("no chunks were reduced")
        return int(self.times.shape[0])


@dataclass(frozen=True)
class SteadyStreamResult:
    """Reduced result of a streamed steady run.

    ``series`` holds the per-scenario 1-D metric arrays (8 MB per million
    scenarios per series — the constant-memory payload); ``fields`` holds
    the full ``(scenarios, blocks)`` arrays only when field retention or a
    memmap directory was requested, ``None`` otherwise.
    """

    block_names: Tuple[str, ...]
    scenario_count: int
    chunk_count: int
    chunk_size: int
    series: Dict[str, np.ndarray]
    block_temperature_max: np.ndarray
    converged_count: int
    elapsed_seconds: float
    fields: Optional[Dict[str, np.ndarray]] = None
    memmap_path: Optional[str] = None

    @property
    def runaway_count(self) -> int:
        """Scenarios reporting non-convergence (incl. runaway ceiling)."""
        return self.scenario_count - self.converged_count

    @property
    def peak_temperature(self) -> float:
        """Hottest junction temperature [K] over the whole grid."""
        return float(self.series["peak_temperature"].max())

    @property
    def max_total_power(self) -> float:
        """Largest chip total power [W] over the whole grid."""
        return float(self.series["total_power"].max())


@dataclass(frozen=True)
class TransientStreamResult:
    """Reduced result of a streamed transient run (see
    :class:`SteadyStreamResult`; ``times`` is the shared step grid)."""

    block_names: Tuple[str, ...]
    scenario_count: int
    chunk_count: int
    chunk_size: int
    times: np.ndarray
    series: Dict[str, np.ndarray]
    block_temperature_max: np.ndarray
    runaway_count: int
    max_overshoot: float
    elapsed_seconds: float
    fields: Optional[Dict[str, np.ndarray]] = None
    memmap_path: Optional[str] = None

    @property
    def step_count(self) -> int:
        """Samples of the shared time grid."""
        return int(self.times.shape[0])

    @property
    def peak_temperature(self) -> float:
        """Hottest sampled temperature [K] over the whole grid."""
        return float(self.series["peak_temperature"].max())


def _prepare_sink(
    keep_fields: bool,
    memmap_path: Optional[Union[str, Path]],
    total: Optional[int],
) -> Optional[_FieldSink]:
    if not keep_fields and memmap_path is None:
        return None
    if total is None:
        raise ValueError(
            "full-field retention needs the grid size up front: pass a sized "
            "scenario sequence or total="
        )
    return _FieldSink(total, memmap_path)


def stream_steady(
    engine: ScenarioEngine,
    scenarios: Iterable[Scenario],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    total: Optional[int] = None,
    keep_fields: bool = False,
    memmap_path: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    max_iterations: int = 50,
    tolerance: float = 0.01,
    damping: float = 1.0,
    max_temperature: float = 500.0,
) -> SteadyStreamResult:
    """Solve a scenario stream chunk by chunk with online reduction.

    Parameters
    ----------
    engine:
        The steady :class:`~repro.core.cosim.scenarios.ScenarioEngine`.
    scenarios:
        Any scenario iterable — a list, or a lazy generator such as
        :func:`~repro.core.cosim.scenarios.scenario_grid_stream` (the grid
        then never exists in memory at once).
    chunk_size:
        Rows solved per chunk; work-buffer memory scales with this, not
        with the grid.
    total:
        Grid size when ``scenarios`` is an unsized iterator (required only
        for full-field retention and progress ETAs).
    keep_fields, memmap_path:
        Retain the full per-scenario field arrays — in memory
        (``keep_fields=True``) or as ``<name>.npy`` memmaps under the given
        directory (which implies retention).  The reduced series are always
        computed.
    progress:
        Per-chunk :class:`StreamProgress` observer.
    max_iterations, tolerance, damping, max_temperature:
        Fixed-point options, exactly as
        :meth:`~repro.core.cosim.scenarios.ScenarioEngine.solve`.
    """
    validate_fixed_point_options(max_iterations, tolerance, damping)
    plan = ChunkPlan(chunk_size)
    total = _known_total(scenarios, total)
    sink = _prepare_sink(keep_fields, memmap_path, total)
    reduction = OnlineSteadyReduction()
    started = time.perf_counter()
    offset = 0
    for chunk_index, chunk in enumerate(plan.chunks(scenarios)):
        batch = engine.solve(
            chunk,
            max_iterations=max_iterations,
            tolerance=tolerance,
            damping=damping,
            max_temperature=max_temperature,
            workspace=plan.workspace,
        )
        reduction.update(batch)
        if sink is not None:
            sink.write("block_temperatures", offset, batch.block_temperatures)
            sink.write("dynamic_power", offset, batch.dynamic_power)
            sink.write("static_power", offset, batch.static_power)
            sink.write("ambient_temperatures", offset, batch.ambient_temperatures)
            sink.write("converged", offset, batch.converged)
            sink.write("iteration_counts", offset, batch.iteration_counts)
        offset += len(batch)
        if progress is not None:
            progress(
                StreamProgress(
                    rows_done=offset,
                    total_rows=total,
                    chunk_index=chunk_index,
                    elapsed_seconds=time.perf_counter() - started,
                )
            )
    if reduction.scenario_count == 0:
        raise ValueError("at least one scenario is required")
    return SteadyStreamResult(
        block_names=reduction.block_names,
        scenario_count=reduction.scenario_count,
        chunk_count=reduction.chunk_count,
        chunk_size=plan.chunk_size,
        series=reduction.series(),
        block_temperature_max=reduction.block_temperature_max,
        converged_count=reduction.converged_count,
        elapsed_seconds=time.perf_counter() - started,
        fields=sink.finalize() if sink is not None else None,
        memmap_path=str(memmap_path) if memmap_path is not None else None,
    )


def stream_transient(
    engine: TransientScenarioEngine,
    scenarios: Iterable[Scenario],
    duration: float,
    time_step: float,
    activity: Optional[ActivityGrid] = None,
    chunk_size: int = DEFAULT_TRANSIENT_CHUNK_SIZE,
    total: Optional[int] = None,
    keep_fields: bool = False,
    memmap_path: Optional[Union[str, Path]] = None,
    progress: Optional[ProgressCallback] = None,
    settle_tolerance_kelvin: float = 0.5,
    **simulate_kwargs,
) -> TransientStreamResult:
    """Integrate a scenario stream chunk by chunk with online reduction.

    The transient counterpart of :func:`stream_steady`: each chunk runs
    :meth:`~repro.core.cosim.transient_scenarios.TransientScenarioEngine.simulate`
    over the shared time grid, per-scenario activity grids are sliced by
    the chunk's row offset (so a chunked run sees exactly the monolithic
    workload; this needs the grid size — pass a sized sequence or
    ``total=`` when the activity varies per scenario), and the standard
    transient metrics are reduced online.  ``settle_tolerance_kelvin`` is
    the reporting band of the ``settle_time`` series, as in
    :func:`repro.analysis.sweep.transient_batch_series`.
    """
    plan = ChunkPlan(chunk_size)
    total = _known_total(scenarios, total)
    if total is None and activity is not None:
        values = np.asarray(activity.values(0.0), dtype=float)
        if values.ndim == 2 and values.shape[0] > 1:
            raise ValueError(
                "per-scenario activity grids need the grid size up front: "
                "pass a sized scenario sequence or total="
            )
    sink = _prepare_sink(keep_fields, memmap_path, total)
    reduction = OnlineTransientReduction(settle_tolerance_kelvin)
    started = time.perf_counter()
    offset = 0
    for chunk_index, chunk in enumerate(plan.chunks(scenarios)):
        batch = engine.simulate(
            chunk,
            duration,
            time_step,
            activity=activity,
            workspace=plan.workspace,
            # Without a known grid size the activity is scenario-uniform
            # (guarded above), so every chunk may start at row 0.
            scenario_offset=offset if total is not None else 0,
            total_scenarios=total,
            **simulate_kwargs,
        )
        reduction.update(batch)
        if sink is not None:
            sink.write_shared("times", batch.times)
            sink.write("block_temperatures", offset, batch.block_temperatures)
            sink.write("block_powers", offset, batch.block_powers)
            sink.write("ambient_temperatures", offset, batch.ambient_temperatures)
            sink.write("runaway", offset, batch.runaway)
            sink.write("runaway_times", offset, batch.runaway_times)
        offset += len(batch)
        if progress is not None:
            progress(
                StreamProgress(
                    rows_done=offset,
                    total_rows=total,
                    chunk_index=chunk_index,
                    elapsed_seconds=time.perf_counter() - started,
                )
            )
    if reduction.scenario_count == 0:
        raise ValueError("at least one scenario is required")
    assert reduction.times is not None
    return TransientStreamResult(
        block_names=reduction.block_names,
        scenario_count=reduction.scenario_count,
        chunk_count=reduction.chunk_count,
        chunk_size=plan.chunk_size,
        times=reduction.times,
        series=reduction.series(),
        block_temperature_max=reduction.block_temperature_max,
        runaway_count=reduction.runaway_count,
        max_overshoot=reduction.max_overshoot,
        elapsed_seconds=time.perf_counter() - started,
        fields=sink.finalize() if sink is not None else None,
        memmap_path=str(memmap_path) if memmap_path is not None else None,
    )


def format_progress(update: StreamProgress) -> str:
    """One-line human-readable progress report (the CLI's ``--progress``)."""
    if update.total_rows:
        head = f"chunk {update.chunk_index + 1}: "
        head += f"{update.rows_done}/{update.total_rows} scenarios"
    else:
        head = f"chunk {update.chunk_index + 1}: {update.rows_done} scenarios"
    rate = update.rows_per_second
    parts = [head, f"{rate:,.0f} rows/s" if rate else "-- rows/s"]
    eta = update.eta_seconds
    if eta is not None:
        parts.append(f"ETA {eta:.1f}s")
    return " | ".join(parts)
