"""Multi-scenario electro-thermal engine: batched fixed points.

:class:`~repro.core.cosim.engine.ElectroThermalEngine` solves *one*
operating condition at a time; every sweep over technology nodes, supply
voltages, ambient temperatures or workloads therefore loops whole fixed
points in Python.  This module batches that outer loop the same way the
thermal kernel batched point evaluation:

* a :class:`Scenario` names one operating condition — a technology node, a
  supply voltage, an ambient (heat-sink) temperature and a per-block
  activity scaling;
* :func:`scenario_grid` builds the full cross product of those axes
  (:func:`scenario_grid_stream` yields the same grid lazily for
  million-row sweeps);
* :class:`ScenarioEngine` evaluates *all* scenarios concurrently: block
  powers go through the vectorized leakage kernel (one broadcast Eq. 13
  evaluation per fixed-point iteration for every scenario x block pair),
  the block-to-block thermal-resistance matrix is reduced **once** per
  floorplan geometry (it is power-independent; per-scenario conductivity
  enters as a ``1/k`` scale, see
  :mod:`~repro.core.cosim.resistance_cache`), and the damped fixed point
  of the scalar engine runs as array operations over the whole batch.

Scenario powers derive from per-block reference powers exactly like
:class:`~repro.core.cosim.coupling.ScaledLeakageBlockModel`, with two
closed-form scalings on top: dynamic power follows ``activity x
(Vdd / Vdd_nominal)^2`` (the ``a C V^2 f`` law) and static power follows
``Vdd / Vdd_nominal`` (the model's OFF current is supply-independent
because the DIBL term of Eq. 2 cancels at ``VDS = VDD``, so only the
``I x Vdd`` product scales).  :meth:`ScenarioEngine.solve_scalar` runs the
identical physics through a per-scenario
:class:`~repro.core.cosim.engine.ElectroThermalEngine`, which is both the
parity oracle of ``tests/test_scenarios.py`` and the baseline of
``benchmarks/test_scenario_throughput.py``.
"""

from __future__ import annotations

from collections import abc
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ...floorplan.floorplan import Floorplan
from ...technology.constants import BOLTZMANN, ELEMENTARY_CHARGE
from ...technology.parameters import TechnologyParameters
from ..backend import (
    Precision,
    resolve_namespace,
    resolve_precision,
    supports_inplace,
    to_numpy,
)
from ..dynamic.total import PowerBreakdown
from ..leakage import kernel as leakage_kernel
from ..thermal.operator import ThermalOperator
from .coupling import BlockPowerModel, ScaledLeakageBlockModel
from .engine import ElectroThermalEngine, _image_configuration, resolve_operator
from .resistance_cache import reduced_unit_matrix
from .result import CosimResult


def _take_rows(array, rows, xp):
    """``array[rows]`` for slice/array row selectors, portably across ``xp``."""
    if isinstance(rows, slice) or xp is np:
        return array[rows]
    return xp.take(array, xp.asarray(rows), axis=0)


@dataclass(frozen=True)
class Scenario:
    """One operating condition of a floorplan.

    Attributes
    ----------
    technology:
        Technology node (device compact models, nominal supply, thermal
        environment defaults).
    supply_voltage:
        Operating supply [V]; the node's nominal ``Vdd`` when ``None``.
    ambient_temperature:
        Heat-sink temperature [K]; the node's thermal default when ``None``.
    activity:
        Dynamic-power scaling — a single factor for every block, or a
        per-block mapping (missing blocks default to 1.0).
    label:
        Optional display name; :meth:`describe` derives one otherwise.
    """

    technology: TechnologyParameters
    supply_voltage: Optional[float] = None
    ambient_temperature: Optional[float] = None
    activity: Union[float, Mapping[str, float]] = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.supply_voltage is not None and self.supply_voltage <= 0.0:
            raise ValueError("supply_voltage must be positive")
        if self.ambient_temperature is not None and self.ambient_temperature <= 0.0:
            raise ValueError("ambient_temperature must be positive (Kelvin)")
        if isinstance(self.activity, abc.Mapping):
            if any(value < 0.0 for value in self.activity.values()):
                raise ValueError("activity factors must be non-negative")
        elif self.activity < 0.0:
            raise ValueError("activity must be non-negative")

    @property
    def vdd(self) -> float:
        """Operating supply voltage [V]."""
        if self.supply_voltage is not None:
            return self.supply_voltage
        return self.technology.vdd

    @property
    def supply_scale(self) -> float:
        """Operating supply as a fraction of the node's nominal ``Vdd``."""
        return self.vdd / self.technology.vdd

    @property
    def ambient(self) -> float:
        """Heat-sink temperature [K]."""
        if self.ambient_temperature is not None:
            return self.ambient_temperature
        return self.technology.thermal.ambient_temperature

    def activity_factor(self, block_name: str) -> float:
        """Dynamic-power scaling of one block (1.0 when unspecified)."""
        if isinstance(self.activity, abc.Mapping):
            return float(self.activity.get(block_name, 1.0))
        return float(self.activity)

    def describe(self) -> str:
        """Human-readable scenario name."""
        if self.label:
            return self.label
        return (
            f"{self.technology.name}@{self.vdd:.2f}V"
            f"/{self.ambient:.1f}K/act{self.activity!r}"
        )


def scenario_grid_stream(
    technologies: Sequence[TechnologyParameters],
    supply_scales: Iterable[float] = (1.0,),
    ambient_temperatures: Iterable[Optional[float]] = (None,),
    activities: Iterable[Union[float, Mapping[str, float]]] = (1.0,),
) -> Iterator[Scenario]:
    """Lazy cross product of the four scenario axes, in deterministic order.

    Yields the exact scenarios :func:`scenario_grid` would return, one at a
    time, so million-row grids never exist as a list: the streaming
    execution path (:mod:`repro.core.cosim.streaming`) pulls fixed-size
    chunks straight off this iterator.  Axis validation happens eagerly —
    before the first scenario is requested — and one-shot axis iterators
    are materialized up front so the nested re-iteration is safe.

    Parameters
    ----------
    technologies:
        Technology nodes to cover.
    supply_scales:
        Supply voltages as fractions of each node's nominal ``Vdd`` (so one
        grid spans nodes with very different absolute supplies).
    ambient_temperatures:
        Heat-sink temperatures [K]; ``None`` selects each node's default.
    activities:
        Per-scenario activity scalings (scalar or per-block mapping).
    """
    technologies = tuple(technologies)
    if not technologies:
        raise ValueError("at least one technology is required")
    supply_scales = tuple(supply_scales)
    ambient_temperatures = tuple(ambient_temperatures)
    activities = tuple(activities)

    def generate() -> Iterator[Scenario]:
        for technology in technologies:
            for scale in supply_scales:
                for ambient in ambient_temperatures:
                    for activity in activities:
                        yield Scenario(
                            technology=technology,
                            supply_voltage=scale * technology.vdd,
                            ambient_temperature=ambient,
                            activity=activity,
                        )

    return generate()


def scenario_grid(
    technologies: Sequence[TechnologyParameters],
    supply_scales: Iterable[float] = (1.0,),
    ambient_temperatures: Iterable[Optional[float]] = (None,),
    activities: Iterable[Union[float, Mapping[str, float]]] = (1.0,),
) -> List[Scenario]:
    """Cross product of the four scenario axes, as a list.

    Delegates to :func:`scenario_grid_stream` (same ordering, same
    validation) and materializes the result — use the stream directly when
    the grid is too large to hold.
    """
    return list(
        scenario_grid_stream(
            technologies,
            supply_scales=supply_scales,
            ambient_temperatures=ambient_temperatures,
            activities=activities,
        )
    )


class Workspace:
    """Named, reusable work buffers for the batched update loops.

    The streaming executor (:mod:`repro.core.cosim.streaming`) runs every
    chunk through one :class:`Workspace`, so the damped fixed point and the
    exact-exponential transient update touch preallocated memory via
    ``out=``/in-place ufuncs instead of allocating fresh arrays per chunk.
    Buffers are keyed by name, grown on demand, and handed out as leading
    ``[:rows]`` views — a later, smaller chunk reuses the same storage.
    """

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def buffer(
        self, name: str, shape: Tuple[int, ...], dtype: type = float
    ) -> np.ndarray:
        """A ``shape``-sized view of the named buffer (allocating/growing)."""
        base = self._buffers.get(name)
        if (
            base is None
            or base.dtype != np.dtype(dtype)
            or base.shape[1:] != tuple(shape[1:])
            or base.shape[0] < shape[0]
        ):
            base = np.empty(shape, dtype=dtype)
            self._buffers[name] = base
        return base[: shape[0]]

    def nbytes(self) -> int:
        """Total bytes currently held (for budget introspection/tests)."""
        return sum(buffer.nbytes for buffer in self._buffers.values())


def _work_buffer(
    workspace: Optional[Workspace],
    name: str,
    shape: Tuple[int, ...],
    dtype: type = float,
) -> np.ndarray:
    """A named workspace view, or a fresh array when no workspace is given."""
    if workspace is None:
        return np.empty(shape, dtype=dtype)
    return workspace.buffer(name, shape, dtype)


class ScenarioPhysics:
    """Precomputed per-scenario arrays of a scenario batch.

    Everything the batched solvers need per scenario — ambient and
    heat-sink constants, supply/activity-scaled block powers, and the
    leakage-kernel pieces of the paper's Eq. 13 — is computed once here and
    shared by the steady-state fixed point
    (:meth:`ScenarioEngine.solve`) and the transient integrator
    (:class:`~repro.core.cosim.transient_scenarios.TransientScenarioEngine`),
    so the two paths scale supply, activity and leakage with the *same*
    floating-point operations.

    Array attributes are indexed ``[scenario]`` or ``[scenario, block]``
    with blocks in :attr:`ScenarioEngine.block_names` order.
    """

    def __init__(self, engine: "ScenarioEngine", scenarios: Sequence[Scenario]):
        scenarios = tuple(scenarios)
        if not scenarios:
            raise ValueError("at least one scenario is required")
        self.scenarios = scenarios
        count = len(scenarios)
        blocks = len(engine.block_names)
        self.count = count
        self.blocks = blocks
        # Backend/precision policy: everything is staged in numpy float64
        # exactly as before the seam (so the default path never converts,
        # and non-default runs derive from the same staged float64 values),
        # then the hot arrays are cast once at the end of construction.
        self.xp = engine.array_namespace
        self.precision = engine.precision
        self.dtype = engine.working_dtype
        self.inplace = supports_inplace(self.xp)
        self._default_policy = self.inplace and self.precision.name == "float64"
        self._unit_matrix = engine._unit_matrix
        self._unit_matrix_host = engine._unit_matrix_host

        # Grids repeat a handful of technology nodes across hundreds of
        # scenarios; per-node constants are computed once per distinct node
        # and fanned out by index.
        node_index: Dict[int, int] = {}
        nodes: List[TechnologyParameters] = []
        node_of = np.empty(count, dtype=int)
        for row, scenario in enumerate(scenarios):
            key = id(scenario.technology)
            if key not in node_index:
                node_index[key] = len(nodes)
                nodes.append(scenario.technology)
            node_of[row] = node_index[key]

        self.ambient = np.asarray([s.ambient for s in scenarios])
        conductivity_cache: Dict[Tuple[int, float], float] = {}
        for scenario in scenarios:
            key = (id(scenario.technology), scenario.ambient)
            if key not in conductivity_cache:
                conductivity_cache[key] = (
                    scenario.technology.thermal.silicon.conductivity_at(
                        scenario.ambient
                    )
                )
        self.conductivity = np.asarray(
            [conductivity_cache[(id(s.technology), s.ambient)] for s in scenarios]
        )
        self.heat_sink = np.asarray(
            [t.thermal.heat_sink_resistance for t in nodes]
        )[node_of]
        self.volumetric_heat_capacity = np.asarray(
            [t.thermal.silicon.volumetric_heat_capacity for t in nodes]
        )[node_of]
        self._reference = np.asarray([t.reference_temperature for t in nodes])[
            node_of, np.newaxis
        ]
        self._nodes = nodes
        self._node_of = node_of
        self._device_type = engine.device_type

        # Supply / activity scalings — the same floating-point operations,
        # in the same order, as :meth:`ScenarioEngine.scenario_block_powers`.
        scale = np.asarray([s.supply_scale for s in scenarios])
        activity = np.empty((count, blocks))
        for row, scenario in enumerate(scenarios):
            if isinstance(scenario.activity, abc.Mapping):
                for column, name in enumerate(engine.block_names):
                    activity[row, column] = scenario.activity_factor(name)
            else:
                activity[row, :] = float(scenario.activity)
        dynamic_ref = np.asarray(
            [engine.dynamic_powers[name] for name in engine.block_names]
        )
        static_base = np.asarray(
            [engine.static_powers_at_reference[name] for name in engine.block_names]
        )
        self.dynamic = dynamic_ref * ((scale * scale)[:, np.newaxis] * activity)
        self.static_ref = static_base * scale[:, np.newaxis]

        # Host (numpy float64) views survive for consumers that stay on
        # the host whatever the policy — the transient tau derivation, the
        # runaway-ceiling validation, scalar bookkeeping.  On the default
        # policy they are the same objects as the hot arrays.
        self.ambient_host = self.ambient
        self.conductivity_host = self.conductivity
        self.volumetric_heat_capacity_host = self.volumetric_heat_capacity
        self._reference_host = self._reference
        self.ambient_ceiling = float(np.max(self.ambient_host))
        if not self._default_policy:
            self.ambient = self.cast(self.ambient)
            self.conductivity = self.cast(self.conductivity)
            self.heat_sink = self.cast(self.heat_sink)
            self._reference = self.cast(self._reference)
            self.dynamic = self.cast(self.dynamic)
            self.static_ref = self.cast(self.static_ref)

        self._leakage_ready = False

    def cast(self, array):
        """``array`` under the engine's namespace/precision policy.

        The identity on the default (numpy/float64) policy — staged arrays
        pass through untouched, which is what keeps the default engine
        bit-identical to the pre-seam code.
        """
        if self._default_policy:
            return array
        return self.xp.asarray(array, dtype=self.dtype)

    def _ensure_leakage_constants(self) -> None:
        """Eq. 13 pieces hoisted out of the iteration, computed on demand.

        The denominator of the leakage temperature ratio is
        temperature-independent, so it is evaluated once through the
        kernel; the per-step numerator is inlined in :meth:`static_powers`
        with the identical arithmetic (at VGS = 0 and VDS = Vdd the body
        and DIBL terms of Eq. 2 are exact float zeros, so dropping them
        preserves bit-level parity with the scalar path).  Lazy so that
        consumers needing only the thermal constants (e.g. the transient
        engine's tau derivation) skip the kernel evaluation entirely.
        """
        if self._leakage_ready:
            return
        count = self.count
        node_of = self._node_of
        node_devices = [t.device(self._device_type) for t in self._nodes]
        devices = (
            leakage_kernel.DeviceArray.from_devices(node_devices)
            .take(node_of)
            .reshape((count, 1))
        )
        width = np.asarray([d.nominal_width for d in node_devices])[node_of, np.newaxis]
        vdd = np.asarray([t.vdd for t in self._nodes])[node_of, np.newaxis]
        self._cold = self.cast(
            leakage_kernel.single_device_off_current(
                devices, width, vdd, self._reference_host, self._reference_host
            )
        )
        self._prefactor_base = self.cast(
            (width / devices.channel_length) * devices.i0
        )
        self._vt0 = self.cast(devices.vt0.reshape((count, 1)))
        self._kt = self.cast(devices.kt.reshape((count, 1)))
        self._ideality = self.cast(devices.n.reshape((count, 1)))
        self._leakage_ready = True

    def static_powers(
        self,
        temperatures: np.ndarray,
        rows,
        out: Optional[np.ndarray] = None,
        workspace: Optional[Workspace] = None,
    ) -> np.ndarray:
        """Static power [W] of the given scenario rows at ``temperatures``.

        The arithmetic is one fixed in-place ufunc chain — `exp`-factor and
        ``(T/T_ref)^2`` built up in two work buffers — so the monolithic
        and chunked paths execute identical floating-point operations
        (monolithic callers simply get fresh buffers).  ``out`` must not
        alias ``temperatures``.  Non-numpy namespaces run the functional
        mirror (:meth:`_static_powers_xp`) — same operations, same order —
        and ignore ``out``/``workspace``.
        """
        self._ensure_leakage_constants()
        if not self.inplace:
            return self._static_powers_xp(temperatures, rows)
        shape = temperatures.shape
        gate = _work_buffer(workspace, "sp_gate", shape, dtype=temperatures.dtype)
        scratch = _work_buffer(
            workspace, "sp_scratch", shape, dtype=temperatures.dtype
        )
        if out is None:
            out = np.empty(shape, dtype=temperatures.dtype)
        # gate <- -Vth(T) = -(vt0 - kt * (T - T_ref)), built as 0.0 - Vth to
        # preserve the reference expression's signed-zero behavior.
        np.subtract(temperatures, self._reference[rows], out=gate)
        np.multiply(self._kt[rows], gate, out=gate)
        np.subtract(self._vt0[rows], gate, out=gate)
        np.subtract(0.0, gate, out=gate)
        # scratch <- n * kT/q (same association as technology.constants);
        # the positivity check lives with the scenario construction.
        np.multiply(BOLTZMANN, temperatures, out=scratch)
        np.divide(scratch, ELEMENTARY_CHARGE, out=scratch)
        np.multiply(self._ideality[rows], scratch, out=scratch)
        # gate <- safe_exp(-Vth / (n kT/q)), clip+exp exactly as the kernel.
        np.divide(gate, scratch, out=gate)
        limit = leakage_kernel.MAX_EXPONENT
        np.clip(gate, -limit, limit, out=gate)
        np.exp(gate, out=gate)
        # scratch <- prefactor * (T / T_ref)^2; ``x ** 2`` lowers to square.
        np.divide(temperatures, self._reference[rows], out=scratch)
        np.square(scratch, out=scratch)
        np.multiply(self._prefactor_base[rows], scratch, out=scratch)
        # out <- static_ref * (hot / cold)
        np.multiply(scratch, gate, out=scratch)
        np.divide(scratch, self._cold[rows], out=scratch)
        np.multiply(self.static_ref[rows], scratch, out=out)
        return out

    def _static_powers_xp(self, temperatures, rows):
        """Functional mirror of the :meth:`static_powers` ufunc chain.

        Every binary operation appears in the same order and association
        as the in-place chain, so float64 results agree bit-for-bit with
        the numpy path (IEEE elementwise operations are deterministic).
        """
        xp = self.xp
        reference = _take_rows(self._reference, rows, xp)
        gate = 0.0 - (
            _take_rows(self._vt0, rows, xp)
            - _take_rows(self._kt, rows, xp) * (temperatures - reference)
        )
        scratch = _take_rows(self._ideality, rows, xp) * (
            (BOLTZMANN * temperatures) / ELEMENTARY_CHARGE
        )
        limit = leakage_kernel.MAX_EXPONENT
        gate = xp.exp(xp.clip(gate / scratch, -limit, limit))
        ratio = temperatures / reference
        ratio = ratio * ratio
        hot = (_take_rows(self._prefactor_base, rows, xp) * ratio) * gate
        hot = hot / _take_rows(self._cold, rows, xp)
        return _take_rows(self.static_ref, rows, xp) * hot

    def steady_targets(
        self,
        powers: np.ndarray,
        rows,
        out: Optional[np.ndarray] = None,
        workspace: Optional[Workspace] = None,
    ) -> np.ndarray:
        """Steady-state block temperatures [K] for the rows' ``powers``.

        ``T_ss = T_amb + R_hs * sum(P) + R @ P`` with the cached
        unit-conductivity reduction scaled by each scenario's ``1/k``.
        One in-place chain shared by monolithic and chunked execution;
        ``out`` may alias ``powers`` (the reduction lands in work buffers).

        The ``R @ P`` product is accumulated column by column with
        elementwise ufuncs instead of a BLAS matmul: GEMM selects
        different kernels (and rounding) by batch size, which would make
        each row's trajectory depend on how many rows happen to be in
        flight — compaction scheduling and chunk boundaries would then
        change results.  The fixed ``k``-ascending accumulation is
        bit-identical for a row whether it is solved alone, in a chunk, or
        in the full batch.  Non-numpy namespaces run the functional mirror
        (:meth:`_steady_targets_xp`) with the same accumulation order.
        """
        if not self.inplace:
            return self._steady_targets_xp(powers, rows)
        count, blocks = powers.shape
        sums = _work_buffer(workspace, "st_sums", (count,), dtype=powers.dtype)
        rises = _work_buffer(workspace, "st_rises", powers.shape, dtype=powers.dtype)
        product = _work_buffer(
            workspace, "st_product", powers.shape, dtype=powers.dtype
        )
        powers.sum(axis=1, out=sums)
        np.multiply(self.heat_sink[rows], sums, out=sums)
        np.multiply(powers[:, 0, np.newaxis], self._unit_matrix[:, 0], out=rises)
        for column in range(1, blocks):
            np.multiply(
                powers[:, column, np.newaxis],
                self._unit_matrix[:, column],
                out=product,
            )
            np.add(rises, product, out=rises)
        np.divide(rises, self.conductivity[rows, np.newaxis], out=rises)
        if out is None:
            out = np.empty(powers.shape, dtype=powers.dtype)
        np.add(self.ambient[rows], sums, out=sums)
        np.add(sums[:, np.newaxis], rises, out=out)
        return out

    def _steady_targets_xp(self, powers, rows):
        """Functional mirror of the :meth:`steady_targets` ufunc chain.

        Keeps the fixed column-ascending ``R @ P`` accumulation (never a
        GEMM) so per-row results stay independent of batch size, and the
        exact operation order of the in-place path for bit-level float64
        parity.
        """
        xp = self.xp
        blocks = powers.shape[1]
        unit = self._unit_matrix
        sums = _take_rows(self.heat_sink, rows, xp) * xp.sum(powers, axis=1)
        rises = powers[:, 0:1] * unit[:, 0]
        for column in range(1, blocks):
            rises = rises + powers[:, column : column + 1] * unit[:, column]
        rises = rises / _take_rows(self.conductivity, rows, xp)[:, None]
        sums = _take_rows(self.ambient, rows, xp) + sums
        return sums[:, None] + rises


@dataclass(frozen=True)
class ScenarioBatchResult:
    """Converged (or best-effort) solutions of a scenario batch.

    Array attributes are indexed ``[scenario, block]`` (or ``[scenario]``),
    with blocks ordered as :attr:`block_names`.
    """

    scenarios: Tuple[Scenario, ...]
    block_names: Tuple[str, ...]
    block_temperatures: np.ndarray
    dynamic_power: np.ndarray
    static_power: np.ndarray
    ambient_temperatures: np.ndarray
    converged: np.ndarray
    iteration_counts: np.ndarray

    def __len__(self) -> int:
        return len(self.scenarios)

    @property
    def total_power(self) -> np.ndarray:
        """Chip total power [W] per scenario."""
        return (self.dynamic_power + self.static_power).sum(axis=1)

    @property
    def total_static_power(self) -> np.ndarray:
        """Chip static power [W] per scenario."""
        return self.static_power.sum(axis=1)

    @property
    def total_dynamic_power(self) -> np.ndarray:
        """Chip dynamic power [W] per scenario."""
        return self.dynamic_power.sum(axis=1)

    @property
    def peak_temperature(self) -> np.ndarray:
        """Hottest block junction temperature [K] per scenario."""
        return self.block_temperatures.max(axis=1)

    @property
    def peak_rise(self) -> np.ndarray:
        """Hottest block rise [K] above each scenario's ambient."""
        return self.peak_temperature - self.ambient_temperatures

    def hottest_blocks(self) -> Tuple[str, ...]:
        """Name of the hottest block per scenario."""
        indices = np.argmax(self.block_temperatures, axis=1)
        return tuple(self.block_names[i] for i in indices)

    def temperatures_of(self, block_name: str) -> np.ndarray:
        """Junction temperature [K] of one block across the batch."""
        return self.block_temperatures[:, self.block_names.index(block_name)]

    def slice_rows(self, start: int, stop: int) -> "ScenarioBatchResult":
        """Rows ``[start, stop)`` repackaged as an independent batch result.

        The scatter half of admission batching (:mod:`repro.serve`): several
        requests sharing an engine solve as one concatenated batch, and each
        request's rows are sliced back out.  Row trajectories are independent
        and permutation-invariant (each scenario converges and freezes on its
        own), so a sliced sub-batch is bit-identical to solving its scenarios
        alone — the property the serve-layer tests pin.
        """
        count = len(self.scenarios)
        if not 0 <= start <= stop <= count:
            raise ValueError(
                f"slice [{start}, {stop}) out of range for {count} scenario(s)"
            )
        window = slice(start, stop)
        return ScenarioBatchResult(
            scenarios=self.scenarios[window],
            block_names=self.block_names,
            block_temperatures=self.block_temperatures[window],
            dynamic_power=self.dynamic_power[window],
            static_power=self.static_power[window],
            ambient_temperatures=self.ambient_temperatures[window],
            converged=self.converged[window],
            iteration_counts=self.iteration_counts[window],
        )

    def scenario_result(self, index: int) -> CosimResult:
        """Repackage one scenario as a scalar-engine :class:`CosimResult`.

        The per-iteration history is not recorded in batch mode, so the
        result's ``iterations`` tuple is empty.
        """
        breakdowns = {
            name: PowerBreakdown(
                switching=float(self.dynamic_power[index, column]),
                short_circuit=0.0,
                static=float(self.static_power[index, column]),
            )
            for column, name in enumerate(self.block_names)
        }
        return CosimResult(
            block_temperatures={
                name: float(self.block_temperatures[index, column])
                for column, name in enumerate(self.block_names)
            },
            block_breakdowns=breakdowns,
            ambient_temperature=float(self.ambient_temperatures[index]),
            converged=bool(self.converged[index]),
            iterations=(),
        )

    def as_rows(self) -> List[Tuple]:
        """Reporting rows: (label, peak T, total power, converged)."""
        return [
            (
                scenario.describe(),
                float(self.peak_temperature[index]),
                float(self.total_power[index]),
                bool(self.converged[index]),
            )
            for index, scenario in enumerate(self.scenarios)
        ]


def validate_fixed_point_options(
    max_iterations: int, tolerance: float, damping: float
) -> None:
    """Shared parameter validation of the batched fixed point."""
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    if tolerance <= 0.0:
        raise ValueError("tolerance must be positive")
    if not 0.0 < damping <= 1.0:
        raise ValueError("damping must be in (0, 1]")


def solve_fixed_point(
    physics: ScenarioPhysics,
    max_iterations: int = 50,
    tolerance: float = 0.01,
    damping: float = 1.0,
    max_temperature: float = 500.0,
    workspace: Optional[Workspace] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Damped fixed point over one prepared physics batch.

    The single implementation behind :meth:`ScenarioEngine.solve` and the
    streaming executor (:mod:`repro.core.cosim.streaming`): both run this
    exact code — the streaming path per chunk, with a shared
    :class:`Workspace` — so chunked reductions are bit-identical to the
    monolithic result by construction (each scenario row's trajectory is
    independent of its neighbors).

    The iteration state is double-buffered: ``temps`` views one buffer,
    the proposed update lands in the other, and as scenarios converge the
    surviving rows are packed back into the idle buffer, so the loop never
    allocates per iteration when a workspace is supplied.

    Returns ``(block_temperatures, static_power, converged,
    iteration_counts)`` with rows in the batch's scenario order.
    """
    validate_fixed_point_options(max_iterations, tolerance, damping)
    count = physics.count
    blocks = physics.blocks
    if max_temperature <= physics.ambient_ceiling:
        raise ValueError("max_temperature must exceed every ambient temperature")
    if not physics.inplace:
        return _solve_fixed_point_xp(
            physics, max_iterations, tolerance, damping, max_temperature
        )
    ambient = physics.ambient
    dynamic = physics.dynamic
    dtype = ambient.dtype

    temperatures = np.empty((count, blocks), dtype=dtype)
    converged = np.zeros(count, dtype=bool)
    iteration_counts = np.zeros(count, dtype=int)

    cur_base = _work_buffer(workspace, "fp_state_a", (count, blocks), dtype=dtype)
    nxt_base = _work_buffer(workspace, "fp_state_b", (count, blocks), dtype=dtype)
    cur_base[:] = ambient[:, np.newaxis]

    # The batch iterates on the still-active subset only: rows are
    # compacted away as their scenarios converge (each row's trajectory
    # is independent, which is also what makes the result permutation
    # invariant in the scenario order).
    index_map = np.arange(count)
    for index in range(max_iterations):
        rows = index_map
        active = rows.size
        temps = cur_base[:active]
        powers = _work_buffer(workspace, "fp_powers", (active, blocks), dtype=dtype)
        scratch = _work_buffer(workspace, "fp_scratch", (active, blocks), dtype=dtype)
        physics.static_powers(temps, rows, out=scratch, workspace=workspace)
        np.take(dynamic, rows, axis=0, out=powers)
        np.add(powers, scratch, out=powers)
        proposed = physics.steady_targets(
            powers, rows, out=nxt_base[:active], workspace=workspace
        )
        np.multiply(damping, proposed, out=proposed)
        np.multiply(1.0 - damping, temps, out=scratch)
        np.add(proposed, scratch, out=proposed)
        np.minimum(proposed, max_temperature, out=proposed)
        np.subtract(proposed, temps, out=scratch)
        np.abs(scratch, out=scratch)
        change = _work_buffer(workspace, "fp_change", (active,), dtype=dtype)
        scratch.max(axis=1, out=change)
        iteration_counts[rows] += 1
        swap = True
        if index > 0:
            settled = change < tolerance
            if settled.any():
                converged[rows[settled]] = True
                temperatures[rows[settled]] = proposed[settled]
                keep = ~settled
                index_map = rows[keep]
                # Pack the survivors back into the idle buffer (``temps``
                # storage is free once ``change`` is computed) — the
                # proposal buffer stays the proposal buffer, so no swap.
                np.compress(keep, proposed, axis=0, out=cur_base[: index_map.size])
                swap = False
        if swap:
            cur_base, nxt_base = nxt_base, cur_base
        if index_map.size == 0:
            break
    temperatures[index_map] = cur_base[: index_map.size]

    # Scenarios that hit the runaway ceiling report non-convergence, as
    # in the scalar engine.
    runaway = (temperatures >= max_temperature - 1e-9).any(axis=1)
    converged &= ~runaway

    static_power = physics.static_powers(
        temperatures, slice(None), workspace=workspace
    )
    return temperatures, static_power, converged, iteration_counts


def _solve_fixed_point_xp(
    physics: ScenarioPhysics,
    max_iterations: int,
    tolerance: float,
    damping: float,
    max_temperature: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`solve_fixed_point` for namespaces without in-place ufuncs.

    The same damped iteration, expressed functionally: instead of
    compacting converged rows out of the batch, every row is iterated and
    converged rows are held at their settled state with ``where`` masks
    (each row's trajectory is independent, so the held rows see exactly
    the values the compacted path would have frozen).  Bookkeeping
    (convergence flags, iteration counts) stays on the host in numpy.
    Returns host numpy arrays whatever namespace computed them.
    """
    xp = physics.xp
    dtype = physics.dtype
    count = physics.count
    dynamic = physics.dynamic
    all_rows = slice(None)

    done = np.zeros(count, dtype=bool)
    converged = np.zeros(count, dtype=bool)
    iteration_counts = np.zeros(count, dtype=int)

    temps = xp.asarray(
        xp.broadcast_to(physics.ambient[:, None], (count, physics.blocks)),
        copy=True,
    )
    ceiling = xp.asarray(max_temperature, dtype=dtype)
    for index in range(max_iterations):
        static = physics.static_powers(temps, all_rows)
        powers = dynamic + static
        proposed = physics.steady_targets(powers, all_rows)
        proposed = damping * proposed + (1.0 - damping) * temps
        proposed = xp.minimum(proposed, ceiling)
        change = to_numpy(xp.max(xp.abs(proposed - temps), axis=1))
        iteration_counts[~done] += 1
        # Not-yet-done rows advance to the proposal (including the rows
        # settling on this very iteration — the compacted path freezes
        # them *at* the proposal too); done rows hold their frozen state.
        temps = xp.where(xp.asarray(done)[:, None], temps, proposed)
        if index > 0:
            settled = (change < tolerance) & ~done
            converged |= settled
            done |= settled
        if bool(np.all(done)):
            break

    temperatures = to_numpy(temps)
    runaway = (temperatures >= max_temperature - 1e-9).any(axis=1)
    converged &= ~runaway
    static_power = to_numpy(physics.static_powers(temps, all_rows))
    return temperatures, static_power, converged, iteration_counts


class ScenarioEngine:
    """Batched electro-thermal fixed points over a grid of scenarios.

    Parameters
    ----------
    floorplan:
        Die floorplan shared by every scenario (the cached resistance
        reduction keys on it).
    dynamic_powers:
        Per-block dynamic power [W] at nominal supply and unit activity.
    static_powers_at_reference:
        Per-block static power [W] at nominal supply and each scenario
        technology's reference temperature.
    image_rings, include_bottom_images:
        Boundary-image configuration, as for the scalar engine (analytical
        backend only).
    device_type:
        Polarity used for the leakage temperature law.
    thermal_backend:
        The :class:`~repro.core.thermal.operator.ThermalOperator` reducing
        the floorplan — a backend name
        (:data:`~repro.core.thermal.operator.THERMAL_BACKENDS`) or an
        operator instance.  Every scenario of the batch shares the one
        cached reduction; the default (``"analytical"``) is bit-identical
        to the pre-backend engine.
    backend_options:
        Backend-specific options (the ``fdm`` grid resolution).
    array_backend:
        Array namespace the batched fixed point runs in — a registry name
        from :data:`repro.core.backend.ARRAY_BACKENDS` (``"numpy"``,
        ``"array_api_strict"``, ``"cupy"``, ``"jax"``).  The default
        (``None`` → numpy) keeps the in-place buffer-reusing fast paths
        and is bit-identical to the pre-seam engine; other namespaces run
        functional Array-API mirrors of the same operations.
    precision:
        Working-precision policy name from
        :data:`repro.core.backend.PRECISIONS` (``"float64"`` default,
        ``"float32"`` for fast serving studies within the documented
        tolerances — see ``docs/precision.md``).
    """

    def __init__(
        self,
        floorplan: Floorplan,
        dynamic_powers: Mapping[str, float],
        static_powers_at_reference: Mapping[str, float],
        image_rings: int = 1,
        include_bottom_images: bool = True,
        device_type: str = "nmos",
        thermal_backend: Union[str, ThermalOperator] = "analytical",
        backend_options: Optional[Mapping[str, object]] = None,
        array_backend: Optional[str] = None,
        precision: Union[str, Precision, None] = None,
    ) -> None:
        self.floorplan = floorplan
        named = set(dynamic_powers) | set(static_powers_at_reference)
        if not named:
            raise ValueError("at least one block power must be given")
        unknown = named - set(floorplan.block_names())
        if unknown:
            raise KeyError(f"block powers reference unknown blocks: {sorted(unknown)}")
        self.dynamic_powers = {
            name: float(dynamic_powers.get(name, 0.0)) for name in named
        }
        self.static_powers_at_reference = {
            name: float(static_powers_at_reference.get(name, 0.0)) for name in named
        }
        self.device_type = device_type
        self.thermal_operator = resolve_operator(
            thermal_backend, image_rings, include_bottom_images, backend_options
        )
        self.image_rings, self.include_bottom_images = _image_configuration(
            self.thermal_operator, image_rings, include_bottom_images
        )
        self.array_backend = array_backend
        self.array_namespace = resolve_namespace(array_backend)
        self.precision = resolve_precision(precision)
        self.working_dtype = self.precision.dtype(self.array_namespace)
        self._block_names: Tuple[str, ...] = tuple(
            name for name in floorplan.block_names() if name in named
        )
        # The reduction is always staged in host float64 (bit-identical to
        # the pre-seam engine); it is cast into the working namespace/dtype
        # exactly once, here, only when the policy is non-default.
        self._unit_matrix_host = reduced_unit_matrix(
            self.thermal_operator, floorplan, self._block_names
        )
        if (
            supports_inplace(self.array_namespace)
            and self.precision.name == "float64"
        ):
            self._unit_matrix = self._unit_matrix_host
        else:
            self._unit_matrix = self.array_namespace.asarray(
                self._unit_matrix_host, dtype=self.working_dtype
            )

    @property
    def block_names(self) -> Tuple[str, ...]:
        """Modelled blocks, in resistance-matrix row order."""
        return self._block_names

    @property
    def thermal_backend(self) -> str:
        """Registry name of the thermal backend in use."""
        return self.thermal_operator.name

    def with_backend(
        self,
        thermal_backend: Union[str, ThermalOperator],
        backend_options: Optional[Mapping[str, object]] = None,
    ) -> "ScenarioEngine":
        """This engine's configuration re-reduced through another backend.

        The cheap path behind accuracy/speed comparisons: powers, floorplan
        and image configuration are shared, only the thermal reduction is
        swapped (and cached per backend).
        """
        return ScenarioEngine(
            self.floorplan,
            self.dynamic_powers,
            self.static_powers_at_reference,
            image_rings=self.image_rings,
            include_bottom_images=self.include_bottom_images,
            device_type=self.device_type,
            thermal_backend=thermal_backend,
            backend_options=backend_options,
            array_backend=self.array_backend,
            precision=self.precision,
        )

    # ------------------------------------------------------------------ #
    # Per-scenario power scaling (shared by batched and scalar paths)
    # ------------------------------------------------------------------ #
    def scenario_block_powers(
        self, scenario: Scenario
    ) -> Tuple[Dict[str, float], Dict[str, float]]:
        """Reference powers of one scenario: ``(dynamic, static_ref)``.

        Both the batched solver and the scalar oracle consume these exact
        floats, so the two paths scale supply and activity identically.
        """
        scale = scenario.supply_scale
        dynamic = {
            name: self.dynamic_powers[name]
            * (scale * scale * scenario.activity_factor(name))
            for name in self._block_names
        }
        static = {
            name: self.static_powers_at_reference[name] * scale
            for name in self._block_names
        }
        return dynamic, static

    def block_models(self, scenario: Scenario) -> Dict[str, BlockPowerModel]:
        """Scalar block models reproducing one scenario's power laws."""
        dynamic, static = self.scenario_block_powers(scenario)
        return {
            name: ScaledLeakageBlockModel(
                name=name,
                technology=scenario.technology,
                dynamic_power=dynamic[name],
                static_power_at_reference=static[name],
                device_type=self.device_type,
            )
            for name in self._block_names
        }

    def scalar_engine(self, scenario: Scenario) -> ElectroThermalEngine:
        """The equivalent single-scenario engine (parity/benchmark oracle)."""
        return ElectroThermalEngine(
            scenario.technology,
            self.floorplan,
            self.block_models(scenario),
            ambient_temperature=scenario.ambient,
            image_rings=self.image_rings,
            include_bottom_images=self.include_bottom_images,
            thermal_backend=self.thermal_operator,
        )

    def solve_scalar(self, scenario: Scenario, **solve_kwargs) -> CosimResult:
        """One scenario through the looped scalar engine."""
        return self.scalar_engine(scenario).solve(**solve_kwargs)

    # ------------------------------------------------------------------ #
    # Batched fixed point
    # ------------------------------------------------------------------ #
    def solve(
        self,
        scenarios: Sequence[Scenario],
        max_iterations: int = 50,
        tolerance: float = 0.01,
        damping: float = 1.0,
        max_temperature: float = 500.0,
        workspace: Optional[Workspace] = None,
    ) -> ScenarioBatchResult:
        """Damped fixed point for every scenario, as array operations.

        Parameters mirror :meth:`ElectroThermalEngine.solve`; each scenario
        converges (and freezes) independently, so results are invariant
        under permutation of the scenario list.  The loop itself lives in
        :func:`solve_fixed_point`; pass a :class:`Workspace` to reuse work
        buffers across repeated batches (the streaming executor does).
        """
        if not scenarios:
            raise ValueError("at least one scenario is required")
        validate_fixed_point_options(max_iterations, tolerance, damping)
        physics = ScenarioPhysics(self, scenarios)
        temperatures, static_power, converged, iteration_counts = solve_fixed_point(
            physics,
            max_iterations=max_iterations,
            tolerance=tolerance,
            damping=damping,
            max_temperature=max_temperature,
            workspace=workspace,
        )
        return ScenarioBatchResult(
            scenarios=physics.scenarios,
            block_names=self._block_names,
            block_temperatures=np.asarray(temperatures, dtype=np.float64),
            dynamic_power=np.asarray(to_numpy(physics.dynamic), dtype=np.float64),
            static_power=np.asarray(static_power, dtype=np.float64),
            ambient_temperatures=np.asarray(
                to_numpy(physics.ambient), dtype=np.float64
            ),
            converged=converged,
            iteration_counts=iteration_counts,
        )
