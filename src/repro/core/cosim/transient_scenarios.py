"""Batched transient electro-thermal simulation over scenario grids.

:mod:`repro.core.cosim.transient` integrates the block-level relaxation ODE

``dT_i/dt = (T_ss,i(P(t, T)) - T_i) / tau_i``

for *one* operating condition at a time, re-evaluating the
temperature-dependent leakage per block per step in Python.  This module is
the time-domain counterpart of the steady-state
:class:`~repro.core.cosim.scenarios.ScenarioEngine`: it integrates the same
ODE for **every scenario of a grid simultaneously** as
``(n_scenarios, n_blocks)`` array operations —

* per-step steady-state targets come from the shared
  :class:`~repro.core.cosim.scenarios.ScenarioPhysics` precomputation (the
  batched leakage kernel for Eq. 13 static power, the cached
  unit-conductivity resistance reduction scaled per scenario);
* workloads are described by vectorized :class:`ActivityGrid` profiles
  (constant / step / PWM / trace-driven) instead of the scalar
  per-time-step callable;
* the exponential step is exact for piecewise-constant targets, and the
  time grid can adapt to the activity grid's switching edges
  (``include_activity_edges``) so workload transitions are never smeared;
* scenarios that have settled after their workload went constant are
  compacted out of the active batch (``settle_tolerance``), mirroring the
  steady-state engine's active-row scheme, and thermal runaway is flagged
  per scenario per step.

The scalar :class:`~repro.core.cosim.transient.TransientElectroThermalSimulator`
is a thin single-row wrapper over the same :func:`integrate_relaxation`
core, and ``tests/test_transient_scenarios.py`` pins the batched path to it
within 1e-9 K.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import to_numpy
from .scenarios import (
    Scenario,
    ScenarioEngine,
    ScenarioPhysics,
    Workspace,
    _work_buffer,
)
from .transient import (
    ActivityProfile,
    TransientCosimResult,
    TransientElectroThermalSimulator,
)


def _as_multipliers(values, label: str) -> np.ndarray:
    """Validate activity multipliers: non-negative, at most (S, B) shaped."""
    array = np.asarray(values, dtype=float)
    if array.ndim > 2:
        raise ValueError(f"{label} must have at most 2 dimensions (scenario, block)")
    if np.any(array < 0.0):
        raise ValueError(f"{label} must be non-negative")
    return array


class ActivityGrid(ABC):
    """Vectorized workload profile: multipliers for every (scenario, block).

    :meth:`values` returns the per-block dynamic-power multipliers of every
    scenario at one instant, as an array broadcastable to
    ``(n_scenarios, n_blocks)`` — the batched replacement for the scalar
    ``ActivityProfile`` callable (1.0 = nominal activity; leakage always
    follows temperature regardless of activity).
    """

    @abstractmethod
    def values(self, time: float) -> np.ndarray:
        """Multipliers at ``time`` [s], broadcastable to (scenarios, blocks)."""

    @property
    def constant_after(self) -> float:
        """Time [s] after which :meth:`values` no longer changes.

        ``0.0`` for constant grids, the last switching instant for step and
        trace grids, ``inf`` for periodic (PWM) grids.  The integrator only
        freezes settled scenarios past this point.
        """
        return math.inf

    def breakpoints(self, duration: float) -> np.ndarray:
        """Switching instants in the open interval ``(0, duration)``.

        The integrator unions these with the uniform grid (when
        ``include_activity_edges`` is on) so every workload edge lands on a
        step boundary — the exponential update is exact between edges.
        """
        return np.empty(0)

    def profile_for(self, row: int, block_names: Sequence[str]) -> ActivityProfile:
        """Scalar ``ActivityProfile`` view of one scenario row.

        This is what lets the looped scalar simulator (the parity oracle
        and benchmark baseline) consume the exact same workload as the
        batched engine.
        """
        names = tuple(block_names)

        def profile(time: float) -> Mapping[str, float]:
            values = np.asarray(self.values(time), dtype=float)
            if values.ndim == 2:
                values = values[row]
            values = np.broadcast_to(values, (len(names),))
            return {name: float(values[column]) for column, name in enumerate(names)}

        return profile


class ConstantActivity(ActivityGrid):
    """Time-independent multipliers.

    A scalar applies to every (scenario, block) pair, a 1-D array is
    **per block**, and a 2-D ``(n_scenarios, n_blocks)`` array gives every
    pair its own multiplier (use shape ``(n_scenarios, 1)`` for
    per-scenario scaling).
    """

    def __init__(self, multipliers: Union[float, Sequence[float]] = 1.0) -> None:
        self._values = _as_multipliers(multipliers, "multipliers")

    def values(self, time: float) -> np.ndarray:
        return self._values

    @property
    def constant_after(self) -> float:
        return 0.0


class StepActivity(ActivityGrid):
    """Multipliers that switch from ``before`` to ``after`` at a set time.

    ``switch_times`` may be a scalar (every scenario switches together) or
    one value per scenario; ``before`` / ``after`` broadcast to
    ``(n_scenarios, n_blocks)`` like every grid.
    """

    def __init__(
        self,
        before: Union[float, Sequence[float]],
        after: Union[float, Sequence[float]],
        switch_times: Union[float, Sequence[float]],
    ) -> None:
        self._before = _as_multipliers(before, "before")
        self._after = _as_multipliers(after, "after")
        switch = np.asarray(switch_times, dtype=float)
        if np.any(switch < 0.0):
            raise ValueError("switch_times must be non-negative")
        if switch.ndim > 1:
            raise ValueError("switch_times must be a scalar or one per scenario")
        self._switch = switch[:, np.newaxis] if switch.ndim == 1 else switch

    def values(self, time: float) -> np.ndarray:
        return np.where(time < self._switch, self._before, self._after)

    @property
    def constant_after(self) -> float:
        return float(np.max(self._switch))

    def breakpoints(self, duration: float) -> np.ndarray:
        edges = np.unique(self._switch)
        return edges[(edges > 0.0) & (edges < duration)]


class PWMActivity(ActivityGrid):
    """Pulse-width-modulated multipliers (the paper's pulsed self-heating).

    Each scenario's blocks run at ``on`` for the first ``duty_cycle``
    fraction of every ``period`` and at ``off`` for the rest — the batched
    generalization of ``square_wave_activity_profile``.  ``periods`` and
    ``duty_cycles`` may be scalars or one value per scenario.
    """

    def __init__(
        self,
        periods: Union[float, Sequence[float]],
        duty_cycles: Union[float, Sequence[float]],
        on: Union[float, Sequence[float]] = 1.0,
        off: Union[float, Sequence[float]] = 0.0,
    ) -> None:
        period = np.asarray(periods, dtype=float)
        duty = np.asarray(duty_cycles, dtype=float)
        if np.any(period <= 0.0):
            raise ValueError("periods must be positive")
        if np.any((duty <= 0.0) | (duty >= 1.0)):
            raise ValueError("duty_cycles must be in (0, 1)")
        if period.ndim > 1 or duty.ndim > 1:
            raise ValueError("periods/duty_cycles must be scalars or per-scenario")
        self._period = period[:, np.newaxis] if period.ndim == 1 else period
        self._duty = duty[:, np.newaxis] if duty.ndim == 1 else duty
        self._on = _as_multipliers(on, "on")
        self._off = _as_multipliers(off, "off")

    def values(self, time: float) -> np.ndarray:
        phase = (time % self._period) / self._period
        # Snap float-rounded edge instants onto the boundary they name: an
        # inserted breakpoint (k + duty) * period can land a hair below
        # ``duty`` and k * period a hair below 1.0, which would hold the
        # stale pre-edge multiplier over the following sub-interval.
        phase = np.where(np.isclose(phase, 1.0, rtol=0.0, atol=1e-9), 0.0, phase)
        on = (phase < self._duty) & ~np.isclose(phase, self._duty, rtol=0.0, atol=1e-9)
        return np.where(on, self._on, self._off)

    def breakpoints(self, duration: float) -> np.ndarray:
        pairs = np.unique(
            np.stack(np.broadcast_arrays(self._period, self._duty), axis=-1).reshape(
                -1, 2
            ),
            axis=0,
        )
        edges = []
        for period, duty in pairs:
            cycles = np.arange(0.0, duration / period + 1.0)
            edges.append(cycles * period)
            edges.append((cycles + duty) * period)
        merged = np.unique(np.concatenate(edges))
        return merged[(merged > 0.0) & (merged < duration)]


class TraceActivity(ActivityGrid):
    """Trace-driven multipliers: sample-and-hold over recorded instants.

    ``values[k]`` holds from ``times[k]`` (inclusive) until the next
    sample; the first sample also covers any earlier time.  ``values`` may
    be shaped ``(samples,)``, ``(samples, blocks)`` or
    ``(samples, scenarios, blocks)``.
    """

    def __init__(self, times: Sequence[float], values) -> None:
        self._times = np.asarray(times, dtype=float)
        if self._times.ndim != 1 or self._times.size == 0:
            raise ValueError("times must be a non-empty 1-D sequence")
        if np.any(np.diff(self._times) <= 0.0):
            raise ValueError("times must be strictly increasing")
        if self._times[0] < 0.0:
            raise ValueError("times must be non-negative")
        array = np.asarray(values, dtype=float)
        if array.ndim == 0 or array.shape[0] != self._times.size:
            raise ValueError("values must carry one entry per sample time")
        if array.ndim > 3:
            raise ValueError("values must have at most 3 dimensions")
        if np.any(array < 0.0):
            raise ValueError("values must be non-negative")
        self._values = array

    def values(self, time: float) -> np.ndarray:
        index = int(np.searchsorted(self._times, time, side="right")) - 1
        return self._values[max(index, 0)]

    @property
    def constant_after(self) -> float:
        return float(self._times[-1])

    def breakpoints(self, duration: float) -> np.ndarray:
        inside = self._times[(self._times > 0.0) & (self._times < duration)]
        return np.unique(inside)


#: Per-step power evaluator of the generic integrator: maps (time,
#: temperatures of the active rows, active row indices) to block powers.
PowerEvaluator = Callable[[float, np.ndarray, np.ndarray], np.ndarray]

#: Steady-target evaluator: maps (powers of the active rows, active row
#: indices) to the rows' steady-state block temperatures.
TargetEvaluator = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class IntegrationArrays:
    """Raw histories produced by :func:`integrate_relaxation`.

    ``temperatures`` and ``powers`` are indexed ``[scenario, step, block]``.
    """

    times: np.ndarray
    temperatures: np.ndarray
    powers: np.ndarray
    runaway: np.ndarray
    runaway_times: np.ndarray


def integrate_relaxation(
    times: np.ndarray,
    tau: np.ndarray,
    initial: np.ndarray,
    power_fn: PowerEvaluator,
    targets_fn: TargetEvaluator,
    max_temperature: float,
    settle_tolerance: Optional[float] = None,
    settle_after: float = math.inf,
    workspace: Optional[Workspace] = None,
) -> IntegrationArrays:
    """Exponential-update relaxation integration for a batch of rows.

    Each step applies the exact solution of the relaxation ODE for a
    constant target, ``T <- T_ss + (T - T_ss) * exp(-dt / tau)``, clipped
    at ``max_temperature`` (thermal-runaway ceiling; the first clipped step
    of a row is recorded in ``runaway_times``).  Rows whose blocks have all
    come within ``settle_tolerance`` of their steady-state targets once
    ``settle_after`` has passed are frozen: their remaining history is
    filled with the settled state and they leave the active batch.  (The
    criterion is the remaining distance to the target — not the per-step
    movement, which shrinks with the step size and would freeze
    fine-stepped integrations far from equilibrium.)  Every row's
    trajectory is independent, so results are invariant under row
    permutation.

    The update runs as one fixed in-place ufunc chain over double-buffered
    state, so the monolithic and chunked (streaming) paths execute
    identical floating-point operations.  When ``workspace`` is given the
    per-step work arrays come from it (and ``targets_fn`` must accept
    ``out=``/``workspace=`` keywords, as
    :meth:`~repro.core.cosim.scenarios.ScenarioPhysics.steady_targets`
    does); otherwise they are freshly allocated.
    """
    scenario_count, block_count = initial.shape
    step_count = len(times)
    temperatures_history = np.empty(
        (scenario_count, step_count, block_count), dtype=initial.dtype
    )
    powers_history = np.empty_like(temperatures_history)
    runaway = np.zeros(scenario_count, dtype=bool)
    runaway_times = np.full(scenario_count, np.nan)

    cur_base = _work_buffer(workspace, "tr_state_a", initial.shape, dtype=initial.dtype)
    nxt_base = _work_buffer(workspace, "tr_state_b", initial.shape, dtype=initial.dtype)
    np.copyto(cur_base, initial)

    rows = np.arange(scenario_count)
    for index, now in enumerate(times):
        active = rows.size
        temps = cur_base[:active]
        powers = power_fn(float(now), temps, rows)
        temperatures_history[rows, index] = temps
        powers_history[rows, index] = powers
        if index == step_count - 1:
            break
        if workspace is None:
            targets = targets_fn(powers, rows)
        else:
            targets = targets_fn(
                powers,
                rows,
                out=workspace.buffer("tr_targets", temps.shape, temps.dtype),
                workspace=workspace,
            )
        dt = times[index + 1] - now
        decay = _work_buffer(workspace, "tr_decay", temps.shape, dtype=temps.dtype)
        np.take(tau, rows, axis=0, out=decay)
        np.divide(-dt, decay, out=decay)
        np.exp(decay, out=decay)
        updated = nxt_base[:active]
        np.subtract(temps, targets, out=updated)
        np.multiply(updated, decay, out=updated)
        np.add(targets, updated, out=updated)
        ceiling = _work_buffer(workspace, "tr_ceiling", temps.shape, dtype=bool)
        np.greater(updated, max_temperature, out=ceiling)
        np.minimum(updated, max_temperature, out=updated)
        newly_runaway = ceiling.any(axis=1) & ~runaway[rows]
        if newly_runaway.any():
            runaway[rows[newly_runaway]] = True
            runaway_times[rows[newly_runaway]] = times[index + 1]
        swap = True
        # A row may freeze only when its distance to target was measured
        # under the final (constant) workload: the step must *start* at or
        # after the grid's last switching instant.
        if settle_tolerance is not None and now >= settle_after:
            scratch = _work_buffer(
                workspace, "tr_scratch", temps.shape, dtype=temps.dtype
            )
            np.subtract(updated, targets, out=scratch)
            np.abs(scratch, out=scratch)
            settled = scratch.max(axis=1) < settle_tolerance
            if settled.any():
                frozen_rows = rows[settled]
                frozen_temps = updated[settled]
                frozen_powers = power_fn(
                    float(times[index + 1]), frozen_temps, frozen_rows
                )
                temperatures_history[frozen_rows, index + 1 :] = frozen_temps[
                    :, np.newaxis, :
                ]
                powers_history[frozen_rows, index + 1 :] = frozen_powers[
                    :, np.newaxis, :
                ]
                keep = ~settled
                rows = rows[keep]
                # Pack the survivors back into the idle buffer (``temps``
                # storage is free once the step is recorded); the proposal
                # buffer stays the proposal buffer, so no swap.
                np.compress(keep, updated, axis=0, out=cur_base[: rows.size])
                swap = False
                if rows.size == 0:
                    break
        if swap:
            cur_base, nxt_base = nxt_base, cur_base

    return IntegrationArrays(
        times=times,
        temperatures=temperatures_history,
        powers=powers_history,
        runaway=runaway,
        runaway_times=runaway_times,
    )


def _integrate_relaxation_xp(
    physics: ScenarioPhysics,
    times: np.ndarray,
    tau,
    initial: np.ndarray,
    activity,
    max_temperature: float,
    settle_tolerance: Optional[float],
    settle_after: float,
    full_shape: Tuple[int, int],
    scenario_offset: int,
) -> IntegrationArrays:
    """Functional Array-API mirror of :func:`integrate_relaxation`.

    Runs when the physics' namespace has no ``out=`` ufunc support.  The
    whole batch stays resident and settled rows are frozen with
    ``xp.where`` instead of compacted out — every row still sees the same
    per-element operations in the same order as the in-place path, so
    float64 results match it bit for bit (rows are independent, and a row
    freezes exactly at the proposal it would have been compacted with).
    Histories and runaway/settle bookkeeping stay on the host; only the
    state/target arrays live in the working namespace.
    """
    xp = physics.xp
    dtype = physics.dtype
    scenario_count, block_count = initial.shape
    step_count = len(times)
    temperatures_history = np.empty((scenario_count, step_count, block_count))
    powers_history = np.empty_like(temperatures_history)
    runaway = np.zeros(scenario_count, dtype=bool)
    runaway_times = np.full(scenario_count, np.nan)
    frozen = np.zeros(scenario_count, dtype=bool)

    temps = physics.cast(initial)
    ceiling = xp.asarray(max_temperature, dtype=dtype)
    all_rows = slice(None)
    chunk = slice(scenario_offset, scenario_offset + scenario_count)

    def powers_at(now: float, state):
        multipliers = np.broadcast_to(
            np.asarray(activity.values(now), dtype=float), full_shape
        )[chunk]
        scaled = physics.dynamic * xp.asarray(multipliers, dtype=dtype)
        return scaled + physics.static_powers(state, all_rows)

    for index, now in enumerate(times):
        powers = powers_at(float(now), temps)
        temperatures_history[:, index] = to_numpy(temps)
        powers_history[:, index] = to_numpy(powers)
        if index == step_count - 1:
            break
        targets = physics.steady_targets(powers, all_rows)
        dt = float(times[index + 1] - now)
        decay = xp.exp((-dt) / tau)
        updated = targets + (temps - targets) * decay
        clipped = to_numpy(xp.any(updated > ceiling, axis=1))
        updated = xp.minimum(updated, ceiling)
        newly_runaway = clipped & ~runaway & ~frozen
        if newly_runaway.any():
            runaway[newly_runaway] = True
            runaway_times[newly_runaway] = times[index + 1]
        if frozen.any():
            updated = xp.where(xp.asarray(frozen)[:, None], temps, updated)
        if settle_tolerance is not None and now >= settle_after:
            distance = to_numpy(xp.max(xp.abs(updated - targets), axis=1))
            frozen |= ~frozen & (distance < settle_tolerance)
        temps = updated

    return IntegrationArrays(
        times=times,
        temperatures=temperatures_history,
        powers=powers_history,
        runaway=runaway,
        runaway_times=runaway_times,
    )


@dataclass(frozen=True)
class TransientBatchResult:
    """Time histories of a transient scenario batch.

    Array attributes are indexed ``[scenario, step, block]`` (or a prefix
    of those axes), with blocks ordered as :attr:`block_names`; all arrays
    are read-only.
    """

    scenarios: Tuple[Scenario, ...]
    block_names: Tuple[str, ...]
    times: np.ndarray
    block_temperatures: np.ndarray
    block_powers: np.ndarray
    ambient_temperatures: np.ndarray
    runaway: np.ndarray
    runaway_times: np.ndarray

    def __post_init__(self) -> None:
        # Expose read-only views; arrays the caller constructed the result
        # from keep their own writability.
        for attribute in (
            "times",
            "block_temperatures",
            "block_powers",
            "ambient_temperatures",
            "runaway",
            "runaway_times",
        ):
            view = np.asarray(getattr(self, attribute)).view()
            view.setflags(write=False)
            object.__setattr__(self, attribute, view)

    def __len__(self) -> int:
        return len(self.scenarios)

    @property
    def final_temperatures(self) -> np.ndarray:
        """Block temperatures [K] at the last sample, per scenario."""
        return self.block_temperatures[:, -1, :]

    @property
    def peak_temperature(self) -> np.ndarray:
        """Hottest sampled block temperature [K] per scenario."""
        return self.block_temperatures.max(axis=(1, 2))

    @property
    def peak_rise(self) -> np.ndarray:
        """Hottest sampled rise [K] above each scenario's ambient."""
        return self.peak_temperature - self.ambient_temperatures

    @property
    def overshoot(self) -> np.ndarray:
        """Largest excursion [K] above the final temperature, per scenario.

        Zero for monotone charge-up; positive when a workload edge drove a
        block above where it eventually settles.
        """
        excess = self.block_temperatures - self.final_temperatures[:, np.newaxis, :]
        return np.maximum(excess.max(axis=(1, 2)), 0.0)

    @property
    def total_power(self) -> np.ndarray:
        """Chip total power [W] history, per scenario."""
        return self.block_powers.sum(axis=2)

    def settle_times(self, tolerance: float) -> np.ndarray:
        """First instant [s] after which every block stays within
        ``tolerance`` [K] of its final temperature, per scenario."""
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        deviation = np.abs(
            self.block_temperatures - self.final_temperatures[:, np.newaxis, :]
        ).max(axis=2)
        remaining = np.maximum.accumulate(deviation[:, ::-1], axis=1)[:, ::-1]
        first_settled = np.argmax(remaining <= tolerance, axis=1)
        return self.times[first_settled]

    def total_energy(self) -> np.ndarray:
        """Energy [J] dissipated over the window, per scenario (trapezoid)."""
        power = self.total_power
        dt = np.diff(self.times)
        return np.sum(0.5 * (power[:, 1:] + power[:, :-1]) * dt, axis=1)

    def temperatures_of(self, block_name: str) -> np.ndarray:
        """Temperature history [K] of one block, ``(scenarios, steps)``."""
        return self.block_temperatures[:, :, self.block_names.index(block_name)]

    def hottest_blocks(self) -> Tuple[str, ...]:
        """Name of the block reaching each scenario's peak temperature."""
        per_block = self.block_temperatures.max(axis=1)
        return tuple(self.block_names[i] for i in np.argmax(per_block, axis=1))

    def scenario_result(self, index: int) -> TransientCosimResult:
        """Repackage one scenario as a scalar :class:`TransientCosimResult`."""
        return TransientCosimResult(
            times=self.times.copy(),
            block_temperatures={
                name: self.block_temperatures[index, :, column].copy()
                for column, name in enumerate(self.block_names)
            },
            block_powers={
                name: self.block_powers[index, :, column].copy()
                for column, name in enumerate(self.block_names)
            },
            ambient_temperature=float(self.ambient_temperatures[index]),
        )

    def as_rows(self):
        """Reporting rows: (label, peak T, overshoot, energy, runaway)."""
        peaks = self.peak_temperature
        overshoots = self.overshoot
        energies = self.total_energy()
        return [
            (
                scenario.describe(),
                float(peaks[index]),
                float(overshoots[index]),
                float(energies[index]),
                bool(self.runaway[index]),
            )
            for index, scenario in enumerate(self.scenarios)
        ]


class TransientScenarioEngine:
    """Batched time-domain electro-thermal integration over scenarios.

    Parameters
    ----------
    engine:
        The steady-state :class:`ScenarioEngine` whose floorplan, reference
        powers, cached resistance reduction and per-scenario power scalings
        the transient integration reuses (its :meth:`ScenarioEngine.solve`
        verdicts are the ``t -> inf`` limit of this engine).
    time_constants:
        Optional per-block thermal time constants [s] applied to every
        scenario.  Blocks without an entry get the same derivation as the
        scalar simulator: the block's self spreading resistance (at each
        scenario's ambient conductivity) times the heat capacity of a
        silicon volume one die-thickness deep under the block.
    """

    def __init__(
        self,
        engine: ScenarioEngine,
        time_constants: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.engine = engine
        self._block_names = engine.block_names
        self._overrides: dict = {}
        if time_constants is not None:
            for name, value in time_constants.items():
                if name not in self._block_names:
                    raise KeyError(f"unknown block {name!r}")
                if value <= 0.0:
                    raise ValueError("time constants must be positive")
                self._overrides[name] = float(value)

    @classmethod
    def from_powers(
        cls,
        floorplan,
        dynamic_powers: Mapping[str, float],
        static_powers_at_reference: Mapping[str, float],
        time_constants: Optional[Mapping[str, float]] = None,
        **engine_kwargs,
    ) -> "TransientScenarioEngine":
        """Convenience constructor building the steady engine inline."""
        engine = ScenarioEngine(
            floorplan, dynamic_powers, static_powers_at_reference, **engine_kwargs
        )
        return cls(engine, time_constants=time_constants)

    @property
    def block_names(self) -> Tuple[str, ...]:
        """Modelled blocks, in resistance-matrix row order."""
        return self._block_names

    @property
    def time_constant_overrides(self) -> dict:
        """Per-block time-constant overrides [s] in use."""
        return dict(self._overrides)

    @property
    def thermal_backend(self) -> str:
        """Registry name of the underlying engine's thermal backend."""
        return self.engine.thermal_backend

    def with_backend(self, thermal_backend, backend_options=None):
        """This engine over another thermal backend (see
        :meth:`ScenarioEngine.with_backend`); time-constant overrides are
        preserved."""
        return TransientScenarioEngine(
            self.engine.with_backend(thermal_backend, backend_options),
            time_constants=self._overrides or None,
        )

    def _default_time_constants(self, physics: ScenarioPhysics) -> np.ndarray:
        """Per-(scenario, block) thermal time constants [s].

        Same floating-point recipe as the scalar simulator's
        ``_default_time_constant``: the unit-conductivity self resistance
        scaled by each scenario's ambient conductivity, times the silicon
        heat capacity one die-thickness deep under the block footprint.
        Always staged in host float64 (bit-identical to the pre-seam
        engine); :meth:`simulate` casts into the working namespace/dtype.
        """
        floorplan = self.engine.floorplan
        resistance = (
            physics._unit_matrix_host.diagonal()[np.newaxis, :]
            / physics.conductivity_host[:, np.newaxis]
        )
        area = np.asarray([floorplan.block(name).area for name in self._block_names])
        capacitance = (
            physics.volumetric_heat_capacity_host[:, np.newaxis]
            * area[np.newaxis, :]
            * floorplan.die.thickness
        )
        tau = resistance * capacitance
        for name, value in self._overrides.items():
            tau[:, self._block_names.index(name)] = value
        return tau

    def time_constants(self, scenarios: Sequence[Scenario]) -> np.ndarray:
        """Per-(scenario, block) thermal time constants [s] in use."""
        return self._default_time_constants(ScenarioPhysics(self.engine, scenarios))

    def simulate(
        self,
        scenarios: Sequence[Scenario],
        duration: float,
        time_step: float,
        activity: Optional[ActivityGrid] = None,
        initial_temperatures: Optional[Mapping[str, float]] = None,
        max_temperature: float = 500.0,
        settle_tolerance: Optional[float] = None,
        include_activity_edges: bool = True,
        workspace: Optional[Workspace] = None,
        scenario_offset: int = 0,
        total_scenarios: Optional[int] = None,
    ) -> TransientBatchResult:
        """Integrate every scenario's block temperatures over ``duration``.

        Parameters
        ----------
        scenarios:
            Operating conditions to integrate concurrently.
        duration, time_step:
            Simulated span [s] and base integration step [s]; the
            exponential update is unconditionally stable, but coarse steps
            smear transients between activity edges.
        activity:
            Vectorized workload (:class:`ActivityGrid`); nominal activity
            (multiplier 1.0 everywhere) when omitted.
        initial_temperatures:
            Starting junction temperatures [K] per block name, applied to
            every scenario; each scenario's ambient by default.  Unknown
            block names raise ``KeyError``.
        max_temperature:
            Thermal-runaway ceiling [K]; the first step a scenario clips is
            recorded in the result's ``runaway_times``.
        settle_tolerance:
            When set, scenarios whose blocks have all come within this
            distance [K] of their steady-state targets *after the activity
            has gone constant* are frozen and leave the active batch
            (their remaining history holds the settled state, so histories
            deviate from the exact integration by at most about this
            amount) — the transient analogue of the steady engine's
            convergence compaction.
        include_activity_edges:
            Union the activity grid's switching instants into the time
            grid, so piecewise-constant workloads are integrated exactly.
        workspace:
            Optional :class:`~repro.core.cosim.scenarios.Workspace` whose
            preallocated buffers the integration reuses (the streaming
            executor passes one per chunk run).
        scenario_offset, total_scenarios:
            When this batch is one chunk of a larger grid, the chunk's
            starting row and the grid's full scenario count: per-scenario
            activity grids (2-D multipliers, per-scenario switch times,
            ...) are defined over the *full* grid and sliced here, so a
            chunked run sees exactly the monolithic workload.
        """
        if duration <= 0.0 or time_step <= 0.0:
            raise ValueError("duration and time_step must be positive")
        if time_step > duration:
            raise ValueError("time_step must not exceed the duration")
        if settle_tolerance is not None and settle_tolerance <= 0.0:
            raise ValueError("settle_tolerance must be positive")

        physics = ScenarioPhysics(self.engine, scenarios)
        if max_temperature <= physics.ambient_ceiling:
            raise ValueError("max_temperature must exceed every ambient temperature")
        if activity is None:
            activity = ConstantActivity(1.0)
        total = physics.count if total_scenarios is None else int(total_scenarios)
        if total < physics.count:
            raise ValueError("total_scenarios must cover the batch")
        if not 0 <= scenario_offset <= total - physics.count:
            raise ValueError("scenario_offset places the batch outside the grid")
        shape = (physics.count, physics.blocks)
        full_shape = (total, physics.blocks)
        # Validate the grid broadcasts before the integration starts.
        np.broadcast_to(np.asarray(activity.values(0.0), dtype=float), full_shape)

        steps = int(math.ceil(duration / time_step)) + 1
        times = np.linspace(0.0, duration, steps)
        if include_activity_edges:
            edges = np.asarray(activity.breakpoints(duration), dtype=float)
            if edges.size:
                times = np.unique(np.concatenate([times, edges]))

        initial = np.broadcast_to(physics.ambient_host[:, np.newaxis], shape).copy()
        if initial_temperatures is not None:
            for name, value in initial_temperatures.items():
                if name not in self._block_names:
                    raise KeyError(f"unknown block {name!r}")
                initial[:, self._block_names.index(name)] = float(value)

        tau = physics.cast(self._default_time_constants(physics))
        dynamic = physics.dynamic

        if not physics.inplace:
            arrays = _integrate_relaxation_xp(
                physics,
                times,
                tau,
                initial,
                activity,
                max_temperature,
                settle_tolerance=settle_tolerance,
                settle_after=activity.constant_after,
                full_shape=full_shape,
                scenario_offset=scenario_offset,
            )
        else:
            initial = physics.cast(initial)

            def power_fn(
                now: float, temps: np.ndarray, rows: np.ndarray
            ) -> np.ndarray:
                multipliers = np.broadcast_to(
                    np.asarray(activity.values(now), dtype=float), full_shape
                )[scenario_offset + rows]
                powers = _work_buffer(
                    workspace, "tr_powers", temps.shape, dtype=temps.dtype
                )
                np.take(dynamic, rows, axis=0, out=powers)
                np.multiply(powers, multipliers, out=powers)
                static = physics.static_powers(
                    temps,
                    rows,
                    out=_work_buffer(
                        workspace, "tr_static", temps.shape, dtype=temps.dtype
                    ),
                    workspace=workspace,
                )
                np.add(powers, static, out=powers)
                return powers

            arrays = integrate_relaxation(
                times,
                tau,
                initial,
                power_fn,
                physics.steady_targets,
                max_temperature,
                settle_tolerance=settle_tolerance,
                settle_after=activity.constant_after,
                workspace=workspace,
            )
        return TransientBatchResult(
            scenarios=physics.scenarios,
            block_names=self._block_names,
            times=arrays.times,
            block_temperatures=np.asarray(arrays.temperatures, dtype=np.float64),
            block_powers=np.asarray(arrays.powers, dtype=np.float64),
            ambient_temperatures=np.asarray(physics.ambient_host, dtype=np.float64),
            runaway=arrays.runaway,
            runaway_times=arrays.runaway_times,
        )

    def simulate_scalar(
        self,
        scenario: Scenario,
        duration: float,
        time_step: float,
        activity: Optional[ActivityGrid] = None,
        row: int = 0,
        **simulate_kwargs,
    ) -> TransientCosimResult:
        """One scenario through the looped scalar simulator (the oracle).

        Builds the equivalent per-scenario
        :class:`~repro.core.cosim.engine.ElectroThermalEngine` and runs the
        scalar :class:`~repro.core.cosim.transient.TransientElectroThermalSimulator`
        over the same workload (``row`` selects the scenario's row of a
        batched activity grid).  This is the parity oracle of the test
        suite and the baseline of the throughput benchmark.
        """
        simulator = TransientElectroThermalSimulator(
            self.engine.scalar_engine(scenario),
            time_constants=self._overrides or None,
        )
        profile = None
        if activity is not None:
            profile = activity.profile_for(row, self._block_names)
        return simulator.simulate(
            duration,
            time_step,
            activity_profile=profile,
            **simulate_kwargs,
        )
