"""Concurrent electro-thermal estimation engine.

This is the "concurrent" part of the paper's title: static power depends
exponentially on temperature while temperature depends linearly (through
the thermal-resistance network) on power, so the two must be solved
*together*.  The engine iterates the analytical models to the
self-consistent fixed point:

1. evaluate every block's power at the current junction temperatures
   (leakage from Section 2, dynamic power unchanged);
2. map block powers to block temperatures with the analytical thermal model
   of Section 3, pre-reduced to a block-to-block thermal-resistance matrix
   (self terms from Eq. 18, mutual terms from Eq. 20, boundary conditions
   from the method of images);
3. repeat (with optional damping) until the largest block-temperature
   change falls below tolerance.

Because every step is a closed-form evaluation — no SPICE, no PDE solve —
a full-chip fixed point takes microseconds to milliseconds, which is the
speed claim the co-simulation ablation benchmark quantifies against the
finite-volume reference.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ...floorplan.floorplan import Floorplan
from ...technology.parameters import TechnologyParameters
from ..thermal.operator import ThermalOperator, make_operator
from ..thermal.superposition import ChipThermalModel
from .coupling import BlockPowerModel
from .resistance_cache import reduced_unit_matrix
from .result import CosimIteration, CosimResult


def resolve_operator(
    thermal_backend: Union[str, ThermalOperator],
    image_rings: int,
    include_bottom_images: bool,
    backend_options: Optional[Mapping[str, object]],
) -> ThermalOperator:
    """Shared engine-side backend resolution (capability-checked).

    The engines' fixed points scale one cached unit-conductivity reduction
    by each operating point's ``1/k``, so they can only run backends whose
    reduction factorizes over the conductivity.
    """
    operator = make_operator(
        thermal_backend,
        image_rings=image_rings,
        include_bottom_images=include_bottom_images,
        options=backend_options,
    )
    if not operator.capabilities.conductivity_factorizes:
        raise ValueError(
            f"thermal backend {operator.name!r} does not factorize over the "
            "substrate conductivity; the electro-thermal engines require "
            "R(k) = R(1) / k"
        )
    return operator


def _image_configuration(
    operator: ThermalOperator, image_rings: int, include_bottom_images: bool
) -> Tuple[int, bool]:
    """The engine's effective image settings.

    An explicitly-passed analytical operator carries its own image
    configuration; the engine must adopt it so that `with_backend`
    round trips and map post-processing reproduce the operator's physics
    rather than the constructor defaults.
    """
    return (
        getattr(operator, "image_rings", image_rings),
        getattr(operator, "include_bottom_images", include_bottom_images),
    )


class ElectroThermalEngine:
    """Fixed-point electro-thermal solver over a floorplan.

    Parameters
    ----------
    technology:
        Technology parameters (supply, reference temperature, thermal
        environment defaults).
    floorplan:
        Die floorplan whose blocks are the coupling granularity.
    block_models:
        One :class:`BlockPowerModel` per block (blocks without a model
        dissipate nothing).
    ambient_temperature:
        Heat-sink temperature [K]; defaults to the technology's thermal
        environment.
    image_rings:
        Lateral image rings for the boundary conditions (analytical
        backend only).
    include_bottom_images:
        Whether the isothermal-bottom images are included (analytical
        backend only).
    thermal_backend:
        The :class:`~repro.core.thermal.operator.ThermalOperator` reducing
        the floorplan to the block-resistance matrix — a backend name from
        :data:`~repro.core.thermal.operator.THERMAL_BACKENDS` or an
        operator instance.  The default (``"analytical"``) is bit-identical
        to the pre-backend engine.
    backend_options:
        Backend-specific options (the ``fdm`` grid resolution).
    """

    def __init__(
        self,
        technology: TechnologyParameters,
        floorplan: Floorplan,
        block_models: Mapping[str, BlockPowerModel],
        ambient_temperature: Optional[float] = None,
        image_rings: int = 1,
        include_bottom_images: bool = True,
        thermal_backend: Union[str, ThermalOperator] = "analytical",
        backend_options: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.technology = technology
        self.floorplan = floorplan
        unknown = set(block_models) - set(floorplan.block_names())
        if unknown:
            raise KeyError(f"block models reference unknown blocks: {sorted(unknown)}")
        if not block_models:
            raise ValueError("at least one block model is required")
        self.block_models = dict(block_models)
        self.ambient_temperature = (
            ambient_temperature
            if ambient_temperature is not None
            else technology.thermal.ambient_temperature
        )
        if self.ambient_temperature <= 0.0:
            raise ValueError("ambient_temperature must be positive (Kelvin)")
        self.thermal_operator = resolve_operator(
            thermal_backend, image_rings, include_bottom_images, backend_options
        )
        self.image_rings, self.include_bottom_images = _image_configuration(
            self.thermal_operator, image_rings, include_bottom_images
        )
        self._modelled_blocks: Tuple[str, ...] = tuple(
            name for name in floorplan.block_names() if name in self.block_models
        )
        self._resistance_matrix = self._build_resistance_matrix()

    # ------------------------------------------------------------------ #
    # Thermal reduction
    # ------------------------------------------------------------------ #
    @property
    def conductivity(self) -> float:
        """Substrate conductivity [W/m/K] at the ambient temperature."""
        return self.technology.thermal.silicon.conductivity_at(self.ambient_temperature)

    def _build_resistance_matrix(self) -> np.ndarray:
        """Block-to-block thermal resistance matrix [K/W].

        Entry ``[i, j]`` is the temperature rise at block ``i``'s centre per
        watt dissipated uniformly over block ``j``'s footprint.  The
        geometry-only (unit-conductivity) reduction comes from this
        engine's :attr:`thermal_operator` through the shared
        :func:`~repro.core.cosim.resistance_cache.reduced_unit_matrix`
        cache — one reduction per (backend, geometry), reused by every
        engine and every scenario batch over the same configuration — and
        is scaled here by this engine's conductivity.
        """
        return (
            reduced_unit_matrix(
                self.thermal_operator, self.floorplan, self._modelled_blocks
            )
            / self.conductivity
        )

    @property
    def resistance_matrix(self) -> np.ndarray:
        """Copy of the reduced block-to-block resistance matrix [K/W].

        Rows and columns follow :attr:`modelled_blocks` order.
        """
        return self._resistance_matrix.copy()

    @property
    def modelled_blocks(self) -> Tuple[str, ...]:
        """Blocks with a power model, in resistance-matrix row order."""
        return self._modelled_blocks

    # ------------------------------------------------------------------ #
    # Fixed point
    # ------------------------------------------------------------------ #
    def _block_powers(self, temperatures: Mapping[str, float]) -> Dict[str, float]:
        powers = {}
        for name in self._modelled_blocks:
            powers[name] = self.block_models[name].total_power(temperatures[name])
        return powers

    def _temperatures_from_powers(
        self, powers: Mapping[str, float]
    ) -> Dict[str, float]:
        vector = np.array([powers[name] for name in self._modelled_blocks])
        heat_sink_extra = self.technology.thermal.heat_sink_resistance * vector.sum()
        rises = self._resistance_matrix @ vector
        return {
            name: self.ambient_temperature + heat_sink_extra + float(rise)
            for name, rise in zip(self._modelled_blocks, rises)
        }

    def solve(
        self,
        max_iterations: int = 50,
        tolerance: float = 0.01,
        damping: float = 1.0,
        initial_temperatures: Optional[Mapping[str, float]] = None,
        max_temperature: float = 500.0,
    ) -> CosimResult:
        """Iterate power and temperature to the self-consistent fixed point.

        Parameters
        ----------
        max_iterations:
            Iteration cap.
        tolerance:
            Convergence threshold [K] on the largest block-temperature change.
        damping:
            Under-relaxation factor in (0, 1]; 1 is a plain fixed point,
            smaller values stabilise strongly coupled (near-runaway) cases.
        initial_temperatures:
            Optional starting temperatures [K]; ambient by default.
        max_temperature:
            Ceiling [K] applied to block temperatures during the iteration.
            Designs whose leakage-temperature feedback diverges (thermal
            runaway) saturate at this ceiling instead of overflowing; such a
            run ends with ``converged = False`` unless the fixed point truly
            settles at the ceiling.
        """
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if max_temperature <= self.ambient_temperature:
            raise ValueError("max_temperature must exceed the ambient temperature")

        temperatures: Dict[str, float] = {
            name: self.ambient_temperature for name in self._modelled_blocks
        }
        if initial_temperatures is not None:
            for name, value in initial_temperatures.items():
                if name in temperatures:
                    temperatures[name] = float(value)

        history: List[CosimIteration] = []
        converged = False
        for index in range(max_iterations):
            powers = self._block_powers(temperatures)
            updated = self._temperatures_from_powers(powers)
            max_change = 0.0
            next_temperatures = {}
            for name in self._modelled_blocks:
                new_value = (
                    damping * updated[name] + (1.0 - damping) * temperatures[name]
                )
                new_value = min(new_value, max_temperature)
                max_change = max(max_change, abs(new_value - temperatures[name]))
                next_temperatures[name] = new_value
            temperatures = next_temperatures
            history.append(
                CosimIteration(
                    index=index,
                    block_temperatures=dict(temperatures),
                    block_powers=dict(powers),
                    max_temperature_change=max_change if index > 0 else float("inf"),
                )
            )
            if index > 0 and max_change < tolerance:
                converged = True
                break

        if any(
            value >= max_temperature - 1e-9 for value in temperatures.values()
        ):
            # The iteration hit the runaway ceiling: report non-convergence so
            # callers can distinguish a physical fixed point from saturation.
            converged = False
        breakdowns = {
            name: self.block_models[name].breakdown(temperatures[name])
            for name in self._modelled_blocks
        }
        return CosimResult(
            block_temperatures=dict(temperatures),
            block_breakdowns=breakdowns,
            ambient_temperature=self.ambient_temperature,
            converged=converged,
            iterations=tuple(history),
        )

    # ------------------------------------------------------------------ #
    # Post-processing
    # ------------------------------------------------------------------ #
    def thermal_model(self, result: CosimResult) -> ChipThermalModel:
        """Full analytical thermal model at the converged powers.

        Useful for surface maps (Fig. 6) and cross-sections (Fig. 7) of the
        self-consistent solution.  Only backends with the ``field_maps``
        capability can render them — a map from a different thermal model
        than the one that produced the converged powers would be silently
        inconsistent — and the map follows the engine's effective image
        settings (adopted from an explicitly-passed
        :class:`~repro.core.thermal.operator.AnalyticalImageOperator` at
        construction).
        """
        capabilities = self.thermal_operator.capabilities
        if not capabilities.field_maps:
            raise ValueError(
                f"thermal backend {self.thermal_operator.name!r} cannot render "
                "surface maps (no field_maps capability); solve with the "
                "'analytical' backend for map post-processing"
            )
        model = ChipThermalModel(
            die=self.floorplan.die,
            ambient_temperature=self.ambient_temperature,
            image_rings=self.image_rings,
            include_bottom_images=self.include_bottom_images,
        )
        block_powers = {
            name: breakdown.total
            for name, breakdown in result.block_breakdowns.items()
        }
        model.add_sources(self.floorplan.to_heat_sources(block_powers))
        return model

    def isothermal_result(self, temperature: Optional[float] = None) -> CosimResult:
        """Single-pass evaluation at a fixed temperature (no coupling).

        This is the conventional "power at a guessed junction temperature"
        flow the paper argues against; comparing it with :meth:`solve`
        quantifies the error of ignoring the electro-thermal coupling.
        """
        if temperature is None:
            temperature = self.technology.reference_temperature
        temperatures = {name: temperature for name in self._modelled_blocks}
        powers = self._block_powers(temperatures)
        resulting_temperatures = self._temperatures_from_powers(powers)
        breakdowns = {
            name: self.block_models[name].breakdown(temperature)
            for name in self._modelled_blocks
        }
        return CosimResult(
            block_temperatures=resulting_temperatures,
            block_breakdowns=breakdowns,
            ambient_temperature=self.ambient_temperature,
            converged=True,
            iterations=(),
        )
