"""Block power models: the temperature-dependent half of the co-simulation.

The electro-thermal fixed point needs, for every floorplan block, the power
dissipated as a function of its junction temperature.  Two concrete models
are provided:

* :class:`ScaledLeakageBlockModel` — block power described by a fixed
  dynamic component plus a static component specified at the reference
  temperature and rescaled analytically with temperature using the paper's
  Eq. (13) (the usual abstraction when no gate-level netlist is available);
* :class:`NetlistBlockModel` — block power obtained from a gate-level
  netlist through :class:`~repro.core.dynamic.total.TotalPowerModel`
  (the paper's gate-level granularity).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ...circuit.netlist import Netlist
from ...technology.parameters import TechnologyParameters
from ..leakage import kernel as leakage_kernel
from ..dynamic.switching import SwitchingActivity
from ..dynamic.total import PowerBreakdown, TotalPowerModel
from ..leakage.subthreshold import single_device_off_current


class BlockPowerModel(ABC):
    """Power of one floorplan block as a function of junction temperature."""

    @property
    @abstractmethod
    def block_name(self) -> str:
        """Name of the floorplan block this model describes."""

    @abstractmethod
    def breakdown(self, temperature: float) -> PowerBreakdown:
        """Power breakdown [W] at the given junction temperature [K]."""

    def total_power(self, temperature: float) -> float:
        """Total power [W] at the given junction temperature [K]."""
        return self.breakdown(temperature).total

    def total_power_batch(self, temperatures) -> np.ndarray:
        """Total power [W] at every junction temperature of an array.

        The base implementation loops the scalar path; models whose physics
        vectorize (e.g. :class:`ScaledLeakageBlockModel` through the batched
        leakage kernel) override it with a broadcast evaluation.
        """
        temperatures = np.asarray(temperatures, dtype=float)
        return np.asarray(
            [self.total_power(float(t)) for t in temperatures.ravel()]
        ).reshape(temperatures.shape)


def leakage_temperature_ratio(
    technology: TechnologyParameters,
    temperature: float,
    reference_temperature: Optional[float] = None,
    device_type: str = "nmos",
) -> float:
    """Ratio ``Ioff(T) / Ioff(Tref)`` from the analytical model (Eq. 13).

    The ratio is geometry-independent (widths cancel), so one evaluation
    serves a whole block.
    """
    if reference_temperature is None:
        reference_temperature = technology.reference_temperature
    device = technology.device(device_type)
    width = device.nominal_width
    hot = single_device_off_current(
        device, width, technology.vdd, temperature, technology.reference_temperature
    )
    cold = single_device_off_current(
        device,
        width,
        technology.vdd,
        reference_temperature,
        technology.reference_temperature,
    )
    return hot / cold


def leakage_temperature_ratio_batch(
    technology: TechnologyParameters,
    temperatures,
    reference_temperature: Optional[float] = None,
    device_type: str = "nmos",
) -> np.ndarray:
    """Batched :func:`leakage_temperature_ratio` over a temperature array.

    One broadcast evaluation of the paper's Eq. (13) through the vectorized
    leakage kernel, mirroring the scalar arithmetic; this is what lets the
    scenario engine rescale every (scenario, block) static power at once.
    """
    if reference_temperature is None:
        reference_temperature = technology.reference_temperature
    device = technology.device(device_type)
    return leakage_kernel.leakage_temperature_ratio(
        leakage_kernel.DeviceArray.from_device(device),
        technology.vdd,
        np.asarray(temperatures, dtype=float),
        reference_temperature,
        parameter_reference_temperature=technology.reference_temperature,
        width=np.asarray(device.nominal_width),
    )


@dataclass
class ScaledLeakageBlockModel(BlockPowerModel):
    """Block power with analytically temperature-scaled static component.

    Attributes
    ----------
    name:
        Floorplan block name.
    technology:
        Technology parameters providing the leakage temperature law.
    dynamic_power:
        Temperature-independent dynamic power [W].
    static_power_at_reference:
        Static power [W] at the technology's reference temperature.
    device_type:
        Polarity used for the temperature law (leakage is dominated by the
        NMOS network in most static CMOS blocks).
    """

    name: str
    technology: TechnologyParameters
    dynamic_power: float
    static_power_at_reference: float
    device_type: str = "nmos"

    def __post_init__(self) -> None:
        if self.dynamic_power < 0.0:
            raise ValueError("dynamic_power must be non-negative")
        if self.static_power_at_reference < 0.0:
            raise ValueError("static_power_at_reference must be non-negative")

    @property
    def block_name(self) -> str:
        return self.name

    def breakdown(self, temperature: float) -> PowerBreakdown:
        ratio = leakage_temperature_ratio(
            self.technology, temperature, device_type=self.device_type
        )
        return PowerBreakdown(
            switching=self.dynamic_power,
            short_circuit=0.0,
            static=self.static_power_at_reference * ratio,
        )

    def total_power_batch(self, temperatures) -> np.ndarray:
        """Broadcast total power through the batched leakage kernel."""
        ratio = leakage_temperature_ratio_batch(
            self.technology, temperatures, device_type=self.device_type
        )
        return self.dynamic_power + self.static_power_at_reference * ratio


class NetlistBlockModel(BlockPowerModel):
    """Block power evaluated from a gate-level netlist.

    Parameters
    ----------
    name:
        Floorplan block name; only instances assigned to this block (or all
        instances when ``use_whole_netlist`` is True) contribute.
    netlist:
        The combinational netlist.
    primary_inputs:
        Logic values of the netlist's primary inputs (leakage is
        vector-dependent).
    technology:
        Technology parameters.
    activity:
        Switching activity description applied to every instance.
    use_whole_netlist:
        Treat the whole netlist as belonging to this block regardless of the
        instances' ``block`` attribute.
    """

    def __init__(
        self,
        name: str,
        netlist: Netlist,
        primary_inputs: Mapping[str, int],
        technology: TechnologyParameters,
        activity: Optional[SwitchingActivity] = None,
        use_whole_netlist: bool = False,
    ) -> None:
        self._name = name
        self.netlist = netlist
        self.primary_inputs = dict(primary_inputs)
        self.technology = technology
        self.activity = activity or SwitchingActivity()
        self.use_whole_netlist = use_whole_netlist
        self._power_model = TotalPowerModel(technology, default_activity=self.activity)

    @property
    def block_name(self) -> str:
        return self._name

    def breakdown(self, temperature: float) -> PowerBreakdown:
        per_instance = self._power_model.instance_breakdown(
            self.netlist, self.primary_inputs, temperature
        )
        total = PowerBreakdown(switching=0.0, short_circuit=0.0, static=0.0)
        for instance in self.netlist.instances():
            if not self.use_whole_netlist and instance.block != self._name:
                continue
            total = total + per_instance[instance.name]
        return total


def block_models_from_powers(
    technology: TechnologyParameters,
    dynamic_powers: Mapping[str, float],
    static_powers_at_reference: Mapping[str, float],
) -> Dict[str, BlockPowerModel]:
    """Build :class:`ScaledLeakageBlockModel` objects from per-block powers."""
    names = set(dynamic_powers) | set(static_powers_at_reference)
    if not names:
        raise ValueError("at least one block power must be given")
    models: Dict[str, BlockPowerModel] = {}
    for name in sorted(names):
        models[name] = ScaledLeakageBlockModel(
            name=name,
            technology=technology,
            dynamic_power=float(dynamic_powers.get(name, 0.0)),
            static_power_at_reference=float(static_powers_at_reference.get(name, 0.0)),
        )
    return models
