"""Transient electro-thermal simulation at block granularity.

The steady-state engine of :mod:`repro.core.cosim.engine` answers "where
does the coupled power/temperature fixed point settle"; this module answers
"how does the die get there" for time-varying workloads: each floorplan
block is given a lumped thermal time constant (its silicon heat capacity
charging through the analytical spreading resistance), the block-to-block
steady-state coupling comes from the same reduced thermal-resistance matrix
as the static engine, and the temperature-dependent leakage is re-evaluated
at every time step.

The integrator is the standard relaxation form

``dT_i/dt = (T_ss,i(P(t, T)) - T_i) / tau_i``

with ``T_ss = T_amb + R · P`` — exact for a single block with one pole, and
a good block-level approximation for workload transients much slower than
the die's internal diffusion time (milliseconds), which is the regime the
paper's 3 Hz self-heating measurements live in too.

The time stepping itself lives in
:func:`repro.core.cosim.transient_scenarios.integrate_relaxation`, the
batched core shared with :class:`TransientScenarioEngine`;
:class:`TransientElectroThermalSimulator` is its single-row wrapper, kept
for arbitrary (non-vectorizable) :class:`BlockPowerModel` implementations
and as the readable reference / parity oracle of the batched path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .engine import ElectroThermalEngine

#: A workload profile: maps time [s] to a per-block dynamic-power multiplier.
ActivityProfile = Callable[[float], Mapping[str, float]]


@dataclass(frozen=True)
class TransientCosimResult:
    """Time histories produced by :class:`TransientElectroThermalSimulator`.

    Attributes
    ----------
    times:
        Sample instants [s].
    block_temperatures:
        Per-block junction temperature [K] histories, same length as
        ``times``.  Exposed as a read-only mapping of read-only arrays.
    block_powers:
        Per-block total power [W] histories (read-only, as above).
    ambient_temperature:
        Heat-sink temperature [K].
    """

    times: np.ndarray
    block_temperatures: Mapping[str, np.ndarray]
    block_powers: Mapping[str, np.ndarray]
    ambient_temperature: float

    def __post_init__(self) -> None:
        # The dataclass is frozen but ndarrays and dicts are mutable; expose
        # read-only views so results are value-semantic without mutating the
        # writability of arrays the caller may still hold.
        for attribute in ("block_temperatures", "block_powers"):
            mapping = {}
            for name, array in getattr(self, attribute).items():
                view = np.asarray(array).view()
                view.setflags(write=False)
                mapping[name] = view
            object.__setattr__(self, attribute, MappingProxyType(mapping))
        times = np.asarray(self.times).view()
        times.setflags(write=False)
        object.__setattr__(self, "times", times)

    @property
    def block_names(self) -> Tuple[str, ...]:
        return tuple(self.block_temperatures)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Histories stacked as ``(temperatures, powers)`` ndarrays.

        Both arrays are shaped ``(n_steps, n_blocks)`` with columns in
        :attr:`block_names` order — the single-scenario slice convention of
        the batched :class:`TransientBatchResult`.
        """
        names = self.block_names
        temperatures = np.column_stack([self.block_temperatures[n] for n in names])
        powers = np.column_stack([self.block_powers[n] for n in names])
        return temperatures, powers

    def peak_temperature(self, block: str) -> float:
        """Hottest sampled temperature [K] of one block."""
        return float(self.block_temperatures[block].max())

    def final_temperature(self, block: str) -> float:
        """Temperature [K] of one block at the last sample."""
        return float(self.block_temperatures[block][-1])

    def total_energy(self) -> float:
        """Energy [J] dissipated by all blocks over the simulated window."""
        total = 0.0
        dt = np.diff(self.times)
        for powers in self.block_powers.values():
            total += float(np.sum(0.5 * (powers[1:] + powers[:-1]) * dt))
        return total


class TransientElectroThermalSimulator:
    """Block-level transient electro-thermal simulator.

    Parameters
    ----------
    engine:
        A configured steady-state :class:`ElectroThermalEngine`; the
        transient simulator reuses its floorplan, block power models,
        reduced thermal-resistance matrix and ambient temperature.
    time_constants:
        Optional per-block thermal time constants [s].  Blocks without an
        entry get a constant derived from their footprint: the analytical
        spreading resistance times the heat capacity of a silicon volume one
        die-thickness deep under the block.
    """

    def __init__(
        self,
        engine: ElectroThermalEngine,
        time_constants: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.engine = engine
        # Block order must match the engine's resistance-matrix row order.
        self._blocks = engine.modelled_blocks
        self._matrix = engine.resistance_matrix
        self._ambient = engine.ambient_temperature
        self._time_constants = {
            name: self._default_time_constant(name) for name in self._blocks
        }
        if time_constants is not None:
            for name, value in time_constants.items():
                if name not in self._time_constants:
                    raise KeyError(f"unknown block {name!r}")
                if value <= 0.0:
                    raise ValueError("time constants must be positive")
                self._time_constants[name] = float(value)

    def _default_time_constant(self, name: str) -> float:
        block = self.engine.floorplan.block(name)
        die = self.engine.floorplan.die
        silicon = self.engine.technology.thermal.silicon
        # Spreading resistance of the block footprint ...
        index = self._blocks.index(name)
        resistance = float(self._matrix[index, index])
        # ... charging the silicon volume directly beneath it.
        capacitance = silicon.volumetric_heat_capacity * block.area * die.thickness
        return resistance * capacitance

    @property
    def time_constants(self) -> Dict[str, float]:
        """Per-block thermal time constants [s] in use."""
        return dict(self._time_constants)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def _steady_targets(self, powers: Sequence[float]) -> np.ndarray:
        vector = np.asarray(powers, dtype=float)
        sink = self.engine.technology.thermal.heat_sink_resistance * vector.sum()
        return self._ambient + sink + self._matrix @ vector

    def simulate(
        self,
        duration: float,
        time_step: float,
        activity_profile: Optional[ActivityProfile] = None,
        initial_temperatures: Optional[Mapping[str, float]] = None,
        max_temperature: float = 500.0,
    ) -> TransientCosimResult:
        """Integrate the coupled block temperatures over ``duration`` seconds.

        Parameters
        ----------
        duration:
            Simulated time span [s].
        time_step:
            Integration step [s]; must resolve the fastest block time
            constant reasonably (the exponential update is unconditionally
            stable, but coarse steps smear fast transients).
        activity_profile:
            Optional function of time returning a per-block multiplier for
            the *dynamic* power (1.0 = nominal activity; leakage always
            follows temperature).  Blocks missing from the returned mapping
            default to 1.0.
        initial_temperatures:
            Starting junction temperatures [K]; ambient by default.
        max_temperature:
            Safety ceiling [K] against thermal-runaway overflow.
        """
        # Imported here (not at module scope) because transient_scenarios
        # imports this module's result/profile types.
        from .transient_scenarios import integrate_relaxation

        if duration <= 0.0 or time_step <= 0.0:
            raise ValueError("duration and time_step must be positive")
        if time_step > duration:
            raise ValueError("time_step must not exceed the duration")
        if max_temperature <= self._ambient:
            raise ValueError("max_temperature must exceed the ambient temperature")

        steps = int(math.ceil(duration / time_step)) + 1
        times = np.linspace(0.0, duration, steps)
        initial = np.full((1, len(self._blocks)), self._ambient)
        if initial_temperatures is not None:
            for name, value in initial_temperatures.items():
                if name not in self._blocks:
                    raise KeyError(f"unknown block {name!r}")
                initial[0, self._blocks.index(name)] = float(value)
        tau = np.asarray([[self._time_constants[name] for name in self._blocks]])
        models = [self.engine.block_models[name] for name in self._blocks]

        def power_fn(now: float, temps: np.ndarray, rows: np.ndarray) -> np.ndarray:
            multipliers = {}
            if activity_profile is not None:
                multipliers = dict(activity_profile(float(now)))
            powers = np.empty((1, len(models)))
            for column, name in enumerate(self._blocks):
                breakdown = models[column].breakdown(float(temps[0, column]))
                scale = float(multipliers.get(name, 1.0))
                if scale < 0.0:
                    raise ValueError("activity multipliers must be non-negative")
                powers[0, column] = breakdown.dynamic * scale + breakdown.static
            return powers

        def targets_fn(powers: np.ndarray, rows: np.ndarray) -> np.ndarray:
            return self._steady_targets(powers[0])[np.newaxis, :]

        arrays = integrate_relaxation(
            times, tau, initial, power_fn, targets_fn, max_temperature
        )
        return TransientCosimResult(
            times=times,
            block_temperatures={
                name: arrays.temperatures[0, :, column]
                for column, name in enumerate(self._blocks)
            },
            block_powers={
                name: arrays.powers[0, :, column]
                for column, name in enumerate(self._blocks)
            },
            ambient_temperature=self._ambient,
        )


def step_activity_profile(
    on_blocks: Mapping[str, float], switch_time: float
) -> ActivityProfile:
    """Profile that switches block activity multipliers on at ``switch_time``.

    Before ``switch_time`` every block runs at zero dynamic activity (idle,
    leakage only); afterwards each block listed in ``on_blocks`` runs at its
    given multiplier.
    """
    if switch_time < 0.0:
        raise ValueError("switch_time must be non-negative")

    def profile(time: float) -> Mapping[str, float]:
        if time < switch_time:
            return {name: 0.0 for name in on_blocks}
        return dict(on_blocks)

    return profile


def square_wave_activity_profile(
    period: float, duty_cycle: float, blocks: Sequence[str]
) -> ActivityProfile:
    """Profile that pulses the listed blocks between idle and full activity."""
    if period <= 0.0:
        raise ValueError("period must be positive")
    if not 0.0 < duty_cycle < 1.0:
        raise ValueError("duty_cycle must be in (0, 1)")

    def profile(time: float) -> Mapping[str, float]:
        phase = (time % period) / period
        value = 1.0 if phase < duty_cycle else 0.0
        return {name: value for name in blocks}

    return profile
