"""Cached block-to-block thermal-resistance reduction.

The reduced thermal-resistance matrix of a floorplan — entry ``[i, j]`` is
the temperature rise at block ``i``'s centre per watt dissipated over block
``j``'s footprint, boundary images included — depends only on *geometry*
(die, block footprints, image configuration) and on the substrate
conductivity, never on the dissipated powers.  Because every closed form of
the thermal model (Eqs. 18/19/20) carries the conductivity as a single
``1/k`` prefactor, the matrix factorises as ``R(k) = R(k=1) / k``.

This module caches the unit-conductivity matrix per geometry so that

* :class:`~repro.core.cosim.engine.ElectroThermalEngine` instances over the
  same floorplan (e.g. one per ambient temperature) reduce it once, and
* :class:`~repro.core.cosim.scenarios.ScenarioEngine` reuses one reduction
  across *every* scenario sharing a floorplan, whatever its technology
  node, supply, ambient temperature or workload.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ...floorplan.floorplan import Floorplan
from ..thermal.images import ImageExpansion
from ..thermal.kernel import pairwise_rise

#: Unit-conductivity matrices keyed by the full geometric description.
_CACHE: Dict[Tuple, np.ndarray] = {}

#: Entries kept before the cache is cleared (a whole-sweep working set is a
#: handful of floorplans; the bound only guards pathological churn).
_CACHE_LIMIT = 64


def _geometry_key(
    floorplan: Floorplan,
    block_names: Sequence[str],
    image_rings: int,
    include_bottom_images: bool,
) -> Tuple:
    """Hashable description of everything the reduction depends on."""
    die = floorplan.die
    blocks = tuple(
        (name, block.x, block.y, block.width, block.length)
        for name, block in (
            (name, floorplan.block(name)) for name in block_names
        )
    )
    return (
        die.width,
        die.length,
        die.thickness,
        blocks,
        int(image_rings),
        bool(include_bottom_images),
    )


def unit_resistance_matrix(
    floorplan: Floorplan,
    block_names: Sequence[str],
    image_rings: int = 1,
    include_bottom_images: bool = True,
) -> np.ndarray:
    """Unit-conductivity block-to-block resistance matrix [K*m/W... /k].

    Multiplying by ``1/k`` (the substrate conductivity [W/m/K]) yields the
    physical matrix in [K/W].  The returned array is a cached, read-only
    view; divide (don't mutate) it.
    """
    key = _geometry_key(floorplan, block_names, image_rings, include_bottom_images)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached

    expansion = ImageExpansion(
        floorplan.die,
        rings=image_rings,
        include_bottom_images=include_bottom_images,
    )
    blocks = [floorplan.block(name) for name in block_names]
    unit_sources = [block.to_heat_source(1.0) for block in blocks]
    expanded, groups = expansion.expand_arrays(unit_sources)
    observers = np.asarray([[block.x, block.y] for block in blocks])
    matrix = pairwise_rise(
        observers,
        expanded,
        1.0,
        groups=groups,
        group_count=len(blocks),
    )
    matrix.setflags(write=False)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = matrix
    return matrix


def cache_size() -> int:
    """Number of cached geometry reductions (test/diagnostic hook)."""
    return len(_CACHE)


def clear_cache() -> None:
    """Drop every cached reduction (test hook)."""
    _CACHE.clear()
