"""Cached block-to-block thermal-resistance reductions, per backend.

The reduced thermal-resistance matrix of a floorplan — entry ``[i, j]`` is
the temperature rise at block ``i``'s centre per watt dissipated over block
``j``'s footprint — depends only on *geometry* (die, block footprints), on
the reducing backend's configuration (image rings, FDM grid, ...) and on
the substrate conductivity, never on the dissipated powers.  Every
built-in :class:`~repro.core.thermal.operator.ThermalOperator` carries the
conductivity as a single ``1/k`` prefactor, so the matrix factorises as
``R(k) = R(k=1) / k``.

This module caches the unit-conductivity matrix per
``(backend configuration, geometry)`` so that

* :class:`~repro.core.cosim.engine.ElectroThermalEngine` instances over the
  same floorplan (e.g. one per ambient temperature) reduce it once,
* :class:`~repro.core.cosim.scenarios.ScenarioEngine` reuses one reduction
  across *every* scenario sharing a floorplan, whatever its technology
  node, supply, ambient temperature or workload, and
* engines over the same geometry but different backends (an
  analytical-vs-FDM accuracy study) each keep their own entry — switching
  backends never invalidates the other backend's reduction.

Eviction is least-recently-used: when the cache exceeds
:data:`_CACHE_LIMIT` entries the stalest reduction is dropped, so a long
sweep over many geometries keeps its warm working set instead of
periodically losing everything.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence, Tuple

import numpy as np

from ...floorplan.floorplan import Floorplan
from ..thermal.operator import AnalyticalImageOperator, ThermalOperator

#: Unit-conductivity matrices keyed by (operator cache key, geometry),
#: ordered stalest-first (a hit moves the entry to the fresh end).
_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()

#: Entries kept before the least-recently-used reduction is evicted (a
#: whole-sweep working set is a handful of floorplans per backend; the
#: bound only guards pathological churn).
_CACHE_LIMIT = 64


def _geometry_key(floorplan: Floorplan, block_names: Sequence[str]) -> Tuple:
    """Hashable description of the geometry a reduction depends on."""
    die = floorplan.die
    blocks = tuple(
        (name, block.x, block.y, block.width, block.length)
        for name, block in ((name, floorplan.block(name)) for name in block_names)
    )
    return (die.width, die.length, die.thickness, blocks)


def reduced_unit_matrix(
    operator: ThermalOperator,
    floorplan: Floorplan,
    block_names: Sequence[str],
) -> np.ndarray:
    """Unit-conductivity block-to-block resistance matrix [K*m/W... /k].

    Multiplying by ``1/k`` (the substrate conductivity [W/m/K]) yields the
    physical matrix in [K/W].  The returned array is a cached, read-only
    view; divide (don't mutate) it.
    """
    key = (operator.cache_key(), _geometry_key(floorplan, block_names))
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        return cached

    # Copied before freezing: a custom operator may keep a reference to
    # the array it returned, and making *its* array read-only would be an
    # observable side effect (the copy is cheap at n_blocks x n_blocks).
    matrix = np.array(operator.reduce(floorplan, block_names), dtype=float)
    expected = (len(block_names), len(block_names))
    if matrix.shape != expected:
        raise ValueError(
            f"backend {operator.name!r} reduced to shape {matrix.shape}, "
            f"expected {expected}"
        )
    matrix.setflags(write=False)
    _CACHE[key] = matrix
    while len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
    return matrix


def unit_resistance_matrix(
    floorplan: Floorplan,
    block_names: Sequence[str],
    image_rings: int = 1,
    include_bottom_images: bool = True,
) -> np.ndarray:
    """The analytical-backend reduction (shared cache, legacy signature)."""
    return reduced_unit_matrix(
        AnalyticalImageOperator(
            image_rings=image_rings, include_bottom_images=include_bottom_images
        ),
        floorplan,
        block_names,
    )


def cache_size() -> int:
    """Number of cached geometry reductions (test/diagnostic hook)."""
    return len(_CACHE)


def clear_cache() -> None:
    """Drop every cached reduction (test hook)."""
    _CACHE.clear()
