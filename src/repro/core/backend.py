"""Array-namespace resolution and the precision policy registry.

The batched kernels (:mod:`repro.core.thermal.kernel`,
:mod:`repro.core.leakage.kernel`) and both scenario engines are written
against a single ``xp`` seam in the style of the Python Array API
standard: every hot-path module resolves its namespace from the arrays it
receives (:func:`get_namespace`) or from an engine-level policy
(:func:`resolve_namespace`) instead of importing ``numpy`` directly.  The
same code then runs on

* **numpy** — the default; the in-place ufunc fast paths stay enabled and
  results are bit-identical to the pre-seam engines;
* **array_api_strict** — the reference implementation of the standard,
  used by CI to prove no NumPy-only idiom leaks through the seam;
* **cupy** / **jax** — optional accelerated namespaces, resolved lazily
  and only when importable (never a hard dependency).

Precision is the second half of the policy: a :class:`Precision` names
the working dtype (``float64`` or ``float32``) together with the
documented tolerances float32 results are pinned to against the float64
reference (``tests/test_precision.py``).  ``float64`` is the default and
carries zero tolerances — it *is* the reference.

Both registries surface in :class:`repro.api.specs.StudySpec`
(``array_backend=`` / ``precision=``), the CLI (``repro info``) and
``docs/precision.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "ARRAY_BACKENDS",
    "PRECISIONS",
    "Precision",
    "array_backend_available",
    "array_backend_names",
    "get_namespace",
    "precision_names",
    "resolve_namespace",
    "resolve_precision",
    "result_float_dtype",
    "supports_inplace",
    "to_numpy",
]


def get_namespace(*arrays: Any) -> Any:
    """The Array-API namespace shared by ``arrays``.

    The ``array_api_compat.get_namespace`` contract, self-contained so the
    seam has no dependency beyond numpy: arrays advertising
    ``__array_namespace__`` resolve to that namespace, plain numpy arrays
    (and scalars / nested lists, which numpy will consume) resolve to
    ``numpy``, and mixing two different namespaces is an error.
    """
    namespaces = []
    for array in arrays:
        probe = getattr(array, "__array_namespace__", None)
        if probe is None:
            continue
        namespace = probe()
        if all(namespace is not seen for seen in namespaces):
            namespaces.append(namespace)
    if len(namespaces) > 1:
        names = ", ".join(getattr(ns, "__name__", repr(ns)) for ns in namespaces)
        raise TypeError(f"arrays mix incompatible namespaces: {names}")
    if namespaces and namespaces[0] is not None:
        namespace = namespaces[0]
        # numpy >= 2 advertises __array_namespace__ on ndarrays; keep the
        # canonical module object so `xp is numpy` stays a valid fast-path
        # test everywhere downstream.
        if getattr(namespace, "__name__", "") == "numpy":
            return np
        return namespace
    return np


#: Selectable array namespaces, in registry order.  ``numpy`` is always
#: available; the rest resolve lazily and only if importable.
ARRAY_BACKENDS: Tuple[str, ...] = ("numpy", "array_api_strict", "cupy", "jax")

_NAMESPACE_MODULES: Dict[str, str] = {
    "numpy": "numpy",
    "array_api_strict": "array_api_strict",
    "cupy": "cupy",
    "jax": "jax.numpy",
}


def array_backend_names() -> Tuple[str, ...]:
    """Registry names of the selectable array backends."""
    return ARRAY_BACKENDS


def resolve_namespace(name: Optional[str]) -> Any:
    """The namespace module registered under ``name`` (default: numpy).

    Raises ``ValueError`` for unknown names and ``ImportError`` (with the
    registry name in the message) when an optional backend is selected but
    not installed — the caller decides whether that is fatal.  An already
    resolved namespace object (anything exposing ``asarray``) passes
    through unchanged, so engines can be handed e.g. a compat-wrapped
    namespace directly.
    """
    if name is None:
        return np
    if not isinstance(name, str):
        if hasattr(name, "asarray"):
            return name
        raise TypeError(f"array_backend must be a registry name or namespace: {name!r}")
    if name not in _NAMESPACE_MODULES:
        raise ValueError(
            f"unknown array_backend {name!r}; "
            f"known backends: {', '.join(ARRAY_BACKENDS)}"
        )
    if name == "numpy":
        return np
    import importlib

    try:
        return importlib.import_module(_NAMESPACE_MODULES[name])
    except ImportError as error:
        raise ImportError(
            f"array_backend {name!r} is not installed "
            f"(module {_NAMESPACE_MODULES[name]!r}): {error}"
        ) from error


def array_backend_available(name: str) -> bool:
    """Whether the named backend can actually be imported here."""
    try:
        resolve_namespace(name)
    except (ImportError, ValueError):
        return False
    return True


def supports_inplace(xp: Any) -> bool:
    """Whether ``xp`` supports the numpy ``out=`` / in-place ufunc idiom.

    True exactly for numpy: the engines keep their buffer-reusing in-place
    fast paths (bit-identical to the pre-seam code) on numpy and switch to
    functional Array-API expressions — same operations, same order — on
    every other namespace.
    """
    return xp is np


def to_numpy(array: Any) -> np.ndarray:
    """``array`` as a numpy ndarray (no copy when it already is one).

    The engine-boundary export: results always leave the engines as numpy
    arrays whatever namespace computed them, so downstream consumers
    (serialization, reductions, plotting) stay namespace-free.
    """
    if isinstance(array, np.ndarray):
        return array
    if hasattr(array, "__dlpack__"):
        try:
            return np.from_dlpack(array)
        except (BufferError, RuntimeError, TypeError):
            pass
    return np.asarray(array)


@dataclass(frozen=True)
class Precision:
    """A named working-precision policy.

    Attributes
    ----------
    name:
        Registry name (``"float64"`` / ``"float32"``).
    dtype_name:
        Array-API dtype attribute the policy computes in (resolved per
        namespace via :meth:`dtype`).
    rtol, atol:
        Documented tolerances of this policy's results against the
        float64 reference (temperatures in K, powers relative); zero for
        float64 itself, which *is* the reference.
    description:
        One-line selection guidance (``repro info``, docs).
    """

    name: str
    dtype_name: str
    rtol: float
    atol: float
    description: str

    def dtype(self, xp: Any = np) -> Any:
        """This policy's dtype object within the namespace ``xp``."""
        return getattr(xp, self.dtype_name)


#: Selectable precision policies.  float64 is the default (and the
#: reference the float32 tolerances are measured against — see
#: ``docs/precision.md`` for the calibration).
PRECISIONS: Dict[str, Precision] = {
    "float64": Precision(
        name="float64",
        dtype_name="float64",
        rtol=0.0,
        atol=0.0,
        description="bit-exact verification runs (default)",
    ),
    "float32": Precision(
        name="float32",
        dtype_name="float32",
        rtol=1e-4,
        atol=5e-3,
        description="fast serving maps; within rtol=1e-4/atol=5e-3 of float64",
    ),
}


def precision_names() -> Tuple[str, ...]:
    """Registry names of the selectable precision policies."""
    return tuple(PRECISIONS)


def resolve_precision(name: Optional[str]) -> Precision:
    """The :class:`Precision` registered under ``name`` (default float64)."""
    if name is None:
        return PRECISIONS["float64"]
    if isinstance(name, Precision):
        return name
    try:
        return PRECISIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown precision {name!r}; "
            f"known precisions: {', '.join(PRECISIONS)}"
        ) from None


def result_float_dtype(*arrays: Any) -> Any:
    """The working float dtype carried by ``arrays``.

    The first real-floating dtype found wins; float64 otherwise.  This is
    how the kernels thread a caller's precision policy through without a
    dtype parameter on every call: packed arrays carry the policy dtype
    and every intermediate/output allocation follows it.  Integer or bool
    inputs (index arrays, masks) never dictate the result dtype.
    """
    for array in arrays:
        dtype = getattr(array, "dtype", None)
        if dtype is None:
            continue
        try:
            if np.issubdtype(np.dtype(dtype), np.floating):
                return dtype
        except TypeError:
            # Non-numpy dtype objects (e.g. array_api_strict's) — probe
            # via their kind/name instead.
            if "float" in str(dtype):
                return dtype
    return np.float64
