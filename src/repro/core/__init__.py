"""Core models reproduced from the paper.

* :mod:`repro.core.leakage` — analytical static-power model (Section 2);
* :mod:`repro.core.thermal` — analytical thermal-profile model (Section 3);
* :mod:`repro.core.dynamic` — dynamic power (transient + short-circuit);
* :mod:`repro.core.cosim` — concurrent electro-thermal estimation.

Subpackages load lazily (PEP 562).  Besides keeping ``import repro.core``
cheap, this breaks the import cycle between :mod:`repro.core.cosim` (which
consumes floorplans) and :mod:`repro.floorplan` (whose blocks build on the
thermal sources): neither package init forces the other anymore.
"""

from importlib import import_module

__all__ = ["leakage", "thermal", "dynamic", "cosim"]


def __getattr__(name: str):
    if name in __all__:
        return import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
