"""Core models reproduced from the paper.

* :mod:`repro.core.leakage` — analytical static-power model (Section 2);
* :mod:`repro.core.thermal` — analytical thermal-profile model (Section 3);
* :mod:`repro.core.dynamic` — dynamic power (transient + short-circuit);
* :mod:`repro.core.cosim` — concurrent electro-thermal estimation.
"""

from . import cosim, dynamic, leakage, thermal

__all__ = ["leakage", "thermal", "dynamic", "cosim"]
