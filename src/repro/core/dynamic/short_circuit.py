"""Short-circuit power model (paper reference [10], Rossello & Segura 2002).

During an input transition both the pull-up and pull-down networks conduct
for a short time, creating a direct supply-to-ground path.  The paper refers
to the authors' earlier charge-based analytical model (TCAD 2002) for this
component; full reproduction of that model is out of scope here, so this
module implements the widely used charge-based approximation that captures
its dependencies:

* the short-circuit charge per transition grows with the input transition
  time and with the drive strength of the gate,
* it collapses when the supply approaches ``Vthn + |Vthp|`` (no overlap
  window), and
* it is attenuated by the output load (fast output transitions starve the
  short-circuit path), through the standard ``1 / (1 + C_load / C_crit)``
  factor.

The absolute magnitude is calibrated so that an unloaded, equal-rise-time
inverter dissipates roughly 10% of its switching power as short-circuit
power — the classic Veendrick design guideline — which is sufficient for the
total-power and scaling studies this library performs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...circuit.cells import LogicGate
from ...technology.parameters import TechnologyParameters


@dataclass(frozen=True)
class TransitionEnvironment:
    """Switching environment of a gate input for short-circuit evaluation.

    Attributes
    ----------
    input_transition_time:
        10–90% input rise/fall time [s].
    frequency:
        Clock frequency [Hz].
    activity:
        Output transition probability per cycle.
    load_capacitance:
        Capacitance [F] at the gate output.
    """

    input_transition_time: float
    frequency: float = 1.0e9
    activity: float = 0.1
    load_capacitance: float = 0.0

    def __post_init__(self) -> None:
        if self.input_transition_time <= 0.0:
            raise ValueError("input_transition_time must be positive")
        if self.frequency <= 0.0:
            raise ValueError("frequency must be positive")
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        if self.load_capacitance < 0.0:
            raise ValueError("load_capacitance must be non-negative")


def overlap_voltage(technology: TechnologyParameters) -> float:
    """Supply overdrive available for short-circuit conduction [V].

    ``Vdd - Vthn - |Vthp|``; non-positive values mean the two networks are
    never simultaneously ON and the short-circuit power vanishes.
    """
    return technology.vdd - technology.nmos.vt0 - technology.pmos.vt0


def short_circuit_charge(
    gate: LogicGate,
    technology: TechnologyParameters,
    environment: TransitionEnvironment,
) -> float:
    """Short-circuit charge [C] drawn from the supply per output transition."""
    overlap = overlap_voltage(technology)
    if overlap <= 0.0:
        return 0.0
    # Peak short-circuit current: the weaker of the two networks limits the
    # crowbar current; approximate with the NMOS saturation current of the
    # gate's total pull-down width at half the overlap overdrive.
    pull_down_width = sum(d.width for d in gate.pull_down.devices())
    peak_current = (
        technology.nmos.saturation_current_density
        * pull_down_width
        * (0.5 * overlap / max(technology.vdd - technology.nmos.vt0, 1e-3)) ** 1.3
    )
    # Conduction window: the fraction of the input ramp during which both
    # networks are ON.
    window = environment.input_transition_time * overlap / technology.vdd
    # Triangular current waveform plus load attenuation.
    raw_charge = 0.5 * peak_current * window
    critical_load = gate.output_capacitance(technology)
    attenuation = 1.0 / (
        1.0 + environment.load_capacitance / max(critical_load, 1e-18)
    )
    return raw_charge * attenuation


def short_circuit_power(
    gate: LogicGate,
    technology: TechnologyParameters,
    environment: TransitionEnvironment,
) -> float:
    """Short-circuit power [W] of one gate.

    ``P_sc = alpha * f * Q_sc * Vdd``.
    """
    charge = short_circuit_charge(gate, technology, environment)
    return environment.activity * environment.frequency * charge * technology.vdd


def short_circuit_fraction(
    gate: LogicGate,
    technology: TechnologyParameters,
    environment: TransitionEnvironment,
) -> float:
    """Short-circuit power as a fraction of the gate's switching power."""
    from .switching import switching_power

    load = gate.output_capacitance(
        technology, external_load=environment.load_capacitance
    )
    transient = switching_power(
        environment.activity, environment.frequency, load, technology.vdd
    )
    if transient == 0.0:
        return 0.0
    return short_circuit_power(gate, technology, environment) / transient
