"""Transient (capacitive switching) power.

The paper's Section 2 lists the transient component of dynamic power as
``Pt = alpha f C Vdd^2`` — the energy to charge and discharge the effective
output capacitance at the switching activity ``alpha`` and clock frequency
``f``.  The helpers here evaluate that expression for explicit capacitances,
for standard-cell instances (using the cell's estimated output load) and for
whole netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ...circuit.cells import LogicGate
from ...circuit.netlist import Netlist
from ...technology.parameters import TechnologyParameters


def switching_power(
    activity: float,
    frequency: float,
    capacitance: float,
    vdd: float,
) -> float:
    """Transient power [W]: ``alpha * f * C * Vdd^2``."""
    if not 0.0 <= activity <= 1.0:
        raise ValueError("activity must be in [0, 1]")
    if frequency <= 0.0:
        raise ValueError("frequency must be positive")
    if capacitance < 0.0:
        raise ValueError("capacitance must be non-negative")
    if vdd <= 0.0:
        raise ValueError("vdd must be positive")
    return activity * frequency * capacitance * vdd**2


def switching_energy_per_transition(capacitance: float, vdd: float) -> float:
    """Energy [J] drawn from the supply per output 0->1 transition: ``C Vdd^2``."""
    if capacitance < 0.0:
        raise ValueError("capacitance must be non-negative")
    if vdd <= 0.0:
        raise ValueError("vdd must be positive")
    return capacitance * vdd**2


@dataclass(frozen=True)
class SwitchingActivity:
    """Per-instance switching description.

    Attributes
    ----------
    activity:
        Probability of an output transition per clock cycle.
    frequency:
        Clock frequency [Hz].
    external_load:
        Wire plus fanout capacitance [F] added to the cell's self-load.
    """

    activity: float = 0.1
    frequency: float = 1.0e9
    external_load: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        if self.frequency <= 0.0:
            raise ValueError("frequency must be positive")
        if self.external_load < 0.0:
            raise ValueError("external_load must be non-negative")


def gate_switching_power(
    gate: LogicGate,
    technology: TechnologyParameters,
    activity: SwitchingActivity,
) -> float:
    """Transient power [W] of one gate instance."""
    load = gate.output_capacitance(technology, external_load=activity.external_load)
    return switching_power(
        activity.activity, activity.frequency, load, technology.vdd
    )


def netlist_switching_power(
    netlist: Netlist,
    technology: TechnologyParameters,
    activities: Optional[Mapping[str, SwitchingActivity]] = None,
    default_activity: Optional[SwitchingActivity] = None,
) -> Dict[str, float]:
    """Per-instance transient power [W] of a netlist.

    ``activities`` maps instance names to their switching description;
    instances not listed fall back to ``default_activity`` (or a library
    default of 10% activity at 1 GHz).
    """
    fallback = default_activity or SwitchingActivity()
    powers: Dict[str, float] = {}
    for instance in netlist.instances():
        activity = fallback
        if activities is not None and instance.name in activities:
            activity = activities[instance.name]
        powers[instance.name] = gate_switching_power(
            instance.cell, technology, activity
        )
    return powers
