"""Dynamic power models (transient + short-circuit) and total-power rollup."""

from .short_circuit import (
    TransitionEnvironment,
    overlap_voltage,
    short_circuit_charge,
    short_circuit_fraction,
    short_circuit_power,
)
from .switching import (
    SwitchingActivity,
    gate_switching_power,
    netlist_switching_power,
    switching_energy_per_transition,
    switching_power,
)
from .total import PowerBreakdown, TotalPowerModel, ZERO_POWER

__all__ = [
    "switching_power",
    "switching_energy_per_transition",
    "SwitchingActivity",
    "gate_switching_power",
    "netlist_switching_power",
    "TransitionEnvironment",
    "overlap_voltage",
    "short_circuit_charge",
    "short_circuit_power",
    "short_circuit_fraction",
    "PowerBreakdown",
    "ZERO_POWER",
    "TotalPowerModel",
]
