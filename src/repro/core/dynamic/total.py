"""Total power: dynamic (transient + short-circuit) plus static.

The paper's thesis is that sub-100nm total power cannot be computed without
solving power and temperature together; this module provides the
temperature-*parameterised* total-power evaluation that the electro-thermal
engine iterates: for a given junction temperature it sums the (temperature
insensitive, to first order) dynamic components and the exponentially
temperature-dependent static component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ...circuit.netlist import Netlist
from ...technology.parameters import TechnologyParameters
from ..leakage.circuit_leakage import CircuitLeakageModel
from .short_circuit import TransitionEnvironment, short_circuit_power
from .switching import SwitchingActivity, gate_switching_power


@dataclass(frozen=True)
class PowerBreakdown:
    """Power components [W] of a gate, block or chip."""

    switching: float
    short_circuit: float
    static: float

    @property
    def dynamic(self) -> float:
        """Switching plus short-circuit power [W]."""
        return self.switching + self.short_circuit

    @property
    def total(self) -> float:
        """Total power [W]."""
        return self.dynamic + self.static

    @property
    def static_fraction(self) -> float:
        """Static power as a fraction of the total (0 when total is zero)."""
        total = self.total
        if total == 0.0:
            return 0.0
        return self.static / total

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        return PowerBreakdown(
            switching=self.switching + other.switching,
            short_circuit=self.short_circuit + other.short_circuit,
            static=self.static + other.static,
        )


ZERO_POWER = PowerBreakdown(switching=0.0, short_circuit=0.0, static=0.0)


class TotalPowerModel:
    """Temperature-parameterised total power of a combinational netlist.

    Parameters
    ----------
    technology:
        Technology parameters.
    default_activity:
        Switching description applied to instances without an explicit one.
    default_transition_time:
        Input transition time [s] used by the short-circuit model.
    """

    def __init__(
        self,
        technology: TechnologyParameters,
        default_activity: Optional[SwitchingActivity] = None,
        default_transition_time: float = 50.0e-12,
    ) -> None:
        if default_transition_time <= 0.0:
            raise ValueError("default_transition_time must be positive")
        self.technology = technology
        self.default_activity = default_activity or SwitchingActivity()
        self.default_transition_time = default_transition_time
        self.leakage_model = CircuitLeakageModel(technology)

    def instance_breakdown(
        self,
        netlist: Netlist,
        primary_inputs: Mapping[str, int],
        temperature=None,
        activities: Optional[Mapping[str, SwitchingActivity]] = None,
    ) -> Dict[str, PowerBreakdown]:
        """Per-instance power breakdown for one primary-input assignment."""
        leakage_report = self.leakage_model.analyze(
            netlist, primary_inputs, temperature
        )
        breakdowns: Dict[str, PowerBreakdown] = {}
        for instance in netlist.instances():
            activity = self.default_activity
            if activities is not None and instance.name in activities:
                activity = activities[instance.name]
            switching = gate_switching_power(instance.cell, self.technology, activity)
            environment = TransitionEnvironment(
                input_transition_time=self.default_transition_time,
                frequency=activity.frequency,
                activity=activity.activity,
                load_capacitance=activity.external_load,
            )
            short = short_circuit_power(instance.cell, self.technology, environment)
            static = leakage_report.instance_estimates[instance.name].power
            breakdowns[instance.name] = PowerBreakdown(
                switching=switching, short_circuit=short, static=static
            )
        return breakdowns

    def total(
        self,
        netlist: Netlist,
        primary_inputs: Mapping[str, int],
        temperature=None,
        activities: Optional[Mapping[str, SwitchingActivity]] = None,
    ) -> PowerBreakdown:
        """Chip-level power breakdown."""
        breakdowns = self.instance_breakdown(
            netlist, primary_inputs, temperature, activities
        )
        total = ZERO_POWER
        for breakdown in breakdowns.values():
            total = total + breakdown
        return total

    def block_breakdown(
        self,
        netlist: Netlist,
        primary_inputs: Mapping[str, int],
        temperature=None,
        activities: Optional[Mapping[str, SwitchingActivity]] = None,
    ) -> Dict[str, PowerBreakdown]:
        """Power breakdown aggregated per floorplan block."""
        breakdowns = self.instance_breakdown(
            netlist, primary_inputs, temperature, activities
        )
        blocks: Dict[str, PowerBreakdown] = {}
        for instance in netlist.instances():
            key = instance.block or ""
            blocks[key] = blocks.get(key, ZERO_POWER) + breakdowns[instance.name]
        return blocks
