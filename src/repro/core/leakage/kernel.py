"""Vectorized struct-of-arrays leakage kernel (paper Eqs. 1–2, 6–13).

The scalar helpers in :mod:`repro.core.leakage.subthreshold` and
:mod:`repro.core.leakage.stack_collapse` evaluate one device (or one chain
collapse step) per call through ``math.exp``, which makes technology-node
sweeps and the electro-thermal fixed point O(devices x scenarios)
Python-level calls.  This module packs device parameters into a
:class:`DeviceArray` and OFF chains into a :class:`StackArray` (contiguous
``ndarray`` per field) and evaluates the closed forms — subthreshold
current (Eqs. 1–2), the pair-collapse recursion (Eqs. 6–10), whole-chain
collapse (Eqs. 11–12) and the equivalent-width gate current (Eq. 13) —
for whole batches of (device, bias, temperature) tuples in a handful of
NumPy broadcasts.

The arithmetic intentionally mirrors the scalar path
operation-by-operation (same association order, same
:data:`~repro.core.leakage.subthreshold.MAX_EXPONENT` clamp applied via
``np.clip`` before ``np.exp``) so the two agree to round-off; the parity
suite in ``tests/test_leakage_kernel.py`` pins the agreement to <= 1e-12
relative across the full technology-node table.  The scalar path stays in
the tree as the readable reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ...technology.constants import BOLTZMANN, ELEMENTARY_CHARGE
from ...technology.parameters import DeviceParameters, TechnologyParameters
from ..backend import get_namespace, result_float_dtype
from .subthreshold import MAX_EXPONENT


def safe_exp(values) -> np.ndarray:
    """Batched mirror of :func:`repro.core.leakage.subthreshold.safe_exp`.

    The exponent is clamped symmetrically to ``[-MAX_EXPONENT,
    +MAX_EXPONENT]`` with ``clip`` before ``exp`` in the values' own array
    namespace, matching the scalar clamp exactly (both saturate at
    ``exp(+-250)``).  Python-float bounds keep the values' dtype (so a
    float32 batch clamps and exponentiates in float32).
    """
    xp = get_namespace(values)
    return xp.exp(xp.clip(values, -MAX_EXPONENT, MAX_EXPONENT))


def thermal_voltage(temperature) -> np.ndarray:
    """Thermal voltage ``kT/q`` [V], broadcast over temperatures."""
    xp = get_namespace(temperature)
    temperature = xp.asarray(temperature, dtype=result_float_dtype(temperature))
    if xp.any(temperature <= 0.0):
        raise ValueError("temperature must be positive in Kelvin")
    return BOLTZMANN * temperature / ELEMENTARY_CHARGE


@dataclass(frozen=True)
class DeviceArray:
    """Compact-model parameters of a batch of devices, struct-of-arrays.

    Every field is a float ``ndarray`` (any mutually broadcastable shapes;
    scalars are fine for parameters shared by the whole batch).  The fields
    correspond one-to-one with
    :class:`~repro.technology.parameters.DeviceParameters`.
    """

    i0: np.ndarray
    n: np.ndarray
    vt0: np.ndarray
    body_effect: np.ndarray
    dibl: np.ndarray
    kt: np.ndarray
    channel_length: np.ndarray

    @classmethod
    def from_device(cls, device: DeviceParameters, xp=np, dtype=None) -> "DeviceArray":
        """Pack a single device type (fields become 0-d arrays)."""
        dtype = xp.float64 if dtype is None else dtype
        return cls(
            i0=xp.asarray(device.i0, dtype=dtype),
            n=xp.asarray(device.n, dtype=dtype),
            vt0=xp.asarray(device.vt0, dtype=dtype),
            body_effect=xp.asarray(device.body_effect, dtype=dtype),
            dibl=xp.asarray(device.dibl, dtype=dtype),
            kt=xp.asarray(device.kt, dtype=dtype),
            channel_length=xp.asarray(device.channel_length, dtype=dtype),
        )

    @classmethod
    def from_devices(
        cls, devices: Sequence[DeviceParameters], xp=np, dtype=None
    ) -> "DeviceArray":
        """Pack a sequence of device parameter sets into arrays."""
        dtype = xp.float64 if dtype is None else dtype
        return cls(
            i0=xp.asarray([d.i0 for d in devices], dtype=dtype),
            n=xp.asarray([d.n for d in devices], dtype=dtype),
            vt0=xp.asarray([d.vt0 for d in devices], dtype=dtype),
            body_effect=xp.asarray([d.body_effect for d in devices], dtype=dtype),
            dibl=xp.asarray([d.dibl for d in devices], dtype=dtype),
            kt=xp.asarray([d.kt for d in devices], dtype=dtype),
            channel_length=xp.asarray(
                [d.channel_length for d in devices], dtype=dtype
            ),
        )

    @classmethod
    def from_technologies(
        cls,
        technologies: Sequence[TechnologyParameters],
        device_type: str = "nmos",
        xp=np,
        dtype=None,
    ) -> "DeviceArray":
        """Pack one device type out of a sequence of technology nodes."""
        return cls.from_devices(
            [t.device(device_type) for t in technologies], xp=xp, dtype=dtype
        )

    def take(self, indices) -> "DeviceArray":
        """Index every field along axis 0 (e.g. expand per-scenario rows)."""
        xp = get_namespace(self.i0)
        if xp is np:
            return DeviceArray(
                i0=self.i0[indices],
                n=self.n[indices],
                vt0=self.vt0[indices],
                body_effect=self.body_effect[indices],
                dibl=self.dibl[indices],
                kt=self.kt[indices],
                channel_length=self.channel_length[indices],
            )
        # Integer-array indexing is optional in the Array API standard;
        # ``take`` is the portable spelling of the same gather.
        indices = xp.asarray(indices)
        return DeviceArray(
            i0=xp.take(self.i0, indices, axis=0),
            n=xp.take(self.n, indices, axis=0),
            vt0=xp.take(self.vt0, indices, axis=0),
            body_effect=xp.take(self.body_effect, indices, axis=0),
            dibl=xp.take(self.dibl, indices, axis=0),
            kt=xp.take(self.kt, indices, axis=0),
            channel_length=xp.take(self.channel_length, indices, axis=0),
        )

    def reshape(self, shape) -> "DeviceArray":
        """Reshape every field (e.g. to ``(S, 1)`` for scenario x block)."""
        xp = get_namespace(self.i0)
        return DeviceArray(
            i0=xp.reshape(self.i0, shape),
            n=xp.reshape(self.n, shape),
            vt0=xp.reshape(self.vt0, shape),
            body_effect=xp.reshape(self.body_effect, shape),
            dibl=xp.reshape(self.dibl, shape),
            kt=xp.reshape(self.kt, shape),
            channel_length=xp.reshape(self.channel_length, shape),
        )

    def threshold_voltage(
        self, vsb, vds, vdd, temperature, reference_temperature
    ) -> np.ndarray:
        """Threshold-voltage magnitude [V], broadcast Eq. (2).

        Mirrors
        :meth:`~repro.technology.parameters.DeviceParameters.threshold_voltage`
        term-for-term.
        """
        xp = get_namespace(self.vt0, temperature)
        dtype = result_float_dtype(self.vt0, temperature)
        temperature = xp.asarray(temperature, dtype=dtype)
        return (
            self.vt0
            + self.body_effect * xp.asarray(vsb, dtype=dtype)
            - self.kt
            * (temperature - xp.asarray(reference_temperature, dtype=dtype))
            - self.dibl
            * (xp.asarray(vds, dtype=dtype) - xp.asarray(vdd, dtype=dtype))
        )


def subthreshold_current(
    devices: DeviceArray,
    width,
    vgs,
    vds,
    vsb,
    vdd,
    temperature,
    reference_temperature,
    length=None,
    include_drain_factor: bool = True,
) -> np.ndarray:
    """Subthreshold current [A], broadcast Eq. (1).

    Mirrors :func:`repro.core.leakage.subthreshold.subthreshold_current`
    operation-by-operation; all bias arguments broadcast against the
    :class:`DeviceArray` fields.
    """
    xp = get_namespace(devices.i0, width, temperature)
    dtype = result_float_dtype(devices.i0, width, temperature)
    width = xp.asarray(width, dtype=dtype)
    if xp.any(width <= 0.0):
        raise ValueError("width must be positive")
    if length is not None:
        channel_length = xp.asarray(length, dtype=dtype)
    else:
        channel_length = devices.channel_length
    if xp.any(channel_length <= 0.0):
        raise ValueError("length must be positive")
    temperature = xp.asarray(temperature, dtype=dtype)
    if xp.any(temperature <= 0.0):
        raise ValueError("temperature must be positive (Kelvin)")
    vds = xp.asarray(vds, dtype=dtype)

    vt = thermal_voltage(temperature)
    vth = devices.threshold_voltage(vsb, vds, vdd, temperature, reference_temperature)
    prefactor = (
        (width / channel_length)
        * devices.i0
        * (temperature / xp.asarray(reference_temperature, dtype=dtype)) ** 2
    )
    gate_factor = safe_exp((xp.asarray(vgs, dtype=dtype) - vth) / (devices.n * vt))
    if not include_drain_factor:
        return prefactor * gate_factor
    drain_factor = 1.0 - safe_exp(-vds / vt)
    return prefactor * gate_factor * drain_factor


def single_device_off_current(
    devices: DeviceArray,
    width,
    vdd,
    temperature,
    reference_temperature,
    body_voltage=0.0,
) -> np.ndarray:
    """OFF current [A] of lone devices with the full supply across them.

    Batched mirror of
    :func:`repro.core.leakage.subthreshold.single_device_off_current`
    (paper Eq. 13 for an effective width): ``VGS = 0``, ``VDS = Vdd`` (the
    DIBL term cancels) and the drain factor dropped.
    """
    xp = get_namespace(devices.i0, width, temperature, body_voltage)
    dtype = result_float_dtype(devices.i0, width, temperature)
    body_voltage = xp.asarray(body_voltage, dtype=dtype)
    return subthreshold_current(
        devices,
        width,
        0.0,
        vdd,
        -body_voltage,
        vdd,
        temperature,
        reference_temperature,
        include_drain_factor=False,
    )


def gate_leakage(
    devices: DeviceArray,
    effective_width,
    vdd,
    temperature,
    reference_temperature,
    body_voltage=0.0,
) -> np.ndarray:
    """Gate OFF current [A] from collapsed effective widths (paper Eq. 13).

    Batched mirror of
    :func:`repro.core.leakage.subthreshold.effective_width_off_current`.
    """
    xp = get_namespace(devices.i0, effective_width)
    dtype = result_float_dtype(devices.i0, effective_width)
    effective_width = xp.asarray(effective_width, dtype=dtype)
    if xp.any(effective_width <= 0.0):
        raise ValueError("effective_width must be positive")
    return single_device_off_current(
        devices, effective_width, vdd, temperature, reference_temperature, body_voltage
    )


# --------------------------------------------------------------------- #
# Stack collapsing (Eqs. 6–12)
# --------------------------------------------------------------------- #
def alpha(devices: DeviceArray) -> np.ndarray:
    """``alpha = n / (1 + gamma' + 2 sigma)`` (Eq. 9), broadcast."""
    return devices.n / (1.0 + devices.body_effect + 2.0 * devices.dibl)


def stacking_exponent(devices: DeviceArray) -> np.ndarray:
    """``1 + gamma' + sigma`` — the exponent coefficient of Eq. (6)."""
    return 1.0 + devices.body_effect + devices.dibl


def f_value(
    upper_width, lower_width, devices: DeviceArray, vdd, temperature
) -> np.ndarray:
    """Dimensionless ``f`` of Eq. (9) for pairs of series devices, broadcast."""
    xp = get_namespace(devices.dibl, upper_width, lower_width, temperature)
    dtype = result_float_dtype(devices.dibl, upper_width, lower_width, temperature)
    upper_width = xp.asarray(upper_width, dtype=dtype)
    lower_width = xp.asarray(lower_width, dtype=dtype)
    if xp.any(upper_width <= 0.0) or xp.any(lower_width <= 0.0):
        raise ValueError("widths must be positive")
    vt = thermal_voltage(temperature)
    dibl_term = devices.dibl * xp.asarray(vdd, dtype=dtype) / (devices.n * vt)
    return xp.log(upper_width / lower_width) + dibl_term


def node_voltage_strong(
    upper_width, lower_width, devices: DeviceArray, vdd, temperature
) -> np.ndarray:
    """Asymptotic node voltage for ``dV >> VT`` (Eq. 7): ``alpha VT f``."""
    f = f_value(upper_width, lower_width, devices, vdd, temperature)
    vt = thermal_voltage(temperature)
    return alpha(devices) * vt * f


def node_voltage_weak(
    upper_width, lower_width, devices: DeviceArray, vdd, temperature
) -> np.ndarray:
    """Asymptotic node voltage for ``dV < VT`` (Eq. 8): ``VT exp(f)``."""
    f = f_value(upper_width, lower_width, devices, vdd, temperature)
    vt = thermal_voltage(temperature)
    return vt * safe_exp(f)


def node_voltage(
    upper_width, lower_width, devices: DeviceArray, vdd, temperature
) -> np.ndarray:
    """Unified node-voltage estimate (Eq. 10 reconstruction), broadcast.

    ``dV = VT [alpha + (1 - alpha) / (1 + e^f)] ln(1 + e^f)``, mirroring
    :meth:`repro.core.leakage.stack_collapse.StackCollapser.node_voltage`.
    """
    f = f_value(upper_width, lower_width, devices, vdd, temperature)
    vt = thermal_voltage(temperature)
    a = alpha(devices)
    exp_f = safe_exp(f)
    blend = a + (1.0 - a) / (1.0 + exp_f)
    return vt * blend * get_namespace(f).log1p(exp_f)


@dataclass(frozen=True)
class StackArray:
    """A batch of equal-depth OFF chains in struct-of-arrays layout.

    Attributes
    ----------
    widths:
        Device widths [m], shape ``(stacks, depth)``; column 0 is the
        transistor closest to the source rail (the paper's T1) and the last
        column the device tied to the opposite rail — the scalar
        :meth:`~repro.core.leakage.stack_collapse.StackCollapser.collapse_chain_widths`
        ordering.
    """

    widths: np.ndarray

    def __post_init__(self) -> None:
        if self.widths.ndim != 2 or self.widths.shape[1] < 1:
            raise ValueError("widths must have shape (stacks, depth >= 1)")
        if not get_namespace(self.widths).all(self.widths > 0.0):
            raise ValueError("widths must be positive")

    @classmethod
    def from_chains(
        cls, chains: Sequence[Sequence[float]], xp=np, dtype=None
    ) -> "StackArray":
        """Pack equal-depth chains of widths (T1 first) into one array."""
        if not len(chains):
            raise ValueError("at least one chain is required")
        depths = {len(chain) for chain in chains}
        if len(depths) != 1:
            raise ValueError(
                "all chains in a StackArray must share a depth; "
                "group mixed-depth workloads into one StackArray per depth"
            )
        dtype = xp.float64 if dtype is None else dtype
        return cls(widths=xp.asarray(chains, dtype=dtype))

    def __len__(self) -> int:
        return int(self.widths.shape[0])

    @property
    def depth(self) -> int:
        """Number of series devices in every chain."""
        return int(self.widths.shape[1])


@dataclass(frozen=True)
class StackCollapseBatch:
    """Result of collapsing a batch of OFF chains (Eqs. 11–12).

    Attributes
    ----------
    effective_width:
        Widths [m] of the single equivalent transistors; shape ``(stacks,)``,
        or the broadcast batch shape when device/supply/temperature carry
        extra batch dimensions.
    node_voltages:
        Drain-source voltages [V] of devices T1 ... T(N-1), bottom upwards
        (the scalar result's ordering), shape ``(*batch, depth - 1)``.
    top_width:
        Width [m] of each chain's top device (stacking-factor denominator).
    """

    effective_width: np.ndarray
    node_voltages: np.ndarray
    top_width: np.ndarray

    @property
    def stacking_factor(self) -> np.ndarray:
        """``W_eff / W_top`` per chain — the stacking effect (Eq. 13)."""
        return self.effective_width / self.top_width

    @property
    def top_node_voltage(self) -> np.ndarray:
        """Voltage [V] of node ``V_{N-1}`` below the top device (Eq. 12)."""
        xp = get_namespace(self.node_voltages)
        return xp.sum(self.node_voltages, axis=-1)


def collapse_stacks(
    stacks: StackArray, devices: DeviceArray, vdd, temperature
) -> StackCollapseBatch:
    """Collapse every chain of a :class:`StackArray` at once (Eqs. 6–12).

    Walks the shared depth once (the paper's Fig. 2 recursion is inherently
    sequential *down one chain*) while evaluating all chains — and any
    broadcast device/supply/temperature batch — elementwise per step,
    mirroring the scalar
    :meth:`~repro.core.leakage.stack_collapse.StackCollapser.collapse_chain_widths`.
    """
    widths = stacks.widths
    xp = get_namespace(widths, devices.n, temperature)
    dtype = result_float_dtype(widths, devices.n, temperature)
    depth = widths.shape[1]
    vt = thermal_voltage(temperature)
    n_vt = devices.n * vt
    dibl_term = devices.dibl * xp.asarray(vdd, dtype=dtype) / n_vt
    a = alpha(devices)
    exponent = stacking_exponent(devices)

    # The batch shape is the broadcast of the chain count with every
    # per-chain parameter (device fields, supply, temperature), so e.g. a
    # (scenarios, 1) temperature batch against (stacks,) chains collapses
    # to (scenarios, stacks) in one walk.  Shapes are plain tuples, so the
    # numpy helper applies whatever namespace holds the data.
    batch_shape = np.broadcast_shapes(
        widths[:, -1].shape, n_vt.shape, dibl_term.shape, a.shape
    )
    equivalent_width = xp.asarray(
        xp.broadcast_to(widths[:, -1], batch_shape), copy=True
    )
    voltages_top_down = []
    for column in range(depth - 2, -1, -1):
        lower_width = widths[:, column]
        f = xp.log(equivalent_width / lower_width) + dibl_term
        exp_f = safe_exp(f)
        blend = a + (1.0 - a) / (1.0 + exp_f)
        dv = vt * blend * xp.log1p(exp_f)
        equivalent_width = equivalent_width * safe_exp(-exponent * dv / n_vt)
        voltages_top_down.append(xp.broadcast_to(dv, batch_shape))
    if voltages_top_down:
        # Scalar result orders node voltages bottom-up (T1's drop first).
        node_voltages = xp.stack(voltages_top_down[::-1], axis=-1)
    else:
        node_voltages = xp.empty(batch_shape + (0,), dtype=dtype)
    return StackCollapseBatch(
        effective_width=equivalent_width,
        node_voltages=node_voltages,
        top_width=widths[:, -1],
    )


def collapsed_stack_current(
    stacks: StackArray,
    devices: DeviceArray,
    vdd,
    temperature,
    reference_temperature,
    body_voltage=0.0,
) -> np.ndarray:
    """OFF current [A] of every chain: collapse (Eqs. 6–12) + Eq. (13).

    The batched composition of
    :meth:`~repro.core.leakage.stack_collapse.StackCollapser.collapse_chain_widths`
    and
    :func:`~repro.core.leakage.subthreshold.effective_width_off_current`.
    """
    collapse = collapse_stacks(stacks, devices, vdd, temperature)
    return gate_leakage(
        devices,
        collapse.effective_width,
        vdd,
        temperature,
        reference_temperature,
        body_voltage,
    )


def leakage_temperature_ratio(
    devices: DeviceArray,
    vdd,
    temperature,
    reference_temperature,
    parameter_reference_temperature=None,
    width: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Ratio ``Ioff(T) / Ioff(Tref)`` (Eq. 13), broadcast.

    Batched mirror of
    :func:`repro.core.cosim.coupling.leakage_temperature_ratio`:
    ``reference_temperature`` is the ratio's denominator temperature while
    ``parameter_reference_temperature`` (default: the same) is the
    temperature the device parameters are specified at.  The ratio is
    width-independent (widths cancel) but a width is still threaded through
    both evaluations so the arithmetic matches the scalar path.
    """
    if parameter_reference_temperature is None:
        parameter_reference_temperature = reference_temperature
    if width is None:
        xp = get_namespace(devices.i0, temperature)
        width = xp.asarray(1.0e-6, dtype=result_float_dtype(devices.i0, temperature))
    hot = single_device_off_current(
        devices, width, vdd, temperature, parameter_reference_temperature
    )
    cold = single_device_off_current(
        devices, width, vdd, reference_temperature, parameter_reference_temperature
    )
    return hot / cold
