"""Stack-collapsing technique for OFF chains (paper Section 2.1, Eqs. 3–12).

An OFF chain of N series transistors is reduced to a single equivalent
transistor whose width ``W_eff`` reproduces the chain's subthreshold
current.  The procedure, following the paper's Fig. 2:

1. the top pair ``(T_{N-1}, T_N)`` is collapsed into an equivalent
   transistor ``T_<N-1,N>`` with width given by Eq. (6),

   ``W_<N-1,N> = W_N exp(-(1 + gamma' + sigma) dV / (n VT))``

   where ``dV = V_{N-1} - V_{N-2}`` is the drain-source voltage of the lower
   device of the pair;
2. ``dV`` is estimated analytically from Eq. (10), an empirical interpolation
   between the two solvable regimes

   * ``dV >> VT``  ->  ``dV = alpha VT f``            (Eq. 7)
   * ``dV <  VT``  ->  ``dV = VT exp(f)``             (Eq. 8)

   with ``f = ln((W_upper / W_lower) exp(sigma Vdd / (n VT)))`` and
   ``alpha = n / (1 + gamma' + 2 sigma)`` (Eq. 9);
3. the collapse is repeated down the chain until a single device remains;
   its width is the chain's effective width (Eqs. 11–12), and parallel OFF
   chains simply add their effective widths.

Equation (10) reconstruction note
---------------------------------
The DATE'05 PDF renders Eq. (10) with typographic damage.  We use

``dV = VT * [alpha + (1 - alpha) / (1 + e^f)] * ln(1 + e^f)``

which reproduces both published asymptotes exactly (``alpha VT f`` for
``f -> +inf``, ``VT e^f`` for ``f -> -inf``), is smooth and monotone in
``f``, and matches the paper's Fig. 3 behaviour when compared against the
exact numerical solution (see ``benchmarks/test_fig03_node_voltage.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from scipy.optimize import brentq

from ...circuit.stack import TransistorStack
from ...technology.constants import thermal_voltage
from ...technology.parameters import TechnologyParameters
from .subthreshold import SubthresholdBias, safe_exp as _safe_exp, subthreshold_current


@dataclass(frozen=True)
class PairCollapseResult:
    """Result of collapsing one pair of series OFF transistors.

    Attributes
    ----------
    node_voltage:
        Drain-source voltage [V] of the lower device of the pair (Eq. 10).
    f_value:
        The dimensionless ``f`` of Eq. (9) for this pair.
    alpha:
        The ``alpha`` of Eq. (9).
    equivalent_width:
        Width [m] of the equivalent transistor replacing the pair (Eq. 6).
    upper_width:
        Width [m] of the upper device (or previously collapsed equivalent).
    lower_width:
        Width [m] of the lower device.
    """

    node_voltage: float
    f_value: float
    alpha: float
    equivalent_width: float
    upper_width: float
    lower_width: float


@dataclass(frozen=True)
class StackCollapseResult:
    """Result of collapsing a whole OFF chain.

    Attributes
    ----------
    effective_width:
        Width [m] of the single equivalent transistor (Eqs. 11–12).
    device_type:
        Chain polarity (``"nmos"`` or ``"pmos"``).
    pair_results:
        Per-step pair collapses, ordered from the top of the chain downwards.
    node_voltages:
        Drain-source voltages [V] of devices T1 ... T(N-1) (bottom upwards) —
        i.e. the increments whose running sum gives the internal node
        voltages of Eq. (12).
    temperature:
        Temperature [K] the collapse was evaluated at.
    """

    effective_width: float
    device_type: str
    pair_results: Tuple[PairCollapseResult, ...]
    node_voltages: Tuple[float, ...]
    temperature: float

    @property
    def stack_depth(self) -> int:
        """Number of OFF devices in the collapsed chain."""
        return len(self.node_voltages) + 1

    @property
    def top_node_voltage(self) -> float:
        """Voltage [V] of node ``V_{N-1}`` below the top device (Eq. 12)."""
        return sum(self.node_voltages)

    @property
    def stacking_factor(self) -> float:
        """Ratio between the chain's leakage and a single top device's leakage.

        Because the gate current is proportional to the effective width
        (Eq. 13), this ratio is just ``W_eff / W_top`` — a direct measure of
        the stacking effect.
        """
        if not self.pair_results:
            return 1.0
        top_width = self.pair_results[0].upper_width
        return self.effective_width / top_width


class StackCollapser:
    """Analytical collapsing engine for OFF chains of one technology.

    Parameters
    ----------
    technology:
        Technology parameters (device compact models and supply voltage).
    """

    def __init__(self, technology: TechnologyParameters) -> None:
        self.technology = technology

    # ------------------------------------------------------------------ #
    # Building blocks (Eqs. 6–10)
    # ------------------------------------------------------------------ #
    def alpha(self, device_type: str) -> float:
        """``alpha = n / (1 + gamma' + 2 sigma)`` (Eq. 9)."""
        device = self.technology.device(device_type)
        return device.n / (1.0 + device.body_effect + 2.0 * device.dibl)

    def stacking_exponent(self, device_type: str) -> float:
        """``1 + gamma' + sigma`` — the exponent coefficient of Eq. (6)."""
        device = self.technology.device(device_type)
        return 1.0 + device.body_effect + device.dibl

    def f_value(
        self,
        upper_width: float,
        lower_width: float,
        device_type: str,
        temperature: Optional[float] = None,
    ) -> float:
        """Dimensionless ``f`` of Eq. (9) for a pair of series devices.

        ``f = ln((W_upper / W_lower) exp(sigma Vdd / (n VT)))``
        """
        if upper_width <= 0.0 or lower_width <= 0.0:
            raise ValueError("widths must be positive")
        if temperature is None:
            temperature = self.technology.reference_temperature
        device = self.technology.device(device_type)
        vt = thermal_voltage(temperature)
        dibl_term = device.dibl * self.technology.vdd / (device.n * vt)
        return math.log(upper_width / lower_width) + dibl_term

    def node_voltage_strong(
        self,
        upper_width: float,
        lower_width: float,
        device_type: str,
        temperature: Optional[float] = None,
    ) -> float:
        """Asymptotic node voltage for ``dV >> VT`` (Eq. 7): ``alpha VT f``."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        f = self.f_value(upper_width, lower_width, device_type, temperature)
        vt = thermal_voltage(temperature)
        return self.alpha(device_type) * vt * f

    def node_voltage_weak(
        self,
        upper_width: float,
        lower_width: float,
        device_type: str,
        temperature: Optional[float] = None,
    ) -> float:
        """Asymptotic node voltage for ``dV < VT`` (Eq. 8): ``VT exp(f)``."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        f = self.f_value(upper_width, lower_width, device_type, temperature)
        vt = thermal_voltage(temperature)
        return vt * _safe_exp(f)

    def node_voltage(
        self,
        upper_width: float,
        lower_width: float,
        device_type: str,
        temperature: Optional[float] = None,
    ) -> float:
        """Unified node-voltage estimate (Eq. 10 reconstruction).

        ``dV = VT [alpha + (1 - alpha) / (1 + e^f)] ln(1 + e^f)``
        """
        if temperature is None:
            temperature = self.technology.reference_temperature
        f = self.f_value(upper_width, lower_width, device_type, temperature)
        vt = thermal_voltage(temperature)
        alpha = self.alpha(device_type)
        exp_f = _safe_exp(f)
        blend = alpha + (1.0 - alpha) / (1.0 + exp_f)
        return vt * blend * math.log1p(exp_f)

    def exact_pair_node_voltage(
        self,
        upper_width: float,
        lower_width: float,
        device_type: str,
        temperature: Optional[float] = None,
        body_voltage: float = 0.0,
    ) -> float:
        """Exact node voltage of a two-device OFF chain (Fig. 3 reference).

        Numerically equates the paper's Eqs. (3) and (4) — i.e. the full
        subthreshold currents of the upper and lower devices including the
        drain factor — with a bracketed root find.  This is the "exact
        solution" curve of the paper's Fig. 3.
        """
        if upper_width <= 0.0 or lower_width <= 0.0:
            raise ValueError("widths must be positive")
        if temperature is None:
            temperature = self.technology.reference_temperature
        device = self.technology.device(device_type)
        vdd = self.technology.vdd

        def current_mismatch(node_voltage: float) -> float:
            lower_bias = SubthresholdBias(
                vgs=0.0,
                vds=node_voltage,
                vsb=-body_voltage,
                vdd=vdd,
                temperature=temperature,
            )
            upper_bias = SubthresholdBias(
                vgs=-node_voltage,
                vds=vdd - node_voltage,
                vsb=node_voltage - body_voltage,
                vdd=vdd,
                temperature=temperature,
            )
            lower = subthreshold_current(
                device, lower_width, lower_bias,
                self.technology.reference_temperature,
            )
            upper = subthreshold_current(
                device, upper_width, upper_bias,
                self.technology.reference_temperature,
            )
            return lower - upper

        low = 1e-12
        high = vdd - 1e-9
        mismatch_low = current_mismatch(low)
        mismatch_high = current_mismatch(high)
        if mismatch_low >= 0.0:
            # The lower device out-conducts the upper one even with almost no
            # drain bias: the node sits essentially at the rail.
            return low
        if mismatch_high <= 0.0:
            return high
        return brentq(current_mismatch, low, high, xtol=1e-15)

    def collapse_pair(
        self,
        upper_width: float,
        lower_width: float,
        device_type: str,
        temperature: Optional[float] = None,
    ) -> PairCollapseResult:
        """Collapse two series OFF devices into one equivalent (Eqs. 6, 10)."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        node_voltage = self.node_voltage(
            upper_width, lower_width, device_type, temperature
        )
        vt = thermal_voltage(temperature)
        exponent = self.stacking_exponent(device_type)
        device = self.technology.device(device_type)
        equivalent_width = upper_width * _safe_exp(
            -exponent * node_voltage / (device.n * vt)
        )
        return PairCollapseResult(
            node_voltage=node_voltage,
            f_value=self.f_value(upper_width, lower_width, device_type, temperature),
            alpha=self.alpha(device_type),
            equivalent_width=equivalent_width,
            upper_width=upper_width,
            lower_width=lower_width,
        )

    # ------------------------------------------------------------------ #
    # Whole-chain collapse (Eqs. 11–12)
    # ------------------------------------------------------------------ #
    def collapse_chain_widths(
        self,
        widths: Sequence[float],
        device_type: str,
        temperature: Optional[float] = None,
    ) -> StackCollapseResult:
        """Collapse an OFF chain given its device widths (T1 first).

        ``widths[0]`` is the transistor closest to the source rail and
        ``widths[-1]`` the device tied to the opposite rail, exactly the
        paper's Fig. 2 labelling.
        """
        if not widths:
            raise ValueError("at least one width is required")
        if any(w <= 0.0 for w in widths):
            raise ValueError("widths must be positive")
        if temperature is None:
            temperature = self.technology.reference_temperature

        if len(widths) == 1:
            return StackCollapseResult(
                effective_width=float(widths[0]),
                device_type=device_type,
                pair_results=(),
                node_voltages=(),
                temperature=temperature,
            )

        pair_results = []
        node_voltages_top_down = []
        # Walk down the chain: collapse (T_{N-1}, T_N), then the result with
        # T_{N-2}, and so on (the paper's Fig. 2 procedure).
        equivalent_width = float(widths[-1])
        for lower_width in reversed(list(widths[:-1])):
            pair = self.collapse_pair(
                equivalent_width, float(lower_width), device_type, temperature
            )
            pair_results.append(pair)
            node_voltages_top_down.append(pair.node_voltage)
            equivalent_width = pair.equivalent_width

        # node_voltages are reported bottom-up (T1's drop first) to mirror
        # the running sum of Eq. (12).
        node_voltages = tuple(reversed(node_voltages_top_down))
        return StackCollapseResult(
            effective_width=equivalent_width,
            device_type=device_type,
            pair_results=tuple(pair_results),
            node_voltages=node_voltages,
            temperature=temperature,
        )

    def collapse_stack(
        self,
        stack: TransistorStack,
        logic_values: Optional[Sequence[int]] = None,
        temperature: Optional[float] = None,
    ) -> StackCollapseResult:
        """Collapse a :class:`TransistorStack` for a given input vector.

        ON transistors are absorbed into the chain's internal nodes (the
        paper's treatment); only OFF devices enter the collapse.  The stack
        must contain at least one OFF device, otherwise it is an ON chain
        and carries no subthreshold-limited current.
        """
        if logic_values is None:
            logic_values = stack.all_off_vector()
        off_devices = stack.off_devices(logic_values)
        if not off_devices:
            raise ValueError(
                "cannot collapse an ON chain: every transistor is conducting"
            )
        widths = [device.width for device in off_devices]
        return self.collapse_chain_widths(widths, stack.device_type, temperature)

    def effective_width_of_parallel_chains(
        self,
        chains: Sequence[StackCollapseResult],
    ) -> float:
        """Combined effective width [m] of parallel OFF chains.

        The paper's rule: two OFF chains connected in parallel collapse into
        a single equivalent transistor whose width is the sum of the two
        effective widths.
        """
        if not chains:
            raise ValueError("at least one collapsed chain is required")
        device_types = {chain.device_type for chain in chains}
        if len(device_types) != 1:
            raise ValueError("parallel chains must share a device polarity")
        return sum(chain.effective_width for chain in chains)
