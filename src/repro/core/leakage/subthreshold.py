"""Analytical subthreshold current of a single MOSFET (paper Eqs. 1–2).

The paper's static-power model is built on the BSIM-style subthreshold
expression

``I = (W/L) I0 (T/Tref)^2 exp((VGS - VTH) / (n VT)) (1 - exp(-VDS / VT))``

with the threshold voltage

``VTH = VT0 + gamma' VSB - KT (T - Tref) - sigma (VDS - VDD)``.

This module exposes those closed forms directly (no numerical solving), in
the exact shape the collapsing technique and the gate model consume.  The
companion numerical model in :mod:`repro.spice.device_model` implements the
same subthreshold physics; the two share parameter containers so that every
comparison between "model" and "SPICE" uses identical device parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ...technology.constants import thermal_voltage
from ...technology.parameters import DeviceParameters, TechnologyParameters

#: Symmetric clamp applied to every exponent before ``exp``.  The scalar
#: path (:func:`safe_exp`) and the batched path
#: (:func:`repro.core.leakage.kernel.safe_exp` via ``np.clip`` before
#: ``np.exp``) share this single constant so they agree to round-off;
#: ``exp(+-250)`` stays comfortably inside float64 range (~1e108 / ~1e-109).
MAX_EXPONENT = 250.0


def safe_exp(value: float) -> float:
    """Overflow-protected exponential (voltages handed in by optimisers).

    The argument is clamped to ``[-MAX_EXPONENT, +MAX_EXPONENT]`` — i.e.
    ``exp(-1e6)`` returns ``exp(-250)``, not ``0.0`` — so the clamp is
    symmetric and the batched kernel can reproduce it exactly with
    ``np.exp(np.clip(x, -MAX_EXPONENT, MAX_EXPONENT))``.
    """
    if value > MAX_EXPONENT:
        return math.exp(MAX_EXPONENT)
    if value < -MAX_EXPONENT:
        return math.exp(-MAX_EXPONENT)
    return math.exp(value)


#: Backwards-compatible private alias (historical name of :func:`safe_exp`).
_safe_exp = safe_exp


@dataclass(frozen=True)
class SubthresholdBias:
    """Bias point of a device in source-referenced magnitudes.

    All voltages are magnitudes (positive for normal operation of either
    polarity) and the temperature is in Kelvin.
    """

    vgs: float = 0.0
    vds: float = 0.0
    vsb: float = 0.0
    vdd: float = 1.2
    temperature: float = 298.15

    def __post_init__(self) -> None:
        if self.temperature <= 0.0:
            raise ValueError("temperature must be positive (Kelvin)")
        if self.vdd <= 0.0:
            raise ValueError("vdd must be positive")


def threshold_voltage(
    device: DeviceParameters,
    bias: SubthresholdBias,
    reference_temperature: float,
) -> float:
    """Threshold-voltage magnitude [V] at a bias point (paper Eq. 2)."""
    return device.threshold_voltage(
        vsb=bias.vsb,
        vds=bias.vds,
        vdd=bias.vdd,
        temperature=bias.temperature,
        reference_temperature=reference_temperature,
    )


def subthreshold_current(
    device: DeviceParameters,
    width: float,
    bias: SubthresholdBias,
    reference_temperature: float,
    length: Optional[float] = None,
    include_drain_factor: bool = True,
) -> float:
    """Subthreshold current [A] of a single device (paper Eq. 1).

    Parameters
    ----------
    device:
        Compact-model parameters of the device type.
    width:
        Channel width [m].
    bias:
        Source-referenced bias magnitudes and temperature.
    reference_temperature:
        Temperature [K] the parameters are specified at.
    length:
        Channel length [m]; defaults to the device's nominal length.
    include_drain_factor:
        When False the ``(1 - exp(-VDS/VT))`` factor is dropped — the
        approximation the paper applies whenever ``VDS >> VT`` (e.g. Eq. 3).
    """
    if width <= 0.0:
        raise ValueError("width must be positive")
    channel_length = length if length is not None else device.channel_length
    if channel_length <= 0.0:
        raise ValueError("length must be positive")

    vt = thermal_voltage(bias.temperature)
    vth = threshold_voltage(device, bias, reference_temperature)
    prefactor = (
        (width / channel_length)
        * device.i0
        * (bias.temperature / reference_temperature) ** 2
    )
    gate_factor = _safe_exp((bias.vgs - vth) / (device.n * vt))
    if not include_drain_factor:
        return prefactor * gate_factor
    drain_factor = 1.0 - _safe_exp(-bias.vds / vt)
    return prefactor * gate_factor * drain_factor


def single_device_off_current(
    device: DeviceParameters,
    width: float,
    vdd: float,
    temperature: float,
    reference_temperature: float,
    body_voltage: float = 0.0,
    length: Optional[float] = None,
) -> float:
    """OFF current [A] of a lone device with the full supply across it.

    This is the paper's Eq. (13) evaluated for an effective width: the gate
    and source sit on the rail (``VGS = 0``), the drain sees the opposite
    rail (``VDS = Vdd`` so the DIBL term cancels), and the drain factor is
    negligible because ``Vdd >> VT``.
    """
    bias = SubthresholdBias(
        vgs=0.0,
        vds=vdd,
        vsb=-body_voltage,
        vdd=vdd,
        temperature=temperature,
    )
    return subthreshold_current(
        device,
        width,
        bias,
        reference_temperature,
        length=length,
        include_drain_factor=False,
    )


def effective_width_off_current(
    technology: TechnologyParameters,
    device_type: str,
    effective_width: float,
    temperature: Optional[float] = None,
    body_voltage: float = 0.0,
) -> float:
    """Gate OFF current [A] from a collapsed effective width (paper Eq. 13)."""
    if effective_width <= 0.0:
        raise ValueError("effective_width must be positive")
    if temperature is None:
        temperature = technology.reference_temperature
    device = technology.device(device_type)
    return single_device_off_current(
        device,
        effective_width,
        technology.vdd,
        temperature,
        technology.reference_temperature,
        body_voltage=body_voltage,
    )


def leakage_temperature_slope(
    technology: TechnologyParameters,
    device_type: str,
    temperature: Optional[float] = None,
) -> float:
    """Relative sensitivity ``d(ln Ioff)/dT`` [1/K] of the OFF current.

    Differentiating Eq. (13):

    ``d ln I / dT = 2/T + VTH(T) / (n VT T) + KT / (n VT)``

    with ``VTH(T) = VT0 - KT (T - Tref)`` the zero-bias threshold at the
    evaluation temperature.  This closed form is what makes the
    electro-thermal fixed point of :mod:`repro.core.cosim` cheap to
    evaluate: the exponential temperature dependence of leakage is available
    analytically.
    """
    if temperature is None:
        temperature = technology.reference_temperature
    if temperature <= 0.0:
        raise ValueError("temperature must be positive (Kelvin)")
    device = technology.device(device_type)
    vt = thermal_voltage(temperature)
    vth = device.vt0 - device.kt * (temperature - technology.reference_temperature)
    return (
        2.0 / temperature
        + vth / (device.n * vt * temperature)
        + device.kt / (device.n * vt)
    )
