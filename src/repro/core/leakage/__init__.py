"""Analytical static-power model (paper Section 2).

Subthreshold device model (Eqs. 1–2), OFF-chain stack collapsing
(Eqs. 3–12), gate-level leakage (Eq. 13) and circuit-level aggregation.
"""

from .circuit_leakage import CircuitLeakageModel, CircuitLeakageReport
from .gate_leakage import GateLeakageEstimate, GateLeakageModel
from .stack_collapse import PairCollapseResult, StackCollapseResult, StackCollapser
from .subthreshold import (
    SubthresholdBias,
    effective_width_off_current,
    leakage_temperature_slope,
    single_device_off_current,
    subthreshold_current,
    threshold_voltage,
)

__all__ = [
    "SubthresholdBias",
    "subthreshold_current",
    "threshold_voltage",
    "single_device_off_current",
    "effective_width_off_current",
    "leakage_temperature_slope",
    "StackCollapser",
    "StackCollapseResult",
    "PairCollapseResult",
    "GateLeakageModel",
    "GateLeakageEstimate",
    "CircuitLeakageModel",
    "CircuitLeakageReport",
]
