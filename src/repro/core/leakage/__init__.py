"""Analytical static-power model (paper Section 2).

Subthreshold device model (Eqs. 1–2), OFF-chain stack collapsing
(Eqs. 3–12), gate-level leakage (Eq. 13), circuit-level aggregation, and
the vectorized struct-of-arrays kernel (:mod:`repro.core.leakage.kernel`)
that evaluates the same closed forms for whole batches of devices,
chains and scenarios.
"""

from .circuit_leakage import CircuitLeakageModel, CircuitLeakageReport
from .gate_leakage import GateLeakageEstimate, GateLeakageModel
from .kernel import DeviceArray, StackArray, StackCollapseBatch
from .stack_collapse import PairCollapseResult, StackCollapseResult, StackCollapser
from .subthreshold import (
    MAX_EXPONENT,
    SubthresholdBias,
    effective_width_off_current,
    leakage_temperature_slope,
    safe_exp,
    single_device_off_current,
    subthreshold_current,
    threshold_voltage,
)

__all__ = [
    "MAX_EXPONENT",
    "safe_exp",
    "SubthresholdBias",
    "DeviceArray",
    "StackArray",
    "StackCollapseBatch",
    "subthreshold_current",
    "threshold_voltage",
    "single_device_off_current",
    "effective_width_off_current",
    "leakage_temperature_slope",
    "StackCollapser",
    "StackCollapseResult",
    "PairCollapseResult",
    "GateLeakageModel",
    "GateLeakageEstimate",
    "CircuitLeakageModel",
    "CircuitLeakageReport",
]
