"""Gate-level static power model (paper Eq. 13 on top of the collapse).

For a given input vector the static current of a CMOS gate is computed by

1. identifying the non-conducting network (the conducting one clamps the
   output to a rail and carries no rail-to-rail subthreshold current),
2. extracting its OFF chains, discarding those shorted by an ON chain,
3. collapsing every OFF chain to an effective width and summing the widths
   of parallel chains,
4. evaluating the equivalent single-transistor OFF current of Eq. (13).

The same machinery also evaluates bare transistor stacks, which is how the
paper's Fig. 8 workloads are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ...circuit.cells import LogicGate
from ...circuit.stack import TransistorStack
from ...circuit.vectors import enumerate_vectors
from ...technology.parameters import TechnologyParameters
from .stack_collapse import StackCollapser, StackCollapseResult
from .subthreshold import effective_width_off_current


@dataclass(frozen=True)
class GateLeakageEstimate:
    """Analytical leakage of one gate (or stack) for one input vector.

    Attributes
    ----------
    gate_name:
        Name of the gate or stack.
    input_vector:
        The applied input vector (pin name -> logic value).
    device_type:
        Polarity of the leaking network.
    effective_width:
        Collapsed effective width [m] feeding Eq. (13).
    current:
        Static (subthreshold) current [A].
    power:
        Static power [W] (``current * Vdd``).
    temperature:
        Evaluation temperature [K].
    chains:
        Per-chain collapse results (diagnostics / reporting).
    """

    gate_name: str
    input_vector: Dict[str, int]
    device_type: str
    effective_width: float
    current: float
    power: float
    temperature: float
    chains: Tuple[StackCollapseResult, ...] = ()


class GateLeakageModel:
    """Analytical static-power estimator for gates and stacks.

    Parameters
    ----------
    technology:
        Technology parameters shared with the rest of the library.
    """

    def __init__(self, technology: TechnologyParameters) -> None:
        self.technology = technology
        self.collapser = StackCollapser(technology)

    # ------------------------------------------------------------------ #
    # Bare stacks (Fig. 8 workloads)
    # ------------------------------------------------------------------ #
    def stack_off_current(
        self,
        stack: TransistorStack,
        logic_values: Optional[Tuple[int, ...]] = None,
        temperature: Optional[float] = None,
    ) -> float:
        """OFF current [A] of a bare transistor stack."""
        return self.evaluate_stack(stack, logic_values, temperature).current

    def evaluate_stack(
        self,
        stack: TransistorStack,
        logic_values: Optional[Tuple[int, ...]] = None,
        temperature: Optional[float] = None,
    ) -> GateLeakageEstimate:
        """Full estimate for a bare transistor stack."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        if logic_values is None:
            logic_values = stack.all_off_vector()
        collapse = self.collapser.collapse_stack(stack, logic_values, temperature)
        current = effective_width_off_current(
            self.technology, stack.device_type, collapse.effective_width, temperature
        )
        vector = {
            device.gate_input or f"IN{i + 1}": int(value)
            for i, (device, value) in enumerate(zip(stack.devices, logic_values))
        }
        return GateLeakageEstimate(
            gate_name=f"stack{len(stack)}",
            input_vector=vector,
            device_type=stack.device_type,
            effective_width=collapse.effective_width,
            current=current,
            power=current * self.technology.vdd,
            temperature=temperature,
            chains=(collapse,),
        )

    # ------------------------------------------------------------------ #
    # Full gates
    # ------------------------------------------------------------------ #
    def _network_effective_width(
        self,
        network,
        vector: Dict[str, int],
        temperature: float,
    ) -> Tuple[Optional[float], Tuple[StackCollapseResult, ...]]:
        """Effective width [m] of a (possibly nested) OFF network.

        Returns ``(effective_width, chain_diagnostics)``.  ``None`` as the
        width means the sub-network conducts (strong-inversion path), so it
        behaves as part of an internal node exactly like a single ON device.

        The recursion generalises the paper's two rules beyond flat chains:
        parallel OFF sub-networks add their effective widths (and are shorted
        by any conducting sibling), series sub-networks collapse their
        children's effective widths pairwise from the top of the chain down,
        with ON children absorbed into the internal nodes.
        """
        from ...circuit.topology import DeviceLeaf, ParallelNetwork, SeriesNetwork

        if isinstance(network, DeviceLeaf):
            device = network.device
            if device.is_on(vector[device.gate_input]):
                return None, ()
            return device.width, ()
        if isinstance(network, ParallelNetwork):
            widths = []
            diagnostics = []
            for child in network.children:
                width, chains = self._network_effective_width(
                    child, vector, temperature
                )
                if width is None:
                    # A conducting branch shorts the whole parallel group.
                    return None, ()
                widths.append(width)
                diagnostics.extend(chains)
            return sum(widths), tuple(diagnostics)
        if isinstance(network, SeriesNetwork):
            child_widths = []
            diagnostics = []
            for child in network.children:
                width, chains = self._network_effective_width(
                    child, vector, temperature
                )
                diagnostics.extend(chains)
                if width is not None:
                    child_widths.append(width)
            if not child_widths:
                return None, ()
            collapse = self.collapser.collapse_chain_widths(
                child_widths, network.device_type(), temperature
            )
            diagnostics.append(collapse)
            return collapse.effective_width, tuple(diagnostics)
        raise TypeError(f"unsupported network type {type(network).__name__}")

    def evaluate(
        self,
        gate: LogicGate,
        inputs: Mapping[str, int],
        temperature: Optional[float] = None,
    ) -> GateLeakageEstimate:
        """Analytical leakage estimate of a gate for one input vector."""
        if temperature is None:
            temperature = self.technology.reference_temperature
        vector = {name: int(inputs[name]) for name in gate.inputs}
        leaking_network = gate.leakage_network(vector)
        device_type = leaking_network.device_type()
        effective_width, diagnostics = self._network_effective_width(
            leaking_network, vector, temperature
        )
        if effective_width is None or effective_width <= 0.0:
            # A complementary gate's non-conducting network always yields a
            # positive effective width; this branch covers degenerate inputs.
            return GateLeakageEstimate(
                gate_name=gate.name,
                input_vector=vector,
                device_type=device_type,
                effective_width=0.0,
                current=0.0,
                power=0.0,
                temperature=temperature,
                chains=(),
            )
        current = effective_width_off_current(
            self.technology, device_type, effective_width, temperature
        )
        return GateLeakageEstimate(
            gate_name=gate.name,
            input_vector=vector,
            device_type=device_type,
            effective_width=effective_width,
            current=current,
            power=current * self.technology.vdd,
            temperature=temperature,
            chains=diagnostics,
        )

    def off_current(
        self,
        gate: LogicGate,
        inputs: Mapping[str, int],
        temperature: Optional[float] = None,
    ) -> float:
        """Static current [A] of a gate for one input vector."""
        return self.evaluate(gate, inputs, temperature).current

    def static_power(
        self,
        gate: LogicGate,
        inputs: Mapping[str, int],
        temperature: Optional[float] = None,
    ) -> float:
        """Static power [W] of a gate for one input vector."""
        return self.evaluate(gate, inputs, temperature).power

    # ------------------------------------------------------------------ #
    # Vector sweeps
    # ------------------------------------------------------------------ #
    def per_vector_currents(
        self, gate: LogicGate, temperature: Optional[float] = None
    ) -> Dict[Tuple[int, ...], float]:
        """OFF current for every input vector, keyed by the input bit tuple."""
        currents: Dict[Tuple[int, ...], float] = {}
        for vector in enumerate_vectors(gate.inputs):
            bits = tuple(vector[name] for name in gate.inputs)
            currents[bits] = self.off_current(gate, vector, temperature)
        return currents

    def worst_case_vector(
        self, gate: LogicGate, temperature: Optional[float] = None
    ) -> GateLeakageEstimate:
        """The input vector with the highest analytical leakage."""
        best: Optional[GateLeakageEstimate] = None
        for vector in enumerate_vectors(gate.inputs):
            estimate = self.evaluate(gate, vector, temperature)
            if best is None or estimate.current > best.current:
                best = estimate
        assert best is not None
        return best

    def best_case_vector(
        self, gate: LogicGate, temperature: Optional[float] = None
    ) -> GateLeakageEstimate:
        """The input vector with the lowest analytical leakage."""
        best: Optional[GateLeakageEstimate] = None
        for vector in enumerate_vectors(gate.inputs):
            estimate = self.evaluate(gate, vector, temperature)
            if best is None or estimate.current < best.current:
                best = estimate
        assert best is not None
        return best

    def average_current(
        self, gate: LogicGate, temperature: Optional[float] = None
    ) -> float:
        """Leakage current averaged uniformly over all input vectors."""
        currents = self.per_vector_currents(gate, temperature)
        return sum(currents.values()) / len(currents)
