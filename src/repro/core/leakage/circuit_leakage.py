"""Circuit-level static power estimation.

Scales the gate-level analytical model up to a full combinational netlist:
logic values are propagated from the primary inputs, every instance's
leakage is evaluated for its local input vector, and the results are
aggregated in total and per floorplan block.  Per-block junction
temperatures may be supplied, which is exactly the hook the electro-thermal
co-simulation loop of :mod:`repro.core.cosim` uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

from ...circuit.netlist import Netlist
from ...technology.parameters import TechnologyParameters
from .gate_leakage import GateLeakageEstimate, GateLeakageModel

TemperatureSpec = Union[float, Mapping[str, float]]


@dataclass(frozen=True)
class CircuitLeakageReport:
    """Per-instance and aggregated leakage of a netlist for one input vector.

    Attributes
    ----------
    netlist_name:
        Name of the analysed netlist.
    instance_estimates:
        Per-instance analytical estimates keyed by instance name.
    total_current:
        Sum of all instance currents [A].
    total_power:
        Sum of all instance static powers [W].
    block_power:
        Static power aggregated per floorplan block [W]; instances without a
        block are collected under the ``""`` key.
    """

    netlist_name: str
    instance_estimates: Dict[str, GateLeakageEstimate]
    total_current: float
    total_power: float
    block_power: Dict[str, float] = field(default_factory=dict)

    def instances_sorted_by_power(self):
        """Instance estimates ordered from the leakiest downwards."""
        return sorted(
            self.instance_estimates.values(), key=lambda e: e.power, reverse=True
        )


class CircuitLeakageModel:
    """Analytical static-power estimator for combinational netlists.

    Parameters
    ----------
    technology:
        Technology parameters shared by every instance.
    """

    def __init__(self, technology: TechnologyParameters) -> None:
        self.technology = technology
        self.gate_model = GateLeakageModel(technology)

    def _instance_temperature(
        self,
        block: Optional[str],
        temperature: Optional[TemperatureSpec],
    ) -> float:
        if temperature is None:
            return self.technology.reference_temperature
        if isinstance(temperature, Mapping):
            if block is not None and block in temperature:
                return float(temperature[block])
            if "" in temperature:
                return float(temperature[""])
            return self.technology.reference_temperature
        return float(temperature)

    def analyze(
        self,
        netlist: Netlist,
        primary_inputs: Mapping[str, int],
        temperature: Optional[TemperatureSpec] = None,
    ) -> CircuitLeakageReport:
        """Full leakage report for one primary-input assignment.

        Parameters
        ----------
        netlist:
            Combinational netlist to analyse.
        primary_inputs:
            Logic value of every primary input.
        temperature:
            Either a single junction temperature [K] applied to every
            instance, or a mapping from floorplan block name to temperature
            (instances outside any listed block fall back to the reference
            temperature).
        """
        vectors = netlist.instance_input_vectors(primary_inputs)
        estimates: Dict[str, GateLeakageEstimate] = {}
        block_power: Dict[str, float] = {}
        total_current = 0.0
        total_power = 0.0
        for instance in netlist.instances():
            instance_temperature = self._instance_temperature(
                instance.block, temperature
            )
            estimate = self.gate_model.evaluate(
                instance.cell, vectors[instance.name], instance_temperature
            )
            estimates[instance.name] = estimate
            total_current += estimate.current
            total_power += estimate.power
            block_key = instance.block or ""
            block_power[block_key] = block_power.get(block_key, 0.0) + estimate.power
        return CircuitLeakageReport(
            netlist_name=netlist.name,
            instance_estimates=estimates,
            total_current=total_current,
            total_power=total_power,
            block_power=block_power,
        )

    def total_power(
        self,
        netlist: Netlist,
        primary_inputs: Mapping[str, int],
        temperature: Optional[TemperatureSpec] = None,
    ) -> float:
        """Total static power [W] of the netlist for one input assignment."""
        return self.analyze(netlist, primary_inputs, temperature).total_power

    def block_power(
        self,
        netlist: Netlist,
        primary_inputs: Mapping[str, int],
        temperature: Optional[TemperatureSpec] = None,
    ) -> Dict[str, float]:
        """Static power [W] aggregated per floorplan block."""
        return self.analyze(netlist, primary_inputs, temperature).block_power

    def average_total_power(
        self,
        netlist: Netlist,
        input_vectors: Mapping[str, Mapping[str, int]],
        temperature: Optional[TemperatureSpec] = None,
    ) -> float:
        """Static power averaged over a set of named primary-input vectors."""
        if not input_vectors:
            raise ValueError("at least one input vector is required")
        total = 0.0
        for vector in input_vectors.values():
            total += self.total_power(netlist, vector, temperature)
        return total / len(input_vectors)
