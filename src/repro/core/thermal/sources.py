"""Closed-form surface temperature fields of elementary heat sources.

Section 3 of the paper builds the chip thermal profile from three closed
forms, all for a semi-infinite silicon substrate whose top surface is
adiabatic:

* Eq. (16): ideal point source on the surface,
  ``T(r) = P / (2 pi k r)``;
* Eq. (18): exact temperature at the centre of a W x L rectangle
  dissipating ``P`` uniformly;
* Eq. (19): far-field approximation treating the rectangle as a finite line
  source spread along its longer dimension.

This module implements those closed forms plus the :class:`HeatSource`
value object the higher-level profile / superposition machinery consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class HeatSource:
    """A rectangular heat source on (or mirrored below) the die surface.

    Attributes
    ----------
    x, y:
        Centre coordinates [m] in the chip coordinate system.
    width:
        Extent along x [m].
    length:
        Extent along y [m].
    power:
        Total dissipated power [W]; negative for image sinks.
    depth:
        Depth [m] below the surface; 0 for real sources, positive for the
        image sinks that enforce the isothermal bottom boundary.
    name:
        Optional label used in reports.
    """

    x: float
    y: float
    width: float
    length: float
    power: float
    depth: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.length <= 0.0:
            raise ValueError("source dimensions must be positive")
        if self.depth < 0.0:
            raise ValueError("depth must be non-negative")

    @property
    def area(self) -> float:
        """Footprint area [m^2]."""
        return self.width * self.length

    @property
    def power_density(self) -> float:
        """Areal power density [W/m^2]."""
        return self.power / self.area

    def translated(self, dx: float, dy: float) -> "HeatSource":
        """Copy of the source shifted laterally by (dx, dy)."""
        return replace(self, x=self.x + dx, y=self.y + dy)

    def mirrored_x(self, axis_x: float) -> "HeatSource":
        """Copy mirrored across the vertical plane ``x = axis_x``."""
        return replace(self, x=2.0 * axis_x - self.x)

    def mirrored_y(self, axis_y: float) -> "HeatSource":
        """Copy mirrored across the horizontal plane ``y = axis_y``."""
        return replace(self, y=2.0 * axis_y - self.y)

    def as_sink(self, depth: float) -> "HeatSource":
        """Negative-power image of this source buried at ``depth``."""
        return replace(self, power=-self.power, depth=depth)

    def scaled_power(self, factor: float) -> "HeatSource":
        """Copy with the power multiplied by ``factor``."""
        return replace(self, power=self.power * factor)


def point_source_temperature(
    distance: float, power: float, conductivity: float
) -> float:
    """Temperature rise [K] of a surface point source (paper Eq. 16).

    ``T(r) = P / (2 pi k r)`` — the factor 2 (instead of 4) accounts for the
    adiabatic top surface, which folds the full-space solution back into the
    substrate half-space.
    """
    if distance <= 0.0:
        raise ValueError("distance must be positive")
    if conductivity <= 0.0:
        raise ValueError("conductivity must be positive")
    return power / (2.0 * math.pi * conductivity * distance)


def buried_point_source_temperature(
    lateral_distance: float, depth: float, power: float, conductivity: float
) -> float:
    """Surface temperature rise [K] of a point source buried at ``depth``.

    Used for the image sinks that enforce the isothermal die bottom: the
    mirrored (-P) source sits at depth ``2 t_die`` and its contribution at a
    surface point a lateral distance ``r`` away is ``P / (2 pi k R)`` with
    ``R = sqrt(r^2 + depth^2)``.
    """
    if conductivity <= 0.0:
        raise ValueError("conductivity must be positive")
    if depth < 0.0:
        raise ValueError("depth must be non-negative")
    radius = math.hypot(lateral_distance, depth)
    if radius <= 0.0:
        raise ValueError("the observation point coincides with the source")
    return power / (2.0 * math.pi * conductivity * radius)


def square_center_temperature(
    power: float, width: float, length: float, conductivity: float
) -> float:
    """Exact centre temperature rise [K] of a W x L rectangle (paper Eq. 18).

    Closed-form evaluation of Eq. (17) at ``x = y = 0``:

    ``T0 = P / (pi k W L) [ W asinh(L / W) + L asinh(W / L) ]``

    which is algebraically identical to the logarithmic form printed in the
    paper.
    """
    if width <= 0.0 or length <= 0.0:
        raise ValueError("width and length must be positive")
    if conductivity <= 0.0:
        raise ValueError("conductivity must be positive")
    term = width * math.asinh(length / width) + length * math.asinh(width / length)
    return power / (math.pi * conductivity * width * length) * term


def line_source_temperature(
    x: float,
    y: float,
    power: float,
    extent: float,
    conductivity: float,
    axis: str = "x",
) -> float:
    """Far-field finite-line-source temperature rise [K] (paper Eq. 19).

    The rectangle is approximated by a line of length ``extent`` along the
    chosen axis, dissipating ``power`` uniformly per unit length.  Closed
    form (for a line along x, observation point ``(x, y)`` relative to the
    line centre):

    ``T = P / (2 pi k W) ln[ ((x + W/2) + sqrt((x + W/2)^2 + y^2)) /
                              ((x - W/2) + sqrt((x - W/2)^2 + y^2)) ]``

    The expression diverges logarithmically on the line itself (``y -> 0``
    inside the span); the profile model caps it with the centre temperature
    of Eq. (18), which is exactly the paper's Eq. (20).
    """
    if extent <= 0.0:
        raise ValueError("extent must be positive")
    if conductivity <= 0.0:
        raise ValueError("conductivity must be positive")
    if axis == "x":
        along, across = x, y
    elif axis == "y":
        along, across = y, x
    else:
        raise ValueError("axis must be 'x' or 'y'")

    half = 0.5 * extent
    upper = along + half
    lower = along - half
    # The paper prints Eq. (19) as a logarithm of surds; the asinh form below
    # is algebraically identical and numerically stable both on the line's
    # own axis (where the log form suffers catastrophic cancellation) and far
    # beyond its ends.  On the axis within the span the expression diverges
    # logarithmically, which the Eq. (20) min() caps with the Eq. (18) value.
    across_regular = abs(across) if abs(across) > 1e-15 else 1e-15
    integral = math.asinh(upper / across_regular) - math.asinh(lower / across_regular)
    return power / (2.0 * math.pi * conductivity * extent) * integral


def equivalent_point_distance(width: float, length: float) -> float:
    """Effective source radius [m] below which the far-field form is invalid.

    Half the source diagonal — a convenient scale used by tests and by the
    profile model's documentation of where Eq. (18) takes over from Eq. (19).
    """
    if width <= 0.0 or length <= 0.0:
        raise ValueError("width and length must be positive")
    return 0.5 * math.hypot(width, length)
