"""Vectorized struct-of-arrays thermal kernel (paper Eqs. 18/19/20/21).

The scalar helpers in :mod:`repro.core.thermal.profile` evaluate one point
against one source per call, which makes full-chip surface maps and
resistance-matrix assembly O(points x image-sources) Python-level calls.
This module packs a set of :class:`~repro.core.thermal.sources.HeatSource`
objects into a :class:`SourceArray` (contiguous ``ndarray`` per field) and
evaluates the complete Eq. 20/21 recipe — centre cap (Eq. 18), line-source
far field (Eq. 19), buried point-source images and superposition (Eq. 21) —
for every point x source pair in a handful of NumPy broadcasts.

The arithmetic intentionally mirrors the scalar path operation-by-operation
(same association order, same ``1e-15`` across-axis floor, same
``min``/clip combination) so the two agree to round-off; the parity suite
in ``tests/test_thermal_kernel.py`` pins the agreement to <= 1e-10 K.  The
scalar path stays in the tree as the readable reference implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Union

import numpy as np

from ..backend import get_namespace, result_float_dtype, to_numpy
from .sources import HeatSource

#: Floor applied to the across-line distance, matching the scalar
#: :func:`~repro.core.thermal.sources.line_source_temperature` regulariser.
_ACROSS_FLOOR = 1e-15

#: Default cap on point x source elements evaluated per broadcast block.
#: Bounds peak memory (a few 16 MiB float64 temporaries) while keeping each
#: block large enough to amortise the NumPy dispatch overhead.
_DEFAULT_CHUNK_ELEMENTS = 2**21


@dataclass(frozen=True)
class SourceArray:
    """A set of rectangular heat sources in struct-of-arrays layout.

    Attributes
    ----------
    x, y:
        Centre coordinates [m], shape ``(M,)``.
    width, length:
        Footprint extents [m] along x and y.
    power:
        Total dissipated power [W]; negative for image sinks.
    depth:
        Depth [m] below the surface; 0 for surface sources.
    """

    x: np.ndarray
    y: np.ndarray
    width: np.ndarray
    length: np.ndarray
    power: np.ndarray
    depth: np.ndarray

    def __post_init__(self) -> None:
        fields = (self.x, self.y, self.width, self.length, self.power, self.depth)
        for field in fields:
            if field.ndim != 1 or field.shape != self.x.shape:
                raise ValueError("all SourceArray fields must be 1-D and equally sized")
        if self.x.shape[0]:
            xp = get_namespace(self.x)
            if not (xp.all(self.width > 0.0) and xp.all(self.length > 0.0)):
                raise ValueError("source dimensions must be positive")
            if not xp.all(self.depth >= 0.0):
                raise ValueError("depth must be non-negative")

    @classmethod
    def from_sources(
        cls, sources: Sequence[HeatSource], xp=np, dtype=None
    ) -> "SourceArray":
        """Pack a sequence of :class:`HeatSource` into contiguous arrays."""
        dtype = xp.float64 if dtype is None else dtype
        return cls(
            x=xp.asarray([s.x for s in sources], dtype=dtype),
            y=xp.asarray([s.y for s in sources], dtype=dtype),
            width=xp.asarray([s.width for s in sources], dtype=dtype),
            length=xp.asarray([s.length for s in sources], dtype=dtype),
            power=xp.asarray([s.power for s in sources], dtype=dtype),
            depth=xp.asarray([s.depth for s in sources], dtype=dtype),
        )

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def to_sources(self) -> List[HeatSource]:
        """Unpack back into scalar :class:`HeatSource` objects."""
        return [
            HeatSource(
                x=float(self.x[i]),
                y=float(self.y[i]),
                width=float(self.width[i]),
                length=float(self.length[i]),
                power=float(self.power[i]),
                depth=float(self.depth[i]),
            )
            for i in range(len(self))
        ]

    def with_powers(self, power: np.ndarray) -> "SourceArray":
        """Copy with the power column replaced (same geometry)."""
        xp = get_namespace(self.x, power)
        power = xp.asarray(power, dtype=self.x.dtype)
        if power.shape != self.x.shape:
            raise ValueError("power must match the source count")
        return replace(self, power=power)

    def total_power(self) -> float:
        """Signed total power [W] over every packed source."""
        return float(get_namespace(self.power).sum(self.power))

    def cast(self, xp=np, dtype=None) -> "SourceArray":
        """Copy with every field converted into namespace ``xp``/``dtype``."""
        dtype = xp.float64 if dtype is None else dtype
        return SourceArray(
            x=xp.asarray(self.x, dtype=dtype),
            y=xp.asarray(self.y, dtype=dtype),
            width=xp.asarray(self.width, dtype=dtype),
            length=xp.asarray(self.length, dtype=dtype),
            power=xp.asarray(self.power, dtype=dtype),
            depth=xp.asarray(self.depth, dtype=dtype),
        )


SourceSetLike = Union[SourceArray, Sequence[HeatSource]]


def _as_source_array(sources: SourceSetLike) -> SourceArray:
    if isinstance(sources, SourceArray):
        return sources
    return SourceArray.from_sources(sources)


class _SurfacePartition:
    """Constants for surface sources whose line source runs along one axis.

    Splitting wide (line along x) and tall (line along y) sources into two
    partitions removes every per-element ``np.where`` from the hot loop:
    each partition evaluates one straight-line formula with in-place ufuncs.
    """

    def __init__(
        self, sources: SourceArray, index: np.ndarray, c1: float, c2: float
    ) -> None:
        self.index = index
        width = sources.width[index]
        length = sources.length[index]
        power = sources.power[index]
        self.x = sources.x[index]
        self.y = sources.y[index]
        self.sign = np.sign(power)
        magnitude = np.abs(power)
        # Eq. 18 centre cap.
        term = width * np.arcsinh(length / width) + length * np.arcsinh(
            width / length
        )
        self.center = magnitude / (c1 * width * length) * term
        # Eq. 19 line source along the longer footprint dimension.
        extent = np.maximum(width, length)
        self.half = 0.5 * extent
        self.far_coefficient = magnitude / (c2 * extent)

    def rises(self, along_delta: np.ndarray, across_delta: np.ndarray) -> np.ndarray:
        """Eq. 20 rises given point-source deltas along/across the line.

        Both inputs are freshly allocated ``(n, m)`` arrays and are consumed
        as scratch space.
        """
        across = np.abs(across_delta, out=across_delta)
        np.maximum(across, _ACROSS_FLOOR, out=across)
        upper = along_delta + self.half
        upper /= across
        np.arcsinh(upper, out=upper)
        lower = along_delta
        lower -= self.half
        lower /= across
        np.arcsinh(lower, out=lower)
        far = upper
        far -= lower
        far *= self.far_coefficient
        # Underflow of the far field extremely far out clips to zero, then
        # Eq. 20 takes the smaller magnitude and restores the sign.
        np.maximum(far, 0.0, out=far)
        np.minimum(far, self.center, out=far)
        far *= self.sign
        return far


class _KernelPlan:
    """Per-source constants of the Eq. 20 evaluation, computed once.

    The packed sources split into three populations — surface sources whose
    far-field line runs along x (``width >= length``), surface sources whose
    line runs along y, and buried point-source images — so every broadcast
    block runs exactly the formula branch the scalar
    ``rectangle_temperature`` would take, with no per-element branching.
    """

    def __init__(self, sources: SourceArray, conductivity: float) -> None:
        if conductivity <= 0.0:
            raise ValueError("conductivity must be positive")
        self.count = len(sources)
        self.dtype = sources.x.dtype
        # Match the scalar association order: pi*k and 2.0*pi*k are the
        # exact left-folded prefixes of the scalar denominators.
        c1 = math.pi * conductivity
        c2 = 2.0 * math.pi * conductivity

        surface = sources.depth == 0.0
        wide = surface & (sources.width >= sources.length)
        tall = surface & ~wide
        # (partition, line-along-x) pairs; empty populations are dropped.
        self.partitions = [
            (_SurfacePartition(sources, np.flatnonzero(mask), c1, c2), along_x)
            for mask, along_x in ((wide, True), (tall, False))
            if mask.any()
        ]

        self.buried_index = np.flatnonzero(~surface)
        if self.buried_index.size:
            sub = self.buried_index
            self.bx = sources.x[sub]
            self.by = sources.y[sub]
            self.bdepth_sq = sources.depth[sub] * sources.depth[sub]
            self.bpower = sources.power[sub]
            self.c2 = c2

    def _buried_rises(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Point-source image rises, ``(n, buried)``; in-place throughout."""
        dx = px[:, np.newaxis] - self.bx
        dy = py[:, np.newaxis] - self.by
        dx *= dx
        dy *= dy
        dx += dy
        dx += self.bdepth_sq
        np.sqrt(dx, out=dx)
        dx *= self.c2
        return np.divide(self.bpower, dx, out=dx)

    def _surface_rises(
        self,
        partition: _SurfacePartition,
        along_x: bool,
        px: np.ndarray,
        py: np.ndarray,
    ) -> np.ndarray:
        dx = px[:, np.newaxis] - partition.x
        dy = py[:, np.newaxis] - partition.y
        if along_x:
            return partition.rises(dx, dy)
        return partition.rises(dy, dx)

    def block(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Per-pair temperature rises, shape ``(len(px), count)``."""
        out = np.zeros((px.size, self.count), dtype=np.result_type(px, self.dtype))
        for partition, along_x in self.partitions:
            out[:, partition.index] = self._surface_rises(partition, along_x, px, py)
        if self.buried_index.size:
            out[:, self.buried_index] = self._buried_rises(px, py)
        return out

    def row_sums(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Eq. 21 superposed rises, shape ``(len(px),)``.

        Sums each partition's contributions directly instead of scattering
        into the full ``(n, count)`` matrix — the hot path for maps.
        """
        total = np.zeros(px.size, dtype=np.result_type(px, self.dtype))
        for partition, along_x in self.partitions:
            total += self._surface_rises(partition, along_x, px, py).sum(axis=1)
        if self.buried_index.size:
            total += self._buried_rises(px, py).sum(axis=1)
        return total


class _GenericPlan:
    """Namespace-generic Eq. 20 evaluation: no partitions, no in-place ops.

    The Array-API counterpart of :class:`_KernelPlan` for namespaces
    without numpy's ``out=`` ufunc protocol (``array_api_strict``, CuPy,
    JAX): every (point, source) lane evaluates all three formula branches
    functionally — in the exact per-element operation order of the
    partitioned in-place chains — and a ``where`` select keeps the branch
    the scalar reference would take, so float64 results agree bit-for-bit
    with the numpy plan.
    """

    def __init__(self, sources: SourceArray, conductivity: float, xp) -> None:
        if conductivity <= 0.0:
            raise ValueError("conductivity must be positive")
        self.xp = xp
        self.count = len(sources)
        self.dtype = sources.x.dtype
        c1 = math.pi * conductivity
        c2 = 2.0 * math.pi * conductivity
        self.c2 = c2
        width = sources.width
        length = sources.length
        power = sources.power
        self.x = sources.x
        self.y = sources.y
        self.surface = sources.depth == 0.0
        self.wide = xp.logical_and(self.surface, width >= length)
        self.sign = xp.sign(power)
        magnitude = xp.abs(power)
        # Eq. 18 centre cap (well-defined for every lane: extents are
        # positive whether the source is surface or buried).
        term = width * xp.asinh(length / width) + length * xp.asinh(width / length)
        self.center = magnitude / (c1 * width * length) * term
        # Eq. 19 line source along the longer footprint dimension.
        extent = xp.maximum(width, length)
        self.half = 0.5 * extent
        self.far_coefficient = magnitude / (c2 * extent)
        self.depth_sq = sources.depth * sources.depth
        self.power = power
        # Regulariser keeping the buried denominator finite on surface
        # lanes (adds exactly 0.0 on buried lanes, whose values survive).
        self.surface_bump = xp.astype(self.surface, self.dtype)
        # Scalar operands of the two-array elementwise functions, packed
        # as 0-d arrays (scalar arguments there are a recent spec addition
        # not every namespace implements yet).
        self.across_floor = xp.asarray(_ACROSS_FLOOR, dtype=self.dtype)
        self.zero = xp.asarray(0.0, dtype=self.dtype)
        # Row sums must accumulate in the numpy plan's partition order
        # (wide, tall, buried) — summing all columns at once folds the
        # reduction differently and drifts by 1 ulp.  Masks are staged on
        # the host; the column indices live in the working namespace.
        depth_host = to_numpy(sources.depth)
        surface_host = depth_host == 0.0
        wide_host = surface_host & (to_numpy(width) >= to_numpy(length))
        tall_host = surface_host & ~wide_host
        self.column_groups = [
            xp.asarray(np.flatnonzero(mask))
            for mask in (wide_host, tall_host, ~surface_host)
            if mask.any()
        ]

    def block(self, px, py):
        """Per-pair temperature rises, shape ``(len(px), count)``."""
        xp = self.xp
        dx = px[:, None] - self.x
        dy = py[:, None] - self.y
        # Surface branch: point-source deltas along/across the Eq. 19 line.
        along = xp.where(self.wide, dx, dy)
        across = xp.abs(xp.where(self.wide, dy, dx))
        across = xp.maximum(across, self.across_floor)
        upper = xp.asinh((along + self.half) / across)
        lower = xp.asinh((along - self.half) / across)
        far = (upper - lower) * self.far_coefficient
        far = xp.maximum(far, self.zero)
        far = xp.minimum(far, self.center)
        far = far * self.sign
        # Buried branch: point-source image distance (same association
        # order as the in-place chain: (dx^2 + dy^2) + depth^2).
        r_sq = (dx * dx + dy * dy) + self.depth_sq + self.surface_bump
        buried = self.power / (xp.sqrt(r_sq) * self.c2)
        return xp.where(self.surface, far, buried)

    def row_sums(self, px, py):
        """Eq. 21 superposed rises, shape ``(len(px),)``.

        Accumulated one column group at a time in the numpy plan's
        partition order so the reduction folds identically.
        """
        xp = self.xp
        block = self.block(px, py)
        total = None
        for columns in self.column_groups:
            group = xp.sum(xp.take(block, columns, axis=1), axis=1)
            total = group if total is None else total + group
        return total


def as_points(points) -> np.ndarray:
    xp = get_namespace(points)
    array = xp.asarray(points, dtype=result_float_dtype(points))
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError("points must have shape (N, 2)")
    return array


def _chunk_size(source_count: int, chunk_elements: int) -> int:
    return max(1, chunk_elements // max(1, source_count))


def temperature_rise(
    points,
    sources: SourceSetLike,
    conductivity: float,
    chunk_elements: int = _DEFAULT_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Superposed temperature rise [K] at every point (Eq. 21), batched.

    Parameters
    ----------
    points:
        Observation points, shape ``(N, 2)`` of ``(x, y)`` [m].
    sources:
        A :class:`SourceArray` or a sequence of :class:`HeatSource`
        (typically the image-expanded set).
    conductivity:
        Substrate thermal conductivity [W/m/K].
    chunk_elements:
        Cap on point x source pairs evaluated per broadcast block; bounds
        peak memory without changing the result.
    """
    pts = as_points(points)
    array = _as_source_array(sources)
    if len(array) == 0:
        raise ValueError("at least one source is required")
    xp = get_namespace(pts, array.x)
    step = _chunk_size(len(array), chunk_elements)
    if xp is np:
        plan = _KernelPlan(array, conductivity)
        out = np.empty(pts.shape[0], dtype=np.result_type(pts, array.x))
        for start in range(0, pts.shape[0], step):
            stop = start + step
            out[start:stop] = plan.row_sums(pts[start:stop, 0], pts[start:stop, 1])
        return out
    generic = _GenericPlan(array, conductivity, xp)
    chunks = [
        generic.row_sums(pts[start : start + step, 0], pts[start : start + step, 1])
        for start in range(0, pts.shape[0], step)
    ]
    return chunks[0] if len(chunks) == 1 else xp.concat(chunks)


def pairwise_rise(
    points,
    sources: SourceSetLike,
    conductivity: float,
    groups: Optional[np.ndarray] = None,
    group_count: Optional[int] = None,
    chunk_elements: int = _DEFAULT_CHUNK_ELEMENTS,
) -> np.ndarray:
    """Per-source temperature rises [K] at every point, shape ``(N, M)``.

    Entry ``[i, j]`` is the Eq. 20 rise at point ``i`` due to source ``j``
    alone.  When ``groups`` is given (one integer label per source, e.g.
    the originating-source index of each image produced by
    :meth:`~repro.core.thermal.images.ImageExpansion.expand_arrays`), the
    columns are summed per label and the result has shape
    ``(N, group_count)`` — exactly the block-to-block thermal-resistance
    matrix when the points are block centres and each group is one block's
    unit-power image family.
    """
    pts = as_points(points)
    array = _as_source_array(sources)
    if len(array) == 0:
        raise ValueError("at least one source is required")
    xp = get_namespace(pts, array.x)
    dtype = np.result_type(pts, array.x) if xp is np else np.float64
    if groups is not None:
        groups = np.asarray(groups)
        if groups.shape != (len(array),):
            raise ValueError("groups must provide one label per source")
        columns = int(group_count) if group_count is not None else int(groups.max()) + 1
        # The 0/1 scatter is staged on the host; non-numpy namespaces get
        # a converted copy (the gather itself stays a matmul everywhere).
        indicator_host = np.zeros((len(array), columns), dtype=dtype)
        indicator_host[np.arange(len(array)), groups] = 1.0
        indicator = (
            indicator_host
            if xp is np
            else xp.asarray(indicator_host, dtype=array.x.dtype)
        )
    else:
        columns = len(array)
        indicator = None
    step = _chunk_size(len(array), chunk_elements)
    if xp is np:
        plan = _KernelPlan(array, conductivity)
        out = np.empty((pts.shape[0], columns), dtype=dtype)
        for start in range(0, pts.shape[0], step):
            stop = start + step
            block = plan.block(pts[start:stop, 0], pts[start:stop, 1])
            out[start:stop] = block if indicator is None else block @ indicator
        return out
    generic = _GenericPlan(array, conductivity, xp)
    chunks = []
    for start in range(0, pts.shape[0], step):
        stop = start + step
        block = generic.block(pts[start:stop, 0], pts[start:stop, 1])
        chunks.append(block if indicator is None else block @ indicator)
    return chunks[0] if len(chunks) == 1 else xp.concat(chunks, axis=0)


def scalar_reference_rise(
    x: float, y: float, sources: SourceSetLike, conductivity: float
) -> float:
    """Scalar-path rise [K] at one point — the kernel's parity oracle.

    Evaluates the same source set through the original per-source Python
    implementation (:func:`~repro.core.thermal.profile.rectangle_temperature`
    summed left to right), which is what the vectorized kernel must match.
    """
    from .profile import rectangle_temperature

    array = _as_source_array(sources)
    return sum(
        rectangle_temperature(x, y, source, conductivity)
        for source in array.to_sources()
    )
