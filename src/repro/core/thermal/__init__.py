"""Analytical thermal-profile model (paper Section 3).

Closed-form source fields (Eqs. 16, 18, 19), the min-combined profile
(Eq. 20), superposition over blocks (Eq. 21), the method of images for die
boundary conditions, thermal-resistance extraction (Fig. 10) and the lumped
transient self-heating model (Fig. 9).
"""

from .images import DieGeometry, ImageExpansion, lateral_axis_positions
from .kernel import (
    SourceArray,
    pairwise_rise,
    scalar_reference_rise,
    temperature_rise,
)
from .operator import (
    THERMAL_BACKENDS,
    AnalyticalImageOperator,
    BackendCapabilities,
    FdmOperator,
    FosterOperator,
    ThermalOperator,
    backend_capabilities,
    make_operator,
)
from .profile import (
    point_source_profile,
    radial_profile,
    rectangle_center_temperature,
    rectangle_far_field_temperature,
    rectangle_profile,
    rectangle_temperature,
    saturation_distance,
)
from .resistance import (
    bounded_self_heating_resistance,
    device_thermal_resistance,
    mutual_thermal_resistance,
    resistance_matrix,
    self_heating_resistance,
)
from .sources import (
    HeatSource,
    buried_point_source_temperature,
    equivalent_point_distance,
    line_source_temperature,
    point_source_temperature,
    square_center_temperature,
)
from .superposition import ChipThermalModel, SurfaceMap, superposed_temperature_rise
from .transient import (
    DeviceThermalParameters,
    device_thermal_network,
    device_thermal_parameters,
    effective_heated_volume,
    self_heating_transient,
    steady_state_self_heating,
)

__all__ = [
    "HeatSource",
    "point_source_temperature",
    "buried_point_source_temperature",
    "square_center_temperature",
    "line_source_temperature",
    "equivalent_point_distance",
    "rectangle_temperature",
    "rectangle_center_temperature",
    "rectangle_far_field_temperature",
    "rectangle_profile",
    "radial_profile",
    "point_source_profile",
    "saturation_distance",
    "DieGeometry",
    "ImageExpansion",
    "lateral_axis_positions",
    "SourceArray",
    "temperature_rise",
    "pairwise_rise",
    "scalar_reference_rise",
    "THERMAL_BACKENDS",
    "ThermalOperator",
    "BackendCapabilities",
    "AnalyticalImageOperator",
    "FdmOperator",
    "FosterOperator",
    "backend_capabilities",
    "make_operator",
    "ChipThermalModel",
    "SurfaceMap",
    "superposed_temperature_rise",
    "self_heating_resistance",
    "device_thermal_resistance",
    "bounded_self_heating_resistance",
    "mutual_thermal_resistance",
    "resistance_matrix",
    "DeviceThermalParameters",
    "device_thermal_parameters",
    "device_thermal_network",
    "effective_heated_volume",
    "self_heating_transient",
    "steady_state_self_heating",
]
