"""Analytical thermal profile of a single rectangular source (paper Eq. 20).

The paper combines the exact centre temperature (Eq. 18) with the far-field
line-source approximation (Eq. 19):

``T(x, y) = min( T0, T_line(x, y) )``

Near the source Eq. (19) diverges and the minimum selects the saturated
centre value; far from the source Eq. (19) is accurate and smaller than the
centre value, so the minimum selects it.  The module also exposes the
individual ingredients so ablation benchmarks can quantify each
approximation separately.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .sources import (
    HeatSource,
    buried_point_source_temperature,
    line_source_temperature,
    point_source_temperature,
    square_center_temperature,
)


def rectangle_center_temperature(
    source: HeatSource, conductivity: float
) -> float:
    """Temperature rise [K] at the centre of a surface source (Eq. 18)."""
    return square_center_temperature(
        source.power, source.width, source.length, conductivity
    )


def rectangle_far_field_temperature(
    x: float, y: float, source: HeatSource, conductivity: float
) -> float:
    """Far-field temperature rise [K] of a source (Eq. 19).

    The source is spread along its longer dimension, following the paper's
    "assume W > L" prescription; for a square source the choice does not
    matter (the paper notes Eq. 19 works well even for W = L).
    """
    dx = x - source.x
    dy = y - source.y
    if source.width >= source.length:
        return line_source_temperature(
            dx, dy, source.power, source.width, conductivity, axis="x"
        )
    return line_source_temperature(
        dx, dy, source.power, source.length, conductivity, axis="y"
    )


def rectangle_temperature(
    x: float, y: float, source: HeatSource, conductivity: float
) -> float:
    """Analytical temperature rise [K] at ``(x, y)`` from one source (Eq. 20).

    For surface sources this is ``min(T0, T_line)``; buried (image) sources
    are treated as point sources at their three-dimensional distance, the
    appropriate far-field form for the bottom-boundary images.

    Negative-power sources (image sinks) are handled by symmetry: the
    magnitude field is evaluated and the sign restored, so that the ``min``
    still selects the *smaller magnitude* as intended by the paper.
    """
    if source.power == 0.0:
        return 0.0
    if source.power < 0.0:
        positive = HeatSource(
            x=source.x,
            y=source.y,
            width=source.width,
            length=source.length,
            power=-source.power,
            depth=source.depth,
            name=source.name,
        )
        return -rectangle_temperature(x, y, positive, conductivity)

    if source.depth > 0.0:
        lateral = math.hypot(x - source.x, y - source.y)
        return buried_point_source_temperature(
            lateral, source.depth, source.power, conductivity
        )

    center = rectangle_center_temperature(source, conductivity)
    far = rectangle_far_field_temperature(x, y, source, conductivity)
    if far <= 0.0:
        # Numerical underflow of the log form extremely far from the source.
        far = 0.0
    return min(center, far)


def rectangle_profile(
    points: Sequence[Sequence[float]],
    source: HeatSource,
    conductivity: float,
) -> np.ndarray:
    """Temperature rise [K] at many ``(x, y)`` points from one source."""
    return np.asarray(
        [rectangle_temperature(px, py, source, conductivity) for px, py in points]
    )


def radial_profile(
    distances: Iterable[float],
    source: HeatSource,
    conductivity: float,
    direction: str = "x",
) -> np.ndarray:
    """Temperature rise along a ray from the source centre (Fig. 5 sweep).

    Parameters
    ----------
    distances:
        Distances [m] from the source centre along the chosen direction.
    source:
        The dissipating rectangle.
    conductivity:
        Substrate thermal conductivity [W/m/K].
    direction:
        ``"x"``, ``"y"`` or ``"diagonal"``.
    """
    values = []
    for distance in distances:
        if direction == "x":
            px, py = source.x + distance, source.y
        elif direction == "y":
            px, py = source.x, source.y + distance
        elif direction == "diagonal":
            component = distance / math.sqrt(2.0)
            px, py = source.x + component, source.y + component
        else:
            raise ValueError("direction must be 'x', 'y' or 'diagonal'")
        values.append(rectangle_temperature(px, py, source, conductivity))
    return np.asarray(values)


def point_source_profile(
    distances: Iterable[float], power: float, conductivity: float
) -> np.ndarray:
    """Temperature rise of an ideal point source at several distances (Eq. 16)."""
    return np.asarray(
        [point_source_temperature(d, power, conductivity) for d in distances]
    )


def saturation_distance(source: HeatSource, conductivity: float) -> float:
    """Distance [m] along x at which Eq. (19) drops below the Eq. (18) cap.

    Inside this radius the analytical profile is flat at the centre value;
    outside it follows the far-field curve.  Solved by bisection on the
    monotone far-field expression.
    """
    center = rectangle_center_temperature(source, conductivity)
    low = 1e-9
    high = 10.0 * max(source.width, source.length)
    # Expand the bracket until the far-field value falls below the cap.
    for _ in range(60):
        far = rectangle_far_field_temperature(
            source.x + high, source.y, source, conductivity
        )
        if far < center:
            break
        high *= 2.0
    for _ in range(200):
        mid = 0.5 * (low + high)
        far = rectangle_far_field_temperature(
            source.x + mid, source.y, source, conductivity
        )
        if far > center:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
