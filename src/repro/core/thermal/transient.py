"""Analytical transient self-heating of a device (Figs. 9–10 substrate).

The paper's self-heating measurements pulse a transistor ON at 3 Hz and
observe the exponential temperature rise caused by the device's thermal
capacitance charging through its thermal resistance.  This module derives a
lumped Foster network for a device analytically:

* the steady-state resistance is the analytical ``Rth`` of
  :mod:`repro.core.thermal.resistance` (Eq. 18), and
* the thermal capacitance is the heat capacity of the silicon volume that
  the steady-state temperature field effectively occupies — a hemispherical
  region whose radius is the source's equivalent radius scaled by a fitted
  spreading factor.

The resulting single-pole (optionally two-pole) network is what the
simulated measurement bench of :mod:`repro.measurement` drives with the
3 Hz gate waveform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...technology.materials import SILICON, Material
from ...thermalsim.rc_network import FosterNetwork, FosterStage
from .resistance import self_heating_resistance


@dataclass(frozen=True)
class DeviceThermalParameters:
    """Lumped thermal parameters of one device.

    Attributes
    ----------
    resistance:
        Junction-to-substrate thermal resistance [K/W].
    capacitance:
        Effective thermal capacitance [J/K].
    time_constant:
        ``R * C`` [s].
    """

    resistance: float
    capacitance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0 or self.capacitance <= 0.0:
            raise ValueError("thermal resistance and capacitance must be positive")

    @property
    def time_constant(self) -> float:
        return self.resistance * self.capacitance


def effective_heated_volume(
    width: float, length: float, spreading_factor: float = 3.0
) -> float:
    """Volume [m^3] of silicon effectively heated by a W x L surface source.

    Modelled as the hemisphere whose radius is the source's equivalent
    radius (radius of the circle with the same area) multiplied by a
    spreading factor; the factor absorbs the detailed shape of the
    steady-state isotherms and is the single fitted constant of the
    transient model.
    """
    if width <= 0.0 or length <= 0.0:
        raise ValueError("width and length must be positive")
    if spreading_factor <= 0.0:
        raise ValueError("spreading_factor must be positive")
    equivalent_radius = math.sqrt(width * length / math.pi)
    radius = spreading_factor * equivalent_radius
    return (2.0 / 3.0) * math.pi * radius**3


def device_thermal_parameters(
    width: float,
    length: float,
    material: Material = SILICON,
    temperature: float = 300.0,
    spreading_factor: float = 3.0,
) -> DeviceThermalParameters:
    """Lumped R/C thermal parameters of a W x L device."""
    resistance = self_heating_resistance(
        width, length, material=material, temperature=temperature
    )
    volume = effective_heated_volume(width, length, spreading_factor)
    capacitance = material.volumetric_heat_capacity * volume
    return DeviceThermalParameters(resistance=resistance, capacitance=capacitance)


def device_thermal_network(
    width: float,
    length: float,
    material: Material = SILICON,
    temperature: float = 300.0,
    spreading_factor: float = 3.0,
    stages: int = 1,
) -> FosterNetwork:
    """Foster network modelling a device's transient self-heating.

    With ``stages = 1`` the classic single-exponential response of Fig. 9 is
    produced.  ``stages = 2`` splits the resistance 70/30 with a 10x faster
    second pole, which better matches the early-time behaviour of real
    devices while preserving the steady-state resistance.
    """
    if stages not in (1, 2):
        raise ValueError("only 1- or 2-stage networks are supported")
    parameters = device_thermal_parameters(
        width, length, material, temperature, spreading_factor
    )
    if stages == 1:
        return FosterNetwork(
            [FosterStage(parameters.resistance, parameters.capacitance)]
        )
    slow = FosterStage(0.7 * parameters.resistance, parameters.capacitance)
    fast = FosterStage(0.3 * parameters.resistance, 0.1 * parameters.capacitance)
    return FosterNetwork([slow, fast])


def steady_state_self_heating(
    power: float,
    width: float,
    length: float,
    material: Material = SILICON,
    temperature: float = 300.0,
) -> float:
    """Steady-state self-heating rise [K] of a device dissipating ``power``."""
    if power < 0.0:
        raise ValueError("power must be non-negative")
    resistance = self_heating_resistance(
        width, length, material=material, temperature=temperature
    )
    return power * resistance


def self_heating_transient(
    power: float,
    width: float,
    length: float,
    times,
    material: Material = SILICON,
    temperature: float = 300.0,
    spreading_factor: float = 3.0,
):
    """Junction temperature rise [K] versus time after a power step."""
    network = device_thermal_network(
        width, length, material, temperature, spreading_factor
    )
    return [network.step_response(float(t), power) for t in times]
