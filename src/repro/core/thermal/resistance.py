"""Analytical thermal resistance of devices and blocks (Fig. 10).

The paper defines a device's (self-heating) thermal resistance as the
steady-state temperature rise at its own location per watt dissipated,
``Rth = dT_SH / P``.  With the analytical profile the self-heating rise of a
W x L source is exactly Eq. (18), so

``Rth = T0 / P = [ W asinh(L/W) + L asinh(W/L) ] / (pi k W L)``

which only depends on geometry and on the substrate conductivity.  The
module also provides the die-bounded variant (images included) and a
mutual-resistance helper used by the coupled full-chip engine.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ...technology.materials import SILICON, Material
from .images import DieGeometry, ImageExpansion
from .sources import HeatSource
from .superposition import superposed_temperature_rise


def self_heating_resistance(
    width: float,
    length: float,
    conductivity: Optional[float] = None,
    material: Material = SILICON,
    temperature: float = 300.0,
) -> float:
    """Self-heating thermal resistance [K/W] of a W x L surface source.

    Parameters
    ----------
    width, length:
        Source (device) dimensions [m].
    conductivity:
        Substrate conductivity [W/m/K]; when omitted it is taken from
        ``material`` at ``temperature``.
    material, temperature:
        Used only when ``conductivity`` is not given.
    """
    if width <= 0.0 or length <= 0.0:
        raise ValueError("width and length must be positive")
    k = conductivity if conductivity is not None else material.conductivity_at(temperature)
    if k <= 0.0:
        raise ValueError("conductivity must be positive")
    term = width * math.asinh(length / width) + length * math.asinh(width / length)
    return term / (math.pi * k * width * length)


def device_thermal_resistance(
    channel_width: float,
    channel_length: float,
    conductivity: Optional[float] = None,
    material: Material = SILICON,
    temperature: float = 300.0,
    heated_area_factor: float = 1.0,
) -> float:
    """Thermal resistance [K/W] of a single MOSFET treated as a W x L source.

    ``heated_area_factor`` scales both dimensions to account for heat
    spreading through the drain/source diffusions (1.0 = channel area only,
    the paper's elementary-heat-source assumption).
    """
    if heated_area_factor <= 0.0:
        raise ValueError("heated_area_factor must be positive")
    return self_heating_resistance(
        channel_width * heated_area_factor,
        channel_length * heated_area_factor,
        conductivity=conductivity,
        material=material,
        temperature=temperature,
    )


def bounded_self_heating_resistance(
    source: HeatSource,
    die: DieGeometry,
    conductivity: Optional[float] = None,
    material: Material = SILICON,
    temperature: float = 300.0,
    image_rings: int = 1,
) -> float:
    """Self-heating resistance [K/W] including die boundary effects.

    The adiabatic sides *increase* the resistance (heat cannot escape
    laterally); the isothermal bottom *decreases* it.  Evaluated with the
    method-of-images expansion at the source centre.
    """
    if source.power <= 0.0:
        raise ValueError("the source must dissipate positive power")
    k = conductivity if conductivity is not None else material.conductivity_at(temperature)
    expansion = ImageExpansion(die, rings=image_rings, include_bottom_images=True)
    expanded = expansion.expand([source])
    rise = superposed_temperature_rise(source.x, source.y, expanded, k)
    return rise / source.power


def mutual_thermal_resistance(
    source: HeatSource,
    observer_x: float,
    observer_y: float,
    conductivity: Optional[float] = None,
    material: Material = SILICON,
    temperature: float = 300.0,
) -> float:
    """Mutual resistance [K/W]: rise at an observation point per source watt."""
    from .profile import rectangle_temperature

    if source.power == 0.0:
        raise ValueError("the source must dissipate non-zero power")
    k = conductivity if conductivity is not None else material.conductivity_at(temperature)
    rise = rectangle_temperature(observer_x, observer_y, source, k)
    return rise / source.power


def resistance_matrix(
    sources: Sequence[HeatSource],
    conductivity: float,
) -> "list[list[float]]":
    """Full thermal-resistance matrix between sources (semi-infinite die).

    Entry ``[i][j]`` is the temperature rise at source ``i``'s centre per
    watt dissipated by source ``j``.  Diagonal entries are the self-heating
    resistances (Eq. 18); off-diagonal entries use the analytical profile.
    The coupled electro-thermal engine uses this matrix to evaluate many
    power updates without re-walking the source list.
    """
    if not sources:
        raise ValueError("at least one source is required")
    if conductivity <= 0.0:
        raise ValueError("conductivity must be positive")
    matrix: list[list[float]] = []
    for observer in sources:
        row = []
        for emitter in sources:
            probe = HeatSource(
                x=emitter.x,
                y=emitter.y,
                width=emitter.width,
                length=emitter.length,
                power=1.0,
                depth=emitter.depth,
                name=emitter.name,
            )
            row.append(
                mutual_thermal_resistance(
                    probe, observer.x, observer.y, conductivity=conductivity
                )
            )
        matrix.append(row)
    return matrix
