"""Superposition of analytical heat-source fields (paper Eq. 21) and the
full-chip analytical thermal model.

Because the steady-state heat equation is linear, the temperature rise of M
rectangular sources is the sum of their individual analytical profiles
(Eq. 20).  :class:`ChipThermalModel` packages the complete paper recipe:
user-supplied sources on a finite die, the method-of-images expansion for
the boundary conditions, and fast evaluation of points, lines and full
surface maps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...technology.materials import SILICON, Material
from ..backend import Precision, resolve_precision
from .images import DieGeometry, ImageExpansion
from .kernel import (
    SourceArray,
    as_points,
    temperature_rise as kernel_temperature_rise,
)
from .profile import rectangle_temperature
from .sources import HeatSource


def superposed_temperature_rise(
    x: float,
    y: float,
    sources: Sequence[HeatSource],
    conductivity: float,
) -> float:
    """Temperature rise [K] at ``(x, y)`` from a set of sources (Eq. 21)."""
    if not sources:
        raise ValueError("at least one source is required")
    return sum(rectangle_temperature(x, y, source, conductivity) for source in sources)


@dataclass(frozen=True)
class SurfaceMap:
    """A sampled surface temperature map.

    Attributes
    ----------
    x_coordinates, y_coordinates:
        Sample coordinates [m] along each axis.
    temperature:
        Absolute temperature [K], shape ``(len(x), len(y))``.
    ambient_temperature:
        The heat-sink temperature the rises were added to.
    """

    x_coordinates: np.ndarray
    y_coordinates: np.ndarray
    temperature: np.ndarray
    ambient_temperature: float

    @property
    def rise(self) -> np.ndarray:
        """Temperature rise [K] above ambient."""
        return self.temperature - self.ambient_temperature

    @property
    def peak_temperature(self) -> float:
        """Hottest sampled temperature [K]."""
        return float(self.temperature.max())

    @property
    def peak_location(self) -> Tuple[float, float]:
        """Coordinates [m] of the hottest sample."""
        index = np.unravel_index(
            int(np.argmax(self.temperature)), self.temperature.shape
        )
        return float(self.x_coordinates[index[0]]), float(
            self.y_coordinates[index[1]]
        )

    def cross_section_x(self, y: float) -> Tuple[np.ndarray, np.ndarray]:
        """Temperature along x at the sampled row closest to ``y`` (Fig. 7)."""
        row = int(np.argmin(np.abs(self.y_coordinates - y)))
        return self.x_coordinates.copy(), self.temperature[:, row].copy()

    def cross_section_y(self, x: float) -> Tuple[np.ndarray, np.ndarray]:
        """Temperature along y at the sampled column closest to ``x``."""
        column = int(np.argmin(np.abs(self.x_coordinates - x)))
        return self.y_coordinates.copy(), self.temperature[column, :].copy()


class ChipThermalModel:
    """Analytical full-chip thermal model (paper Section 3).

    Parameters
    ----------
    die:
        Die geometry (lateral dimensions and thickness).
    ambient_temperature:
        Heat-sink temperature [K] at the die bottom.
    material:
        Substrate material; bulk silicon by default.
    image_rings:
        Lateral image rings used to enforce the adiabatic sides.
    include_bottom_images:
        Whether to add the buried negative images enforcing the isothermal
        bottom.
    precision:
        Working-precision policy from
        :data:`repro.core.backend.PRECISIONS` (name or
        :class:`~repro.core.backend.Precision`).  The default ``float64``
        is bit-identical to the pre-policy model; ``float32`` evaluates
        maps in single precision within the documented tolerances (fast
        serving maps — see ``docs/precision.md``).
    """

    def __init__(
        self,
        die: DieGeometry,
        ambient_temperature: float = 298.15,
        material: Material = SILICON,
        image_rings: int = 1,
        include_bottom_images: bool = True,
        precision: Union[str, Precision, None] = None,
    ) -> None:
        if ambient_temperature <= 0.0:
            raise ValueError("ambient_temperature must be positive (Kelvin)")
        self.die = die
        self.ambient_temperature = ambient_temperature
        self.material = material
        self.precision = resolve_precision(precision)
        self._dtype = self.precision.dtype(np)
        self.expansion = ImageExpansion(
            die, rings=image_rings, include_bottom_images=include_bottom_images
        )
        self._sources: List[HeatSource] = []
        self._expanded_array: Optional[SourceArray] = None

    # ------------------------------------------------------------------ #
    # Source management
    # ------------------------------------------------------------------ #
    @property
    def conductivity(self) -> float:
        """Substrate conductivity [W/m/K] at the ambient temperature."""
        return self.material.conductivity_at(self.ambient_temperature)

    @property
    def sources(self) -> Tuple[HeatSource, ...]:
        """The user-supplied (non-image) sources."""
        return tuple(self._sources)

    def add_source(self, source: HeatSource) -> None:
        """Add one heat source (must lie on the die)."""
        if not self.die.contains_source(source):
            raise ValueError(f"source {source.name or source} lies outside the die")
        self._sources.append(source)
        self._invalidate()

    def add_sources(self, sources: Iterable[HeatSource]) -> None:
        """Add several heat sources."""
        for source in sources:
            self.add_source(source)

    def clear_sources(self) -> None:
        """Remove every source."""
        self._sources.clear()
        self._invalidate()

    def set_source_powers(self, powers: Dict[str, float]) -> None:
        """Update powers of named sources in place (co-simulation hook).

        Raises
        ------
        KeyError
            When ``powers`` names sources that do not exist on the model —
            a silent no-op here would make a co-simulation quietly run with
            stale powers.
        """
        unknown = set(powers) - {source.name for source in self._sources}
        if unknown:
            raise KeyError(
                f"unknown source names: {sorted(unknown)}; "
                f"known sources: {sorted(s.name for s in self._sources if s.name)}"
            )
        self._sources = [
            replace(source, power=powers[source.name])
            if source.name in powers
            else source
            for source in self._sources
        ]
        self._invalidate()

    def _invalidate(self) -> None:
        self._expanded_array = None

    def total_power(self) -> float:
        """Total power [W] of the user-supplied sources."""
        return sum(source.power for source in self._sources)

    def _expanded_source_array(self) -> SourceArray:
        if self._expanded_array is None:
            expanded, _ = self.expansion.expand_arrays(self._sources)
            if self.precision.name != "float64":
                expanded = expanded.cast(np, self._dtype)
            self._expanded_array = expanded
        return self._expanded_array

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def temperature_rises(self, points) -> np.ndarray:
        """Temperature rises [K] above ambient at ``(N, 2)`` surface points.

        This is the batched hot path: one vectorized kernel call over the
        cached image-expanded source array.
        """
        points = as_points(points)
        if self.precision.name != "float64":
            points = points.astype(self._dtype, copy=False)
        if not self._sources:
            return np.zeros(points.shape[0], dtype=points.dtype)
        return kernel_temperature_rise(
            points, self._expanded_source_array(), self.conductivity
        )

    def temperatures(self, points) -> np.ndarray:
        """Absolute temperatures [K] at ``(N, 2)`` surface points."""
        return self.ambient_temperature + self.temperature_rises(points)

    def temperature_rise_at(self, x: float, y: float) -> float:
        """Temperature rise [K] above ambient at a surface point."""
        if not self._sources:
            return 0.0
        return float(self.temperature_rises(np.asarray([[x, y]]))[0])

    def temperature_at(self, x: float, y: float) -> float:
        """Absolute surface temperature [K] at a point."""
        return self.ambient_temperature + self.temperature_rise_at(x, y)

    def source_temperatures(self) -> Dict[str, float]:
        """Absolute temperature [K] at the centre of every named source."""
        if not self._sources:
            return {}
        centres = np.asarray([[source.x, source.y] for source in self._sources])
        values = self.temperatures(centres)
        temperatures = {}
        for source, value in zip(self._sources, values):
            key = source.name or f"source@({source.x:.3e},{source.y:.3e})"
            temperatures[key] = float(value)
        return temperatures

    def surface_map(self, nx: int = 50, ny: int = 50) -> SurfaceMap:
        """Sampled absolute-temperature map of the whole die surface.

        The full ``nx * ny`` grid is evaluated by a single batched kernel
        call over the image-expanded sources.
        """
        if nx < 2 or ny < 2:
            raise ValueError("the map needs at least 2 samples per axis")
        xs = np.linspace(0.0, self.die.width, nx)
        ys = np.linspace(0.0, self.die.length, ny)
        mesh_x, mesh_y = np.meshgrid(xs, ys, indexing="ij")
        points = np.column_stack([mesh_x.ravel(), mesh_y.ravel()])
        values = self.temperatures(points).reshape(nx, ny)
        return SurfaceMap(
            x_coordinates=xs,
            y_coordinates=ys,
            temperature=values,
            ambient_temperature=self.ambient_temperature,
        )

    def cross_section(
        self, y: float, samples: int = 101
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Absolute temperature along an x cut at height ``y`` (Fig. 7)."""
        xs = np.linspace(0.0, self.die.width, samples)
        points = np.column_stack([xs, np.full(samples, y)])
        return xs, self.temperatures(points)

    def edge_flux_residual(self, samples: int = 21) -> float:
        """Normalised normal-gradient residual on the die edges (diagnostic)."""
        if not self._sources:
            raise ValueError("no sources to evaluate")
        return self.expansion.boundary_flux_residual(
            self._sources, self.conductivity, samples=samples
        )
