"""Pluggable thermal backends: one reduction seam behind every engine.

The electro-thermal engines (scalar
:class:`~repro.core.cosim.engine.ElectroThermalEngine`, batched
:class:`~repro.core.cosim.scenarios.ScenarioEngine` and
:class:`~repro.core.cosim.transient_scenarios.TransientScenarioEngine`)
only ever consume the floorplan's thermal behaviour through one object:
the reduced block-to-block thermal-resistance matrix.  Steady-state
targets, the Eq. 13 static-power coupling and the exponential transient
updates are all downstream of that matrix — so swapping how it is
*computed* swaps the whole thermal model without touching a single hot
path.

:class:`ThermalOperator` is that seam.  An operator reduces a floorplan to
the **unit-conductivity** ``(n_blocks, n_blocks)`` matrix — entry
``[i, j]`` is the temperature rise at block ``i``'s centre per watt
dissipated over block ``j``'s footprint, at substrate conductivity
``k = 1 W/m/K`` — plus capability metadata.  Every built-in backend is
linear in ``1/k`` (``R(k) = R(1) / k``), which is what lets one cached
reduction serve scenarios at any ambient temperature; the
:attr:`BackendCapabilities.conductivity_factorizes` flag records this
contract and the engines enforce it.

Three implementations reproduce the paper's accuracy-vs-speed trade-off as
selectable backends:

* :class:`AnalyticalImageOperator` — the paper's closed-form image-method
  model (Eqs. 18/20 + method of images), bit-identical to the pre-backend
  engines and by far the fastest;
* :class:`FdmOperator` — the numerical reference: the 3-D finite-volume
  solver of :mod:`repro.thermalsim.fdm`, factorized once (``splu``) and
  solved for all ``n_blocks`` unit-power right-hand sides in one
  multi-column substitution, with block-centre surface sampling;
* :class:`FosterOperator` — the lumped-RC steady-state limit (one
  1-D Foster column per block, no lateral spreading, no inter-block
  coupling) for cheap smoke-level studies.

Backends are selected by name (:data:`THERMAL_BACKENDS`) through
:func:`make_operator`, which is what
``ScenarioEngine(..., thermal_backend="fdm")`` and the declarative
``StudySpec.thermal_backend`` resolve through.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ...technology.materials import Material
from .images import ImageExpansion
from .kernel import pairwise_rise

if TYPE_CHECKING:  # imported for annotations only (floorplan imports us)
    from ...floorplan.floorplan import Floorplan

#: Names of the selectable thermal backends, in documentation order.
#: Mirrored (as a plain literal, to keep argument parsing numpy-free) by
#: :data:`repro.api.kinds.THERMAL_BACKENDS`.
THERMAL_BACKENDS = ("analytical", "fdm", "foster")

#: Grid options understood by the ``fdm`` backend.
FDM_GRID_OPTIONS = ("nx", "ny", "nz")


def validated_int(value, label: str, minimum: int) -> int:
    """An exact integer at or above ``minimum``, or a labelled ValueError.

    Shared by the operator validators and the spec layer so that a bad
    grid option fails the same way — naming the offending field — at
    every API level (bools, floats with fractional parts and non-numeric
    values are all rejected rather than silently coerced).
    """
    try:
        valid = not isinstance(value, bool) and int(value) == value
    except (TypeError, ValueError, OverflowError):  # inf/nan overflow int()
        valid = False
    if not valid or int(value) < minimum:
        raise ValueError(f"{label} must be an integer >= {minimum}, got {value!r}")
    return int(value)


@dataclass(frozen=True)
class BackendCapabilities:
    """What a thermal backend can (and cannot) do.

    Attributes
    ----------
    backend:
        The backend's registry name.
    description:
        One-line human-readable summary (``repro info`` prints it).
    conductivity_factorizes:
        True when the reduction is linear in ``1/k`` so that
        ``reduce()`` at unit conductivity scaled by each scenario's
        ``1 / k(T_amb)`` is exact.  The engines require this.
    field_maps:
        True when the backend can also produce full surface temperature
        fields (not just block-centre reductions).
    numerical:
        True for discretized reference solvers, False for closed forms.
    mutual_coupling:
        True when the reduction resolves block-to-block interaction
        (off-diagonal entries); False for purely self-heating models.
    """

    backend: str
    description: str
    conductivity_factorizes: bool = True
    field_maps: bool = False
    numerical: bool = False
    mutual_coupling: bool = True

    def flags(self) -> str:
        """Compact ``flag=yes/no`` rendering for CLI listings."""
        entries = (
            ("field_maps", self.field_maps),
            ("mutual_coupling", self.mutual_coupling),
            ("numerical", self.numerical),
            ("conductivity_factorizes", self.conductivity_factorizes),
        )
        return ", ".join(f"{name}={'yes' if on else 'no'}" for name, on in entries)


class ThermalOperator(ABC):
    """Reduces a floorplan to a unit-conductivity block-resistance matrix.

    Implementations must be immutable value objects: equal operators must
    produce equal reductions, and :meth:`cache_key` must capture every
    parameter the reduction depends on *besides* the floorplan geometry
    (the shared cache in :mod:`repro.core.cosim.resistance_cache` keys on
    ``(cache_key, geometry)``).
    """

    @property
    @abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Capability metadata of this backend."""

    @property
    def name(self) -> str:
        """The backend's registry name."""
        return self.capabilities.backend

    @abstractmethod
    def cache_key(self) -> Tuple:
        """Hashable configuration fingerprint (geometry excluded)."""

    @abstractmethod
    def reduce(self, floorplan: "Floorplan", block_names: Sequence[str]) -> np.ndarray:
        """Unit-conductivity block-to-block resistance matrix.

        Entry ``[i, j]`` is the temperature rise at block ``i``'s centre
        per watt dissipated uniformly over block ``j``'s footprint, at
        substrate conductivity 1 W/m/K; divide by the physical
        conductivity for the matrix in [K/W].
        """


@dataclass(frozen=True)
class AnalyticalImageOperator(ThermalOperator):
    """The paper's closed-form model: Eq. 18/20 self/mutual terms plus the
    method of images for the adiabatic sides and the isothermal bottom.

    This is the default backend and is bit-identical to the pre-backend
    engines: the reduction is the same grouped
    :func:`~repro.core.thermal.kernel.pairwise_rise` call over the same
    :class:`~repro.core.thermal.images.ImageExpansion`.
    """

    image_rings: int = 1
    include_bottom_images: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "image_rings", validated_int(self.image_rings, "image_rings", 0)
        )
        object.__setattr__(
            self, "include_bottom_images", bool(self.include_bottom_images)
        )

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            backend="analytical",
            description=(
                "closed-form image-method model (paper Eqs. 18/20); "
                "fastest, also powers surface maps"
            ),
            field_maps=True,
        )

    def cache_key(self) -> Tuple:
        return ("analytical", self.image_rings, self.include_bottom_images)

    def reduce(self, floorplan: "Floorplan", block_names: Sequence[str]) -> np.ndarray:
        expansion = ImageExpansion(
            floorplan.die,
            rings=self.image_rings,
            include_bottom_images=self.include_bottom_images,
        )
        blocks = [floorplan.block(name) for name in block_names]
        unit_sources = [block.to_heat_source(1.0) for block in blocks]
        expanded, groups = expansion.expand_arrays(unit_sources)
        observers = np.asarray([[block.x, block.y] for block in blocks])
        return pairwise_rise(
            observers,
            expanded,
            1.0,
            groups=groups,
            group_count=len(blocks),
        )


@dataclass(frozen=True)
class FdmOperator(ThermalOperator):
    """Finite-volume reduction: the numerical reference as a backend.

    Solves the 3-D steady heat equation on an ``nx x ny x nz`` grid with
    the exact boundary conditions the analytical model approximates
    (adiabatic sides/top, isothermal bottom).  The sparse system is
    factorized once (``splu`` via
    :attr:`~repro.thermalsim.fdm.FiniteVolumeThermalSolver.factorization`)
    and all ``n_blocks`` unit-power right-hand sides are solved in one
    multi-column substitution; block temperatures are sampled at each
    block's centre on the top surface (bilinear).
    """

    nx: int = 40
    ny: int = 40
    nz: int = 8

    def __post_init__(self) -> None:
        for label in FDM_GRID_OPTIONS:
            object.__setattr__(
                self, label, validated_int(getattr(self, label), label, 2)
            )

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            backend="fdm",
            description=(
                "3-D finite-volume reference (sparse splu, one factorization "
                "for all blocks); accuracy yardstick"
            ),
            numerical=True,
        )

    def cache_key(self) -> Tuple:
        return ("fdm", self.nx, self.ny, self.nz)

    def reduce(self, floorplan: "Floorplan", block_names: Sequence[str]) -> np.ndarray:
        # Imported here so the other backends never pay for scipy.sparse.
        from ...thermalsim.fdm import FiniteVolumeThermalSolver, RectangularSource

        solver = FiniteVolumeThermalSolver(
            die_width=floorplan.die.width,
            die_length=floorplan.die.length,
            die_thickness=floorplan.die.thickness,
            nx=self.nx,
            ny=self.ny,
            nz=self.nz,
            material=_UNIT_CONDUCTIVITY,
            ambient_temperature=_UNIT_CONDUCTIVITY.reference_temperature,
        )
        blocks = [floorplan.block(name) for name in block_names]
        source_sets = [
            [
                RectangularSource(
                    x=block.x,
                    y=block.y,
                    width=block.width,
                    length=block.length,
                    power=1.0,
                    name=block.name,
                )
            ]
            for block in blocks
        ]
        solutions = solver.solve_many(source_sets)
        matrix = np.empty((len(blocks), len(blocks)))
        for column, solution in enumerate(solutions):
            for row, block in enumerate(blocks):
                # Extrapolated to z = 0: cell centres sit half a cell below
                # the surface, where the source-driven gradient is steepest.
                matrix[row, column] = solution.rise_at(
                    block.x, block.y, extrapolate=True
                )
        return matrix


@dataclass(frozen=True)
class FosterOperator(ThermalOperator):
    """Lumped-RC steady-state limit: one 1-D Foster column per block.

    Each block sees only the steady-state rise of its own single-pole
    Foster network — a straight column of substrate one block-footprint
    wide and one die-thickness deep (``R = t / (k A)``), the ``t -> inf``
    limit of :func:`repro.thermalsim.rc_network.single_pole_network`.  No
    lateral spreading, no inter-block coupling: a deliberately crude,
    essentially free backend for smoke-level studies and for bounding how
    much the full models matter.
    """

    @property
    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            backend="foster",
            description=(
                "lumped RC steady-state limit (1-D column per block, no "
                "coupling); cheap smoke-level studies"
            ),
            mutual_coupling=False,
        )

    def cache_key(self) -> Tuple:
        return ("foster",)

    def reduce(self, floorplan: "Floorplan", block_names: Sequence[str]) -> np.ndarray:
        # The t -> inf limit of a one-stage Foster network is its total
        # resistance (rc_network.FosterNetwork.steady_state_rise), which
        # for a 1-D column of substrate is thickness / (k * area) — at
        # unit conductivity simply thickness / area.
        thickness = floorplan.die.thickness
        return np.diag(
            np.asarray(
                [thickness / floorplan.block(name).area for name in block_names]
            )
        )


#: The FDM backend reduces at k = 1 W/m/K exactly like the analytical one:
#: a temperature-independent unit-conductivity material makes the assembled
#: stiffness matrix the unit-conductivity operator, so R(k) = R(1) / k.
_UNIT_CONDUCTIVITY = Material(
    name="unit conductivity",
    thermal_conductivity=1.0,
    density=1.0,
    specific_heat=1.0,
)


def backend_capabilities() -> Dict[str, BackendCapabilities]:
    """Capability metadata of every built-in backend, by registry name."""
    return {name: make_operator(name).capabilities for name in THERMAL_BACKENDS}


def make_operator(
    thermal_backend: Union[str, ThermalOperator] = "analytical",
    image_rings: int = 1,
    include_bottom_images: bool = True,
    options: Optional[Mapping[str, object]] = None,
) -> ThermalOperator:
    """Resolve a backend name (or pass through an operator instance).

    Parameters
    ----------
    thermal_backend:
        One of :data:`THERMAL_BACKENDS`, or an already-built
        :class:`ThermalOperator` (returned unchanged; ``options`` must
        then be empty).
    image_rings, include_bottom_images:
        Boundary-image configuration consumed by the ``analytical``
        backend (the other backends model the die boundaries exactly and
        ignore them).
    options:
        Backend-specific options: the ``fdm`` backend accepts the grid
        resolution (:data:`FDM_GRID_OPTIONS`); the others accept none.
    """
    options = dict(options or {})
    if isinstance(thermal_backend, ThermalOperator):
        if options:
            raise ValueError(
                "backend options cannot be combined with an already-built "
                f"operator (got option(s): {', '.join(sorted(options))})"
            )
        return thermal_backend
    if thermal_backend == "analytical":
        if options:
            raise ValueError(
                "the 'analytical' backend takes image_rings/"
                "include_bottom_images, not backend options "
                f"(got: {', '.join(sorted(options))})"
            )
        return AnalyticalImageOperator(
            image_rings=image_rings, include_bottom_images=include_bottom_images
        )
    if thermal_backend == "fdm":
        unknown = sorted(set(options) - set(FDM_GRID_OPTIONS))
        if unknown:
            raise ValueError(
                f"unknown fdm backend option(s): {', '.join(unknown)}; "
                f"allowed: {', '.join(FDM_GRID_OPTIONS)}"
            )
        return FdmOperator(**options)
    if thermal_backend == "foster":
        if options:
            raise ValueError(
                "the 'foster' backend takes no options "
                f"(got: {', '.join(sorted(options))})"
            )
        return FosterOperator()
    raise ValueError(
        f"unknown thermal backend {thermal_backend!r}; "
        f"known backends: {', '.join(THERMAL_BACKENDS)}"
    )
