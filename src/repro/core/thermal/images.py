"""Method of images: finite-die boundary conditions (paper Section 3.3).

The superposition formula (Eq. 21) assumes a laterally infinite substrate.
Real dies have four adiabatic sides and an isothermal bottom; the paper
enforces both with the method of images:

* **sides** — every source is mirrored across each die edge (and, for the
  corner interactions, across combinations of edges).  Two equal sources
  facing each other across a plane cancel the normal heat flux on that
  plane, which is exactly the adiabatic condition.  Repeating the mirroring
  periodically (image "rings") makes the approximation as accurate as
  desired;
* **bottom** — every source is paired with buried negative/positive images
  ("heat sinks") mirrored across the die bottom, forcing the heat flux at the
  bottom to be orthogonal to it (the isothermal-sink condition).  The exact
  treatment is an infinite alternating ladder of images at depths
  ``2 n t_die`` with strength ``2 (-1)^n P``; the expansion truncates it
  after ``bottom_image_terms`` terms and halves the last term (an Euler
  acceleration), which makes the truncated series exact both at the source
  (fast-converging alternating sum) and in the far field (terms cancel, as
  the isothermal bottom demands).

:class:`ImageExpansion` generates the full image set for a rectangular die.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .sources import HeatSource


@dataclass(frozen=True)
class DieGeometry:
    """Lateral and vertical dimensions of the die.

    Attributes
    ----------
    width:
        Die extent along x [m].
    length:
        Die extent along y [m].
    thickness:
        Substrate thickness [m] between active surface and heat sink.
    """

    width: float
    length: float
    thickness: float = 500.0e-6

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.length <= 0.0 or self.thickness <= 0.0:
            raise ValueError("die dimensions must be positive")

    def contains(self, x: float, y: float, margin: float = 0.0) -> bool:
        """True when the lateral point lies on the die (within a margin)."""
        return (
            -margin <= x <= self.width + margin
            and -margin <= y <= self.length + margin
        )

    def contains_source(self, source: HeatSource) -> bool:
        """True when the whole source footprint lies on the die."""
        return (
            source.x - 0.5 * source.width >= -1e-12
            and source.x + 0.5 * source.width <= self.width + 1e-12
            and source.y - 0.5 * source.length >= -1e-12
            and source.y + 0.5 * source.length <= self.length + 1e-12
        )


class ImageExpansion:
    """Generate image sources enforcing the die boundary conditions.

    Parameters
    ----------
    die:
        Die geometry.
    rings:
        Number of lateral image rings.  Ring ``m`` contains every mirrored
        copy whose periodic cell index along x or y has magnitude ``<= m``;
        ring 0 is just the original sources.  One or two rings are enough
        for typical die aspect ratios (see the image-convergence ablation
        benchmark).
    include_bottom_images:
        When True each (real or lateral-image) source is paired with the
        buried image ladder that enforces the isothermal bottom.  Disable to
        reproduce the semi-infinite-substrate behaviour of Eq. (21) alone.
    bottom_image_terms:
        Number of terms kept from the vertical image ladder (the last term
        is half-weighted).  1 reproduces the single-sink approximation; 3
        (default) is accurate to a few percent of the bottom-sink effect.
    """

    def __init__(
        self,
        die: DieGeometry,
        rings: int = 1,
        include_bottom_images: bool = True,
        bottom_image_terms: int = 3,
    ) -> None:
        if rings < 0:
            raise ValueError("rings must be non-negative")
        if bottom_image_terms < 1:
            raise ValueError("bottom_image_terms must be at least 1")
        self.die = die
        self.rings = rings
        self.include_bottom_images = include_bottom_images
        self.bottom_image_terms = bottom_image_terms

    # ------------------------------------------------------------------ #
    # Lateral (adiabatic side) images
    # ------------------------------------------------------------------ #
    def _lateral_positions(self, x: float, y: float) -> List[Tuple[float, float]]:
        """All mirrored positions of a point for the configured ring count.

        The adiabatic-sides problem on ``[0, W] x [0, L]`` unfolds into a
        periodic pattern of period ``2W`` / ``2L``: the images of a point at
        ``x`` are ``2 m W + x`` and ``2 m W - x`` for every integer ``m``
        (and likewise along y).
        """
        width = self.die.width
        length = self.die.length
        xs = []
        ys = []
        for m in range(-self.rings, self.rings + 1):
            xs.append(2.0 * m * width + x)
            xs.append(2.0 * m * width - x)
            ys.append(2.0 * m * length + y)
            ys.append(2.0 * m * length - y)
        # Deduplicate while keeping a stable order (mirroring x = 0 when the
        # source sits exactly on the axis would otherwise double-count).
        unique_xs = sorted(set(round(v, 15) for v in xs))
        unique_ys = sorted(set(round(v, 15) for v in ys))
        return [(vx, vy) for vx in unique_xs for vy in unique_ys]

    def expand(self, sources: Sequence[HeatSource]) -> List[HeatSource]:
        """Full image set (originals + lateral images + bottom sinks)."""
        if not sources:
            raise ValueError("at least one source is required")
        for source in sources:
            if not self.die.contains_source(source):
                raise ValueError(
                    f"source {source.name or source} lies outside the die"
                )
            if source.depth != 0.0:
                raise ValueError("expand() expects surface sources only")

        expanded: List[HeatSource] = []
        for source in sources:
            if self.rings == 0:
                positions = [(source.x, source.y)]
            else:
                positions = self._lateral_positions(source.x, source.y)
            for px, py in positions:
                image = HeatSource(
                    x=px,
                    y=py,
                    width=source.width,
                    length=source.length,
                    power=source.power,
                    depth=0.0,
                    name=source.name,
                )
                expanded.append(image)
                if self.include_bottom_images:
                    expanded.extend(self._vertical_images(image))
        return expanded

    def _vertical_images(self, surface_image: HeatSource) -> List[HeatSource]:
        """Truncated isothermal-bottom image ladder for one surface source.

        Term ``n`` sits at depth ``2 n t_die`` with strength
        ``2 (-1)^n P`` except the last kept term, which is half-weighted so
        the truncated series cancels exactly in the far field.
        """
        ladder: List[HeatSource] = []
        for n in range(1, self.bottom_image_terms + 1):
            weight = 2.0 if n < self.bottom_image_terms else 1.0
            strength = weight * ((-1.0) ** n) * surface_image.power
            ladder.append(
                HeatSource(
                    x=surface_image.x,
                    y=surface_image.y,
                    width=surface_image.width,
                    length=surface_image.length,
                    power=strength,
                    depth=2.0 * n * self.die.thickness,
                    name=surface_image.name,
                )
            )
        return ladder

    def image_count(self, source_count: int) -> int:
        """Number of image sources generated for ``source_count`` originals."""
        if source_count < 0:
            raise ValueError("source_count must be non-negative")
        per_axis = 2 * (2 * self.rings + 1) if self.rings > 0 else 1
        lateral = per_axis * per_axis if self.rings > 0 else 1
        bottom_factor = 1 + (self.bottom_image_terms if self.include_bottom_images else 0)
        return source_count * lateral * bottom_factor

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def boundary_flux_residual(
        self,
        sources: Sequence[HeatSource],
        conductivity: float,
        samples: int = 21,
        finite_difference: float = 1e-7,
    ) -> float:
        """Largest normalised normal temperature gradient on the die edges.

        With a perfect image expansion the temperature's normal derivative
        vanishes on every die side.  This diagnostic samples the four edges,
        estimates the normal derivative by central differences of the
        analytical profile, and returns the worst value normalised by the
        peak tangential gradient scale — the convergence metric of the
        image-count ablation benchmark.
        """
        from .superposition import superposed_temperature_rise

        expanded = self.expand(sources)
        width = self.die.width
        length = self.die.length
        h = finite_difference

        def rise(x: float, y: float) -> float:
            return superposed_temperature_rise(x, y, expanded, conductivity)

        max_normal = 0.0
        reference = max(abs(rise(0.5 * width, 0.5 * length)), 1e-30)
        for index in range(samples):
            fraction = (index + 0.5) / samples
            # Left and right edges: derivative along x.
            y = fraction * length
            for x_edge, sign in ((0.0, 1.0), (width, -1.0)):
                gradient = (
                    rise(x_edge + sign * h, y) - rise(x_edge, y)
                ) / h
                max_normal = max(max_normal, abs(gradient))
            # Bottom and top edges: derivative along y.
            x = fraction * width
            for y_edge, sign in ((0.0, 1.0), (length, -1.0)):
                gradient = (
                    rise(x, y_edge + sign * h) - rise(x, y_edge)
                ) / h
                max_normal = max(max_normal, abs(gradient))
        # Normalise by a representative interior gradient: peak rise over the
        # half-die span.
        normalisation = reference / (0.5 * min(width, length))
        return max_normal / normalisation
